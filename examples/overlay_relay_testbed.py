#!/usr/bin/env python
"""Overlay paradigm on the simulated indoor testbed (Section 6.4 style).

Recreates both overlay experiments — the 2 m triangle with an obstructing
board (Table 2) and the two-labs-plus-corridor layout (Table 3) — then goes
beyond the paper with a combining ablation (the paper uses equal-gain
combination; how much would MRC or selection combining change the story?).

Run:  python examples/overlay_relay_testbed.py
"""

from repro.testbed import table2_testbed, table3_testbed

N_BITS = 100_000


def triangle_experiment() -> None:
    print("== Table 2 layout: 2 m triangle, thick board on the direct path ==")
    testbed = table2_testbed()
    print(f"  direct link SNR: {testbed.link_snr_db('tx', 'rx'):.1f} dB (obstructed)")
    print(f"  via relay:       {testbed.link_snr_db('tx', 'relay'):.1f} dB / "
          f"{testbed.link_snr_db('relay', 'rx'):.1f} dB (clear)")
    direct = testbed.run_relay_experiment("tx", [], "rx", n_bits=N_BITS, rng=1)
    coop = testbed.run_relay_experiment("tx", ["relay"], "rx", n_bits=N_BITS, rng=2)
    print(f"  BER without cooperation: {direct.ber:.4f}")
    print(f"  BER with relay + EGC:    {coop.ber:.4f} "
          f"({direct.ber / coop.ber:.1f}x better)\n")


def corridor_experiment() -> None:
    print("== Table 3 layout: two labs, concrete walls, relay corridor ==")
    testbed = table3_testbed()
    direct = testbed.run_relay_experiment("tx", [], "rx", n_bits=N_BITS, rng=3)
    single = testbed.run_relay_experiment("tx", ["relay_mid"], "rx", n_bits=N_BITS, rng=4)
    multi = testbed.run_relay_experiment(
        "tx", ["relay1", "relay2", "relay3"], "rx", n_bits=N_BITS, rng=5
    )
    print(f"  no cooperation: {direct.ber:.4f}")
    print(f"  single relay:   {single.ber:.4f}")
    print(f"  three relays:   {multi.ber:.4f}")
    print("  -> the more relays, the lower the bit errors (paper's conclusion)\n")


def combining_ablation() -> None:
    print("== Ablation: receive combining strategy (multi-relay layout) ==")
    testbed = table3_testbed()
    for combining in ("egc", "mrc", "sc"):
        result = testbed.run_relay_experiment(
            "tx",
            ["relay1", "relay2", "relay3"],
            "rx",
            n_bits=N_BITS,
            combining=combining,
            rng=6,
        )
        note = "(the paper's choice)" if combining == "egc" else ""
        print(f"  {combining.upper():3s}: BER {result.ber:.4f} {note}")
    print(
        "  -> with decode-and-forward relays, MRC's |h|^2 weights track the\n"
        "     last-hop channel but NOT the relay's decoding reliability, so\n"
        "     EGC is competitive or better here — and needs no amplitude\n"
        "     estimates, which is why the USRP testbed used it; SC discards\n"
        "     diversity and trails both"
    )


if __name__ == "__main__":
    triangle_experiment()
    corridor_experiment()
    combining_ablation()
