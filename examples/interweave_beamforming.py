#!/usr/bin/env python
"""Interweave paradigm: null-steering beamformer walkthrough (Section 5).

Reproduces the Table 1 simulation and the Figure 8 semicircle measurement,
then sweeps the design null over several directions and quantifies the
far-field-delta approximation error — the "advantages and limits" analysis
the paper closes with.

Run:  python examples/interweave_beamforming.py
"""

import numpy as np

from repro.beamforming.pattern import (
    design_null_delay,
    pattern_null_angle,
    radiation_pattern,
)
from repro.channel.multipath import MultipathEnvironment
from repro.core.interweave import InterweaveSystem, form_pairs


def table1_simulation() -> None:
    print("== Table 1: pairwise null steering, 10 trials ==")
    system = InterweaveSystem(st1=(0.0, 7.5), st2=(0.0, -7.5))
    trials = system.run_table1(rng=2013)
    for i, t in enumerate(trials, 1):
        print(
            f"  trial {i:2d}: picked Pr ({t.picked_pr[0]:7.1f}, {t.picked_pr[1]:7.1f})"
            f"  amplitude {t.amplitude_at_sr:.2f} ({t.gain_over_siso:.2f}x SISO)"
            f"  leak at Pr {t.residual_at_pr:.4f}"
        )
    mean_gain = np.mean([t.gain_over_siso for t in trials])
    print(f"  mean diversity gain {mean_gain:.2f}x (paper: 1.87x)\n")


def figure8_pattern() -> None:
    print("== Figure 8: null at 120 deg, 2.45 GHz pair, indoor room ==")
    wavelength = 0.1224
    spacing = wavelength / 2.0
    delta = design_null_delay(spacing, wavelength, 120.0)
    angle, depth = pattern_null_angle(spacing, wavelength, delta)
    print(f"  designed delta = {delta:.3f} rad -> LOS null at {angle:.1f} deg "
          f"(depth {depth:.2e})")
    room = MultipathEnvironment.random_indoor(rng=7)
    angles = np.arange(0.0, 181.0, 20.0)
    los = radiation_pattern(spacing, wavelength, delta, angles, radius=1.0)
    indoor = radiation_pattern(
        spacing, wavelength, delta, angles, radius=1.0, environment=room
    )
    print("  angle:   " + "  ".join(f"{a:5.0f}" for a in angles))
    print("  LOS:     " + "  ".join(f"{v:5.2f}" for v in los))
    print("  indoor:  " + "  ".join(f"{v:5.2f}" for v in indoor))
    print("  -> multipath fills the null in, exactly the paper's observation\n")


def null_direction_sweep() -> None:
    print("== Extension: design-null sweep and approximation error ==")
    wavelength = 0.1224
    spacing = wavelength / 2.0
    for target in (30.0, 60.0, 90.0, 120.0, 150.0):
        delta = design_null_delay(spacing, wavelength, target)
        angle, depth = pattern_null_angle(spacing, wavelength, delta)
        print(f"  target {target:5.1f} deg -> achieved {angle:5.1f} deg "
              f"(depth {depth:.1e})")
    print()


def cluster_pairing() -> None:
    print("== Algorithm 3 step 0: pairing a 5-node transmit cluster ==")
    rng = np.random.default_rng(3)
    positions = rng.uniform(-8, 8, size=(5, 2))
    pairs = form_pairs(positions)
    print(f"  node positions: {np.round(positions, 1).tolist()}")
    print(f"  floor(5/2) = 2 pairs formed: {pairs} (node "
          f"{({i for i in range(5)} - {i for p in pairs for i in p}).pop()} sits out)")


if __name__ == "__main__":
    table1_simulation()
    figure8_pattern()
    null_direction_sweep()
    cluster_pairing()
