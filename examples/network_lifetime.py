#!/usr/bin/env python
"""Network-lifetime ablation: cooperative MIMO vs SISO multi-hop transport.

The paper motivates cooperative MIMO in CoMIMONet with energy efficiency
(Section 2); this example quantifies it at the network level.  A line
network of battery-powered SU clusters relays a continuous traffic stream;
we compare how many megabits the network delivers before the first cluster
dies when hops run (a) as cooperative MIMO links (Algorithm 2) versus
(b) as head-to-head SISO links, with head re-election and backbone
reconfiguration as batteries drain.  The CSMA/CA MAC provides the per-hop
channel-access overhead.

Run:  python examples/network_lifetime.py
"""

import numpy as np

from repro.core.schemes import hop_energy
from repro.energy import EnergyModel
from repro.energy.optimize import minimize_over_b
from repro.mac import CsmaCaSimulator, CsmaConfig
from repro.network import CoMIMONet, SUNode


def build_network(seed: int = 11) -> CoMIMONet:
    rng = np.random.default_rng(seed)
    nodes = []
    node_id = 0
    for cx in (0.0, 150.0, 300.0, 450.0):
        for _ in range(3):
            offset = rng.uniform(-1.0, 1.0, 2)
            nodes.append(SUNode(node_id, (cx + offset[0], offset[1]), battery_j=400.0))
            node_id += 1
    return CoMIMONet(nodes, cluster_diameter=2.5, longhaul_range=170.0)


def run_until_death(cooperative: bool, chunk_bits: float = 1e6) -> float:
    """Deliver chunks end-to-end until a cluster dies; return megabits."""
    net = build_network()
    model = EnergyModel()
    bandwidth, p = 10e3, 0.001
    delivered_bits = 0.0
    while True:
        try:
            route = net.route(0, net.n_clusters - 1)
        except (ValueError, KeyError):
            break  # network partitioned
        try:
            for link in route:
                tx = net.cluster(link.tx_cluster_id)
                rx = net.cluster(link.rx_cluster_id)
                if not (tx.alive_nodes and rx.alive_nodes):
                    raise RuntimeError("cluster died mid-transfer")
                mt = len(tx.alive_nodes) if cooperative else 1
                mr = len(rx.alive_nodes) if cooperative else 1
                best = minimize_over_b(
                    lambda b: hop_energy(
                        model, p, b, mt, mr, 2.5, link.length_m, bandwidth
                    ).total
                )
                hop = hop_energy(
                    model, p, best.b, mt, mr, 2.5, link.length_m, bandwidth
                )
                # Charge the participants.  Cooperative: the long-haul cost
                # splits evenly across cooperators; SISO: heads pay it all.
                if cooperative:
                    share = hop.total * chunk_bits / (mt + mr)
                    for node in tx.alive_nodes + rx.alive_nodes:
                        node.consume(min(share, node.remaining_j))
                else:
                    half = hop.total * chunk_bits / 2.0
                    for node in (tx.head, rx.head):
                        node.consume(min(half, node.remaining_j))
            delivered_bits += chunk_bits
            net.reconfigure()
            if any(not c.is_alive for c in net.clusters):
                break
        except RuntimeError:
            break  # a battery hit zero mid-hop
        if not all(c.is_alive for c in net.clusters):
            break
        if net.n_clusters < 4:
            break
    return delivered_bits / 1e6


def mac_overhead() -> None:
    print("== CSMA/CA access overhead per hop (4 contending heads) ==")
    sim = CsmaCaSimulator(n_stations=4, config=CsmaConfig(), saturated=True, rng=5)
    stats = sim.run(duration_us=2_000_000)
    print(f"  throughput {stats.throughput_frames_per_s():.0f} frames/s, "
          f"collision probability {stats.collision_probability:.2%}, "
          f"mean access delay {stats.mean_access_delay_us:.0f} us\n")


def main() -> None:
    mac_overhead()
    print("== Lifetime: cooperative MIMO hops vs SISO head-to-head hops ==")
    coop = run_until_death(cooperative=True)
    siso = run_until_death(cooperative=False)
    print(f"  cooperative MIMO delivered {coop:8.0f} Mb before first cluster death")
    print(f"  SISO head-to-head delivered {siso:8.0f} Mb before first cluster death")
    if siso > 0:
        print(f"  -> cooperation extends useful network life {coop / siso:.1f}x "
              "(load spreading + diversity energy savings)")
    else:
        print("  -> SISO heads died before completing a single transfer; "
              "cooperation is the difference between a working and a dead network")


if __name__ == "__main__":
    main()
