#!/usr/bin/env python
"""Underlay paradigm end-to-end: an image across a CoMIMONet, twice.

Part 1 replays the paper's Table 4 bench (two co-located transmitters,
GMSK, 474-packet image) including the actual image reconstruction and the
"can it be displayed" verdict.

Part 2 goes beyond the paper: the same image crosses a *multi-hop*
CoMIMONet (Algorithm 2 at every hop) while we account the radiated PA
energy per hop and check the noise-floor margin — the full underlay story
of Section 4 on a real network topology, with per-hop timing from the
discrete-event kernel.

Run:  python examples/underlay_multihop_image.py
"""

import numpy as np

from repro.core.schemes import hop_energy
from repro.core.underlay import UnderlaySystem
from repro.energy import EnergyModel
from repro.modulation import GMSKModem
from repro.network import CoMIMONet, SUNode
from repro.phy.link import transmit_bits
from repro.simulation import EventScheduler
from repro.testbed import table4_testbed, transfer_image
from repro.testbed.image import IMAGE_PACKETS, PACKET_BYTES


def paper_image_transfer() -> None:
    print("== Part 1: the Table 4 image transfer (amplitude 600) ==")
    modem = GMSKModem()
    for cooperative in (True, False):
        testbed = table4_testbed()
        for name in ("tx1", "tx2"):
            testbed.nodes[name] = testbed.nodes[name].with_amplitude(600.0)
        snr = testbed.link_snr_db("tx1", "rx")
        k = testbed.rician_k
        if cooperative:  # coherent two-transmitter addition (see radio.py)
            snr += 10.0 * np.log10((4.0 * k + 2.0) / (k + 1.0))
            k = 2.0 * k

        def send(packet_bits, rng, _snr=snr, _k=k):
            return transmit_bits(
                packet_bits,
                modem,
                _snr,
                mt=1,
                mr=1,
                fading="rician",
                rician_k=_k,
                blocks_per_fade=len(packet_bits),
                rng=rng,
            )

        result = transfer_image(send, rng=600 + int(cooperative))
        label = "cooperative (2 tx)" if cooperative else "solo (1 tx)      "
        print(
            f"  {label}: PER {result.per:6.2%}  distortion {result.mean_abs_error:6.2f}"
            f"  -> {result.verdict}"
        )
    print()


def multihop_network_transfer() -> None:
    print("== Part 2: image across a multi-hop CoMIMONet (Algorithm 2/hop) ==")
    rng = np.random.default_rng(99)
    # Four SU clusters strung 180 m apart; 3 nodes each within 2 m.
    nodes = []
    node_id = 0
    for cx in (0.0, 180.0, 360.0, 540.0):
        for _ in range(3):
            offset = rng.uniform(-1.0, 1.0, 2)
            nodes.append(SUNode(node_id, (cx + offset[0], offset[1]), battery_j=50.0))
            node_id += 1
    net = CoMIMONet(nodes, cluster_diameter=2.5, longhaul_range=200.0)
    route = net.route(0, net.n_clusters - 1)
    print(f"  {len(nodes)} SUs -> {net.n_clusters} clusters; route: "
          + " -> ".join(f"{l.tx_cluster_id}->{l.rx_cluster_id} ({l.kind.value})"
                        for l in route))

    model = EnergyModel()
    underlay = UnderlaySystem(model)
    bandwidth, target_ber, bitrate = 10e3, 0.001, 250e3
    total_bits = IMAGE_PACKETS * PACKET_BYTES * 8

    scheduler = EventScheduler()
    total_energy = 0.0
    radiated_energy = 0.0
    for link in route:
        res = underlay.pa_energy(
            target_ber, link.mt, link.mr, 2.5, link.length_m, bandwidth
        )
        hop = hop_energy(
            model, target_ber, res.b, link.mt, link.mr, 2.5, link.length_m, bandwidth
        )
        margin = underlay.interference_margin(
            target_ber, link.mt, link.mr, 2.5, link.length_m, bandwidth
        )
        total_energy += hop.total * total_bits
        radiated_energy += hop.pa_total * total_bits
        scheduler.schedule(total_bits / bitrate, lambda: None)  # airtime per hop
        print(
            f"    hop {link.tx_cluster_id}->{link.rx_cluster_id}: "
            f"{link.mt}x{link.mr} over {link.length_m:.0f} m, b={res.b}, "
            f"{hop.pa_total * total_bits:.3f} J radiated, "
            f"noise-floor margin {margin:.0f}x"
        )
    scheduler.run()
    print(f"  image delivered after {scheduler.now:.2f} s of airtime; "
          f"{radiated_energy:.2f} J radiated, {total_energy:.1f} J total "
          f"incl. circuits ({len(route)} hops)")

    # SISO comparison.  The underlay constraint is on *radiated* (PA)
    # energy — the interference the primary receiver integrates — where
    # cooperation wins by orders of magnitude.  Total energy including the
    # 6 cooperating circuits can exceed SISO at short hop lengths (the
    # classic Cui-Goldsmith crossover); both are reported.
    siso_radiated = 0.0
    siso_total = 0.0
    for link in route:
        hop = hop_energy(model, target_ber, 1, 1, 1, 2.5, link.length_m, bandwidth)
        siso_radiated += hop.pa_total * total_bits
        siso_total += hop.total * total_bits
    print(f"  non-cooperative SISO would radiate {siso_radiated:.2f} J "
          f"({siso_radiated / radiated_energy:.0f}x more interference at the PU; "
          f"{siso_total:.1f} J total incl. circuits)")


if __name__ == "__main__":
    paper_image_transfer()
    multihop_network_transfer()
