#!/usr/bin/env python
"""Quickstart: the energy model and the three paradigms in ~60 lines.

Run:  python examples/quickstart.py
"""

from repro import EnergyModel, InterweaveSystem, OverlaySystem, UnderlaySystem
from repro.energy import solve_ebar


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The e_bar_b solver — formulas (5)/(6) of the paper.             #
    # ------------------------------------------------------------------ #
    print("== e_bar_b: required received energy per bit over Rayleigh MIMO ==")
    for mt, mr in [(1, 1), (2, 1), (2, 2), (2, 3)]:
        ebar = solve_ebar(p=0.001, b=2, mt=mt, mr=mr)
        print(f"  {mt}x{mr}: {ebar:.3e} J  (diversity order {mt * mr})")
    print("  -> cooperation buys orders of magnitude in required energy\n")

    # ------------------------------------------------------------------ #
    # 2. Overlay: how far can relaying SUs sit from the primary users?   #
    # ------------------------------------------------------------------ #
    print("== Overlay (Algorithm 1): relay distance analysis ==")
    overlay = OverlaySystem(EnergyModel(ebar_convention="diversity_only"))
    res = overlay.distance_analysis(d1=250.0, m=3, bandwidth=40e3)
    print(
        f"  direct link D1={res.d1:.0f} m at BER {res.p_direct} costs "
        f"{res.e1:.3e} J/bit (b={res.b_direct})"
    )
    print(
        f"  with the same energy and BER {res.p_relay} (10x better), 3 SUs can "
        f"relay from {res.d2:.0f} m away from Pt and {res.d3:.0f} m from Pr\n"
    )

    # ------------------------------------------------------------------ #
    # 3. Underlay: stay below the primary receiver's noise floor.        #
    # ------------------------------------------------------------------ #
    print("== Underlay (Algorithm 2): radiated (PA) energy accounting ==")
    underlay = UnderlaySystem(EnergyModel())
    siso = underlay.siso_reference(p=0.001, d=1.0, distance=200.0, bandwidth=10e3)
    coop = underlay.pa_energy(p=0.001, mt=2, mr=3, d=1.0, distance=200.0, bandwidth=10e3)
    print(f"  SISO  (1x1): {siso.total_pa:.3e} J/bit radiated")
    print(f"  MIMO  (2x3): {coop.total_pa:.3e} J/bit radiated (b={coop.b})")
    print(f"  -> interference margin {siso.total_pa / coop.total_pa:.0f}x\n")

    # ------------------------------------------------------------------ #
    # 4. Interweave: null the primary receiver, keep the diversity gain. #
    # ------------------------------------------------------------------ #
    print("== Interweave (Algorithm 3): pairwise null steering ==")
    interweave = InterweaveSystem(st1=(0.0, 7.5), st2=(0.0, -7.5))
    trial = interweave.run_table1(n_trials=1, rng=42)[0]
    print(f"  picked primary receiver at {trial.picked_pr}")
    print(f"  amplitude toward the secondary receiver: {trial.gain_over_siso:.2f}x SISO")
    print(f"  leaked amplitude at the primary receiver: {trial.residual_at_pr:.4f}")


if __name__ == "__main__":
    main()
