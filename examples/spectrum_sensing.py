#!/usr/bin/env python
"""Spectrum sensing feeding the interweave paradigm.

Algorithm 3's Step 1 — "the head of transmission cluster C-St determines
the PU to share the frequency based on the sensed environment" — presumes
the cluster can *detect* primary users in the first place.  This example
builds that front end with the energy detector, shows why a lone shadowed
sensor fails and how cluster-cooperative sensing (OR fusion) fixes it,
then hands the sensed PU to the null-steering transmitter.

Run:  python examples/spectrum_sensing.py
"""

import numpy as np

from repro.core.interweave import InterweaveSystem
from repro.sensing import CooperativeSensor, EnergyDetector


def detector_design() -> EnergyDetector:
    print("== CFAR energy detector design ==")
    detector = EnergyDetector(n_samples=2000, target_pfa=0.01)
    print(f"  window 2000 samples, P_fa = 1% -> threshold {detector.threshold:.1f}")
    for snr_db in (-15.0, -10.0, -7.0, -5.0):
        pd = detector.detection_probability(10 ** (snr_db / 10))
        print(f"  P_d at {snr_db:5.1f} dB primary SNR: {pd:6.1%}")
    n = EnergyDetector.samples_required(10 ** (-15 / 10), target_pfa=0.01, target_pd=0.95)
    print(f"  to reach P_d = 95% at -15 dB a window of {n} samples is needed "
          "(the classic 1/SNR^2 low-SNR wall)\n")
    return detector


def cooperative_rescue(detector: EnergyDetector) -> None:
    print("== Cooperative sensing across a 4-node cluster (Rayleigh fades) ==")
    mean_snr = 10 ** (-7 / 10)
    for n_sensors in (1, 2, 4):
        sensor = CooperativeSensor(detector, n_sensors, "or")
        pd = sensor.detection_probability_faded(mean_snr, rng=1)
        pfa = sensor.false_alarm_probability()
        print(f"  {n_sensors} sensor(s), OR fusion: P_d = {pd:6.1%}  (P_fa = {pfa:.2%})")
    print("  -> independent fades rarely all dip together: the cluster sees "
          "the PU a lone shadowed node would miss\n")


def sense_then_transmit() -> None:
    print("== Sensed PU -> null-steered interweave transmission ==")
    rng = np.random.default_rng(7)
    system = InterweaveSystem(st1=(0.0, 7.5), st2=(0.0, -7.5))
    detector = EnergyDetector(n_samples=4000, target_pfa=0.01)

    # Three actual primary transmitters; the cluster senses which bands are
    # occupied before picking whose band to reuse spatially.
    primaries = np.array([[10.0, -130.0], [90.0, 40.0], [-40.0, 120.0]])
    occupied = []
    for i, pr in enumerate(primaries):
        # received primary SNR falls with distance (arbitrary near-field scale)
        dist = np.hypot(*pr)
        snr = 10 ** ((4.0 - 20 * np.log10(dist / 40.0)) / 10)
        stat_scale = 1.0 + snr
        detected = rng.gamma(detector.n_samples, stat_scale) > detector.threshold
        print(f"  band {i}: PU at ({pr[0]:.0f}, {pr[1]:.0f}), sensed SNR "
              f"{10 * np.log10(snr):5.1f} dB -> {'occupied' if detected else 'idle'}")
        if detected:
            occupied.append(pr)

    candidates = np.array(occupied)
    trial = system.run_trial(candidates, np.array([[60.0, 0.0], [63.0, 4.0]]))
    print(f"  head picks the PU at {trial.picked_pr} (most axis-aligned & far)")
    print(f"  transmission: {trial.gain_over_siso:.2f}x SISO at the secondary "
          f"receiver, {trial.residual_at_pr:.4f} leaked at the PU")


if __name__ == "__main__":
    detector = detector_design()
    cooperative_rescue(detector)
    sense_then_transmit()
