"""Generic OSTBC engine tests: designs, rates, recovery, equivalences."""

import numpy as np
import pytest

from repro.channel.rayleigh import rayleigh_mimo_channel
from repro.stbc.alamouti import alamouti_decode, alamouti_encode
from repro.stbc.ostbc import OSTBC, ostbc_for


class TestDesignProperties:
    @pytest.mark.parametrize(
        "mt,t,k,rate",
        [(1, 1, 1, 1.0), (2, 2, 2, 1.0), (3, 8, 4, 0.5), (4, 8, 4, 0.5)],
    )
    def test_dimensions_and_rate(self, mt, t, k, rate):
        code = ostbc_for(mt)
        assert code.n_tx == mt
        assert code.block_length == t
        assert code.n_symbols == k
        assert code.rate == pytest.approx(rate)

    @pytest.mark.parametrize("mt", [1, 2, 3, 4])
    def test_power_per_slot(self, mt):
        # each slot carries mt unit-power entries for these designs
        assert ostbc_for(mt).power_per_slot == pytest.approx(mt)

    @pytest.mark.parametrize("mt", [2, 3, 4])
    def test_codeword_orthogonality(self, mt, rng):
        """X^H X proportional to identity for random complex symbols."""
        code = ostbc_for(mt)
        s = rng.standard_normal(code.n_symbols) + 1j * rng.standard_normal(code.n_symbols)
        x = code.encode(s)[0]
        gram = x.conj().T @ x
        scale = gram[0, 0].real
        np.testing.assert_allclose(gram, scale * np.eye(mt), atol=1e-9)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ostbc_for(0)
        with pytest.raises(ValueError):
            ostbc_for(5)

    def test_non_orthogonal_design_rejected(self):
        a = np.ones((2, 2, 2))  # both symbols on both antennas: not orthogonal
        with pytest.raises(ValueError):
            OSTBC(a, a.copy(), "bogus")


class TestEncodeDecode:
    @pytest.mark.parametrize("mt", [1, 2, 3, 4])
    @pytest.mark.parametrize("mr", [1, 2, 3])
    def test_noiseless_recovery(self, mt, mr, rng):
        code = ostbc_for(mt)
        n_blocks = 9
        s = rng.standard_normal(n_blocks * code.n_symbols) + 1j * rng.standard_normal(
            n_blocks * code.n_symbols
        )
        h = rayleigh_mimo_channel(mt, mr, n_blocks, rng=rng)
        y = np.einsum("btm,bjm->btj", code.encode(s), h)
        np.testing.assert_allclose(code.decode(y, h), s, atol=1e-9)

    def test_matches_dedicated_alamouti(self, rng):
        """The generic engine and the hand-written Alamouti agree exactly."""
        code = ostbc_for(2)
        s = rng.standard_normal(10) + 1j * rng.standard_normal(10)
        np.testing.assert_allclose(code.encode(s), alamouti_encode(s), atol=1e-12)
        h = rayleigh_mimo_channel(2, 2, 5, rng=rng)
        y = np.einsum("btm,bjm->btj", code.encode(s), h)
        y += 0.05 * (rng.standard_normal(y.shape) + 1j * rng.standard_normal(y.shape))
        np.testing.assert_allclose(code.decode(y, h), alamouti_decode(y, h), atol=1e-9)

    def test_symbol_count_validation(self):
        code = ostbc_for(3)
        with pytest.raises(ValueError):
            code.encode(np.ones(5, dtype=complex))  # not a multiple of 4

    def test_received_shape_validation(self, rng):
        code = ostbc_for(2)
        h = rayleigh_mimo_channel(2, 1, 1, rng=rng)
        with pytest.raises(ValueError):
            code.decode(np.zeros((1, 3, 1), complex), h)

    def test_zero_channel_rejected(self):
        code = ostbc_for(2)
        with pytest.raises(ValueError):
            code.decode(np.zeros((1, 2, 1), complex), np.zeros((1, 1, 2), complex))


class TestDiversityOrder:
    @pytest.mark.parametrize("mt", [2, 3, 4])
    def test_full_transmit_diversity(self, mt, rng):
        """BER over Rayleigh improves faster than SISO as SNR grows —
        the defining benefit the paper's e_bar_b tables encode."""
        from repro.modulation.psk import BPSKModem
        from repro.phy.link import simulate_link

        n = 120_000
        lo = simulate_link(n, BPSKModem(), 8.0, mt=mt, mr=1, rng=rng)
        hi = simulate_link(n, BPSKModem(), 14.0, mt=mt, mr=1, rng=rng)
        siso_lo = simulate_link(n, BPSKModem(), 8.0, mt=1, mr=1, rng=rng)
        siso_hi = simulate_link(n, BPSKModem(), 14.0, mt=1, mr=1, rng=rng)
        # slope (BER drop per 6 dB) is steeper with transmit diversity
        assert lo.ber / max(hi.ber, 1e-7) > 2.0 * siso_lo.ber / siso_hi.ber


class TestOrthogonalityCheckRng:
    """Regression for the RP102 fix: the constructor's orthogonality probe
    accepts any RngLike instead of hard-coding a hidden generator."""

    def _tensors(self):
        code = ostbc_for(2)
        return np.array(code.dispersion_a), np.array(code.dispersion_b)

    def test_default_seed_still_accepts_alamouti(self):
        a, b = self._tensors()
        code = OSTBC(a, b, name="alamouti-copy")
        assert code.n_tx == 2

    def test_explicit_seed_accepted(self):
        a, b = self._tensors()
        code = OSTBC(a, b, name="alamouti-copy", rng=7)
        assert code.n_symbols == 2

    def test_explicit_generator_accepted(self, rng):
        a, b = self._tensors()
        code = OSTBC(a, b, name="alamouti-copy", rng=rng)
        assert code.block_length == 2

    def test_non_orthogonal_design_rejected_for_any_seed(self):
        a, b = self._tensors()
        a[0, 0, 0] = 2.0  # break orthonormality
        for seed in (None, 0, 99):
            with pytest.raises(ValueError):
                OSTBC(a, b, name="broken", rng=seed)
