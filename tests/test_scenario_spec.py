"""Scenario-spec tests: parsing strictness, validation, round-trips."""

import pytest

from repro.scenario.spec import (
    STREAM_NAMES,
    ChurnSpec,
    ScenarioSpec,
    TrafficClass,
    scenario_from_mapping,
    scenario_to_mapping,
)


class TestDefaults:
    def test_default_spec_valid(self):
        spec = ScenarioSpec()
        assert spec.n_nodes == 100
        assert spec.kernel == "calendar"

    def test_stream_names_fixed(self):
        assert STREAM_NAMES == ("placement", "mobility", "traffic", "churn")


class TestValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            ScenarioSpec(n_nodes=0)
        with pytest.raises(ValueError):
            ScenarioSpec(max_cluster_size=0)

    def test_rejects_bad_arena(self):
        with pytest.raises(ValueError):
            ScenarioSpec(arena_m=(0.0, 100.0))
        with pytest.raises(ValueError):
            ScenarioSpec(arena_m=(100.0,))

    def test_rejects_bad_speed_range(self):
        with pytest.raises(ValueError):
            ScenarioSpec(speed_range_mps=(2.0, 1.0))
        with pytest.raises(ValueError):
            ScenarioSpec(speed_range_mps=(0.0, 1.0))

    def test_rejects_bad_kernel_and_backbone(self):
        with pytest.raises(ValueError):
            ScenarioSpec(kernel="splay")
        with pytest.raises(ValueError):
            ScenarioSpec(backbone="ring")

    def test_traffic_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                traffic=(
                    TrafficClass(name="a", fraction=0.5),
                    TrafficClass(name="b", fraction=0.2),
                )
            )

    def test_traffic_names_unique(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                traffic=(
                    TrafficClass(name="a", fraction=0.5),
                    TrafficClass(name="a", fraction=0.5),
                )
            )

    def test_traffic_class_validation(self):
        with pytest.raises(ValueError):
            TrafficClass(name="not an identifier")
        with pytest.raises(ValueError):
            TrafficClass(rate_per_node_s=0.0)
        with pytest.raises(ValueError):
            TrafficClass(fraction=0.0)
        with pytest.raises(ValueError):
            TrafficClass(fraction=1.5)

    def test_churn_validation(self):
        ChurnSpec()  # zero rates are fine
        with pytest.raises(ValueError):
            ChurnSpec(leave_rate_per_node_s=-0.1)
        with pytest.raises(ValueError):
            ChurnSpec(max_joins=-1)

    def test_battery_jitter_range(self):
        ScenarioSpec(battery_jitter=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(battery_jitter=1.0)


class TestParsing:
    def test_empty_mapping_gives_defaults(self):
        assert scenario_from_mapping({}) == ScenarioSpec()

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            scenario_from_mapping({"nodes": 10})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(ValueError, match="unknown churn field"):
            scenario_from_mapping({"churn": {"rate": 1.0}})
        with pytest.raises(ValueError, match="unknown traffic"):
            scenario_from_mapping({"traffic": [{"name": "x", "kbps": 1}]})

    def test_type_strictness(self):
        with pytest.raises(ValueError):
            scenario_from_mapping({"n_nodes": 10.5})
        with pytest.raises(ValueError):
            scenario_from_mapping({"n_nodes": True})
        with pytest.raises(ValueError):
            scenario_from_mapping({"kernel": 3})
        with pytest.raises(ValueError):
            scenario_from_mapping({"duration_s": "60"})

    def test_pair_fields(self):
        spec = scenario_from_mapping({"arena_m": [500, 250]})
        assert spec.arena_m == (500.0, 250.0)
        with pytest.raises(ValueError):
            scenario_from_mapping({"arena_m": [500.0]})
        with pytest.raises(ValueError):
            scenario_from_mapping({"speed_range_mps": "fast"})

    def test_not_a_mapping_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_mapping([1, 2, 3])

    def test_nested_parse(self):
        spec = scenario_from_mapping(
            {
                "n_nodes": 12,
                "traffic": [
                    {"name": "cbr", "fraction": 0.75},
                    {"name": "bursty", "fraction": 0.25, "packet_bits": 16000},
                ],
                "churn": {"leave_rate_per_node_s": 0.01, "join_rate_per_s": 0.5},
            }
        )
        assert spec.traffic[1].packet_bits == 16000
        assert spec.churn.join_rate_per_s == 0.5

    def test_intlike_floats_accepted(self):
        assert scenario_from_mapping({"n_nodes": 10.0}).n_nodes == 10


class TestRoundTrip:
    def test_default_round_trips(self):
        spec = ScenarioSpec()
        assert scenario_from_mapping(scenario_to_mapping(spec)) == spec

    def test_custom_round_trips(self):
        spec = ScenarioSpec(
            n_nodes=500,
            arena_m=(2000.0, 1500.0),
            seed=42,
            duration_s=120.0,
            pause_s=2.0,
            battery_j=5.0,
            backbone="bfs",
            kernel="heap",
            traffic=(
                TrafficClass(name="a", fraction=0.5),
                TrafficClass(name="b", fraction=0.5, rate_per_node_s=2.0),
            ),
            churn=ChurnSpec(leave_rate_per_node_s=0.01, join_rate_per_s=1.0),
        )
        mapping = scenario_to_mapping(spec)
        assert scenario_from_mapping(mapping) == spec

    def test_mapping_is_json_friendly(self):
        import json

        json.dumps(scenario_to_mapping(ScenarioSpec()))
