"""Block interleaver tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.interleave import BlockInterleaver


class TestRoundTrip:
    @given(
        st.integers(1, 8),
        st.integers(1, 8),
        st.integers(0, 200),
        st.integers(0, 2**31),
    )
    @settings(max_examples=40)
    def test_roundtrip_any_length(self, rows, cols, length, seed):
        il = BlockInterleaver(rows, cols)
        data = np.random.default_rng(seed).integers(0, 256, length)
        out = il.deinterleave(il.interleave(data), original_length=length)
        np.testing.assert_array_equal(out, data)

    def test_is_a_permutation(self):
        il = BlockInterleaver(3, 4)
        data = np.arange(12)
        out = il.interleave(data)
        assert sorted(out.tolist()) == list(range(12))

    def test_known_pattern(self):
        il = BlockInterleaver(2, 3)
        # write rows [0 1 2; 3 4 5], read columns -> 0 3 1 4 2 5
        np.testing.assert_array_equal(il.interleave(np.arange(6)), [0, 3, 1, 4, 2, 5])


class TestBurstSpreading:
    def test_aligned_burst_spacing_is_cols(self):
        """A burst filling exactly one transmit column lands cols apart."""
        rows, cols = 8, 5
        il = BlockInterleaver(rows, cols)
        n = il.block_size
        sent = il.interleave(np.zeros(n, dtype=np.int8))
        sent[rows : 2 * rows] ^= 1  # exactly the second column
        received = il.deinterleave(sent, original_length=n)
        error_positions = np.where(received == 1)[0]
        assert error_positions.size == rows
        assert np.min(np.diff(error_positions)) == cols

    def test_unaligned_burst_meets_guarantee(self):
        """Any burst of <= rows symbols lands at least cols - 1 apart."""
        rows, cols = 8, 5
        il = BlockInterleaver(rows, cols)
        n = il.block_size
        for start in range(0, n - rows):
            sent = il.interleave(np.zeros(n, dtype=np.int8))
            sent[start : start + rows] ^= 1
            received = il.deinterleave(sent, original_length=n)
            positions = np.where(received == 1)[0]
            assert np.min(np.diff(positions)) >= il.burst_spread(rows)

    def test_burst_spread_accounting(self):
        il = BlockInterleaver(8, 5)
        assert il.burst_spread(1) == il.block_size
        assert il.burst_spread(3) == 4
        assert il.burst_spread(8) == 4
        assert il.burst_spread(20) < 4


class TestWithConvolutionalCode:
    def test_interleaving_rescues_burst_errors(self, rng):
        """A 12-bit burst defeats the K=7 code directly but is corrected
        after interleaving — the reason coded systems interleave over
        quasi-static fades."""
        from repro.coding.convolutional import ConvolutionalCode

        code = ConvolutionalCode()
        il = BlockInterleaver(rows=32, cols=12)
        bits = rng.integers(0, 2, 500, dtype=np.int8)
        coded = code.encode(bits)

        # without interleaving: contiguous burst -> decoding fails
        burst = coded.copy()
        burst[100:112] ^= 1
        assert np.any(code.decode(burst) != bits)

        # with interleaving: the same channel burst is spread out
        sent = il.interleave(coded)
        sent[100:112] ^= 1
        received = il.deinterleave(sent, original_length=coded.size)
        np.testing.assert_array_equal(code.decode(received), bits)


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            BlockInterleaver(0, 3)

    def test_deinterleave_length_checked(self):
        il = BlockInterleaver(2, 2)
        with pytest.raises(ValueError):
            il.deinterleave(np.zeros(5))
        with pytest.raises(ValueError):
            il.deinterleave(np.zeros(4), original_length=9)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            BlockInterleaver(2, 2).interleave(np.zeros((2, 2)))
