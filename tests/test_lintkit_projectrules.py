"""Per-rule self-tests for the RP2xx project family.

Mirrors ``test_lintkit_rules.py``: every rule must fire on a minimal bad
example, stay silent on the corresponding good example, and honour a
``# lint: ignore[RP2xx]`` on the flagged line.  RP201–RP203 are graph
rules, so their fixtures are small on-disk ``src/repro/service`` trees
run through :func:`analyze_paths`; RP204/RP205 are per-file rules and
use :func:`lint_source` directly.
"""

import pytest

from repro.lintkit import LintStats, all_rules, analyze_paths, lint_source

#: Service-library path: RP204/RP205 apply, schemas exemption does not.
SERVICE = "src/repro/service/handlers.py"
#: Library path outside repro.service.
LIB = "src/repro/somemodule.py"
#: Test path: library_only rules skip it.
TEST = "tests/test_somemodule.py"

HANDLER = "src/repro/service/app.py"


def rule_ids(findings):
    return [f.rule_id for f in findings]


def lint(source, path=SERVICE, select=None):
    rules = all_rules(select) if select else None
    return lint_source(source, path=path, rules=rules)


def project_lint(tmp_path, files, select, stats=None):
    """Write ``{relpath: source}`` under tmp and run both analysis tiers."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return analyze_paths(
        [str(tmp_path / "src")],
        select=select,
        stats=stats,
        jobs=1,
        incremental=False,
    )


# --------------------------------------------------------------------- #
# RP201 — blocking calls reachable inside service async defs            #
# --------------------------------------------------------------------- #


class TestRP201:
    @pytest.mark.parametrize(
        "body",
        [
            "    time.sleep(0.01)\n",
            "    open('/tmp/x').read()\n",
            "    subprocess.run(['ls'])\n",
            "    np.load(path)\n",
            "    sock = socket.socket()\n",
        ],
    )
    def test_fires_on_direct_primitive(self, tmp_path, body):
        findings = project_lint(
            tmp_path,
            {HANDLER: "async def _handle_x(self, path):\n" + body},
            select=["RP201"],
        )
        assert rule_ids(findings) == ["RP201"]

    def test_fires_transitively_with_chain(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                HANDLER: (
                    "from repro.service.work import helper\n"
                    "async def _handle_x(self):\n"
                    "    helper()\n"
                ),
                "src/repro/service/work.py": (
                    "def helper():\n"
                    "    nested()\n"
                    "def nested():\n"
                    "    time.sleep(0.01)\n"
                ),
            },
            select=["RP201"],
        )
        assert rule_ids(findings) == ["RP201"]
        assert "helper -> nested -> time.sleep()" in findings[0].message

    def test_fires_on_direct_kernel_solve(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                HANDLER: (
                    "from repro.energy.ebar import solve_ebar\n"
                    "async def _handle_x(self, req):\n"
                    "    return solve_ebar(req)\n"
                ),
                "src/repro/energy/ebar.py": (
                    "def solve_ebar(req):\n    return req\n"
                ),
            },
            select=["RP201"],
        )
        assert rule_ids(findings) == ["RP201"]
        assert "solve_ebar" in findings[0].message

    @pytest.mark.parametrize(
        "source",
        [
            # Offloaded to the worker pool: runs off-loop by construction.
            "async def _handle_x(self, pool):\n"
            "    await pool.submit(blocking, 1)\n"
            "def blocking(x):\n"
            "    time.sleep(x)\n",
            # Memmapped load is O(1) on the loop.
            "async def _handle_x(self, path):\n"
            "    return np.load(path, mmap_mode='r')\n",
            # Blocking in a sync helper nobody calls from async code.
            "def offline_tool():\n"
            "    time.sleep(1)\n"
            "async def _handle_x(self):\n"
            "    return 1\n",
        ],
    )
    def test_silent_on_good(self, tmp_path, source):
        assert project_lint(tmp_path, {HANDLER: source}, select=["RP201"]) == []

    def test_silent_outside_service(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                "src/repro/simulation/runner.py": (
                    "async def _handle_x(self):\n    time.sleep(1)\n"
                )
            },
            select=["RP201"],
        )
        assert findings == []

    def test_suppressed(self, tmp_path):
        stats = LintStats()
        findings = project_lint(
            tmp_path,
            {
                HANDLER: (
                    "async def _handle_x(self):\n"
                    "    time.sleep(0.01)  # lint: ignore[RP201]\n"
                )
            },
            select=["RP201"],
            stats=stats,
        )
        assert findings == []
        assert stats.suppressed == 1


# --------------------------------------------------------------------- #
# RP202 — unawaited coroutines and fire-and-forget tasks                #
# --------------------------------------------------------------------- #


class TestRP202:
    def test_fires_on_unawaited_coroutine(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                HANDLER: (
                    "async def notify(event):\n"
                    "    pass\n"
                    "async def _handle_x(self):\n"
                    "    notify('done')\n"
                )
            },
            select=["RP202"],
        )
        assert rule_ids(findings) == ["RP202"]
        assert "never awaited" in findings[0].message

    def test_fires_on_dropped_task_handle(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                HANDLER: (
                    "async def _handle_x(self):\n"
                    "    asyncio.create_task(self.work())\n"
                )
            },
            select=["RP202"],
        )
        assert rule_ids(findings) == ["RP202"]
        assert "dropped" in findings[0].message

    @pytest.mark.parametrize(
        "source",
        [
            # Awaited: fine.
            "async def notify(event):\n"
            "    pass\n"
            "async def _handle_x(self):\n"
            "    await notify('done')\n",
            # Task handle kept: fine.
            "async def _handle_x(self):\n"
            "    task = asyncio.create_task(self.work())\n"
            "    await task\n",
            # Sync callee as a statement: not a coroutine.
            "def log(event):\n"
            "    pass\n"
            "async def _handle_x(self):\n"
            "    log('done')\n",
        ],
    )
    def test_silent_on_good(self, tmp_path, source):
        assert project_lint(tmp_path, {HANDLER: source}, select=["RP202"]) == []

    def test_silent_in_tests(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                "src/repro/service/tests/test_app.py": (
                    "async def _handle_x(self):\n"
                    "    asyncio.create_task(self.work())\n"
                )
            },
            select=["RP202"],
        )
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                HANDLER: (
                    "async def _handle_x(self):\n"
                    "    asyncio.create_task(self.work())  # lint: ignore[RP202]\n"
                )
            },
            select=["RP202"],
        )
        assert findings == []


# --------------------------------------------------------------------- #
# RP203 — determinism taint reachable from cached handlers              #
# --------------------------------------------------------------------- #


class TestRP203:
    @pytest.mark.parametrize(
        "line,taint",
        [
            ("    t = time.time()\n", "time.time"),
            ("    k = os.urandom(8)\n", "os.urandom"),
            ("    rng = as_rng(None)\n", "as_rng"),
            ("    rng = np.random.default_rng(None)\n", "default_rng"),
        ],
    )
    def test_fires_in_handler(self, tmp_path, line, taint):
        findings = project_lint(
            tmp_path,
            {HANDLER: "async def _handle_query(self, req):\n" + line},
            select=["RP203"],
        )
        assert rule_ids(findings) == ["RP203"]
        assert taint in findings[0].message

    def test_fires_transitively_with_witness_chain(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                HANDLER: (
                    "from repro.service.work import compute\n"
                    "async def _handle_query(self, req):\n"
                    "    return compute(req)\n"
                ),
                "src/repro/service/work.py": (
                    "def compute(req):\n"
                    "    return time.time()\n"
                ),
            },
            select=["RP203"],
        )
        assert rule_ids(findings) == ["RP203"]
        assert "via _handle_query -> compute" in findings[0].message

    def test_fires_through_pool_offload(self, tmp_path):
        # Offloaded work still feeds the cached payload: taint propagates.
        findings = project_lint(
            tmp_path,
            {
                HANDLER: (
                    "from repro.service.work import compute\n"
                    "async def _handle_query(self, req):\n"
                    "    return await self.pool.submit(compute, req)\n"
                ),
                "src/repro/service/work.py": (
                    "def compute(req):\n"
                    "    return time.time()\n"
                ),
            },
            select=["RP203"],
        )
        assert rule_ids(findings) == ["RP203"]

    @pytest.mark.parametrize(
        "source",
        [
            # Seeded generator: deterministic.
            "async def _handle_query(self, req):\n"
            "    rng = as_rng(req.seed)\n",
            # Taint in a function no handler reaches.
            "def offline_report():\n"
            "    return time.time()\n"
            "async def _handle_query(self, req):\n"
            "    return req\n",
        ],
    )
    def test_silent_on_good(self, tmp_path, source):
        assert project_lint(tmp_path, {HANDLER: source}, select=["RP203"]) == []

    def test_suppressed(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                HANDLER: (
                    "async def _handle_query(self):\n"
                    "    t = time.time()  # lint: ignore[RP203]\n"
                )
            },
            select=["RP203"],
        )
        assert findings == []


# --------------------------------------------------------------------- #
# RP204 — error responses must use schemas.error_payload                #
# --------------------------------------------------------------------- #


class TestRP204:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f():\n    return 404, {'error': 'not found'}\n",
            "def f():\n    return 503, dict(error='overloaded')\n",
            "def f(w, s):\n    w.write(render_response(500, {'error': 'boom'}))\n",
            "def f(w, exc):\n"
            "    w.write(render_response(exc.status, {'error': exc.reason}))\n",
        ],
    )
    def test_fires(self, snippet):
        assert "RP204" in rule_ids(lint(snippet, select=["RP204"]))

    @pytest.mark.parametrize(
        "snippet",
        [
            # The sanctioned constructor.
            "def f():\n    return 404, error_payload(404, 'not found', 'x')\n",
            "def f(w, s):\n"
            "    w.write(render_response(500, error_payload(500, 'boom', 'y')))\n",
            # 2xx payloads are not error bodies.
            "def f():\n    return 200, {'ok': True}\n",
            # A tuple of status codes, not (status, payload).
            "RETRYABLE = (429, 503)\n",
        ],
    )
    def test_silent_on_good(self, snippet):
        assert lint(snippet, select=["RP204"]) == []

    def test_exempt_in_schemas_and_outside_service(self):
        bad = "def f():\n    return 404, {'error': 'not found'}\n"
        assert lint(bad, path="src/repro/service/schemas.py", select=["RP204"]) == []
        assert lint(bad, path=LIB, select=["RP204"]) == []
        assert lint(bad, path=TEST, select=["RP204"]) == []

    def test_suppressed(self):
        src = "def f():\n    return 404, {'error': 'x'}  # lint: ignore[RP204]\n"
        assert lint(src, select=["RP204"]) == []

    def test_suppression_is_counted(self):
        src = "def f():\n    return 404, {'error': 'x'}  # lint: ignore[RP204]\n"
        stats = LintStats()
        lint_source(src, path=SERVICE, stats=stats)
        assert stats.suppressed == 1


# --------------------------------------------------------------------- #
# RP205 — resource hygiene                                              #
# --------------------------------------------------------------------- #


class TestRP205:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f():\n    s = socket.socket()\n    s.sendall(b'x')\n",
            "def f(p):\n    fh = open(p)\n    return fh.read()\n",
            "def f():\n    pool = ProcessPoolExecutor(2)\n    pool.map(ord, 'x')\n",
            "def f(fd):\n    fh = os.fdopen(fd)\n    return fh.readline()\n",
        ],
    )
    def test_fires(self, snippet):
        assert "RP205" in rule_ids(lint(snippet, select=["RP205"]))

    @pytest.mark.parametrize(
        "snippet",
        [
            # Context manager — directly or on the bound name.
            "def f(p):\n    with open(p) as fh:\n        return fh.read()\n",
            "def f():\n    s = socket.socket()\n    with s:\n        s.sendall(b'x')\n",
            # Visible close/shutdown on the bound name.
            "def f():\n    s = socket.socket()\n    s.close()\n",
            "def f():\n    pool = ThreadPoolExecutor()\n    pool.shutdown()\n",
            # Ownership transfer: passed on, returned, or stored on self.
            "def f(loop):\n    return loop.create_server(sock=socket.socket())\n",
            "def f():\n    s = socket.socket()\n    return s\n",
            "def f(self):\n    self.sock = socket.socket()\n",
            "def f(reg):\n    s = socket.socket()\n    reg.adopt(s)\n",
        ],
    )
    def test_silent_on_good(self, snippet):
        assert lint(snippet, select=["RP205"]) == []

    def test_silent_in_tests(self):
        src = "def f():\n    s = socket.socket()\n    s.sendall(b'x')\n"
        assert lint(src, path=TEST, select=["RP205"]) == []

    def test_suppressed(self):
        src = "def f():\n    s = socket.socket()  # lint: ignore[RP205]\n"
        assert lint(src, select=["RP205"]) == []

    def test_co_fires_with_rp201_on_service_async(self, tmp_path):
        # One bad line, two findings: blocking construction on the loop
        # (graph tier) and a leaked socket (per-file tier).
        findings = project_lint(
            tmp_path,
            {
                HANDLER: (
                    "async def _handle_x(self):\n"
                    "    s = socket.socket()\n"
                    "    s.sendall(b'x')\n"
                )
            },
            select=["RP201", "RP205"],
        )
        assert sorted(rule_ids(findings)) == ["RP201", "RP205"]


# --------------------------------------------------------------------- #
# RP206 — read-modify-write of shared state across an await             #
# --------------------------------------------------------------------- #

RACY_COUNTER = (
    "class Handler:\n"
    "    async def bump(self):\n"
    "        count = self._count\n"
    "        await self.flush()\n"
    "        self._count = count + 1\n"
)


class TestRP206:
    def test_fires_on_read_await_write(self, tmp_path):
        findings = project_lint(tmp_path, {HANDLER: RACY_COUNTER}, select=["RP206"])
        assert rule_ids(findings) == ["RP206"]
        message = findings[0].message
        assert "_count" in message and "await" in message

    def test_fires_on_augmented_assignment_spanning_await(self, tmp_path):
        source = (
            "class Handler:\n"
            "    async def serve(self):\n"
            "        if self._inflight > 10:\n"
            "            return None\n"
            "        await self.work()\n"
            "        self._inflight += 1\n"
        )
        findings = project_lint(tmp_path, {HANDLER: source}, select=["RP206"])
        assert rule_ids(findings) == ["RP206"]

    def test_silent_when_write_precedes_await(self, tmp_path):
        # Reserve-then-await is the safe shape (the fix RP206 suggests).
        source = (
            "class Handler:\n"
            "    async def serve(self):\n"
            "        self._inflight = self._inflight + 1\n"
            "        await self.work()\n"
            "        return self._inflight\n"
        )
        findings = project_lint(tmp_path, {HANDLER: source}, select=["RP206"])
        assert findings == []

    def test_silent_without_await_between(self, tmp_path):
        source = (
            "class Handler:\n"
            "    async def serve(self):\n"
            "        count = self._count\n"
            "        self._count = count + 1\n"
            "        await self.flush()\n"
        )
        findings = project_lint(tmp_path, {HANDLER: source}, select=["RP206"])
        assert findings == []

    def test_silent_outside_service(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {"src/repro/network/peer.py": RACY_COUNTER},
            select=["RP206"],
        )
        assert findings == []

    def test_silent_in_sync_methods(self, tmp_path):
        source = (
            "class Handler:\n"
            "    def bump(self):\n"
            "        count = self._count\n"
            "        self._count = count + 1\n"
        )
        findings = project_lint(tmp_path, {HANDLER: source}, select=["RP206"])
        assert findings == []

    def test_suppressed_on_write_line(self, tmp_path):
        source = RACY_COUNTER.replace(
            "self._count = count + 1",
            "self._count = count + 1  # lint: ignore[RP206]",
        )
        findings = project_lint(tmp_path, {HANDLER: source}, select=["RP206"])
        assert findings == []
