"""Decode-and-forward relay chain tests."""

import pytest

from repro.modulation import BPSKModem
from repro.phy.relay import RelayChainResult, simulate_relay_chain


class TestBasics:
    def test_direct_only(self, rng):
        result = simulate_relay_chain(
            50_000, BPSKModem(), [], [], direct_snr_db=8.0, fading="rayleigh", rng=rng
        )
        assert result.relay_bers == ()
        assert 0.0 < result.ber < 0.1

    def test_no_path_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_relay_chain(100, BPSKModem(), [], [], direct_snr_db=None, rng=rng)

    def test_mismatched_relay_lists_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_relay_chain(100, BPSKModem(), [10.0], [], rng=rng)

    def test_unknown_combiner_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_relay_chain(
                100, BPSKModem(), [10.0], [10.0], combining="magic", rng=rng
            )

    def test_result_math(self):
        r = RelayChainResult(n_bits=1000, n_bit_errors=25, relay_bers=(0.01,))
        assert r.ber == 0.025


class TestCooperationGain:
    def test_relay_improves_obstructed_direct(self, rng):
        """A strong relay path rescues a weak direct path — the Table 2
        mechanism."""
        direct_only = simulate_relay_chain(
            150_000, BPSKModem(), [], [], direct_snr_db=2.0, rng=rng
        )
        cooperative = simulate_relay_chain(
            150_000,
            BPSKModem(),
            [20.0],
            [20.0],
            direct_snr_db=2.0,
            rng=rng,
        )
        assert cooperative.ber < direct_only.ber / 2.0

    def test_more_relays_help(self, rng):
        one = simulate_relay_chain(
            150_000, BPSKModem(), [8.0], [8.0], direct_snr_db=0.0, rng=rng
        )
        three = simulate_relay_chain(
            150_000,
            BPSKModem(),
            [8.0, 8.0, 8.0],
            [8.0, 8.0, 8.0],
            direct_snr_db=0.0,
            rng=rng,
        )
        assert three.ber < one.ber

    def test_error_propagation_from_bad_relay(self, rng):
        """A relay that decodes garbage cannot be fully repaired downstream:
        end-to-end BER is floored near the source-relay BER."""
        result = simulate_relay_chain(
            100_000,
            BPSKModem(),
            [-2.0],  # terrible first hop
            [40.0],  # perfect second hop
            direct_snr_db=None,
            fading="rayleigh",
            rng=rng,
        )
        assert result.relay_bers[0] > 0.1
        assert result.ber == pytest.approx(result.relay_bers[0], rel=0.1)


class TestCombiningOptions:
    @pytest.mark.parametrize("combining", ["egc", "mrc", "sc"])
    def test_all_combiners_run(self, combining, rng):
        result = simulate_relay_chain(
            30_000,
            BPSKModem(),
            [12.0, 12.0],
            [12.0, 12.0],
            direct_snr_db=5.0,
            combining=combining,
            rng=rng,
        )
        assert 0.0 <= result.ber < 0.2

    def test_mrc_at_least_as_good_as_sc(self, rng):
        kwargs = dict(
            n_bits=200_000,
            modem=BPSKModem(),
            source_relay_snrs_db=[10.0, 10.0],
            relay_dest_snrs_db=[6.0, 6.0],
            direct_snr_db=3.0,
            fading="rayleigh",
        )
        mrc = simulate_relay_chain(combining="mrc", rng=1, **kwargs)
        sc = simulate_relay_chain(combining="sc", rng=1, **kwargs)
        assert mrc.ber <= sc.ber * 1.1


class TestFadingModes:
    def test_awgn_mode(self, rng):
        result = simulate_relay_chain(
            50_000,
            BPSKModem(),
            [12.0],
            [12.0],
            direct_snr_db=None,
            fading="awgn",
            rng=rng,
        )
        assert result.ber < 1e-3

    def test_rician_better_than_rayleigh(self, rng):
        kwargs = dict(
            n_bits=150_000,
            modem=BPSKModem(),
            source_relay_snrs_db=[10.0],
            relay_dest_snrs_db=[10.0],
            direct_snr_db=None,
        )
        rice = simulate_relay_chain(fading="rician", rician_k=8.0, rng=2, **kwargs)
        rayl = simulate_relay_chain(fading="rayleigh", rng=2, **kwargs)
        assert rice.ber < rayl.ber
