"""Link simulator tests: BER against closed forms, PER semantics."""

import numpy as np
import pytest

from repro.modulation import BPSKModem, GMSKModem, QAMModem, QPSKModem
from repro.modulation.theory import ber_bpsk_awgn, ber_bpsk_rayleigh
from repro.phy.link import LinkResult, simulate_link, simulate_packet_link, transmit_bits


class TestAgainstTheory:
    def test_bpsk_awgn_matches_qfunction(self, rng):
        snr_db = 6.0
        result = simulate_link(400_000, BPSKModem(), snr_db, fading="awgn", rng=rng)
        assert result.ber == pytest.approx(float(ber_bpsk_awgn(snr_db)), rel=0.1)

    def test_bpsk_rayleigh_matches_closed_form(self, rng):
        snr_db = 10.0
        result = simulate_link(400_000, BPSKModem(), snr_db, fading="rayleigh", rng=rng)
        assert result.ber == pytest.approx(float(ber_bpsk_rayleigh(snr_db)), rel=0.08)

    def test_qpsk_per_bit_matches_bpsk(self, rng):
        """QPSK at the same Es/N0 carries 2 bits: per-bit SNR halves, so
        compare QPSK at snr to BPSK at snr - 3 dB."""
        q = simulate_link(400_000, QPSKModem(), 10.0, fading="awgn", rng=rng)
        b = simulate_link(400_000, BPSKModem(), 7.0, fading="awgn", rng=rng)
        assert q.ber == pytest.approx(b.ber, rel=0.15)

    def test_gmsk_efficiency_penalty(self, rng):
        """GMSK's 0.89 SNR efficiency ~ 0.5 dB: its BER sits between BPSK
        at snr and BPSK at snr - 1 dB."""
        snr = 7.0
        gmsk = simulate_link(600_000, GMSKModem(), snr, fading="awgn", rng=rng)
        upper = float(ber_bpsk_awgn(snr - 1.0))
        lower = float(ber_bpsk_awgn(snr))
        assert lower < gmsk.ber < upper

    def test_alamouti_2x1_diversity_two(self, rng):
        """Alamouti 2x1 with total-power normalization equals MRC with two
        half-power branches: closed form from the diversity average."""
        from repro.modulation.theory import rayleigh_diversity_avg_qfunc

        snr_db = 12.0
        snr = 10 ** (snr_db / 10)
        expected = float(rayleigh_diversity_avg_qfunc(snr / 2.0, 2))
        result = simulate_link(600_000, BPSKModem(), snr_db, mt=2, mr=1, rng=rng)
        assert result.ber == pytest.approx(expected, rel=0.15)

    def test_simo_1x2_mrc(self, rng):
        from repro.modulation.theory import rayleigh_diversity_avg_qfunc

        snr_db = 8.0
        snr = 10 ** (snr_db / 10)
        expected = float(rayleigh_diversity_avg_qfunc(snr, 2))
        result = simulate_link(600_000, BPSKModem(), snr_db, mt=1, mr=2, rng=rng)
        assert result.ber == pytest.approx(expected, rel=0.15)


class TestTransmitBits:
    def test_length_preserved(self, rng):
        bits = rng.integers(0, 2, 1013, dtype=np.int8)  # awkward length
        out = transmit_bits(bits, BPSKModem(), 50.0, mt=3, mr=2, rng=rng)
        assert out.shape == bits.shape

    def test_high_snr_error_free(self, rng):
        bits = rng.integers(0, 2, 5000, dtype=np.int8)
        out = transmit_bits(bits, QAMModem(4), 60.0, fading="awgn", rng=rng)
        np.testing.assert_array_equal(out, bits)

    def test_deterministic_with_seed(self):
        bits = np.tile([0, 1], 500).astype(np.int8)
        a = transmit_bits(bits, BPSKModem(), 5.0, rng=77)
        b = transmit_bits(bits, BPSKModem(), 5.0, rng=77)
        np.testing.assert_array_equal(a, b)

    def test_rician_interpolates(self, rng):
        """Rician K=10 BER sits between AWGN and Rayleigh."""
        snr = 10.0
        awgn = simulate_link(200_000, BPSKModem(), snr, fading="awgn", rng=rng).ber
        rice = simulate_link(
            200_000, BPSKModem(), snr, fading="rician", rician_k=10.0, rng=rng
        ).ber
        rayl = simulate_link(200_000, BPSKModem(), snr, fading="rayleigh", rng=rng).ber
        assert awgn < rice < rayl

    def test_unknown_fading_rejected(self, rng):
        with pytest.raises(ValueError):
            transmit_bits(np.zeros(8, np.int8), BPSKModem(), 5.0, fading="nakagami")

    def test_bad_blocks_per_fade_rejected(self, rng):
        with pytest.raises(ValueError):
            transmit_bits(np.zeros(8, np.int8), BPSKModem(), 5.0, blocks_per_fade=0)


class TestPacketLink:
    def test_per_at_least_ber_implied(self, rng):
        result = simulate_packet_link(
            300, 512, BPSKModem(), 12.0, quasi_static=True, rng=rng
        )
        assert 0.0 <= result.per <= 1.0
        # a packet errs iff >= 1 bit errs, so PER >= BER
        assert result.per >= result.ber

    def test_quasi_static_worse_than_fast_fading(self, rng):
        """With per-packet fades, whole packets die together: at moderate
        SNR the PER is far higher than with per-block interleaved fading."""
        slow = simulate_packet_link(
            400, 1024, BPSKModem(), 16.0, quasi_static=True, rng=rng
        )
        fast = simulate_packet_link(
            400, 1024, BPSKModem(), 16.0, quasi_static=False, rng=rng
        )
        # fast fading sprinkles errors into nearly every packet, while
        # quasi-static fading leaves the packets on good fades clean
        assert fast.per > slow.per
        assert slow.per < 0.9

    def test_perfect_at_high_snr(self, rng):
        result = simulate_packet_link(50, 256, BPSKModem(), 60.0, fading="awgn", rng=rng)
        assert result.per == 0.0
        assert result.n_packets == 50

    def test_result_properties(self):
        r = LinkResult(n_bits=100, n_bit_errors=5, n_packets=10, n_packet_errors=2)
        assert r.ber == 0.05
        assert r.per == 0.2
        empty = LinkResult(n_bits=0, n_bit_errors=0)
        assert empty.ber == 0.0 and empty.per == 0.0

    def test_rejects_bad_counts(self, rng):
        with pytest.raises(ValueError):
            simulate_packet_link(0, 10, BPSKModem(), 5.0, rng=rng)
        with pytest.raises(ValueError):
            simulate_link(0, BPSKModem(), 5.0, rng=rng)
