"""Coalescing/pooling equivalence: served responses are bit-identical to
direct library calls, even when concurrent requests are merged into batches.

These tests run the full stack — real TCP server on a background thread,
stdlib client, request-coalescing scheduler, process worker pool — and
compare every float against the value the same request would produce via a
direct in-process library call.  Equality is exact (``==``), not approx:
the batch kernels are elementwise bit-identical to the scalar paths and
JSON ``repr`` round-trips floats exactly.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.beamforming.pairwise import NullSteeringPair
from repro.energy.ebar import solve_ebar
from repro.energy.table import EbarTable
from repro.service import work
from repro.service.config import ServiceConfig
from repro.service.testing import ThreadedServer

#: Generous window so every barrier-released volley lands in one batch.
COALESCE_MS = 60.0


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(
        port=0, workers=1, coalesce_ms=COALESCE_MS, queue_limit=8,
        request_log=False, seed=1234,
    )
    with ThreadedServer(config) as srv:
        yield srv


def _volley(server, calls):
    """Fire ``calls`` concurrently, released together by a barrier."""
    barrier = threading.Barrier(len(calls))

    def fire(fn):
        client = server.client()
        barrier.wait()
        return fn(client)

    with ThreadPoolExecutor(max_workers=len(calls)) as pool:
        return list(pool.map(fire, calls))


def _batch_delta(server, before):
    after = server.client().metrics_snapshot()["coalesce"]
    batches = after["batches"] - before["batches"]
    requests = after["requests"] - before["requests"]
    return batches, requests


class TestCoalescedBitIdentity:
    def test_ebar_concurrent_lookups_match_table_exactly(self, server):
        table = EbarTable(convention="paper")
        points = [(p, b) for p in table.p_values[:4] for b in (1, 2)]
        before = server.client().metrics_snapshot()["coalesce"]
        responses = _volley(
            server,
            [lambda c, p=p, b=b: c.ebar(p, b, 2, 2) for (p, b) in points],
        )
        for (p, b), payload in zip(points, responses):
            assert payload["e_bar"] == table.lookup(p, b, 2, 2), (p, b)
        batches, requests = _batch_delta(server, before)
        assert requests == len(points)
        assert batches < requests, "concurrent lookups were never coalesced"

    def test_overlay_concurrent_scalars_match_direct_analysis(self, server):
        d1_values = [20.0, 30.0, 40.0, 50.0, 60.0, 70.0]
        before = server.client().metrics_snapshot()["coalesce"]
        responses = _volley(
            server,
            [
                lambda c, d1=d1: c.overlay_feasible(d1, 2, 10e3)
                for d1 in d1_values
            ],
        )
        system = work._overlay("diversity_only")
        for d1, payload in zip(d1_values, responses):
            expected = work.overlay_row_dict(system.distance_analysis(d1, 2, 10e3))
            assert payload["rows"] == [expected], d1
        batches, requests = _batch_delta(server, before)
        assert requests == len(d1_values)
        assert batches < requests

    def test_underlay_concurrent_scalars_match_direct_energy(self, server):
        distances = [40.0, 60.0, 80.0, 100.0, 120.0]
        responses = _volley(
            server,
            [
                lambda c, dist=dist: c.underlay_energy(1e-3, 2, 2, 5.0, dist, 10e3)
                for dist in distances
            ],
        )
        system = work._underlay("paper")
        for dist, payload in zip(distances, responses):
            direct = system.pa_energy(1e-3, 2, 2, 5.0, dist, 10e3)
            row = payload["rows"][0]
            assert row["total_pa"] == direct.total_pa, dist
            assert row["peak_pa"] == direct.peak_pa, dist
            assert row["b"] == direct.b, dist

    def test_interweave_concurrent_points_match_pair_amplitude(self, server):
        pair = NullSteeringPair((0.0, 0.0), (15.0, 0.0), 30.0)
        delta = pair.delay_for_null((100.0, 0.0))
        points = [(40.0, 40.0), (55.0, 10.0), (-30.0, 25.0), (10.0, 90.0)]
        responses = _volley(
            server,
            [
                lambda c, pt=pt: c.interweave_pattern(
                    (0.0, 0.0), (15.0, 0.0), 30.0, pt, delta=delta
                )
                for pt in points
            ],
        )
        for pt, payload in zip(points, responses):
            assert payload["amplitudes"][0] == pair.amplitude_at(pt, delta), pt


class TestPooledBitIdentity:
    def test_overlay_sweep_matches_per_point_analysis(self, server):
        d1_values = [25.0, 45.0, 65.0]
        payload = server.client().overlay_feasible(d1_values, 3, 10e3)
        system = work._overlay("diversity_only")
        expected = [
            work.overlay_row_dict(r)
            for r in system.distance_analyses(d1_values, 3, 10e3)
        ]
        assert payload["rows"] == expected
        # and the vectorized kernel itself equals the scalar path per point
        for d1, row in zip(d1_values, expected):
            assert row == work.overlay_row_dict(system.distance_analysis(d1, 3, 10e3))

    def test_underlay_sweep_matches_scalar_requests(self, server):
        distances = [50.0, 90.0]
        sweep = server.client().underlay_energy(
            1e-3, 2, 1, 5.0, distances, 10e3
        )
        scalars = [
            server.client().underlay_energy(1e-3, 2, 1, 5.0, dist, 10e3)
            for dist in distances
        ]
        assert sweep["rows"] == [s["rows"][0] for s in scalars]

    def test_exact_ebar_matches_direct_solve(self, server):
        payload = server.client().ebar(0.0007, 5, 2, 3, solver="exact")
        assert payload["e_bar"] == solve_ebar(0.0007, 5, 2, 3)

    def test_seeded_interweave_environment_identical_via_pool_and_inline(self, server):
        env = {"n_scatterers": 4, "seed": 99}
        args = ((0.0, 0.0), (15.0, 0.0), 30.0)
        point = (40.0, 40.0)
        served = server.client().interweave_pattern(
            *args, point, pr=(100.0, 0.0), environment=env
        )
        # sweep path (worker process) with the same single point
        pooled = server.client().interweave_pattern(
            *args, [point], pr=(100.0, 0.0), environment=env
        )
        assert served["amplitudes"] == pooled["amplitudes"]
        assert served["seed_used"] == 99
