"""Energy detector tests: exact tails, CFAR design, sample complexity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensing.detector import EnergyDetector


class TestCfarDesign:
    @given(
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=1e-4, max_value=0.5),
    )
    @settings(max_examples=40)
    def test_threshold_hits_target_pfa(self, n, pfa):
        det = EnergyDetector(n, pfa)
        assert det.false_alarm_probability() == pytest.approx(pfa, rel=1e-9)

    def test_threshold_grows_with_window(self):
        assert EnergyDetector(1000, 0.05).threshold > EnergyDetector(10, 0.05).threshold

    def test_stricter_pfa_raises_threshold(self):
        assert (
            EnergyDetector(100, 0.01).threshold > EnergyDetector(100, 0.1).threshold
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            EnergyDetector(0, 0.05)
        with pytest.raises(ValueError):
            EnergyDetector(10, 1.5)


class TestDetection:
    def test_pd_exceeds_pfa(self):
        det = EnergyDetector(500, 0.05)
        assert det.detection_probability(0.1) > det.false_alarm_probability()

    def test_pd_monotone_in_snr(self):
        det = EnergyDetector(200, 0.05)
        pds = [det.detection_probability(g) for g in (0.01, 0.05, 0.2, 1.0)]
        assert all(b > a for a, b in zip(pds, pds[1:]))

    def test_pd_monotone_in_window(self):
        snr = 0.1
        pds = [EnergyDetector(n, 0.05).detection_probability(snr) for n in (50, 500, 5000)]
        assert all(b > a for a, b in zip(pds, pds[1:]))

    def test_zero_snr_gives_pfa(self):
        det = EnergyDetector(100, 0.07)
        assert det.detection_probability(0.0) == pytest.approx(0.07, rel=1e-9)

    def test_rejects_negative_snr(self):
        with pytest.raises(ValueError):
            EnergyDetector(10).detection_probability(-0.1)


class TestSampleComplexity:
    def test_meets_spec_minimally(self):
        n = EnergyDetector.samples_required(0.05, target_pfa=0.05, target_pd=0.9)
        assert EnergyDetector(n, 0.05).detection_probability(0.05) >= 0.9
        if n > 1:
            assert EnergyDetector(n - 1, 0.05).detection_probability(0.05) < 0.9

    def test_low_snr_quadratic_scaling(self):
        """Halving the SNR roughly quadruples the required window."""
        n1 = EnergyDetector.samples_required(0.02, target_pd=0.9)
        n2 = EnergyDetector.samples_required(0.01, target_pd=0.9)
        assert n2 / n1 == pytest.approx(4.0, rel=0.2)

    def test_impossible_spec_raises(self):
        with pytest.raises(ValueError):
            EnergyDetector.samples_required(1e-9, max_samples=1000)
        with pytest.raises(ValueError):
            EnergyDetector.samples_required(0.1, target_pfa=0.5, target_pd=0.4)


class TestOperation:
    def test_decide_on_synthetic_samples(self, rng):
        det = EnergyDetector(2000, 0.01)
        noise = (rng.standard_normal(2000) + 1j * rng.standard_normal(2000)) / np.sqrt(2)
        assert not det.decide(noise)
        strong = noise + 0.8  # DC "primary" well above the noise floor
        assert det.decide(strong)

    def test_statistic_normalization(self):
        det = EnergyDetector(4)
        samples = np.array([1.0, 1.0, 1.0, 1.0], dtype=complex)
        assert det.statistic(samples, noise_variance=2.0) == pytest.approx(2.0)

    def test_monte_carlo_matches_closed_form(self, rng):
        det = EnergyDetector(300, 0.05)
        snr = 0.1
        mc_pd = det.simulate(snr, n_trials=200_000, primary_present=True, rng=rng)
        assert mc_pd == pytest.approx(det.detection_probability(snr), abs=0.01)
        mc_pfa = det.simulate(0.0, n_trials=200_000, primary_present=False, rng=rng)
        assert mc_pfa == pytest.approx(0.05, abs=0.01)


class TestRocCurve:
    def test_monotone_tradeoff(self):
        det = EnergyDetector(300, 0.05)
        pfa, pd = det.roc_curve(0.1)
        assert np.all(np.diff(pfa) > 0)
        assert np.all(np.diff(pd) >= -1e-12)  # pd grows with pfa
        assert np.all(pd >= pfa - 1e-12)  # above the chance diagonal

    def test_better_snr_dominates(self):
        det = EnergyDetector(300, 0.05)
        _, pd_low = det.roc_curve(0.05)
        _, pd_high = det.roc_curve(0.3)
        assert np.all(pd_high >= pd_low - 1e-12)
        assert pd_high.mean() > pd_low.mean()

    def test_rejects_bad_args(self):
        det = EnergyDetector(10)
        with pytest.raises(ValueError):
            det.roc_curve(-1.0)
        with pytest.raises(ValueError):
            det.roc_curve(0.1, n_points=0)
