"""RetryPolicy backoff schedules, CircuitBreaker states, and client retries.

Nothing here sleeps or reads a wall clock: policies get seeded RNGs,
breakers get a hand-cranked fake clock, and the client gets a recording
sleeper — so every schedule is asserted exactly.
"""

import pytest

from repro.service.client import (
    CircuitOpenError,
    ServiceClient,
    ServiceClientError,
)
from repro.service.config import ServiceConfig
from repro.service.retry import CircuitBreaker, RetryPolicy
from repro.service.testing import ThreadedServer
from repro.utils.rng import as_rng


class TestRetryPolicy:
    def test_seeded_schedule_is_reproducible(self):
        first = [RetryPolicy(rng=42).backoff_s(k) for k in range(4)]
        second = [RetryPolicy(rng=42).backoff_s(k) for k in range(4)]
        assert first == second

    def test_schedule_matches_full_jitter_formula(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=5.0, rng=7
        )
        rng = as_rng(7)
        for attempt in range(8):
            cap = min(5.0, 0.1 * 2.0**attempt)
            assert policy.backoff_s(attempt) == float(rng.uniform(0.0, cap))

    def test_delay_is_capped(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=10.0, max_delay_s=2.0, rng=3
        )
        for attempt in range(10):
            assert 0.0 <= policy.backoff_s(attempt) <= 2.0

    def test_retry_after_overrides_the_jitter(self):
        policy = RetryPolicy(rng=1)
        assert policy.backoff_s(0, retry_after_s=7.5) == 7.5
        assert policy.backoff_s(3, retry_after_s=0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(rng=1).backoff_s(-1)
        with pytest.raises(ValueError):
            RetryPolicy(rng=1).backoff_s(0, retry_after_s=-2.0)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_at_threshold_and_refuses(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.consecutive_failures == 2

    def test_half_open_admits_one_probe_then_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=30.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 31.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # a second concurrent call is refused
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=5, reset_timeout_s=10.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure()
        clock.now += 11.0
        assert breaker.allow()
        breaker.record_failure()  # the probe died: open again, no threshold wait
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"


class _ScriptedClient(ServiceClient):
    """A client whose single-request transport is a scripted outcome list."""

    def __init__(self, outcomes, **kwargs):
        super().__init__("127.0.0.1", 8123, **kwargs)
        self.outcomes = list(outcomes)
        self.calls = 0

    def _request_once(self, method, path, body):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestClientRetryLoop:
    def test_retries_transport_failures_until_success(self):
        sleeps = []
        client = _ScriptedClient(
            [
                ServiceClientError(599, "refused"),
                ServiceClientError(599, "refused"),
                {"status": "ok"},
            ],
            retry=RetryPolicy(max_attempts=4, rng=5),
            sleep=sleeps.append,
        )
        assert client.request("GET", "/healthz") == {"status": "ok"}
        assert client.calls == 3
        assert len(sleeps) == 2
        assert all(delay >= 0.0 for delay in sleeps)

    def test_sleeps_exactly_the_policy_schedule(self):
        sleeps = []
        client = _ScriptedClient(
            [
                ServiceClientError(503, "unavailable"),
                ServiceClientError(503, "unavailable"),
                {"ok": True},
            ],
            retry=RetryPolicy(max_attempts=3, rng=11),
            sleep=sleeps.append,
        )
        client.request("GET", "/metrics")
        twin = RetryPolicy(max_attempts=3, rng=11)
        assert sleeps == [twin.backoff_s(0), twin.backoff_s(1)]

    def test_retry_after_hint_drives_the_sleep(self):
        sleeps = []
        client = _ScriptedClient(
            [ServiceClientError(429, "busy", retry_after_s=4.0), {"ok": True}],
            retry=RetryPolicy(max_attempts=2, rng=1),
            sleep=sleeps.append,
        )
        client.request("POST", "/v1/ebar", {"p": 0.001})
        assert sleeps == [4.0]

    def test_exhausted_attempts_reraise(self):
        client = _ScriptedClient(
            [ServiceClientError(599, "down")] * 2,
            retry=RetryPolicy(max_attempts=2, rng=1),
            sleep=lambda _s: None,
        )
        with pytest.raises(ServiceClientError):
            client.request("GET", "/healthz")
        assert client.calls == 2

    def test_non_retryable_statuses_raise_immediately(self):
        client = _ScriptedClient(
            [ServiceClientError(400, "bad request"), {"never": "reached"}],
            retry=RetryPolicy(max_attempts=5, rng=1),
            sleep=lambda _s: None,
        )
        with pytest.raises(ServiceClientError) as err:
            client.request("POST", "/v1/ebar", {})
        assert err.value.status == 400
        assert client.calls == 1

    def test_no_policy_means_no_retries(self):
        client = _ScriptedClient([ServiceClientError(503, "unavailable")])
        with pytest.raises(ServiceClientError):
            client.request("GET", "/healthz")
        assert client.calls == 1

    def test_breaker_opens_after_transport_failures_and_refuses_locally(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        client = _ScriptedClient(
            [ServiceClientError(599, "down")] * 2, breaker=breaker
        )
        for _ in range(2):
            with pytest.raises(ServiceClientError):
                client.request("GET", "/healthz")
        with pytest.raises(CircuitOpenError):
            client.request("GET", "/healthz")
        assert client.calls == 2  # the third call never touched the wire

    def test_http_errors_do_not_trip_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        client = _ScriptedClient(
            [ServiceClientError(404, "not found")] * 4, breaker=breaker
        )
        for _ in range(4):
            with pytest.raises(ServiceClientError):
                client.request("GET", "/nope")
        assert breaker.state == "closed"
        assert client.calls == 4


class TestBackpressureEndToEnd:
    def test_429_carries_retry_after_and_clears_when_the_pool_drains(self):
        config = ServiceConfig(
            port=0,
            workers=0,
            coalesce_ms=0.0,
            request_log=False,
            queue_limit=2,
            retry_after_s=1.0,
        )
        with ThreadedServer(config) as server:
            # Saturate the pool accounting so the next sweep is rejected.
            server.service.pool._inflight = config.queue_limit
            with pytest.raises(ServiceClientError) as err:
                server.client().underlay_energy(
                    1e-3, 2, 2, 5.0, [40.0, 60.0], 10e3
                )
            assert err.value.status == 429
            assert err.value.retry_after_s == 1.0
            assert err.value.payload["status"] == 429

            server.service.pool._inflight = 0
            payload = server.client().underlay_energy(
                1e-3, 2, 2, 5.0, [40.0, 60.0], 10e3
            )
            assert payload["count"] == 2
