"""Tier-1 gate: the repository's own tree must be lint-clean.

``python -m repro.lintkit src tests`` exiting 0 is the contract this test
pins.  If a rule fires here, either fix the flagged code or — when the
flagged line is deliberately exempt (see ``docs/static_analysis.md``) — add
a ``# lint: ignore[RP1xx]`` suppression with a comment explaining why.
"""

from pathlib import Path

from repro.lintkit import LintStats, lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_src_tree_is_clean():
    findings = lint_paths([str(REPO_ROOT / "src")])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_tests_tree_is_clean():
    findings = lint_paths([str(REPO_ROOT / "tests")])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_full_run_matches_cli_contract():
    """The exact invocation CI runs: both trees, all rules, zero findings."""
    stats = LintStats()
    findings = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")], stats=stats
    )
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)
    # Sanity: the walk really visited the tree (not an empty-glob pass).
    assert stats.files > 100
