"""Tier-1 gate: the repository's own tree must be lint-clean.

``python -m repro.lintkit src tests benchmarks scripts`` exiting 0 is the
contract this test pins.  If a rule fires here, either fix the flagged
code or — when the flagged line is deliberately exempt (see
``docs/static_analysis.md``) — add a ``# lint: ignore[RPxxx]`` suppression
with a comment explaining why.
"""

from pathlib import Path

from repro.lintkit import LintStats, analyze_paths, lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent

ALL_TREES = ["src", "tests", "benchmarks", "scripts"]


def test_src_tree_is_clean():
    findings = lint_paths([str(REPO_ROOT / "src")])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_tests_tree_is_clean():
    findings = lint_paths([str(REPO_ROOT / "tests")])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_benchmarks_tree_is_clean():
    findings = lint_paths([str(REPO_ROOT / "benchmarks")])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_scripts_tree_is_clean():
    findings = lint_paths([str(REPO_ROOT / "scripts")])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_full_run_matches_cli_contract():
    """The exact invocation CI runs: all four trees, both analysis tiers
    (per-file RP1xx/RP204/RP205 plus the project-graph RP2xx rules),
    zero findings."""
    stats = LintStats()
    findings = analyze_paths(
        [str(REPO_ROOT / tree) for tree in ALL_TREES],
        stats=stats,
        jobs=1,
        incremental=False,
    )
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)
    # Sanity: the walk really visited the tree (not an empty-glob pass),
    # and the deliberate exemptions are the only thing keeping it quiet.
    assert stats.files > 100
    assert stats.suppressed > 0
