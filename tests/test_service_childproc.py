"""Fork hygiene: children drop inherited sockets and die with the parent."""

import multiprocessing
import os
import socket
import time

import pytest

from repro.service.childproc import harden_child

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="socket inheritance requires the fork start method",
)


def _probe_fds(conn, sock_fd):
    harden_child()
    sock_alive = True
    try:
        os.fstat(sock_fd)
    except OSError:
        sock_alive = False
    conn.send(sock_alive)
    conn.close()


def _middle(conn):
    inner = multiprocessing.get_context().Process(
        target=_inner, args=(conn,)
    )
    inner.start()
    conn.send(inner.pid)
    os._exit(0)  # die abruptly, skipping all cleanup — inner is orphaned


def _inner(conn):
    harden_child()
    time.sleep(60.0)


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


class TestHardenChild:
    def test_child_closes_inherited_socket_but_keeps_the_pipe(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
            child = multiprocessing.get_context().Process(
                target=_probe_fds, args=(child_conn, listener.fileno())
            )
            child.start()
            child_conn.close()
            assert parent_conn.poll(10.0)
            assert parent_conn.recv() is False  # socket fd closed in child
            child.join(timeout=10.0)
            assert child.exitcode == 0
            # The parent's own copy is untouched.
            assert listener.getsockname()[1] > 0
        finally:
            listener.close()

    def test_child_dies_when_its_parent_is_killed(self):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        middle = multiprocessing.get_context().Process(
            target=_middle, args=(child_conn,)
        )
        middle.start()
        child_conn.close()
        assert parent_conn.poll(10.0)
        inner_pid = parent_conn.recv()
        middle.join(timeout=10.0)
        # The orphaned grandchild must be reaped by PR_SET_PDEATHSIG,
        # not linger for its full 60 s sleep.
        deadline = time.monotonic() + 10.0
        while _alive(inner_pid):
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"orphaned child {inner_pid} outlived its parent"
                )
            time.sleep(0.05)
