"""Cross-module integration tests.

These tie the layers together: the analytic energy model against the
Monte-Carlo link simulator, the paradigm layer against the network
substrate, and the CLI against the registry.
"""

import numpy as np
import pytest

from repro.energy.ebar import solve_ebar
from repro.modulation import QAMModem, modem_for_bits_per_symbol
from repro.phy.link import simulate_link


class TestModelVsSimulation:
    """The deepest consistency check in the repository: the required-SNR
    numbers the energy model is built on must agree with what the actual
    modulation + STBC + fading chain measures."""

    @pytest.mark.parametrize("mt,mr", [(1, 1), (2, 1), (2, 2)])
    def test_ebar_predicts_simulated_ber(self, mt, mr, rng):
        p_target = 0.01
        b = 2
        ebar = solve_ebar(p_target, b, mt, mr)
        # Convert e_bar to the simulator's per-symbol SNR.  The simulator
        # normalizes *total* symbol energy to 1 (each antenna radiates
        # 1/mt), so its post-combining per-bit SNR is ||H||^2 snr/(mt b);
        # the paper's gamma_b = ||H||^2 ebar/(N0 mt) carries the same 1/mt.
        # Equating them gives snr = b * ebar / N0 — the mt split is
        # supplied by the simulator's own power normalization.
        from repro.energy.ebar import DEFAULT_N0

        snr_db = 10 * np.log10(b * ebar / DEFAULT_N0)
        result = simulate_link(
            400_000, modem_for_bits_per_symbol(b), snr_db, mt=mt, mr=mr, rng=rng
        )
        assert result.ber == pytest.approx(p_target, rel=0.2)

    def test_qam16_rayleigh_vs_formula(self, rng):
        """Formula (5)'s average for 16-QAM vs the simulated chain."""
        from repro.energy.ebar import average_ber, DEFAULT_N0

        b = 4
        ebar = 3e-19
        predicted = float(average_ber(ebar, b, 1, 1))
        snr_db = 10 * np.log10(b * ebar / DEFAULT_N0)
        result = simulate_link(500_000, QAMModem(b), snr_db, rng=rng)
        # the formula is the nearest-neighbour approximation; allow a
        # modest envelope
        assert result.ber == pytest.approx(predicted, rel=0.25)


class TestParadigmsOverNetwork:
    def test_underlay_route_energy_accounting(self):
        """Route an underlay transfer over a CoMIMONet and check the
        bookkeeping ties out hop by hop."""
        from repro.core.underlay import UnderlaySystem
        from repro.energy.model import EnergyModel
        from repro.network import CoMIMONet, SUNode

        rng = np.random.default_rng(7)
        nodes = []
        nid = 0
        for cx in (0.0, 120.0, 240.0):
            for _ in range(2):
                off = rng.uniform(-0.5, 0.5, 2)
                nodes.append(SUNode(nid, (cx + off[0], off[1]), battery_j=100.0))
                nid += 1
        net = CoMIMONet(nodes, cluster_diameter=2.0, longhaul_range=130.0)
        route = net.route(0, net.n_clusters - 1)
        assert len(route) == 2

        model = EnergyModel()
        system = UnderlaySystem(model)
        total = 0.0
        for link in route:
            res = system.pa_energy(0.001, link.mt, link.mr, 2.0, link.length_m, 10e3)
            assert res.hop.pa_total == pytest.approx(res.total_pa)
            assert system.meets_noise_floor(
                0.001, link.mt, link.mr, 2.0, link.length_m, 10e3, required_margin=5.0
            )
            total += res.total_pa
        assert total > 0.0

    def test_overlay_relay_beats_direct_on_testbed(self):
        """OverlaySystem's analytic claim holds on the simulated testbed:
        relayed BER beats obstructed-direct BER."""
        from repro.testbed import table2_testbed

        tb = table2_testbed()
        direct = tb.run_relay_experiment("tx", [], "rx", n_bits=40_000, rng=11)
        coop = tb.run_relay_experiment("tx", ["relay"], "rx", n_bits=40_000, rng=12)
        assert coop.ber < direct.ber


class TestCli:
    def test_list_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table4" in out

    def test_run_command_fast(self, capsys):
        from repro.experiments.cli import main

        assert main(["run", "ebar", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "shape checks passed" in out

    def test_run_no_check(self, capsys):
        from repro.experiments.cli import main

        assert main(["run", "table1", "--fast", "--no-check", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "shape checks passed" not in out


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
