"""Log-normal shadowing tests."""

import numpy as np
import pytest

from repro.channel.shadowing import LogNormalShadowing


class TestSampling:
    def test_db_statistics(self, rng):
        model = LogNormalShadowing(sigma_db=6.0)
        samples = model.sample_db(100_000, rng=rng)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.1)
        assert np.std(samples) == pytest.approx(6.0, rel=0.02)

    def test_linear_is_exp_of_db(self, rng):
        model = LogNormalShadowing(sigma_db=4.0)
        gen1 = np.random.default_rng(9)
        gen2 = np.random.default_rng(9)
        db = model.sample_db(100, rng=gen1)
        lin = model.sample_linear(100, rng=gen2)
        np.testing.assert_allclose(lin, 10 ** (db / 10))

    def test_zero_sigma_degenerate(self, rng):
        model = LogNormalShadowing(sigma_db=0.0)
        np.testing.assert_array_equal(model.sample_db(10, rng=rng), 0.0)
        np.testing.assert_array_equal(model.sample_linear(10, rng=rng), 1.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            LogNormalShadowing(sigma_db=-1.0)


class TestMean:
    def test_mean_linear_formula(self, rng):
        model = LogNormalShadowing(sigma_db=8.0)
        samples = model.sample_linear(400_000, rng=rng)
        assert np.mean(samples) == pytest.approx(model.mean_linear(), rel=0.05)

    def test_mean_exceeds_median(self):
        assert LogNormalShadowing(sigma_db=6.0).mean_linear() > 1.0

    def test_zero_sigma_mean_is_one(self):
        assert LogNormalShadowing(sigma_db=0.0).mean_linear() == 1.0
