"""Strict-typing gate: ``mypy --strict`` on the typed core packages.

The container used for day-to-day test runs does not ship mypy, so this
test skips gracefully when the tool is absent; CI installs mypy and runs
the gate for real (see ``.github/workflows/ci.yml`` and ``scripts/lint.sh``).
The package list here must stay in sync with ``[tool.mypy]`` in
``pyproject.toml``.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Packages held to ``mypy --strict`` (the typed core).
STRICT_PACKAGES = [
    "repro.utils",
    "repro.energy",
    "repro.lintkit",
    "repro.service",
    "repro.network",
    "repro.mac",
    "repro.simulation",
    "repro.scenario",
    "repro.loadgen",
]

mypy_available = shutil.which("mypy") is not None or (
    subprocess.run(
        [sys.executable, "-c", "import mypy"], capture_output=True
    ).returncode
    == 0
)


@pytest.mark.skipif(not mypy_available, reason="mypy not installed (CI runs this)")
def test_strict_core_packages_typecheck():
    cmd = [sys.executable, "-m", "mypy", "--strict"]
    for package in STRICT_PACKAGES:
        cmd += ["-p", package]
    proc = subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"MYPYPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
