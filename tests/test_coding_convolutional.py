"""Convolutional code + Viterbi tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.convolutional import ConvolutionalCode

bit_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=120).map(
    lambda l: np.array(l, dtype=np.int8)
)


@pytest.fixture(scope="module")
def k7():
    return ConvolutionalCode()  # (171, 133) octal, K = 7


class TestConstruction:
    def test_default_is_k7_rate_half(self, k7):
        assert k7.rate == 0.5
        assert k7.n_states == 64
        assert k7.n_out == 2

    def test_known_free_distance(self, k7):
        assert k7.free_distance() == 10

    def test_k3_code_free_distance(self):
        # (7, 5) octal K=3: the textbook example with d_free = 5
        code = ConvolutionalCode(generators=(0o7, 0o5), constraint_length=3)
        assert code.free_distance() == 5

    def test_rejects_bad_generators(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(generators=(), constraint_length=3)
        with pytest.raises(ValueError):
            ConvolutionalCode(generators=(0o777,), constraint_length=3)
        with pytest.raises(ValueError):
            ConvolutionalCode(constraint_length=1)


class TestEncoding:
    def test_output_length(self, k7):
        out = k7.encode(np.ones(10, dtype=np.int8))
        assert out.size == (10 + 6) * 2

    def test_zero_input_zero_output(self, k7):
        out = k7.encode(np.zeros(8, dtype=np.int8))
        np.testing.assert_array_equal(out, 0)

    def test_linearity(self, k7, rng):
        """Convolutional codes are linear: enc(a) xor enc(b) = enc(a xor b)."""
        a = rng.integers(0, 2, 30, dtype=np.int8)
        b = rng.integers(0, 2, 30, dtype=np.int8)
        lhs = k7.encode(a) ^ k7.encode(b)
        np.testing.assert_array_equal(lhs, k7.encode(a ^ b))

    def test_rejects_non_binary(self, k7):
        with pytest.raises(ValueError):
            k7.encode(np.array([0, 2]))


class TestViterbi:
    @given(bit_arrays)
    @settings(max_examples=25)
    def test_noiseless_roundtrip(self, bits):
        code = ConvolutionalCode(generators=(0o7, 0o5), constraint_length=3)
        np.testing.assert_array_equal(code.decode(code.encode(bits)), bits)

    def test_noiseless_roundtrip_k7(self, k7, rng):
        bits = rng.integers(0, 2, 200, dtype=np.int8)
        np.testing.assert_array_equal(k7.decode(k7.encode(bits)), bits)

    def test_corrects_up_to_half_free_distance(self, k7, rng):
        """Any 4 scattered channel errors are always corrected
        ((d_free - 1)/2 = 4)."""
        bits = rng.integers(0, 2, 100, dtype=np.int8)
        coded = k7.encode(bits)
        for trial in range(20):
            corrupted = coded.copy()
            # scatter the flips so no two share a constraint span
            positions = (np.arange(4) * (coded.size // 4)) + rng.integers(
                0, coded.size // 8, 4
            )
            corrupted[positions % coded.size] ^= 1
            np.testing.assert_array_equal(k7.decode(corrupted), bits)

    def test_soft_decisions_beat_hard(self, rng):
        """At the same channel SNR, soft-decision Viterbi makes fewer
        errors than hard-decision (the classical ~2 dB)."""
        code = ConvolutionalCode()
        n_info = 2000
        bits = rng.integers(0, 2, n_info, dtype=np.int8)
        coded = code.encode(bits)
        tx = 1.0 - 2.0 * coded.astype(float)
        noisy = tx + rng.normal(0.0, 0.9, tx.shape)
        hard_in = (noisy < 0).astype(np.int8)
        hard_errors = int(np.sum(code.decode(hard_in) != bits))
        soft_errors = int(np.sum(code.decode(noisy, soft=True) != bits))
        assert soft_errors < hard_errors

    def test_coding_gain_over_awgn(self, rng):
        """The coded chain beats uncoded BPSK at equal Eb/N0 (rate-1/2:
        each info bit gets two half-energy channel uses)."""
        from repro.modulation.theory import ber_bpsk_awgn

        code = ConvolutionalCode()
        ebn0_db = 4.0
        esn0 = 10 ** (ebn0_db / 10) * 0.5  # rate loss
        sigma = np.sqrt(1.0 / (2.0 * esn0))
        n_info = 20_000
        bits = rng.integers(0, 2, n_info, dtype=np.int8)
        coded = code.encode(bits)
        noisy = (1.0 - 2.0 * coded) + rng.normal(0.0, sigma, coded.size)
        decoded = code.decode(noisy, soft=True)
        coded_ber = np.mean(decoded != bits)
        uncoded_ber = float(ber_bpsk_awgn(ebn0_db))
        assert coded_ber < uncoded_ber / 3.0

    def test_validation(self, k7):
        with pytest.raises(ValueError):
            k7.decode(np.zeros(3, dtype=np.int8))  # not a multiple of n_out
        with pytest.raises(ValueError):
            k7.decode(np.zeros(4, dtype=np.int8))  # shorter than termination
