"""Request-schema parsing: happy paths and named-field 400s."""

import pytest

from repro.service.errors import BadRequestError
from repro.service.schemas import (
    EbarRequest,
    InterweaveRequest,
    OverlayRequest,
    UnderlayRequest,
    parse_ebar_request,
    parse_interweave_request,
    parse_overlay_request,
    parse_underlay_request,
)


class TestEbar:
    def test_happy_path_defaults(self):
        req = parse_ebar_request({"p": 0.001, "b": 2, "mt": 2, "mr": 2})
        assert req == EbarRequest(p=0.001, b=2, mt=2, mr=2)
        assert req.solver == "table" and req.convention == "paper"

    def test_exact_solver_and_convention(self):
        req = parse_ebar_request(
            {"p": 0.01, "b": 1, "mt": 1, "mr": 4, "solver": "exact",
             "convention": "diversity_only"}
        )
        assert req.solver == "exact"
        assert req.convention == "diversity_only"

    @pytest.mark.parametrize(
        "body",
        [
            "not an object",
            {"b": 2, "mt": 2, "mr": 2},  # missing p
            {"p": "x", "b": 2, "mt": 2, "mr": 2},
            {"p": 0.001, "b": 2.5, "mt": 2, "mr": 2},
            {"p": 0.001, "b": True, "mt": 2, "mr": 2},  # bool is not an int
            {"p": 0.001, "b": 2, "mt": 2, "mr": 2, "solver": "magic"},
            {"p": 0.001, "b": 2, "mt": 2, "mr": 2, "convention": "bogus"},
            {"p": 2.0, "b": 2, "mt": 2, "mr": 2},  # p outside (0, 1)
            {"p": 0.001, "b": -2, "mt": 2, "mr": 2},
        ],
    )
    def test_rejects(self, body):
        with pytest.raises(BadRequestError):
            parse_ebar_request(body)


class TestOverlay:
    def test_scalar_axis(self):
        req = parse_overlay_request({"d1": 40.0, "m": 2, "bandwidth": 10e3})
        assert req.d1 == (40.0,)
        assert req.scalar is True
        assert req.convention == "diversity_only"
        assert (req.p_direct, req.p_relay) == (0.005, 0.0005)

    def test_vector_axis(self):
        req = parse_overlay_request({"d1": [10.0, 20.0], "m": 3, "bandwidth": 10e3})
        assert req.d1 == (10.0, 20.0)
        assert req.scalar is False

    def test_d1_values_alias(self):
        req = parse_overlay_request(
            {"d1_values": [10.0, 20.0], "m": 3, "bandwidth": 10e3}
        )
        assert req.d1 == (10.0, 20.0) and req.scalar is False

    def test_max_points_enforced(self):
        with pytest.raises(BadRequestError, match="per-request limit"):
            parse_overlay_request(
                {"d1": [1.0, 2.0, 3.0], "m": 2, "bandwidth": 10e3}, max_points=2
            )

    @pytest.mark.parametrize(
        "body",
        [
            {"m": 2, "bandwidth": 10e3},  # no axis
            {"d1": [], "m": 2, "bandwidth": 10e3},
            {"d1": 10.0, "d1_values": [10.0], "m": 2, "bandwidth": 10e3},
            {"d1": 10.0, "m": 0, "bandwidth": 10e3},
            {"d1": -1.0, "m": 2, "bandwidth": 10e3},
            {"d1": 10.0, "m": 2, "bandwidth": 10e3, "p_direct": 0.0},
        ],
    )
    def test_rejects(self, body):
        with pytest.raises(BadRequestError):
            parse_overlay_request(body)

    def test_dataclass_revalidates(self):
        with pytest.raises(ValueError):
            OverlayRequest(d1=(), m=2, bandwidth=10e3)


class TestUnderlay:
    def test_scalar_axis(self):
        req = parse_underlay_request(
            {"p": 1e-3, "mt": 2, "mr": 2, "d": 5.0, "distance": 80.0,
             "bandwidth": 10e3}
        )
        assert req.distances == (80.0,) and req.scalar is True
        assert req.convention == "paper"

    def test_vector_axis(self):
        req = parse_underlay_request(
            {"p": 1e-3, "mt": 1, "mr": 1, "d": 5.0,
             "distances": [50.0, 100.0], "bandwidth": 10e3}
        )
        assert req.distances == (50.0, 100.0) and req.scalar is False

    @pytest.mark.parametrize(
        "body",
        [
            {"p": 1e-3, "mt": 2, "mr": 2, "d": 5.0, "bandwidth": 10e3},
            {"p": 1e-3, "mt": 2, "mr": 2, "d": 0.0, "distance": 80.0,
             "bandwidth": 10e3},
            {"p": 1e-3, "mt": 2, "mr": 2, "d": 5.0, "distance": -80.0,
             "bandwidth": 10e3},
        ],
    )
    def test_rejects(self, body):
        with pytest.raises(BadRequestError):
            parse_underlay_request(body)

    def test_dataclass_revalidates(self):
        with pytest.raises(ValueError):
            UnderlayRequest(p=1e-3, mt=2, mr=2, d=5.0, distances=(),
                            bandwidth=10e3)


class TestInterweave:
    BASE = {"st1": [0.0, 0.0], "st2": [15.0, 0.0], "wavelength": 30.0}

    def test_single_point_with_pr(self):
        req = parse_interweave_request(
            {**self.BASE, "point": [40.0, 40.0], "pr": [100.0, 0.0]}
        )
        assert req.points == ((40.0, 40.0),) and req.scalar is True
        assert req.pr == (100.0, 0.0) and req.delta is None

    def test_point_batch_with_delta(self):
        req = parse_interweave_request(
            {**self.BASE, "points": [[1.0, 2.0], [3.0, 4.0]], "delta": 0.5}
        )
        assert req.points == ((1.0, 2.0), (3.0, 4.0)) and req.scalar is False
        assert req.delta == 0.5

    def test_environment_spec(self):
        req = parse_interweave_request(
            {**self.BASE, "point": [1.0, 1.0], "delta": 0.0,
             "environment": {"n_scatterers": 3, "seed": 42}}
        )
        assert req.environment is not None
        assert req.environment.n_scatterers == 3
        assert req.environment.seed == 42

    @pytest.mark.parametrize(
        "body",
        [
            {"st1": [0.0, 0.0], "st2": [15.0, 0.0], "wavelength": 30.0},  # no point
            {**BASE, "point": [1.0, 1.0]},  # neither delta nor pr
            {**BASE, "point": [1.0, 1.0], "delta": 0.0, "pr": [1.0, 2.0]},  # both
            {**BASE, "point": [1.0], "delta": 0.0},  # not a pair
            {**BASE, "points": [], "delta": 0.0},
            {**BASE, "point": [1.0, 1.0], "points": [[1.0, 1.0]], "delta": 0.0},
            {"st1": [0.0, 0.0], "st2": [0.0, 0.0], "wavelength": 30.0,
             "point": [1.0, 1.0], "delta": 0.0},  # coincident pair
            {**BASE, "point": [1.0, 1.0], "delta": 0.0,
             "environment": {"decay": 2.0}},
            {**BASE, "point": [1.0, 1.0], "delta": 0.0,
             "environment": {"outer_radius_m": 1.0}},
        ],
    )
    def test_rejects(self, body):
        with pytest.raises(BadRequestError):
            parse_interweave_request(body)

    def test_max_points_enforced(self):
        with pytest.raises(BadRequestError, match="per-request limit"):
            parse_interweave_request(
                {**self.BASE, "points": [[0.0, 0.0]] * 3, "delta": 0.0},
                max_points=2,
            )

    def test_dataclass_revalidates(self):
        with pytest.raises(ValueError):
            InterweaveRequest(
                st1=(0.0, 0.0), st2=(15.0, 0.0), wavelength=30.0,
                points=((1.0, 1.0),),  # no delta and no pr
            )
