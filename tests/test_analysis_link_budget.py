"""Link-budget ledger tests."""

import pytest

from repro.analysis.link_budget import BudgetItem, LinkBudget
from repro.channel.indoor import IndoorChannel, Wall
from repro.channel.shadowing import LogNormalShadowing


class TestLedger:
    def test_accumulation(self):
        budget = (
            LinkBudget(0.0, noise_power_dbm=-100.0)
            .add_loss("path", 60.0)
            .add_gain("antennas", 5.0)
        )
        assert budget.received_power_dbm == pytest.approx(-55.0)
        assert budget.snr_db == pytest.approx(45.0)

    def test_margin(self):
        budget = LinkBudget(0.0, -100.0).add_loss("path", 80.0)
        assert budget.margin_db(required_snr_db=10.0) == pytest.approx(10.0)
        assert budget.margin_db(required_snr_db=30.0) == pytest.approx(-10.0)

    def test_sign_conventions_enforced(self):
        budget = LinkBudget(0.0)
        with pytest.raises(ValueError):
            budget.add_gain("negative gain", -3.0)
        with pytest.raises(ValueError):
            budget.add_loss("negative loss", -3.0)

    def test_items_recorded(self):
        budget = LinkBudget(10.0).add_loss("wall", 12.0)
        assert budget.items == (BudgetItem("wall", -12.0),)

    def test_to_text_lists_everything(self):
        text = LinkBudget(0.0).add_loss("path", 60.0).to_text()
        assert "path" in text and "SNR" in text and "noise floor" in text


class TestFromIndoorLink:
    def test_matches_channel_snr_exactly(self):
        channel = IndoorChannel(
            walls=[Wall((1.0, -1.0), (1.0, 1.0), 12.0)],
            shadowing=LogNormalShadowing(sigma_db=6.0),
            noise_power_dbm=-110.0,
        )
        tx, rx, power = (0.0, 0.0), (3.0, 0.0), -20.0
        budget = LinkBudget.from_indoor_link(channel, tx, rx, power)
        assert budget.snr_db == pytest.approx(
            channel.average_snr_db(tx, rx, power), rel=1e-12
        )

    def test_wall_line_item_present(self):
        channel = IndoorChannel(walls=[Wall((1.0, -1.0), (1.0, 1.0), 12.0)])
        budget = LinkBudget.from_indoor_link(channel, (0.0, 0.0), (2.0, 0.0), 0.0)
        names = [item.name for item in budget.items]
        assert "walls/obstacles" in names

    def test_fading_margin_subtracts(self):
        channel = IndoorChannel()
        plain = LinkBudget.from_indoor_link(channel, (0.0, 0.0), (5.0, 0.0), 0.0)
        padded = LinkBudget.from_indoor_link(
            channel, (0.0, 0.0), (5.0, 0.0), 0.0, fading_margin_db=10.0
        )
        assert padded.snr_db == pytest.approx(plain.snr_db - 10.0)

    def test_clear_link_has_no_wall_item(self):
        channel = IndoorChannel()
        budget = LinkBudget.from_indoor_link(channel, (0.0, 0.0), (2.0, 0.0), 0.0)
        assert all("wall" not in item.name for item in budget.items)
