"""Geometry primitive tests: distances, angles, rotations."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.points import (
    angle_at,
    angle_of,
    as_points,
    distance,
    distance_matrix,
    midpoint,
    pairwise_distances,
    rotate,
    unit_vector,
)

coords = st.floats(min_value=-1e6, max_value=1e6)
points = st.tuples(coords, coords).map(np.array)


class TestAsPoints:
    def test_single_point_promoted(self):
        assert as_points(np.array([1.0, 2.0])).shape == (1, 2)

    def test_batch_kept(self):
        assert as_points(np.zeros((5, 2))).shape == (5, 2)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            as_points(np.zeros((5, 3)))


class TestDistance:
    def test_pythagorean(self):
        assert distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    @given(points, points)
    def test_symmetry(self, a, b):
        assert distance(a, b) == pytest.approx(distance(b, a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6

    def test_distance_matrix_shape_and_values(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0], [0.0, 2.0], [3.0, 4.0]])
        m = distance_matrix(a, b)
        assert m.shape == (2, 3)
        assert m[0, 0] == pytest.approx(1.0)
        assert m[1, 2] == pytest.approx(np.hypot(2.0, 4.0))

    def test_pairwise_diagonal_zero(self):
        pts = np.random.default_rng(0).normal(size=(6, 2))
        m = pairwise_distances(pts)
        np.testing.assert_allclose(np.diag(m), 0.0)
        np.testing.assert_allclose(m, m.T)


class TestAngles:
    def test_angle_of_axes(self):
        assert angle_of(np.array([1.0, 0.0])) == pytest.approx(0.0)
        assert angle_of(np.array([0.0, 1.0])) == pytest.approx(np.pi / 2)

    def test_right_angle_at_vertex(self):
        vertex = np.array([0.0, 0.0])
        assert angle_at(vertex, np.array([1.0, 0.0]), np.array([0.0, 1.0])) == (
            pytest.approx(np.pi / 2)
        )

    def test_collinear_gives_pi_or_zero(self):
        v = np.array([0.0, 0.0])
        assert angle_at(v, np.array([1.0, 0.0]), np.array([2.0, 0.0])) == (
            pytest.approx(0.0, abs=1e-9)
        )
        assert angle_at(v, np.array([1.0, 0.0]), np.array([-1.0, 0.0])) == (
            pytest.approx(np.pi)
        )

    def test_degenerate_vertex_rejected(self):
        v = np.array([1.0, 1.0])
        with pytest.raises(ValueError):
            angle_at(v, v, np.array([2.0, 2.0]))

    @given(st.floats(min_value=-np.pi, max_value=np.pi))
    def test_unit_vector_has_unit_norm(self, angle):
        assert np.linalg.norm(unit_vector(angle)) == pytest.approx(1.0)


class TestTransforms:
    def test_midpoint(self):
        np.testing.assert_allclose(
            midpoint(np.array([0.0, 0.0]), np.array([2.0, 4.0])), [1.0, 2.0]
        )

    def test_rotate_quarter_turn(self):
        out = rotate(np.array([1.0, 0.0]), np.pi / 2)
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_rotate_about_custom_origin(self):
        out = rotate(np.array([2.0, 1.0]), np.pi, origin=(1.0, 1.0))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    @given(points, st.floats(min_value=-np.pi, max_value=np.pi))
    def test_rotation_preserves_norm(self, p, angle):
        assert np.linalg.norm(rotate(p, angle)) == pytest.approx(
            np.linalg.norm(p), rel=1e-9, abs=1e-6
        )
