"""Multi-null beamforming tests."""

import numpy as np
import pytest

from repro.beamforming.multinull import (
    null_steering_weights,
    steering_vector,
    weighted_amplitude,
)

WAVELENGTH = 30.0


def _array(n, spacing=15.0):
    """n elements on the y-axis, centered."""
    ys = (np.arange(n) - (n - 1) / 2.0) * spacing
    return np.stack([np.zeros(n), ys], axis=1)


class TestSteeringVector:
    def test_unit_modulus(self):
        a = steering_vector(_array(4), (100.0, 20.0), WAVELENGTH)
        np.testing.assert_allclose(np.abs(a), 1.0)

    def test_conjugate_weights_cophase(self):
        tx = _array(3)
        point = (80.0, -10.0)
        a = steering_vector(tx, point, WAVELENGTH)
        amp = weighted_amplitude(tx, np.conj(a) / np.sqrt(3), point, WAVELENGTH)
        assert amp == pytest.approx(np.sqrt(3), rel=1e-9)  # full array gain

    def test_rejects_bad_wavelength(self):
        with pytest.raises(ValueError):
            steering_vector(_array(2), (1.0, 1.0), 0.0)


class TestNullSteering:
    def test_single_null_exact(self):
        tx = _array(2)
        pr = np.array([5.0, -140.0])
        sr = np.array([70.0, 0.0])
        w = null_steering_weights(tx, sr, [pr], WAVELENGTH)
        assert weighted_amplitude(tx, w, pr, WAVELENGTH) < 1e-9
        assert weighted_amplitude(tx, w, sr, WAVELENGTH) > 1.0

    def test_matches_pairwise_scheme(self):
        """For two elements and one null, the projection reproduces the
        Algorithm 3 pair (same nulling, comparable broadside gain)."""
        from repro.core.interweave import InterweaveSystem

        tx = np.array([[0.0, 7.5], [0.0, -7.5]])
        pr = np.array([3.0, -130.0])
        sr = np.array([60.0, 0.0])
        w = null_steering_weights(tx, sr, [pr], WAVELENGTH)
        system = InterweaveSystem(st1=(0.0, 7.5), st2=(0.0, -7.5))
        delta = system.pair.delay_for_null(pr, exact=True)
        pair_amp = system.pair.amplitude_at(sr, delta)
        # the projection weights have unit total norm; rescale to the
        # pair's 2-antenna total power (|w_i| = 1 each -> norm sqrt(2))
        ls_amp = weighted_amplitude(tx, w * np.sqrt(2.0), sr, WAVELENGTH)
        assert ls_amp == pytest.approx(pair_amp, rel=0.05)

    def test_three_nulls_with_four_elements(self):
        tx = _array(4)
        nulls = [np.array([20.0, -200.0]), np.array([-50.0, 180.0]), np.array([150.0, 90.0])]
        sr = np.array([100.0, 5.0])
        w = null_steering_weights(tx, sr, nulls, WAVELENGTH)
        for pr in nulls:
            assert weighted_amplitude(tx, w, pr, WAVELENGTH) < 1e-9
        assert weighted_amplitude(tx, w, sr, WAVELENGTH) > 0.5

    def test_unit_norm_weights(self):
        w = null_steering_weights(
            _array(3), (90.0, 0.0), [(0.0, -200.0)], WAVELENGTH
        )
        assert np.linalg.norm(w) == pytest.approx(1.0)

    def test_no_nulls_is_conjugate_beamforming(self):
        tx = _array(3)
        sr = (50.0, 30.0)
        w = null_steering_weights(tx, sr, [], WAVELENGTH)
        expected = np.conj(steering_vector(tx, sr, WAVELENGTH))
        expected /= np.linalg.norm(expected)
        # equal up to a global phase
        ratio = w / expected
        np.testing.assert_allclose(np.abs(ratio), 1.0, rtol=1e-9)
        assert np.std(np.angle(ratio)) < 1e-9

    def test_too_many_nulls_rejected(self):
        with pytest.raises(ValueError):
            null_steering_weights(
                _array(2), (50.0, 0.0), [(0.0, -100.0), (0.0, 100.0)], WAVELENGTH
            )

    def test_target_inside_nulled_subspace_rejected(self):
        tx = _array(2)
        point = np.array([0.0, -500.0])
        with pytest.raises(ValueError):
            # nulling the target itself leaves no gain
            null_steering_weights(tx, point, [point], WAVELENGTH)

    def test_more_elements_more_gain(self):
        pr = np.array([10.0, -300.0])
        sr = np.array([120.0, 0.0])
        amps = []
        for n in (2, 3, 4):
            tx = _array(n)
            w = null_steering_weights(tx, sr, [pr], WAVELENGTH)
            # per-element unit power scaling for a fair comparison
            amps.append(weighted_amplitude(tx, w * np.sqrt(n), sr, WAVELENGTH))
        assert amps[0] < amps[1] < amps[2]


class TestWeightedAmplitude:
    def test_weight_count_checked(self):
        with pytest.raises(ValueError):
            weighted_amplitude(_array(3), np.ones(2), (1.0, 1.0), WAVELENGTH)
