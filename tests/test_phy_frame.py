"""Framing tests: CRC properties, bit/byte packing, packetization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.frame import (
    CRC_BITS,
    bits_to_bytes,
    bytes_to_bits,
    crc16,
    packetize_bits,
    verify_crc,
    with_crc,
)

byte_arrays = st.lists(st.integers(0, 255), min_size=1, max_size=200).map(
    lambda l: np.array(l, dtype=np.uint8)
)


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of ascii "123456789" is 0x29B1
        data = np.frombuffer(b"123456789", dtype=np.uint8)
        assert crc16(data) == 0x29B1

    def test_empty_is_init(self):
        assert crc16(np.array([], dtype=np.uint8)) == 0xFFFF

    @given(byte_arrays)
    def test_deterministic(self, data):
        assert crc16(data) == crc16(data)

    @given(byte_arrays, st.integers(0, 7))
    def test_single_bit_flip_detected(self, data, bit):
        flipped = data.copy()
        flipped[0] ^= 1 << bit
        assert crc16(flipped) != crc16(data)


class TestBitBytes:
    @given(byte_arrays)
    def test_roundtrip(self, data):
        np.testing.assert_array_equal(bits_to_bytes(bytes_to_bits(data)), data)

    def test_msb_first(self):
        bits = bytes_to_bits(np.array([0b10000001], dtype=np.uint8))
        np.testing.assert_array_equal(bits, [1, 0, 0, 0, 0, 0, 0, 1])

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7, dtype=np.int8))


class TestWithCrc:
    @given(byte_arrays)
    def test_clean_frame_verifies(self, data):
        frame = with_crc(bytes_to_bits(data))
        assert frame.size == data.size * 8 + CRC_BITS
        assert verify_crc(frame)

    @given(byte_arrays, st.integers(min_value=0))
    def test_corruption_detected(self, data, pos):
        frame = with_crc(bytes_to_bits(data))
        corrupted = frame.copy()
        corrupted[pos % frame.size] ^= 1
        assert not verify_crc(corrupted)

    def test_non_byte_payload_rejected(self):
        with pytest.raises(ValueError):
            with_crc(np.ones(5, dtype=np.int8))

    def test_garbage_input_fails_gracefully(self):
        assert not verify_crc(np.ones(3, dtype=np.int8))


class TestPacketize:
    def test_exact_split(self):
        bits = np.arange(12) % 2
        packets = packetize_bits(bits, 4)
        assert len(packets) == 3
        np.testing.assert_array_equal(np.concatenate(packets), bits)

    def test_padding(self):
        bits = np.ones(10, dtype=np.int8)
        packets = packetize_bits(bits, 4)
        assert len(packets) == 3
        np.testing.assert_array_equal(packets[2], [1, 1, 0, 0])

    def test_empty_stream(self):
        assert packetize_bits(np.array([], dtype=np.int8), 8) == []

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            packetize_bits(np.ones(4, dtype=np.int8), 0)
