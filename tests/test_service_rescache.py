"""Persistent request-hash result cache: unit and end-to-end behaviour."""

import json

import pytest

from repro.service import (
    ResultCache,
    ServiceClientError,
    ServiceConfig,
    ThreadedServer,
    canonical_digest,
    work,
)
from repro.service.rescache import RESULT_CACHE_VERSION
from repro.service.schemas import UnderlayRequest

DISTANCES = [2.0, 4.0, 8.0]
UNDERLAY_ARGS = dict(p=1e-3, mt=2, mr=2, d=5.0, bandwidth=10e3)
INTERWEAVE_ARGS = dict(
    st1=(0.0, 0.0), st2=(1.0, 0.0), wavelength=0.125, delta=0.25
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Force caching on (CI exports REPRO_NO_CACHE=1) and into tmp dirs."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "table-cache"))
    yield


def _config(tmp_path, **overrides):
    settings = dict(
        port=0,
        workers=0,
        result_cache=True,
        result_cache_dir=str(tmp_path / "results"),
        request_log=False,
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


def _underlay_direct():
    return work.underlay_rows(
        UnderlayRequest(distances=tuple(DISTANCES), **UNDERLAY_ARGS)
    )


def _entry_files(tmp_path):
    return list((tmp_path / "results").rglob("*.json"))


class TestCanonicalDigest:
    def test_key_order_and_whitespace_do_not_matter(self):
        a = json.loads('{"p": 0.001, "b": 2, "mt": 2, "mr": 2}')
        b = json.loads('{ "mr":2,"mt":2,  "b":2, "p":1e-3 }')
        assert canonical_digest("/v1/ebar", a) == canonical_digest("/v1/ebar", b)

    def test_different_bodies_and_endpoints_differ(self):
        body = {"p": 0.001, "b": 2}
        assert canonical_digest("/v1/ebar", body) != canonical_digest(
            "/v1/ebar", {"p": 0.001, "b": 4}
        )
        assert canonical_digest("/v1/ebar", body) != canonical_digest(
            "/v1/overlay/feasible", body
        )


class TestResultCacheUnit:
    def test_roundtrip_in_versioned_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = canonical_digest("/v1/ebar", {"p": 0.001})
        assert cache.get(digest) is None
        assert cache.put(digest, {"e_bar": 1.5, "b": 2}) is True
        assert cache.get(digest) == {"e_bar": 1.5, "b": 2}
        (entry,) = tmp_path.rglob("*.json")
        assert entry.parent.parent.name == f"results-v{RESULT_CACHE_VERSION}"
        assert entry.parent.name == digest[:2]
        assert entry.stem == digest

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = canonical_digest("/v1/ebar", {"p": 0.001})
        cache.put(digest, {"e_bar": 1.5})
        (entry,) = tmp_path.rglob("*.json")
        entry.write_text("not json {")
        assert cache.get(digest) is None

    def test_repro_no_cache_disables_everything(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ResultCache(tmp_path)
        digest = canonical_digest("/v1/ebar", {"p": 0.001})
        assert cache.enabled is False
        assert cache.put(digest, {"e_bar": 1.5}) is False
        assert cache.get(digest) is None
        assert not list(tmp_path.rglob("*.json"))


class TestServiceResultCache:
    def test_repeat_request_is_a_hit_and_bit_identical(self, tmp_path):
        with ThreadedServer(_config(tmp_path)) as server:
            client = server.client()
            first = client.underlay_energy(distance=DISTANCES, **UNDERLAY_ARGS)
            second = client.underlay_energy(distance=DISTANCES, **UNDERLAY_ARGS)
            counters = client.metrics_snapshot()["result_cache"]
        assert counters == {"hits": 1, "misses": 1}
        assert first == second
        assert first["rows"] == _underlay_direct()

    def test_cache_persists_across_server_instances(self, tmp_path):
        with ThreadedServer(_config(tmp_path)) as server:
            cold = server.client().underlay_energy(
                distance=DISTANCES, **UNDERLAY_ARGS
            )
        with ThreadedServer(_config(tmp_path)) as server:
            client = server.client()
            warm = client.underlay_energy(distance=DISTANCES, **UNDERLAY_ARGS)
            counters = client.metrics_snapshot()["result_cache"]
        assert counters == {"hits": 1, "misses": 0}
        assert warm == cold

    def test_unseeded_stochastic_interweave_bypasses_the_cache(self, tmp_path):
        with ThreadedServer(_config(tmp_path, seed=42)) as server:
            client = server.client()
            first = client.interweave_pattern(
                point=(5.0, 5.0),
                environment={"n_scatterers": 4},
                **INTERWEAVE_ARGS,
            )
            second = client.interweave_pattern(
                point=(5.0, 5.0),
                environment={"n_scatterers": 4},
                **INTERWEAVE_ARGS,
            )
            counters = client.metrics_snapshot()["result_cache"]
        # Each request drew its own fresh environment seed; replaying a
        # cached response would have frozen the first one forever.
        assert counters == {"hits": 0, "misses": 0}
        assert first["seed_used"] != second["seed_used"]
        assert not _entry_files(tmp_path)

    def test_seeded_interweave_is_cached(self, tmp_path):
        environment = {"n_scatterers": 4, "seed": 7}
        with ThreadedServer(_config(tmp_path)) as server:
            client = server.client()
            first = client.interweave_pattern(
                point=(5.0, 5.0), environment=environment, **INTERWEAVE_ARGS
            )
            second = client.interweave_pattern(
                point=(5.0, 5.0), environment=environment, **INTERWEAVE_ARGS
            )
            counters = client.metrics_snapshot()["result_cache"]
        assert counters == {"hits": 1, "misses": 1}
        assert first == second
        assert first["seed_used"] == 7

    def test_failed_requests_are_not_cached(self, tmp_path):
        with ThreadedServer(_config(tmp_path)) as server:
            client = server.client()
            with pytest.raises(ServiceClientError) as excinfo:
                client.underlay_energy(
                    distance=DISTANCES,
                    p=-0.5,
                    mt=2,
                    mr=2,
                    d=5.0,
                    bandwidth=10e3,
                )
            assert excinfo.value.status == 400
        assert not _entry_files(tmp_path)

    def test_result_cache_off_by_default_in_config(self, tmp_path):
        config = ServiceConfig(
            port=0,
            workers=0,
            request_log=False,
            result_cache_dir=str(tmp_path / "results"),
        )
        with ThreadedServer(config) as server:
            client = server.client()
            client.underlay_energy(distance=DISTANCES, **UNDERLAY_ARGS)
            client.underlay_energy(distance=DISTANCES, **UNDERLAY_ARGS)
            counters = client.metrics_snapshot()["result_cache"]
        assert counters == {"hits": 0, "misses": 0}
        assert not _entry_files(tmp_path)

    def test_repro_no_cache_beats_the_config_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        with ThreadedServer(_config(tmp_path)) as server:
            client = server.client()
            client.underlay_energy(distance=DISTANCES, **UNDERLAY_ARGS)
            client.underlay_energy(distance=DISTANCES, **UNDERLAY_ARGS)
            counters = client.metrics_snapshot()["result_cache"]
        assert counters == {"hits": 0, "misses": 0}
        assert not _entry_files(tmp_path)
