"""Trace serialisation, outcome digests, and verdict classification."""

import json

import pytest

from repro.loadgen.trace import (
    RequestRecord,
    Trace,
    load_trace,
    outcome_digest,
    summarize_latencies,
)
from repro.loadgen.verdict import OUTCOMES, classify, evaluate


def record(**overrides):
    base = dict(
        index=0,
        kind="ebar",
        method="POST",
        path="/v1/ebar",
        stream=False,
        payload_digest="d" * 64,
        status=200,
        ok_verified=True,
        structured_error=False,
        retry_hint=False,
        truncated=False,
        timed_out=False,
        rows=1,
        retries=0,
        latency_ms=1.25,
        detail="",
    )
    base.update(overrides)
    return RequestRecord(**base)


class TestClassify:
    def test_verified_2xx_is_ok(self):
        assert classify(record()) == ("ok", "")

    def test_unverified_2xx_is_a_violation(self):
        outcome, reason = classify(record(ok_verified=False))
        assert outcome == "violation"
        assert "verification" in reason

    def test_structured_error_is_rejected(self):
        rec = record(status=400, ok_verified=False, structured_error=True)
        assert classify(rec) == ("rejected", "")

    def test_malformed_error_body_is_a_violation(self):
        rec = record(status=500, ok_verified=False, structured_error=False)
        outcome, reason = classify(rec)
        assert outcome == "violation"
        assert "malformed" in reason

    @pytest.mark.parametrize("status", [429, 503])
    def test_backpressure_without_hint_is_a_violation(self, status):
        rec = record(status=status, ok_verified=False, structured_error=True)
        outcome, reason = classify(rec)
        assert outcome == "violation"
        assert "retry hint" in reason

    @pytest.mark.parametrize("status", [429, 503])
    def test_backpressure_with_hint_is_rejected(self, status):
        rec = record(
            status=status,
            ok_verified=False,
            structured_error=True,
            retry_hint=True,
        )
        assert classify(rec) == ("rejected", "")

    def test_detected_truncation_is_accounted(self):
        rec = record(status=599, ok_verified=False, truncated=True)
        assert classify(rec) == ("truncated", "")

    def test_hang_is_a_violation(self):
        rec = record(status=599, ok_verified=False, timed_out=True)
        outcome, reason = classify(rec)
        assert outcome == "violation"
        assert "hang" in reason


class TestEvaluate:
    def test_passes_only_with_zero_violations(self):
        good = [
            record(index=0),
            record(index=1, status=429, ok_verified=False,
                   structured_error=True, retry_hint=True),
            record(index=2, status=599, ok_verified=False, truncated=True),
        ]
        verdict = evaluate(good)
        assert verdict.passed
        assert verdict.total == 3
        assert verdict.counts == {
            "ok": 1, "rejected": 1, "truncated": 1, "violation": 0,
        }
        assert set(verdict.counts) == set(OUTCOMES)

    def test_violation_fails_with_details(self):
        bad = [record(index=7, status=500, ok_verified=False)]
        verdict = evaluate(bad)
        assert not verdict.passed
        assert verdict.violations[0]["index"] == 7
        assert verdict.violations[0]["status"] == 500
        assert "malformed" in verdict.violations[0]["reason"]

    def test_verdict_mapping_is_json(self):
        verdict = evaluate([record()])
        json.dumps(verdict.to_mapping())


class TestTrace:
    def test_save_load_round_trip(self, tmp_path):
        trace = Trace(
            spec={"seed": 1},
            records=[record(), record(index=1, latency_ms=9.5, retries=2)],
            meta={"n_requests": 2},
        )
        path = str(tmp_path / "trace.json")
        trace.save(path)
        loaded = load_trace(path)
        assert loaded.records == trace.records
        assert loaded.spec == trace.spec
        assert loaded.meta == trace.meta

    def test_digest_ignores_wall_clock_facts(self):
        a = [record(latency_ms=1.0, retries=0, detail="")]
        b = [record(latency_ms=99.0, retries=3, detail="slow")]
        assert outcome_digest(a) == outcome_digest(b)

    def test_digest_sees_outcome_facts(self):
        a = [record()]
        assert outcome_digest(a) != outcome_digest([record(status=500)])
        assert outcome_digest(a) != outcome_digest([record(rows=2)])
        assert outcome_digest(a) != outcome_digest(
            [record(ok_verified=False)]
        )

    def test_tampered_trace_is_rejected(self, tmp_path):
        trace = Trace(spec={}, records=[record()], meta={})
        path = str(tmp_path / "trace.json")
        trace.save(path)
        with open(path) as handle:
            data = json.load(handle)
        data["records"][0]["status"] = 500
        with open(path, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(ValueError, match="digest"):
            load_trace(path)

    def test_unknown_record_field_rejected(self):
        with pytest.raises(ValueError, match="unknown record field"):
            RequestRecord.from_mapping({"index": 0, "surprise": 1})


class TestLatencySummary:
    def test_empty_is_zeroes(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0.0
        assert summary["p99_ms"] == 0.0

    def test_percentiles_are_ordered(self):
        summary = summarize_latencies([float(i) for i in range(100)])
        assert summary["count"] == 100.0
        assert (
            summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
            <= summary["max_ms"]
        )
