"""CoMIMONet tests: construction, links, routing, reconfiguration."""

import numpy as np
import pytest

from repro.network.comimonet import CoMIMONet, LinkKind
from repro.network.node import SUNode


def _line_network(n_clusters=4, nodes_per_cluster=3, spacing=100.0, battery=50.0, seed=0):
    rng = np.random.default_rng(seed)
    nodes = []
    nid = 0
    for c in range(n_clusters):
        for _ in range(nodes_per_cluster):
            jitter = rng.uniform(-0.8, 0.8, 2)
            nodes.append(
                SUNode(nid, (c * spacing + jitter[0], jitter[1]), battery_j=battery)
            )
            nid += 1
    return CoMIMONet(nodes, cluster_diameter=2.5, longhaul_range=spacing * 1.2)


class TestLinkKind:
    @pytest.mark.parametrize(
        "mt,mr,kind",
        [(1, 1, LinkKind.SISO), (3, 1, LinkKind.MISO), (1, 2, LinkKind.SIMO), (2, 2, LinkKind.MIMO)],
    )
    def test_classification(self, mt, mr, kind):
        assert LinkKind.classify(mt, mr) is kind

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            LinkKind.classify(0, 1)


class TestConstruction:
    def test_clusters_formed(self):
        net = _line_network()
        assert net.n_clusters == 4
        assert all(c.size == 3 for c in net.clusters)

    def test_cluster_graph_is_chain(self):
        net = _line_network()
        degrees = sorted(net.cluster_graph.degree(c.cluster_id) for c in net.clusters)
        assert degrees == [1, 1, 2, 2]

    def test_backbone_spans(self):
        net = _line_network()
        assert net.backbone.is_connected()
        assert net.backbone.n_edges == net.n_clusters - 1

    def test_max_cluster_size_respected(self):
        rng = np.random.default_rng(1)
        nodes = [
            SUNode(i, tuple(rng.uniform(0, 1.5, 2)), battery_j=10.0) for i in range(9)
        ]
        net = CoMIMONet(nodes, cluster_diameter=3.0, longhaul_range=10.0, max_cluster_size=4)
        assert all(c.size <= 4 for c in net.clusters)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CoMIMONet([], 1.0, 10.0)

    def test_rejects_bad_backbone_kind(self):
        with pytest.raises(ValueError):
            CoMIMONet([SUNode(0, (0, 0))], 1.0, 10.0, backbone="star")

    def test_cluster_of_node(self):
        net = _line_network()
        cluster = net.cluster_of_node(0)
        assert any(n.node_id == 0 for n in cluster.nodes)
        with pytest.raises(KeyError):
            net.cluster_of_node(999)


class TestLinks:
    def test_link_descriptor(self):
        net = _line_network()
        link = net.link_between(0, 1)
        assert link.mt == 3 and link.mr == 3
        assert link.kind is LinkKind.MIMO
        assert 95.0 < link.length_m < 110.0

    def test_no_link_raises(self):
        net = _line_network()
        with pytest.raises(KeyError):
            net.link_between(0, 3)  # 300 m apart, out of range

    def test_dead_members_shrink_link(self):
        net = _line_network(battery=5.0)
        tx = net.cluster(0)
        tx.nodes[0].consume(5.0)
        link = net.link_between(0, 1)
        assert link.mt == 2


class TestRouting:
    def test_route_end_to_end(self):
        net = _line_network()
        route = net.route(0, 3)
        assert [l.tx_cluster_id for l in route] == [0, 1, 2]
        assert [l.rx_cluster_id for l in route] == [1, 2, 3]

    def test_route_to_self_is_empty(self):
        net = _line_network()
        assert net.route(2, 2) == []

    def test_disconnected_raises(self):
        nodes = [SUNode(0, (0.0, 0.0)), SUNode(1, (1000.0, 0.0))]
        net = CoMIMONet(nodes, cluster_diameter=1.0, longhaul_range=10.0)
        with pytest.raises(ValueError):
            net.route(0, 1)


class TestReconfigure:
    def test_heads_rotate_by_battery(self):
        net = _line_network(battery=50.0)
        cluster = net.cluster(0)
        head = cluster.head
        head.consume(45.0)  # drain far below peers
        net.reconfigure()
        assert net.cluster(0).head is not head

    def test_dead_cluster_dropped(self):
        net = _line_network(battery=5.0)
        for node in net.cluster(3).nodes:
            node.consume(5.0)
        net.reconfigure()
        assert all(c.cluster_id != 3 for c in net.clusters)
        with pytest.raises(ValueError):
            net.route(0, 3)

    def test_bfs_backbone_variant(self):
        rng = np.random.default_rng(2)
        nodes = [
            SUNode(i, tuple(rng.uniform(0, 120, 2)), battery_j=10.0) for i in range(12)
        ]
        net = CoMIMONet(nodes, cluster_diameter=20.0, longhaul_range=150.0, backbone="bfs")
        # spanning forest: every component of the cluster graph is spanned
        for comp in net.cluster_graph.connected_components():
            sub_edges = [
                (u, v)
                for u, v, _ in net.backbone.edges()
                if u in comp and v in comp
            ]
            assert len(sub_edges) == len(comp) - 1
