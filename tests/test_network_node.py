"""SUNode tests: battery accounting, positions, lifecycle."""

import numpy as np
import pytest

from repro.network.node import SUNode


class TestConstruction:
    def test_basic(self):
        node = SUNode(3, (1.0, 2.0), battery_j=10.0)
        assert node.node_id == 3
        np.testing.assert_allclose(node.position, [1.0, 2.0])
        assert node.remaining_j == 10.0

    def test_default_battery_infinite(self):
        assert SUNode(0, (0.0, 0.0)).remaining_j == float("inf")

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            SUNode(-1, (0.0, 0.0))

    def test_rejects_zero_battery(self):
        with pytest.raises(ValueError):
            SUNode(0, (0.0, 0.0), battery_j=0.0)

    def test_rejects_bad_position(self):
        with pytest.raises(ValueError):
            SUNode(0, (0.0, 0.0, 0.0))

    def test_position_read_only(self):
        node = SUNode(0, (1.0, 1.0))
        with pytest.raises(ValueError):
            node.position[0] = 5.0


class TestEnergy:
    def test_consume_accumulates(self):
        node = SUNode(0, (0.0, 0.0), battery_j=5.0)
        node.consume(2.0)
        node.consume(1.0)
        assert node.consumed_j == 3.0
        assert node.remaining_j == 2.0
        assert node.alive

    def test_exhaustion(self):
        node = SUNode(0, (0.0, 0.0), battery_j=1.0)
        node.consume(1.0)
        assert not node.alive
        assert node.remaining_j == 0.0

    def test_consume_after_death_raises(self):
        node = SUNode(0, (0.0, 0.0), battery_j=1.0)
        node.consume(1.0)
        with pytest.raises(RuntimeError):
            node.consume(0.1)

    def test_overdraw_clamps_remaining(self):
        node = SUNode(0, (0.0, 0.0), battery_j=1.0)
        node.consume(5.0)
        assert node.remaining_j == 0.0

    def test_negative_consume_rejected(self):
        with pytest.raises(ValueError):
            SUNode(0, (0.0, 0.0)).consume(-1.0)


class TestGeometry:
    def test_distance_to(self):
        a = SUNode(0, (0.0, 0.0))
        b = SUNode(1, (3.0, 4.0))
        assert a.distance_to(b) == 5.0
        assert b.distance_to(a) == 5.0
