"""Indoor channel tests: wall crossings, link budget, determinism."""

import numpy as np
import pytest

from repro.channel.indoor import IndoorChannel, Wall, segments_intersect
from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.shadowing import LogNormalShadowing


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect(
            np.array([0.0, 0.0]), np.array([2.0, 2.0]),
            np.array([0.0, 2.0]), np.array([2.0, 0.0]),
        )

    def test_parallel_disjoint(self):
        assert not segments_intersect(
            np.array([0.0, 0.0]), np.array([1.0, 0.0]),
            np.array([0.0, 1.0]), np.array([1.0, 1.0]),
        )

    def test_touching_endpoint(self):
        assert segments_intersect(
            np.array([0.0, 0.0]), np.array([1.0, 0.0]),
            np.array([1.0, 0.0]), np.array([2.0, 5.0]),
        )

    def test_collinear_overlap(self):
        assert segments_intersect(
            np.array([0.0, 0.0]), np.array([2.0, 0.0]),
            np.array([1.0, 0.0]), np.array([3.0, 0.0]),
        )

    def test_near_miss(self):
        assert not segments_intersect(
            np.array([0.0, 0.0]), np.array([1.0, 0.0]),
            np.array([1.1, -1.0]), np.array([1.1, 1.0]),
        )


class TestWall:
    def test_rejects_negative_attenuation(self):
        with pytest.raises(ValueError):
            Wall((0, 0), (1, 1), attenuation_db=-3.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Wall((1, 1), (1, 1), attenuation_db=3.0)


class TestBlockage:
    def _channel(self):
        return IndoorChannel(
            walls=[
                Wall((1.0, -1.0), (1.0, 1.0), 10.0),
                Wall((2.0, -1.0), (2.0, 1.0), 7.0),
            ]
        )

    def test_no_walls_crossed(self):
        ch = self._channel()
        assert ch.blockage_db((0.0, 0.0), (0.5, 0.0)) == 0.0
        assert ch.is_line_of_sight((0.0, 0.0), (0.5, 0.0))

    def test_one_wall(self):
        ch = self._channel()
        assert ch.blockage_db((0.0, 0.0), (1.5, 0.0)) == 10.0

    def test_both_walls_accumulate(self):
        ch = self._channel()
        assert ch.blockage_db((0.0, 0.0), (3.0, 0.0)) == 17.0
        assert not ch.is_line_of_sight((0.0, 0.0), (3.0, 0.0))

    def test_path_around_walls(self):
        ch = self._channel()
        assert ch.blockage_db((0.0, 2.0), (3.0, 2.0)) == 0.0


class TestLinkBudget:
    def test_snr_matches_manual_budget(self):
        ch = IndoorChannel(
            pathloss=LogDistancePathLoss(reference_loss_db=40.0, exponent=3.0),
            noise_power_dbm=-110.0,
        )
        # 10 m: loss = 40 + 30 = 70 dB; tx 0 dBm -> rx -70 dBm -> SNR 40 dB
        assert ch.average_snr_db((0.0, 0.0), (10.0, 0.0), 0.0) == pytest.approx(40.0)

    def test_wall_reduces_snr(self):
        base = IndoorChannel(noise_power_dbm=-110.0)
        walled = IndoorChannel(
            walls=[Wall((1.0, -1.0), (1.0, 1.0), 12.0)], noise_power_dbm=-110.0
        )
        clear = base.average_snr_db((0.0, 0.0), (2.0, 0.0), 0.0)
        blocked = walled.average_snr_db((0.0, 0.0), (2.0, 0.0), 0.0)
        assert clear - blocked == pytest.approx(12.0)

    def test_linear_consistent_with_db(self):
        ch = IndoorChannel()
        db = ch.average_snr_db((0.0, 0.0), (5.0, 0.0), -10.0)
        lin = ch.average_snr_linear((0.0, 0.0), (5.0, 0.0), -10.0)
        assert lin == pytest.approx(10 ** (db / 10))

    def test_rejects_coincident_endpoints(self):
        with pytest.raises(ValueError):
            IndoorChannel().link_loss_db((1.0, 1.0), (1.0, 1.0))


class TestShadowingDeterminism:
    def test_same_link_same_draw(self):
        ch = IndoorChannel(shadowing=LogNormalShadowing(sigma_db=6.0))
        a = ch.link_loss_db((0.0, 0.0), (4.0, 1.0))
        b = ch.link_loss_db((0.0, 0.0), (4.0, 1.0))
        assert a == b

    def test_symmetric_in_endpoints(self):
        ch = IndoorChannel(shadowing=LogNormalShadowing(sigma_db=6.0))
        assert ch.link_loss_db((0.0, 0.0), (4.0, 1.0)) == pytest.approx(
            ch.link_loss_db((4.0, 1.0), (0.0, 0.0))
        )


class TestRngDiscipline:
    """Regression for the RP102 fix: shadowing draws flow through as_rng,
    and the library module constructs no generator of its own."""

    def test_shadow_draw_matches_explicit_as_rng_seed(self):
        from repro.utils.rng import as_rng

        ch = IndoorChannel(shadowing=LogNormalShadowing(sigma_db=6.0))
        a, b = (0.0, 0.0), (4.0, 1.0)
        draw = ch._shadow_db(a, b)
        key = tuple(sorted([tuple(np.round(a, 6)), tuple(np.round(b, 6))]))
        seed = abs(hash(key)) % (2**32)
        expected = float(
            LogNormalShadowing(sigma_db=6.0).sample_db(rng=as_rng(seed))
        )
        assert draw == expected

    def test_module_is_rp102_clean(self):
        from pathlib import Path

        from repro.lintkit import lint_source

        source_path = Path(__file__).parent.parent / "src/repro/channel/indoor.py"
        findings = lint_source(
            source_path.read_text(), path=str(source_path)
        )
        assert [f for f in findings if f.rule_id == "RP102"] == []
