"""Pairwise null-steering tests: the delta formula, nulls, gains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beamforming.pairwise import (
    NullSteeringPair,
    pair_amplitude,
    phase_delay_for_null,
)


@pytest.fixture
def pair():
    # Table 1 geometry: 15 m spacing, wavelength 2r
    return NullSteeringPair(st1=(0.0, 7.5), st2=(0.0, -7.5), wavelength=30.0)


class TestDeltaFormula:
    def test_paper_example(self):
        """'delta = pi when r = w and alpha = 0' (Section 5)."""
        assert phase_delay_for_null(1.0, 0.0, 1.0) == pytest.approx(np.pi)

    def test_half_wave_broadside(self):
        # r = w/2, alpha = 90 deg: delta = -pi
        assert phase_delay_for_null(0.5, np.pi / 2, 1.0) == pytest.approx(-np.pi)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            phase_delay_for_null(0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            phase_delay_for_null(1.0, 0.0, -1.0)


class TestPairAmplitude:
    def test_in_phase_doubles(self):
        assert pair_amplitude(1.0, 1.0, 0.0) == pytest.approx(2.0)

    def test_antiphase_cancels(self):
        assert pair_amplitude(1.0, 1.0, np.pi) == pytest.approx(0.0, abs=1e-12)

    def test_unequal_amplitudes(self):
        assert pair_amplitude(2.0, 1.0, np.pi) == pytest.approx(1.0)

    @given(
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=-10.0, max_value=10.0),
    )
    def test_triangle_bounds(self, g1, g2, delta):
        amp = pair_amplitude(g1, g2, delta)
        assert abs(g1 - g2) - 1e-9 <= amp <= g1 + g2 + 1e-9

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pair_amplitude(-1.0, 1.0, 0.0)


class TestNullSteering:
    @given(
        st.floats(min_value=-140.0, max_value=140.0),
        st.floats(min_value=60.0, max_value=150.0),
    )
    @settings(max_examples=40)
    def test_exact_delay_nulls_everywhere(self, x, y_mag):
        pair = NullSteeringPair(st1=(0.0, 7.5), st2=(0.0, -7.5), wavelength=30.0)
        pr = np.array([x, np.copysign(y_mag, x if x != 0 else 1.0)])
        delta = pair.delay_for_null(pr, exact=True)
        assert pair.amplitude_at(pr, delta) < 1e-9

    def test_paper_delay_nulls_far_field_on_axis(self, pair):
        pr = np.array([0.0, -5000.0])  # far away along the baseline
        delta = pair.delay_for_null(pr, exact=False)
        assert pair.amplitude_at(pr, delta) < 1e-3

    def test_paper_delay_small_residual_at_finite_range(self, pair):
        pr = np.array([10.0, -140.0])
        delta = pair.delay_for_null(pr, exact=False)
        residual = pair.amplitude_at(pr, delta)
        assert residual < 0.15  # small leak, the Table 1 regime

    def test_broadside_gain_near_two(self, pair):
        """With the null steered down the baseline, a broadside receiver
        sees nearly the full coherent pair gain."""
        pr = np.array([0.0, -120.0])
        delta = pair.delay_for_null(pr, exact=True)
        sr = np.array([80.0, 0.0])
        assert pair.amplitude_at(sr, delta) > 1.9

    def test_alpha_angle(self, pair):
        # Pr directly below: the St1->Pr and St1->St2 directions coincide
        assert pair.alpha(np.array([0.0, -100.0])) == pytest.approx(0.0, abs=1e-9)
        # Pr directly above: opposite
        assert pair.alpha(np.array([0.0, 100.0])) == pytest.approx(np.pi)

    def test_paper_delta_at_matches_amplitude(self, pair):
        """pair_amplitude(paper_delta_at(...)) equals the exact field."""
        pr = np.array([5.0, -130.0])
        delta = pair.delay_for_null(pr, exact=True)
        point = np.array([60.0, 10.0])
        from_field = pair.amplitude_at(point, delta)
        from_delta = pair_amplitude(1.0, 1.0, pair.paper_delta_at(point, delta))
        assert from_field == pytest.approx(from_delta, rel=1e-9)

    def test_siso_reference_is_unity(self, pair):
        assert pair.siso_reference_amplitude(np.array([50.0, 0.0])) == pytest.approx(1.0)

    def test_default_wavelength_is_twice_spacing(self):
        pair = NullSteeringPair(st1=(0.0, 1.0), st2=(0.0, -1.0), wavelength=4.0)
        assert pair.spacing == pytest.approx(2.0)
        assert pair.wavelength == 4.0

    def test_rejects_coincident_pair(self):
        with pytest.raises(ValueError):
            NullSteeringPair(st1=(1.0, 1.0), st2=(1.0, 1.0), wavelength=2.0)
