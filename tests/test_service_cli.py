"""CLI entry point: argument mapping, subprocess boot, SIGTERM drain."""

import json
import os
import pathlib
import signal
import subprocess
import sys

import pytest

from repro.service.cli import _build_parser, build_config, main

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestArgumentMapping:
    def test_defaults(self):
        config = build_config(_build_parser().parse_args([]))
        assert config.host == "127.0.0.1"
        assert config.port == 8123
        assert config.workers == 2
        assert config.coalesce_ms == 2.0
        assert config.request_log is True

    def test_full_flag_set(self):
        args = _build_parser().parse_args(
            [
                "--host", "0.0.0.0", "--port", "0", "--workers", "4",
                "--coalesce-ms", "7.5", "--max-coalesce", "16",
                "--queue-limit", "3", "--seed", "42",
                "--table-convention", "diversity_only",
                "--max-sweep-points", "100", "--drain-timeout-s", "1.5",
                "--no-request-log",
            ]
        )
        config = build_config(args)
        assert (config.host, config.port, config.workers) == ("0.0.0.0", 0, 4)
        assert config.coalesce_ms == 7.5
        assert config.max_coalesce == 16
        assert config.queue_limit == 3
        assert config.seed == 42
        assert config.table_convention == "diversity_only"
        assert config.max_sweep_points == 100
        assert config.drain_timeout_s == 1.5
        assert config.request_log is False

    def test_invalid_value_exits_2(self, capsys):
        assert main(["--workers", "-1"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_unknown_convention_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["--table-convention", "bogus"])


class TestSubprocess:
    def test_boot_announce_query_and_graceful_sigterm(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--port", "0", "--workers", "0", "--coalesce-ms", "1",
                "--seed", "5", "--quiet",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            announced = json.loads(line)
            assert announced["event"] == "listening"
            assert announced["port"] > 0

            from repro.service.client import ServiceClient

            client = ServiceClient(
                announced["host"], announced["port"], timeout_s=60.0
            )
            assert client.healthz() == {"status": "ok"}
            assert client.ebar(0.001, 2, 2, 2)["e_bar"] > 0.0

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
