"""Unit-lattice algebra and converter round-trip properties.

Two halves, both feeding the RP3xx dimensional-analysis tier:

* property-based round trips for every converter pair in
  :mod:`repro.utils.units` — the transfer functions the checker trusts
  (``CONVERTERS``) must actually be inverses/aliases of each other;
* algebraic laws of the abstract domain in
  :mod:`repro.lintkit.unittypes` — join is commutative and idempotent,
  UNKNOWN absorbs through every operation (the no-false-positive
  guarantee), and the arithmetic tables match the physics.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lintkit import unittypes as ut
from repro.utils.units import (
    amplitude_ratio_to_db,
    db_to_amplitude_ratio,
    db_to_linear,
    dbi_to_linear,
    dbm_per_hz_to_watts_per_hz,
    dbm_to_watts,
    linear_to_db,
    milliwatts_to_watts,
    watts_to_dbm,
)

DB_VALUES = st.floats(min_value=-200.0, max_value=200.0)
POSITIVE = st.floats(min_value=1e-12, max_value=1e12)


class TestConverterRoundTrips:
    @given(DB_VALUES)
    def test_db_linear_db(self, x):
        assert linear_to_db(db_to_linear(x)) == pytest.approx(x, abs=1e-9)

    @given(POSITIVE)
    def test_linear_db_linear(self, r):
        assert db_to_linear(linear_to_db(r)) == pytest.approx(r, rel=1e-9)

    @given(DB_VALUES)
    def test_dbm_watts_dbm(self, x):
        assert watts_to_dbm(dbm_to_watts(x)) == pytest.approx(x, abs=1e-9)

    @given(POSITIVE)
    def test_watts_dbm_watts(self, w):
        assert dbm_to_watts(watts_to_dbm(w)) == pytest.approx(w, rel=1e-9)

    @given(DB_VALUES)
    def test_amplitude_db_amplitude(self, x):
        assert amplitude_ratio_to_db(db_to_amplitude_ratio(x)) == pytest.approx(
            x, abs=1e-9
        )

    @given(POSITIVE)
    def test_db_amplitude_db(self, r):
        assert db_to_amplitude_ratio(amplitude_ratio_to_db(r)) == pytest.approx(
            r, rel=1e-9
        )

    @given(DB_VALUES)
    def test_dbi_round_trips_through_linear_to_db(self, x):
        # dBi has no dedicated inverse; it is dB relative to isotropic, so
        # linear_to_db must undo it exactly.
        assert linear_to_db(dbi_to_linear(x)) == pytest.approx(x, abs=1e-9)

    @given(DB_VALUES)
    def test_psd_converter_matches_dbm_to_watts(self, x):
        # Same numeric transform, different unit bookkeeping.
        assert dbm_per_hz_to_watts_per_hz(x) == dbm_to_watts(x)

    @given(POSITIVE)
    def test_milliwatts_to_watts_round_trip(self, mw):
        assert float(milliwatts_to_watts(mw)) * 1e3 == pytest.approx(mw, rel=1e-12)

    @given(POSITIVE)
    def test_power_vs_amplitude_factor_two(self, r):
        # 20 log10(r) == 2 * 10 log10(r): amplitude dB is twice power dB.
        assert amplitude_ratio_to_db(r) == pytest.approx(
            2.0 * linear_to_db(r), rel=1e-12, abs=1e-9
        )


KNOWN_UNITS = sorted(ut.UNITS)
unit_strategy = st.sampled_from([ut.UNITS[name] for name in KNOWN_UNITS])
unit_or_unknown = st.one_of(unit_strategy, st.just(ut.UNKNOWN))


class TestJoin:
    @given(unit_or_unknown)
    def test_idempotent(self, a):
        assert ut.join(a, a) == a

    @given(unit_or_unknown, unit_or_unknown)
    def test_commutative(self, a, b):
        assert ut.join(a, b) == ut.join(b, a)

    @given(unit_or_unknown)
    def test_unknown_is_top(self, a):
        assert ut.join(a, ut.UNKNOWN).is_unknown

    @given(unit_or_unknown, unit_or_unknown)
    def test_join_never_invents(self, a, b):
        joined = ut.join(a, b)
        assert joined in (a, b) or joined.is_unknown


class TestAbsorption:
    """UNKNOWN must pass through every operation without an error."""

    @given(unit_or_unknown)
    def test_add(self, a):
        for op in (ut.add_units(a, ut.UNKNOWN), ut.add_units(ut.UNKNOWN, a)):
            assert op.unit.is_unknown and op.error is None

    @given(unit_or_unknown)
    def test_mul(self, a):
        for op in (ut.mul_units(a, ut.UNKNOWN), ut.mul_units(ut.UNKNOWN, a)):
            assert op.unit.is_unknown and op.error is None

    @given(unit_or_unknown)
    def test_div(self, a):
        for op in (ut.div_units(a, ut.UNKNOWN), ut.div_units(ut.UNKNOWN, a)):
            assert op.unit.is_unknown and op.error is None


DB_UNITS = [u for u in ut.UNITS.values() if u.domain == ut.DB_DOMAIN]
LINEAR_UNITS = [u for u in ut.UNITS.values() if u.domain == ut.LINEAR_DOMAIN]


class TestArithmeticTables:
    @given(st.sampled_from(DB_UNITS), st.sampled_from(LINEAR_UNITS))
    def test_cross_domain_addition_is_error(self, db_unit, lin_unit):
        assert ut.add_units(db_unit, lin_unit).error is not None
        assert ut.add_units(lin_unit, db_unit, is_sub=True).error is not None

    @given(st.sampled_from(DB_UNITS), st.sampled_from(LINEAR_UNITS))
    def test_cross_domain_product_is_error(self, db_unit, lin_unit):
        assert ut.mul_units(db_unit, lin_unit).error is not None
        assert ut.div_units(lin_unit, db_unit).error is not None

    @given(st.sampled_from(DB_UNITS), st.sampled_from(DB_UNITS))
    def test_db_product_is_error(self, a, b):
        assert ut.mul_units(a, b).error is not None

    def test_relative_db_offsets_absolute_levels(self):
        dbm, db = ut.UNITS["dbm"], ut.UNITS["db"]
        assert ut.add_units(dbm, db).unit == dbm
        assert ut.add_units(db, dbm).unit == dbm
        assert ut.add_units(dbm, db, is_sub=True).unit == dbm

    def test_absolute_difference_is_relative_db(self):
        dbm = ut.UNITS["dbm"]
        assert ut.add_units(dbm, dbm, is_sub=True).unit == ut.UNITS["db"]

    def test_relative_quotient_is_ratio(self):
        db = ut.UNITS["db"]
        op = ut.div_units(db, db)
        assert op.error is None and op.unit == ut.UNITS["ratio"]

    def test_physical_products(self):
        w, s, j = ut.UNITS["watts"], ut.UNITS["seconds"], ut.UNITS["joules"]
        whz, hz = ut.UNITS["watts_per_hz"], ut.UNITS["hertz"]
        assert ut.mul_units(w, s).unit == j
        assert ut.mul_units(s, w).unit == j  # symmetric
        assert ut.mul_units(whz, hz).unit == w
        assert ut.div_units(j, s).unit == w
        assert ut.div_units(j, w).unit == s
        assert ut.div_units(w, hz).unit == whz

    def test_equal_linear_units_cancel(self):
        w = ut.UNITS["watts"]
        op = ut.div_units(w, w)
        assert op.unit == ut.UNITS["ratio"] and op.error is None

    @given(st.sampled_from(LINEAR_UNITS))
    def test_ratio_is_transparent(self, a):
        ratio = ut.UNITS["ratio"]
        assert ut.mul_units(a, ratio).unit == a
        assert ut.mul_units(ratio, a).unit == a
        assert ut.div_units(a, ratio).unit == a

    def test_per_bit_energy_stays_joules(self):
        # Repo convention: e_bar_b is carried in J throughout.
        assert ut.div_units(ut.UNITS["joules"], ut.UNITS["bits"]).unit == ut.UNITS[
            "joules"
        ]


class TestVocabulary:
    @pytest.mark.parametrize(
        "identifier, expected",
        [
            ("snr_db", "db"),
            ("power_dbm", "dbm"),
            ("gain_dbi", "dbi"),
            ("n0_dbm_hz", "dbm_per_hz"),
            ("noise_w", "watts"),
            ("p_ct_mw", "milliwatts"),
            ("sigma2_w_hz", "watts_per_hz"),
            ("energy_j", "joules"),
            ("t_tr_s", "seconds"),
            ("distance_m", "meters"),
            ("bandwidth_hz", "hertz"),
            ("packet_bits", "bits"),
            ("margin_linear", "ratio"),
        ],
    )
    def test_suffix_convention(self, identifier, expected):
        assert ut.suffix_unit(identifier).name == expected

    def test_bare_suffix_is_not_a_match(self):
        # "_db" alone (or "_m") carries no stem to name; treat as unknown.
        assert ut.suffix_unit("_db").is_unknown

    def test_unsuffixed_is_unknown(self):
        assert ut.suffix_unit("value").is_unknown

    def test_longest_suffix_wins(self):
        # _dbm must not be parsed as the _m (meters) suffix.
        assert ut.suffix_unit("x_dbm").name == "dbm"
        assert ut.suffix_unit("x_dbm_hz").name == "dbm_per_hz"

    def test_every_alias_has_all_three_variants(self):
        for base in ("DB", "DBm", "Watts", "Joules", "Meters", "Bits"):
            for variant in (base, base + "Like", base + "Array"):
                name = ut.annotation_unit_name(variant)
                assert name in ut.UNITS, variant

    def test_unknown_alias_is_empty(self):
        assert ut.annotation_unit_name("Float64") == ""

    def test_alias_units_agree_with_runtime_specs(self):
        # The lattice's alias table must match the Annotated metadata the
        # aliases actually carry at runtime.
        import typing

        from repro.utils import units as u

        for alias, unit_name in ut.ANNOTATION_UNITS.items():
            obj = getattr(u, alias, None)
            if obj is None:
                continue  # not every Array variant is exported
            spec = typing.get_args(obj)[1]
            assert isinstance(spec, u.UnitSpec)
            assert spec.name == unit_name
