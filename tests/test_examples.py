"""Smoke tests for the runnable examples.

The fast examples run end-to-end as subprocesses (the README promises they
work); the slow ones are import-checked for syntax/API drift.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "interweave_beamforming.py", "spectrum_sensing.py"]
SLOW_EXAMPLES = [
    "overlay_relay_testbed.py",
    "underlay_multihop_image.py",
    "network_lifetime.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert len(result.stdout.splitlines()) > 5


@pytest.mark.parametrize("name", FAST_EXAMPLES + SLOW_EXAMPLES)
def test_example_compiles(name):
    path = EXAMPLES_DIR / name
    source = path.read_text()
    compile(source, str(path), "exec")


def test_every_example_is_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES + SLOW_EXAMPLES)
