"""WorkerPool: inline mode, process mode, depth limit and 429 backpressure."""

import asyncio
import time

import pytest

from repro.service.errors import OverloadedError
from repro.service.metrics import Metrics
from repro.service.pool import WorkerPool


def _square(x):
    return x * x


def _slow_square(x):
    time.sleep(0.3)
    return x * x


def run(coro):
    return asyncio.run(coro)


class TestInline:
    def test_workers_zero_runs_inline(self):
        pool = WorkerPool(workers=0, queue_limit=4)

        async def main():
            return await pool.submit(_square, 7)

        assert run(main()) == 49
        pool.shutdown()

    def test_depth_returns_to_zero(self):
        metrics = Metrics()
        pool = WorkerPool(workers=0, queue_limit=4, metrics=metrics)

        async def main():
            await pool.submit(_square, 3)

        run(main())
        assert pool.depth == 0
        snap = metrics.snapshot()
        assert snap["pool"]["completed"] == 1
        assert snap["pool"]["peak_depth"] == 1
        pool.shutdown()


class TestProcessPool:
    def test_result_matches_inline(self):
        pool = WorkerPool(workers=1, queue_limit=4)

        async def main():
            return await pool.submit(_square, 9)

        try:
            assert run(main()) == 81
        finally:
            pool.shutdown()

    def test_queue_limit_raises_429(self):
        metrics = Metrics()
        pool = WorkerPool(workers=1, queue_limit=1, metrics=metrics)

        async def main():
            first = asyncio.ensure_future(pool.submit(_slow_square, 2))
            await asyncio.sleep(0.05)  # first task now occupies the only slot
            with pytest.raises(OverloadedError):
                await pool.submit(_slow_square, 3)
            return await first

        try:
            assert run(main()) == 4
        finally:
            pool.shutdown()
        assert metrics.snapshot()["pool"]["rejected"] == 1

    def test_exception_propagates_and_frees_slot(self):
        pool = WorkerPool(workers=1, queue_limit=1)

        async def main():
            with pytest.raises(ZeroDivisionError):
                await pool.submit(_divide, 1, 0)
            return await pool.submit(_divide, 8, 2)

        try:
            assert run(main()) == 4
        finally:
            pool.shutdown()


def _divide(a, b):
    return a // b


class TestValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=-1, queue_limit=1)

    def test_zero_queue_limit_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0, queue_limit=0)
