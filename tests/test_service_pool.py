"""WorkerPool: inline mode, process mode, depth limit, 429 backpressure,
and supervision of killed worker processes."""

import asyncio
import os
import signal
import time

import pytest

from repro.service.errors import OverloadedError
from repro.service.metrics import Metrics
from repro.service.pool import WorkerPool


def _square(x):
    return x * x


def _slow_square(x):
    time.sleep(0.3)
    return x * x


def run(coro):
    return asyncio.run(coro)


class TestInline:
    def test_workers_zero_runs_inline(self):
        pool = WorkerPool(workers=0, queue_limit=4)

        async def main():
            return await pool.submit(_square, 7)

        assert run(main()) == 49
        pool.shutdown()

    def test_depth_returns_to_zero(self):
        metrics = Metrics()
        pool = WorkerPool(workers=0, queue_limit=4, metrics=metrics)

        async def main():
            await pool.submit(_square, 3)

        run(main())
        assert pool.depth == 0
        snap = metrics.snapshot()
        assert snap["pool"]["completed"] == 1
        assert snap["pool"]["peak_depth"] == 1
        pool.shutdown()


class TestProcessPool:
    def test_result_matches_inline(self):
        pool = WorkerPool(workers=1, queue_limit=4)

        async def main():
            return await pool.submit(_square, 9)

        try:
            assert run(main()) == 81
        finally:
            pool.shutdown()

    def test_queue_limit_raises_429(self):
        metrics = Metrics()
        pool = WorkerPool(workers=1, queue_limit=1, metrics=metrics)

        async def main():
            first = asyncio.ensure_future(pool.submit(_slow_square, 2))
            await asyncio.sleep(0.05)  # first task now occupies the only slot
            with pytest.raises(OverloadedError):
                await pool.submit(_slow_square, 3)
            return await first

        try:
            assert run(main()) == 4
        finally:
            pool.shutdown()
        assert metrics.snapshot()["pool"]["rejected"] == 1

    def test_exception_propagates_and_frees_slot(self):
        pool = WorkerPool(workers=1, queue_limit=1)

        async def main():
            with pytest.raises(ZeroDivisionError):
                await pool.submit(_divide, 1, 0)
            return await pool.submit(_divide, 8, 2)

        try:
            assert run(main()) == 4
        finally:
            pool.shutdown()


def _divide(a, b):
    return a // b


class TestValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=-1, queue_limit=1)

    def test_zero_queue_limit_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0, queue_limit=0)

    def test_negative_restart_budget_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=1, queue_limit=1, max_restarts=-1)


def _die_once(flag_path, main_pid):
    """SIGKILL the hosting worker on the first run, succeed afterwards.

    The flag file is cross-process state: the first worker to run this
    creates it and dies, the retry (in a fresh worker) sees it and returns.
    Inline execution (``os.getpid() == main_pid``) never kills, so a
    degraded pool running this inline survives.
    """
    if os.getpid() == main_pid:
        return "inline"
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return "retried"


def _die_always(main_pid):
    """SIGKILL every worker that runs this; succeed only inline."""
    if os.getpid() != main_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return "inline"


class TestSupervision:
    def test_killed_worker_restarts_pool_and_retries_task(self, tmp_path):
        metrics = Metrics()
        pool = WorkerPool(workers=1, queue_limit=4, metrics=metrics, max_restarts=3)
        flag = str(tmp_path / "died-once")

        async def main():
            return await pool.submit(_die_once, flag, os.getpid())

        try:
            assert run(main()) == "retried"
        finally:
            pool.shutdown()
        assert pool.degraded is False
        assert pool.restarts_used == 1
        snap = metrics.snapshot()
        assert snap["pool"]["restarts"] == 1
        assert snap["pool"]["task_retries"] == 1
        assert snap["pool"]["degraded_requests"] == 0

    def test_pool_still_works_after_a_restart(self, tmp_path):
        pool = WorkerPool(workers=1, queue_limit=4, max_restarts=3)
        flag = str(tmp_path / "died-once")

        async def main():
            first = await pool.submit(_die_once, flag, os.getpid())
            second = await pool.submit(_square, 6)
            return first, second

        try:
            assert run(main()) == ("retried", 36)
        finally:
            pool.shutdown()

    def test_exhausted_budget_latches_degraded_inline_mode(self):
        metrics = Metrics()
        pool = WorkerPool(workers=1, queue_limit=4, metrics=metrics, max_restarts=1)

        async def main():
            first = await pool.submit(_die_always, os.getpid())
            second = await pool.submit(_square, 5)
            return first, second

        try:
            # One restart is spent on the retry, which also dies; the task
            # finishes inline and the pool latches degraded.
            assert run(main()) == ("inline", 25)
        finally:
            pool.shutdown()
        assert pool.degraded is True
        assert pool.restarts_used == 1
        snap = metrics.snapshot()
        assert snap["pool"]["restarts"] == 1
        assert snap["pool"]["degraded_requests"] == 2  # victim + follow-up
        assert snap["pool"]["completed"] == 2

    def test_zero_budget_degrades_without_any_restart(self):
        metrics = Metrics()
        pool = WorkerPool(workers=1, queue_limit=4, metrics=metrics, max_restarts=0)

        async def main():
            return await pool.submit(_die_always, os.getpid())

        try:
            assert run(main()) == "inline"
        finally:
            pool.shutdown()
        assert pool.degraded is True
        assert pool.restarts_used == 0
        assert metrics.snapshot()["pool"]["restarts"] == 0

    def test_workers_zero_is_not_degraded(self):
        pool = WorkerPool(workers=0, queue_limit=4)
        assert pool.degraded is False
        pool.shutdown()
