"""Metrics counters and the latency histogram."""

import pytest

from repro.service.metrics import LatencyHistogram, Metrics


class TestLatencyHistogram:
    def test_empty_quantiles_are_zero(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.count == 0

    def test_quantiles_bracket_observations(self):
        hist = LatencyHistogram(bounds_ms=(1.0, 10.0, 100.0))
        for _ in range(100):
            hist.observe(5.0)
        p50 = hist.quantile(0.5)
        assert 1.0 <= p50 <= 10.0  # within the bucket holding every sample

    def test_overflow_bucket_reports_max(self):
        hist = LatencyHistogram(bounds_ms=(1.0,))
        hist.observe(500.0)
        assert hist.quantile(0.99) == 500.0
        snap = hist.snapshot()
        assert snap["buckets"]["overflow"] == 1
        assert snap["max_ms"] == 500.0

    def test_snapshot_counts_and_sum(self):
        hist = LatencyHistogram()
        hist.observe(1.0)
        hist.observe(3.0)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["sum_ms"] == pytest.approx(4.0)
        assert set(snap) >= {"p50_ms", "p95_ms", "p99_ms", "buckets"}

    def test_invalid_inputs_rejected(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            LatencyHistogram(bounds_ms=())
        with pytest.raises(ValueError):
            LatencyHistogram(bounds_ms=(0.0, 1.0))


class TestMetrics:
    def test_request_response_counters(self):
        metrics = Metrics()
        metrics.record_request("/v1/ebar")
        metrics.record_request("/v1/ebar")
        metrics.record_request("/healthz")
        metrics.record_response(200, 1.0)
        metrics.record_response(404, 0.5)
        snap = metrics.snapshot()
        assert snap["requests_total"] == 3
        assert snap["requests_by_endpoint"] == {"/v1/ebar": 2, "/healthz": 1}
        assert snap["responses_by_status"] == {"200": 1, "404": 1}
        assert snap["latency_ms"]["count"] == 2

    def test_batch_statistics(self):
        metrics = Metrics()
        metrics.observe_batch(1)
        metrics.observe_batch(3)
        assert metrics.mean_batch_size() == pytest.approx(2.0)
        snap = metrics.snapshot()
        assert snap["coalesce"] == {
            "batches": 2,
            "requests": 4,
            "mean_batch_size": 2.0,
            "max_batch_size": 3,
        }
        with pytest.raises(ValueError):
            metrics.observe_batch(0)

    def test_cache_and_pool_counters(self):
        metrics = Metrics()
        metrics.cache_hit()
        metrics.cache_miss()
        metrics.pool_enter()
        metrics.pool_enter()
        metrics.pool_exit()
        metrics.pool_reject()
        snap = metrics.snapshot()
        assert snap["ebar_cache"] == {"hits": 1, "misses": 1}
        assert snap["pool"]["depth"] == 1
        assert snap["pool"]["peak_depth"] == 2
        assert snap["pool"]["completed"] == 1
        assert snap["pool"]["rejected"] == 1
        assert metrics.pool_depth == 1
