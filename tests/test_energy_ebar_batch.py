"""Equivalence of the vectorized ``solve_ebar_batch`` with ``solve_ebar``.

The batch solver is the table builder's workhorse, so these tests pin the
contract it must keep with the scalar reference: identical roots (to the
solvers' tolerance) wherever the scalar succeeds, and NaN exactly where the
scalar raises.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.ebar import CONVENTIONS, solve_ebar, solve_ebar_batch

bers = st.sampled_from([0.1, 0.05, 0.01, 0.005, 0.001, 0.0005])
b_values = st.integers(min_value=1, max_value=16)
m_values = st.integers(min_value=1, max_value=4)
n0_values = st.sampled_from([10.0 ** (-171.0 / 10.0) * 1e-3, 1e-17, 5e-18])
conventions = st.sampled_from(CONVENTIONS)


class TestScalarEquivalence:
    @given(bers, b_values, m_values, m_values, n0_values, conventions)
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_solver(self, p, b, mt, mr, n0, convention):
        batch = solve_ebar_batch(p, b, mt, mr, n0=n0, convention=convention)
        try:
            scalar = solve_ebar(p, b, mt, mr, n0=n0, convention=convention)
        except ValueError:
            assert np.isnan(batch), (
                f"scalar raises but batch returned {batch} at "
                f"(p={p}, b={b}, mt={mt}, mr={mr})"
            )
            return
        assert float(batch) == pytest.approx(scalar, rel=1e-9)

    def test_full_product_sweep(self):
        """Dense deterministic cross-check over the paper's grid corners."""
        p = np.array([0.1, 0.005, 0.0005])
        b = np.array([1, 4, 16])
        mt = np.array([1, 4])
        mr = np.array([1, 4])
        p_g, b_g, mt_g, mr_g = np.meshgrid(p, b, mt, mr, indexing="ij")
        for convention in CONVENTIONS:
            grid = solve_ebar_batch(p_g, b_g, mt_g, mr_g, convention=convention)
            for idx in np.ndindex(grid.shape):
                args = (
                    float(p_g[idx]),
                    int(b_g[idx]),
                    int(mt_g[idx]),
                    int(mr_g[idx]),
                )
                try:
                    expected = solve_ebar(*args, convention=convention)
                except ValueError:
                    assert np.isnan(grid[idx])
                else:
                    assert grid[idx] == pytest.approx(expected, rel=1e-9)


class TestMasking:
    def test_infeasible_points_are_nan(self):
        # b = 4: Gray-QAM a = 0.75, ceiling a/2 = 0.375 < 0.4
        out = solve_ebar_batch(np.array([0.4, 0.001]), 4, 1, 1)
        assert np.isnan(out[0])
        assert np.isfinite(out[1])

    def test_degenerate_probabilities_are_nan(self):
        out = solve_ebar_batch(np.array([0.0, 1.0, 0.001]), 2, 1, 1)
        assert np.isnan(out[0]) and np.isnan(out[1])
        assert np.isfinite(out[2])


class TestBroadcasting:
    def test_shapes_broadcast(self):
        p = np.array([0.01, 0.001])[:, None]
        b = np.array([1, 2, 4])[None, :]
        out = solve_ebar_batch(p, b, 2, 2)
        assert out.shape == (2, 3)
        for i, p_i in enumerate((0.01, 0.001)):
            for j, b_j in enumerate((1, 2, 4)):
                assert out[i, j] == pytest.approx(
                    solve_ebar(p_i, b_j, 2, 2), rel=1e-9
                )

    def test_scalar_inputs_give_scalar_array(self):
        out = solve_ebar_batch(0.001, 2, 2, 2)
        assert np.ndim(out) == 0
        assert float(out) == pytest.approx(solve_ebar(0.001, 2, 2, 2), rel=1e-9)


class TestValidation:
    def test_non_integer_b_rejected(self):
        with pytest.raises(ValueError):
            solve_ebar_batch(0.001, np.array([1.5]), 1, 1)

    def test_b_below_one_rejected(self):
        with pytest.raises(ValueError):
            solve_ebar_batch(0.001, 0, 1, 1)

    def test_non_positive_m_rejected(self):
        with pytest.raises(ValueError):
            solve_ebar_batch(0.001, 2, 0, 1)
        with pytest.raises(ValueError):
            solve_ebar_batch(0.001, 2, 1, -1)

    def test_bad_n0_rejected(self):
        with pytest.raises(ValueError):
            solve_ebar_batch(0.001, 2, 1, 1, n0=0.0)

    def test_bad_convention_rejected(self):
        with pytest.raises(ValueError):
            solve_ebar_batch(0.001, 2, 1, 1, convention="nope")
