"""Route-planning tests: Pareto fronts and the latency-energy knapsack."""

import itertools

import pytest

from repro.core.planning import HopOption, RoutePlan, hop_options, plan_route
from repro.energy.model import EnergyModel
from repro.network.comimonet import CooperativeLink


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


def _link(mt=3, mr=3, length=180.0, tx=0, rx=1):
    return CooperativeLink(
        tx_cluster_id=tx, rx_cluster_id=rx, mt=mt, mr=mr, length_m=length
    )


BANDWIDTH = 10e3
P = 0.001
N_BITS = 100_000.0
D_LOCAL = 2.0


class TestHopOptions:
    def test_pareto_front_is_sorted_and_undominated(self, model):
        options = hop_options(model, _link(), D_LOCAL, BANDWIDTH, P, N_BITS)
        times = [o.time_s for o in options]
        energies = [o.energy_j for o in options]
        assert times == sorted(times)
        # energy strictly decreases along the time-sorted frontier
        assert all(e2 < e1 for e1, e2 in zip(energies, energies[1:]))

    def test_includes_both_modes(self, model):
        options = hop_options(model, _link(), D_LOCAL, BANDWIDTH, P, N_BITS)
        modes = {(o.mt, o.mr) for o in options}
        assert (1, 1) in modes or (3, 3) in modes
        # with allow_siso=False only the cooperative mode appears
        coop_only = hop_options(
            model, _link(), D_LOCAL, BANDWIDTH, P, N_BITS, allow_siso=False
        )
        assert {(o.mt, o.mr) for o in coop_only} == {(3, 3)}

    def test_siso_link_has_single_mode(self, model):
        options = hop_options(model, _link(mt=1, mr=1), D_LOCAL, BANDWIDTH, P, N_BITS)
        assert {(o.mt, o.mr) for o in options} == {(1, 1)}


class TestPlanRoute:
    def _route(self):
        return [_link(tx=0, rx=1), _link(tx=1, rx=2, length=150.0)]

    def test_unconstrained_picks_cheapest(self, model):
        plan = plan_route(model, self._route(), D_LOCAL, BANDWIDTH, P, N_BITS)
        assert plan.feasible
        for link, choice in zip(self._route(), plan.choices):
            options = hop_options(model, link, D_LOCAL, BANDWIDTH, P, N_BITS)
            assert choice.energy_j == pytest.approx(
                min(o.energy_j for o in options)
            )

    def test_budget_respected(self, model):
        relaxed = plan_route(model, self._route(), D_LOCAL, BANDWIDTH, P, N_BITS)
        budget = relaxed.total_time_s * 0.5
        plan = plan_route(
            model, self._route(), D_LOCAL, BANDWIDTH, P, N_BITS, latency_budget_s=budget
        )
        assert plan.feasible
        assert plan.total_time_s <= budget + 1e-9

    def test_tighter_budget_costs_more_energy(self, model):
        relaxed = plan_route(model, self._route(), D_LOCAL, BANDWIDTH, P, N_BITS)
        tight = plan_route(
            model,
            self._route(),
            D_LOCAL,
            BANDWIDTH,
            P,
            N_BITS,
            latency_budget_s=relaxed.total_time_s * 0.4,
        )
        assert tight.feasible
        assert tight.total_energy_j >= relaxed.total_energy_j

    def test_impossible_budget_infeasible(self, model):
        plan = plan_route(
            model, self._route(), D_LOCAL, BANDWIDTH, P, N_BITS, latency_budget_s=1e-6
        )
        assert not plan.feasible
        assert plan.choices == ()

    def test_matches_brute_force(self, model):
        """DP result equals exhaustive search on a 2-hop route."""
        route = self._route()
        per_hop = [
            hop_options(model, link, D_LOCAL, BANDWIDTH, P, N_BITS) for link in route
        ]
        relaxed = plan_route(model, route, D_LOCAL, BANDWIDTH, P, N_BITS)
        budget = relaxed.total_time_s * 0.6
        best = None
        for combo in itertools.product(*per_hop):
            t = sum(o.time_s for o in combo)
            e = sum(o.energy_j for o in combo)
            if t <= budget and (best is None or e < best):
                best = e
        plan = plan_route(
            model, route, D_LOCAL, BANDWIDTH, P, N_BITS, latency_budget_s=budget
        )
        assert plan.feasible
        # DP time quantization may force a marginally costlier choice
        assert plan.total_energy_j == pytest.approx(best, rel=0.05)
        assert plan.total_energy_j >= best - 1e-12

    def test_empty_route(self, model):
        plan = plan_route(model, [], D_LOCAL, BANDWIDTH, P, N_BITS)
        assert plan.feasible
        assert plan.total_time_s == 0.0
        assert plan.total_energy_j == 0.0

    def test_plan_types(self, model):
        plan = plan_route(model, self._route(), D_LOCAL, BANDWIDTH, P, N_BITS)
        assert isinstance(plan, RoutePlan)
        assert all(isinstance(c, HopOption) for c in plan.choices)
