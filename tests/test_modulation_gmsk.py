"""GMSK tests: waveform physics and the symbol-level equivalent modem."""

import numpy as np
import pytest

from repro.modulation.gmsk import GMSKModem, GMSKWaveform


class TestModem:
    def test_bt_03_efficiency(self):
        modem = GMSKModem(bt=0.3)
        assert modem.snr_efficiency == pytest.approx(0.89)

    def test_efficiency_increases_with_bt(self):
        # wider filter -> less ISI -> closer to MSK/antipodal
        effs = [GMSKModem(bt=bt).snr_efficiency for bt in (0.2, 0.25, 0.3, 0.5)]
        assert all(b > a for a, b in zip(effs, effs[1:]))

    def test_extreme_bt_clamped(self):
        assert GMSKModem(bt=0.05).snr_efficiency == GMSKModem(bt=0.2).snr_efficiency
        assert GMSKModem(bt=3.0).snr_efficiency == GMSKModem(bt=0.5).snr_efficiency

    def test_rejects_nonpositive_bt(self):
        with pytest.raises(ValueError):
            GMSKModem(bt=0.0)

    def test_roundtrip(self, rng):
        modem = GMSKModem()
        bits = rng.integers(0, 2, 1000, dtype=np.int8)
        np.testing.assert_array_equal(modem.demodulate(modem.modulate(bits)), bits)


class TestWaveform:
    def test_constant_envelope(self, rng):
        wf = GMSKWaveform(bt=0.3, samples_per_symbol=8)
        bits = rng.integers(0, 2, 64)
        samples = wf.modulate(bits)
        np.testing.assert_allclose(np.abs(samples), 1.0, rtol=1e-12)

    def test_phase_continuity(self, rng):
        """No phase jumps: per-sample increments stay below pi/2 / sps * margin."""
        wf = GMSKWaveform(bt=0.3, samples_per_symbol=8)
        bits = rng.integers(0, 2, 64)
        freq = wf.instantaneous_frequency(wf.modulate(bits))
        assert np.max(np.abs(freq)) < np.pi / 2 / 8 * 1.5

    def test_all_ones_gives_steady_rotation(self):
        """A constant bit stream settles to an MSK tone: pi/2 per symbol."""
        wf = GMSKWaveform(bt=0.3, samples_per_symbol=8)
        samples = wf.modulate(np.zeros(40, dtype=int))
        freq = wf.instantaneous_frequency(samples)
        # steady state in the middle of the burst (tiny ripple from the
        # truncated Gaussian pulse tails)
        mid = freq[len(freq) // 3 : 2 * len(freq) // 3]
        np.testing.assert_allclose(mid, np.pi / 2 / 8, rtol=1e-3)

    def test_alternating_bits_lower_deviation_than_msk(self, rng):
        """The Gaussian filter smooths 0101... transitions: the phase
        excursion stays below the full MSK +-pi/2 per symbol."""
        wf = GMSKWaveform(bt=0.3, samples_per_symbol=8)
        alternating = wf.modulate(np.arange(64) % 2)
        freq = wf.instantaneous_frequency(alternating)
        assert np.max(np.abs(freq)) < np.pi / 2 / 8

    def test_narrower_bt_smoother(self, rng):
        bits = (np.arange(64) % 2).astype(int)
        tight = GMSKWaveform(bt=0.2, samples_per_symbol=8)
        loose = GMSKWaveform(bt=0.5, samples_per_symbol=8)
        f_tight = tight.instantaneous_frequency(tight.modulate(bits))
        f_loose = loose.instantaneous_frequency(loose.modulate(bits))
        assert np.max(np.abs(f_tight)) < np.max(np.abs(f_loose))

    def test_output_length(self):
        wf = GMSKWaveform(bt=0.3, samples_per_symbol=4, pulse_span=4)
        samples = wf.modulate(np.zeros(10, dtype=int))
        assert samples.size == (10 + 4) * 4 - 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GMSKWaveform(samples_per_symbol=1)
        with pytest.raises(ValueError):
            GMSKWaveform(pulse_span=0)
        with pytest.raises(ValueError):
            GMSKWaveform(bt=-0.1)
        with pytest.raises(ValueError):
            GMSKWaveform().modulate(np.array([0, 2]))
