"""Interweave system tests: pairing, PU selection, trials."""

import numpy as np
import pytest

from repro.core.interweave import InterweaveSystem, form_pairs


@pytest.fixture
def system():
    return InterweaveSystem(st1=(0.0, 7.5), st2=(0.0, -7.5))


class TestFormPairs:
    def test_even_count_all_paired(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [11.0, 0.0]])
        pairs = form_pairs(pts)
        assert sorted(pairs) == [(0, 1), (2, 3)]

    def test_odd_count_leaves_one_out(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [50.0, 50.0]])
        pairs = form_pairs(pts)
        assert pairs == [(0, 1)]

    def test_empty_and_single(self):
        assert form_pairs(np.zeros((0, 2))) == []
        assert form_pairs(np.array([[1.0, 2.0]])) == []

    def test_closest_pairs_first(self):
        # a tight pair and a looser pair: greedy keeps spacings minimal
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [5.0, 0.0], [7.0, 0.0]])
        pairs = form_pairs(pts)
        assert (0, 1) in pairs
        assert (2, 3) in pairs


class TestPrimarySelection:
    def test_prefers_axis_aligned(self, system):
        candidates = np.array([[100.0, 0.0], [0.0, 100.0]])  # broadside vs axial
        idx, pos = system.pick_primary(candidates)
        assert idx == 1
        np.testing.assert_allclose(pos, [0.0, 100.0])

    def test_prefers_farther_at_same_angle(self, system):
        candidates = np.array([[0.0, -50.0], [0.0, -140.0]])
        idx, _ = system.pick_primary(candidates)
        assert idx == 1

    def test_rejects_empty(self, system):
        with pytest.raises(ValueError):
            system.pick_primary(np.zeros((0, 2)))


class TestTrials:
    def test_trial_fields(self, system):
        candidates = np.array([[0.0, -120.0], [80.0, 10.0]])
        srs = np.array([[60.0, 0.0], [62.0, 3.0]])
        trial = system.run_trial(candidates, srs)
        assert trial.picked_pr == (0.0, -120.0)
        assert trial.siso_amplitude_at_sr == pytest.approx(1.0)
        assert 1.5 < trial.gain_over_siso <= 2.0
        assert trial.residual_at_pr < 0.1

    def test_exact_delay_kills_residual(self, system):
        candidates = np.array([[10.0, -130.0]])
        srs = np.array([[60.0, 0.0]])
        approx = system.run_trial(candidates, srs, exact_delay=False)
        exact = system.run_trial(candidates, srs, exact_delay=True)
        assert exact.residual_at_pr < 1e-9
        assert exact.residual_at_pr <= approx.residual_at_pr

    def test_run_table1_deterministic(self, system):
        a = system.run_table1(n_trials=3, rng=5)
        b = system.run_table1(n_trials=3, rng=5)
        assert [t.picked_pr for t in a] == [t.picked_pr for t in b]
        assert [t.amplitude_at_sr for t in a] == [t.amplitude_at_sr for t in b]

    def test_run_table1_statistics(self, system):
        trials = system.run_table1(n_trials=10, rng=2013)
        gains = [t.gain_over_siso for t in trials]
        assert 1.8 < float(np.mean(gains)) <= 2.0
        assert all(t.residual_at_pr < 0.1 for t in trials)

    def test_wavelength_defaults_to_twice_spacing(self):
        system = InterweaveSystem(st1=(0.0, 2.0), st2=(0.0, -2.0))
        assert system.pair.wavelength == pytest.approx(8.0)

    def test_rejects_coincident_transmitters(self):
        with pytest.raises(ValueError):
            InterweaveSystem(st1=(1.0, 1.0), st2=(1.0, 1.0))
