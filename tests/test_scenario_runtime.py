"""Scenario-runtime tests: determinism, kernel equivalence, dynamics."""

import pytest

from repro.scenario.runtime import ScenarioRuntime, rows_digest
from repro.scenario.spec import ChurnSpec, ScenarioSpec, TrafficClass

FAST = ScenarioSpec(
    n_nodes=30,
    arena_m=(400.0, 400.0),
    duration_s=20.0,
    seed=11,
    snapshot_interval_s=5.0,
)

CHURNY = ScenarioSpec(
    n_nodes=25,
    arena_m=(300.0, 300.0),
    duration_s=30.0,
    seed=3,
    churn=ChurnSpec(leave_rate_per_node_s=0.01, join_rate_per_s=0.4),
    snapshot_interval_s=10.0,
)


def run_rows(spec):
    return list(ScenarioRuntime(spec).run())


class TestShape:
    def test_snapshot_cadence_and_summary(self):
        rows = run_rows(FAST)
        snapshots = [r for r in rows if r["row"] == "snapshot"]
        assert len(snapshots) == 4  # 20 s at 5 s intervals
        assert [r["t_s"] for r in snapshots] == [5.0, 10.0, 15.0, 20.0]
        assert rows[-1]["row"] == "summary"

    def test_snapshot_fields(self):
        row = run_rows(FAST)[0]
        for key in (
            "t_s",
            "events_processed",
            "events_per_sim_s",
            "present_nodes",
            "live_nodes",
            "clusters",
            "mean_residual_j",
            "offered",
            "delivered",
            "delivery_ratio",
            "dropped",
            "mean_latency_ms",
            "joins",
            "leaves",
        ):
            assert key in row, key

    def test_summary_consistent_with_last_snapshot(self):
        rows = run_rows(FAST)
        last, summary = rows[-2], rows[-1]
        assert summary["offered"] == last["offered"]
        assert summary["delivered"] == last["delivered"]
        assert summary["events_processed"] >= last["events_processed"]

    def test_summary_digest_commits_to_snapshots(self):
        rows = run_rows(FAST)
        assert rows[-1]["digest"] == rows_digest(rows[:-1])


class TestDeterminism:
    def test_bit_identical_replay(self):
        assert run_rows(FAST) == run_rows(FAST)

    def test_bit_identical_replay_with_churn(self):
        assert run_rows(CHURNY) == run_rows(CHURNY)

    def test_heap_and_calendar_kernels_agree(self):
        import dataclasses

        heap = run_rows(dataclasses.replace(CHURNY, kernel="heap"))
        cal = run_rows(dataclasses.replace(CHURNY, kernel="calendar"))
        assert heap == cal

    def test_seed_changes_outcome(self):
        import dataclasses

        a = run_rows(FAST)
        b = run_rows(dataclasses.replace(FAST, seed=12))
        assert a != b


class TestDynamics:
    def test_traffic_flows(self):
        summary = run_rows(FAST)[-1]
        assert summary["offered"] > 0
        assert 0 < summary["delivered"] <= summary["offered"]
        drops = summary["dropped"]
        assert summary["delivered"] + sum(drops.values()) == summary["offered"]

    def test_batteries_drain(self):
        rows = run_rows(FAST)
        snapshots = [r for r in rows if r["row"] == "snapshot"]
        assert snapshots[-1]["mean_residual_j"] < snapshots[0]["mean_residual_j"]

    def test_churn_happens(self):
        summary = run_rows(CHURNY)[-1]
        assert summary["joins"] > 0
        assert summary["leaves"] > 0

    def test_tiny_batteries_kill_nodes(self):
        import dataclasses

        spec = dataclasses.replace(FAST, battery_j=0.2)
        summary = run_rows(spec)[-1]
        assert summary["live_nodes"] < FAST.n_nodes

    def test_multi_class_traffic(self):
        import dataclasses

        spec = dataclasses.replace(
            FAST,
            traffic=(
                TrafficClass(name="light", fraction=0.7, rate_per_node_s=0.2),
                TrafficClass(
                    name="heavy", fraction=0.3, rate_per_node_s=1.0, packet_bits=12000
                ),
            ),
        )
        assert run_rows(spec) == run_rows(spec)
        assert run_rows(spec)[-1]["offered"] > 0


class TestDigestHelpers:
    def test_rows_digest_stable(self):
        rows = [{"b": 1, "a": 2.0}, {"x": "y"}]
        assert rows_digest(rows) == rows_digest([dict(reversed(r.items())) for r in rows])

    def test_rows_digest_order_sensitive(self):
        rows = [{"a": 1}, {"a": 2}]
        assert rows_digest(rows) != rows_digest(list(reversed(rows)))


class TestValidationPlumbs:
    def test_spec_validation_reaches_runtime(self):
        with pytest.raises(ValueError):
            ScenarioRuntime(ScenarioSpec(n_nodes=0))
