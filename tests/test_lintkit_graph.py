"""Graph-builder unit tests on synthetic module trees.

The contract under test: resolution is *best effort* — everything the
resolver can identify produces an edge, and everything it cannot (dynamic
dispatch, unknown modules, missing methods, cyclic re-exports) degrades to
``None`` / no edge, never to a crash or a false match.
"""

import ast

import pytest

from repro.lintkit.graph import (
    CallSite,
    ModuleSummary,
    ProjectGraph,
    module_name_for_path,
    summarize_module,
)


def summarize(source, path, is_test=False, root=None):
    return summarize_module(ast.parse(source), path, is_test, root=root)


def build(*modules):
    """modules: (path, source) pairs -> ProjectGraph."""
    return ProjectGraph(summarize(src, path) for path, src in modules)


def call(fn, callee):
    """The first call site of ``fn`` whose callee matches."""
    for site in fn.calls:
        if site.callee == callee:
            return site
    raise AssertionError(f"no call to {callee} in {fn.qualname}: {fn.calls}")


# --------------------------------------------------------------------- #
# Module naming                                                         #
# --------------------------------------------------------------------- #


class TestModuleNames:
    def test_src_rooted(self):
        assert module_name_for_path("src/repro/service/app.py") == "repro.service.app"

    def test_init_names_the_package(self):
        assert module_name_for_path("src/repro/service/__init__.py") == "repro.service"

    def test_explicit_root(self):
        assert module_name_for_path("/tmp/t/pkg/mod.py", root="/tmp/t") == "pkg.mod"

    def test_repro_anchored_without_src(self):
        assert module_name_for_path("repro/energy/ebar.py") == "repro.energy.ebar"


# --------------------------------------------------------------------- #
# Summaries: functions, call sites and their context flags              #
# --------------------------------------------------------------------- #


class TestSummaries:
    def test_methods_and_nested_functions_get_qualnames(self):
        summary = summarize(
            "class C:\n"
            "    def m(self):\n"
            "        def inner():\n"
            "            pass\n"
            "        inner()\n",
            "src/pkg/a.py",
        )
        qualnames = {fn.qualname for fn in summary.functions}
        assert qualnames == {"C.m", "C.m.<locals>.inner"}

    def test_awaited_and_stmt_expr_flags(self):
        summary = summarize(
            "async def f():\n"
            "    await g()\n"
            "    h()\n"
            "    x = k()\n",
            "src/pkg/a.py",
        )
        fn = summary.functions[0]
        assert call(fn, "g").awaited and not call(fn, "g").stmt_expr
        assert call(fn, "h").stmt_expr and not call(fn, "h").awaited
        assert not call(fn, "k").stmt_expr

    def test_offloaded_and_deferred_callables_are_recorded(self):
        summary = summarize(
            "async def f(self):\n"
            "    await pool.submit(work.heavy, req)\n"
            "    loop.call_later(0.1, flush)\n"
            "    functools.partial(solve, x)\n",
            "src/pkg/a.py",
        )
        fn = summary.functions[0]
        assert call(fn, "work.heavy").offloaded
        assert call(fn, "flush").deferred
        assert call(fn, "solve").deferred

    def test_np_load_keywords_captured(self):
        summary = summarize(
            "def f(path):\n"
            "    return np.load(path, mmap_mode='r')\n",
            "src/pkg/a.py",
        )
        assert "mmap_mode" in call(summary.functions[0], "np.load").keywords

    def test_first_arg_none_flag(self):
        summary = summarize(
            "def f():\n"
            "    a = as_rng(None)\n"
            "    b = as_rng(7)\n",
            "src/pkg/a.py",
        )
        sites = [s for s in summary.functions[0].calls if s.callee == "as_rng"]
        assert [s.first_arg_none for s in sites] == [True, False]

    def test_round_trips_through_dicts(self):
        summary = summarize(
            "import os\n"
            "from pkg.b import helper\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = Widget()\n"
            "    async def m(self):\n"
            "        await helper()\n",
            "src/pkg/a.py",
        )
        restored = ModuleSummary.from_dict(summary.to_dict())
        assert restored == summary


# --------------------------------------------------------------------- #
# Resolution                                                            #
# --------------------------------------------------------------------- #


class TestResolution:
    def test_bare_call_to_module_function(self):
        graph = build(("src/pkg/a.py", "def f():\n    g()\n\ndef g():\n    pass\n"))
        fn = graph.function(("pkg.a", "f"))
        assert graph.resolve("pkg.a", fn, "g") == ("pkg.a", "g")

    def test_imported_function(self):
        graph = build(
            ("src/pkg/a.py", "from pkg.b import helper\n\ndef f():\n    helper()\n"),
            ("src/pkg/b.py", "def helper():\n    pass\n"),
        )
        fn = graph.function(("pkg.a", "f"))
        assert graph.resolve("pkg.a", fn, "helper") == ("pkg.b", "helper")

    def test_dotted_module_attribute(self):
        graph = build(
            ("src/pkg/a.py", "from pkg import b\n\ndef f():\n    b.helper()\n"),
            ("src/pkg/b.py", "def helper():\n    pass\n"),
        )
        fn = graph.function(("pkg.a", "f"))
        assert graph.resolve("pkg.a", fn, "b.helper") == ("pkg.b", "helper")

    def test_self_method(self):
        graph = build(
            (
                "src/pkg/a.py",
                "class C:\n"
                "    def f(self):\n"
                "        self.g()\n"
                "    def g(self):\n"
                "        pass\n",
            )
        )
        fn = graph.function(("pkg.a", "C.f"))
        assert graph.resolve("pkg.a", fn, "self.g") == ("pkg.a", "C.g")

    def test_self_attr_method_via_constructor_type(self):
        graph = build(
            (
                "src/pkg/a.py",
                "from pkg.b import Pool\n"
                "class C:\n"
                "    def __init__(self):\n"
                "        self.pool = Pool()\n"
                "    def f(self):\n"
                "        self.pool.submit()\n",
            ),
            (
                "src/pkg/b.py",
                "class Pool:\n"
                "    def submit(self):\n"
                "        pass\n",
            ),
        )
        fn = graph.function(("pkg.a", "C.f"))
        assert graph.resolve("pkg.a", fn, "self.pool.submit") == ("pkg.b", "Pool.submit")

    def test_class_instantiation_resolves_to_init(self):
        graph = build(
            (
                "src/pkg/a.py",
                "from pkg.b import Table\n\ndef f():\n    Table()\n",
            ),
            (
                "src/pkg/b.py",
                "class Table:\n"
                "    def __init__(self):\n"
                "        pass\n",
            ),
        )
        fn = graph.function(("pkg.a", "f"))
        assert graph.resolve("pkg.a", fn, "Table") == ("pkg.b", "Table.__init__")

    def test_inherited_method_through_base(self):
        graph = build(
            (
                "src/pkg/a.py",
                "class Base:\n"
                "    def g(self):\n"
                "        pass\n"
                "class C(Base):\n"
                "    def f(self):\n"
                "        self.g()\n",
            )
        )
        fn = graph.function(("pkg.a", "C.f"))
        assert graph.resolve("pkg.a", fn, "self.g") == ("pkg.a", "Base.g")

    def test_reexport_chase(self):
        graph = build(
            ("src/pkg/__init__.py", "from pkg.impl import helper\n"),
            ("src/pkg/impl.py", "def helper():\n    pass\n"),
            ("src/app/main.py", "from pkg import helper\n\ndef f():\n    helper()\n"),
        )
        fn = graph.function(("app.main", "f"))
        assert graph.resolve("app.main", fn, "helper") == ("pkg.impl", "helper")

    def test_fully_qualified_path(self):
        graph = build(
            ("src/pkg/a.py", "import pkg.b\n\ndef f():\n    pkg.b.helper()\n"),
            ("src/pkg/b.py", "def helper():\n    pass\n"),
        )
        fn = graph.function(("pkg.a", "f"))
        assert graph.resolve("pkg.a", fn, "pkg.b.helper") == ("pkg.b", "helper")


# --------------------------------------------------------------------- #
# Degradation: misses are silent, cycles terminate                      #
# --------------------------------------------------------------------- #


class TestDegradation:
    @pytest.mark.parametrize(
        "callee",
        [
            "unknown",
            "self.nothing",
            "self.attr.method",
            "os.path.join",
            "a.very.deep.unknown.chain",
        ],
    )
    def test_unresolvable_callees_return_none(self, callee):
        graph = build(
            (
                "src/pkg/a.py",
                "class C:\n"
                "    def f(self):\n"
                "        pass\n",
            )
        )
        fn = graph.function(("pkg.a", "C.f"))
        assert graph.resolve("pkg.a", fn, callee) is None

    def test_import_cycle_terminates(self):
        graph = build(
            ("src/pkg/a.py", "from pkg.b import f\n\ndef g():\n    f()\n"),
            ("src/pkg/b.py", "from pkg.a import g\n\ndef f():\n    g()\n"),
        )
        fn = graph.function(("pkg.a", "g"))
        assert graph.resolve("pkg.a", fn, "f") == ("pkg.b", "f")

    def test_cyclic_reexports_hit_hop_bound_not_recursion(self):
        graph = build(
            ("src/pkg/a.py", "from pkg.b import thing\n\ndef f():\n    thing()\n"),
            ("src/pkg/b.py", "from pkg.a import thing\n"),
        )
        fn = graph.function(("pkg.a", "f"))
        assert graph.resolve("pkg.a", fn, "thing") is None

    def test_base_class_cycle_terminates(self):
        graph = build(
            (
                "src/pkg/a.py",
                "class A(B):\n"
                "    def f(self):\n"
                "        self.missing()\n"
                "class B(A):\n"
                "    pass\n",
            )
        )
        fn = graph.function(("pkg.a", "A.f"))
        assert graph.resolve("pkg.a", fn, "self.missing") is None

    def test_call_graph_cycle_in_reachability(self):
        graph = build(
            (
                "src/pkg/a.py",
                "def f():\n    g()\n\ndef g():\n    f()\n",
            )
        )
        parents = graph.reachable([("pkg.a", "f")])
        assert ("pkg.a", "g") in parents
        assert ProjectGraph.chain(parents, ("pkg.a", "g")) == ["f", "g"]

    def test_syntactically_odd_sources_summarize(self):
        # Lambdas, comprehensions, decorators, walrus: no crash required.
        summary = summarize(
            "import functools\n"
            "@functools.wraps(print)\n"
            "def f(xs):\n"
            "    g = lambda v: v + 1\n"
            "    return [g(x) for x in xs if (y := x)]\n",
            "src/pkg/a.py",
        )
        assert summary.functions[0].name == "f"


# --------------------------------------------------------------------- #
# Edges and reachability honour the context flags                       #
# --------------------------------------------------------------------- #


class TestEdges:
    def test_offloaded_edges_are_opt_in(self):
        graph = build(
            (
                "src/pkg/a.py",
                "async def f(pool):\n"
                "    await pool.submit(heavy, 1)\n"
                "\n"
                "def heavy(x):\n"
                "    pass\n",
            )
        )
        key = ("pkg.a", "f")
        targets = {e.target for e in graph.edges(key)}
        assert ("pkg.a", "heavy") not in targets
        targets = {e.target for e in graph.edges(key, include_offloaded=True)}
        assert ("pkg.a", "heavy") in targets

    def test_callsite_validation_rejects_negative_lines(self):
        with pytest.raises(ValueError):
            CallSite(callee="f", line=-1, col=0)
