"""Experiment registry and result-container tests."""

import pytest

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="demo",
        title="demo table",
        columns=("kind", "x", "y"),
        rows=[("a", 1.0, 2.0), ("b", 3.0, 4.0), ("a", 5.0, 6.0)],
        notes="a note",
    )


class TestExperimentResult:
    def test_column(self, result):
        assert result.column("x") == [1.0, 3.0, 5.0]

    def test_column_missing(self, result):
        with pytest.raises(ValueError):
            result.column("z")

    def test_select(self, result):
        rows = result.select(kind="a")
        assert len(rows) == 2
        assert all(r[0] == "a" for r in rows)

    def test_select_multiple_criteria(self, result):
        assert result.select(kind="a", x=5.0) == [("a", 5.0, 6.0)]

    def test_to_text_contains_everything(self, result):
        text = result.to_text()
        assert "demo table" in text
        assert "kind" in text and "x" in text
        assert "a note" in text
        # alignment: all body lines have equal visible width or less
        lines = text.splitlines()
        assert len(lines) >= 6


class TestRegistry:
    def test_all_ids_present(self):
        assert set(EXPERIMENTS) == {
            "fig6",
            "fig7",
            "table1",
            "fig8",
            "table2",
            "table3",
            "table4",
            "ebar",
            "game",
        }

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_modules_importable(self):
        import importlib

        for module_path in EXPERIMENTS.values():
            module = importlib.import_module(module_path)
            assert callable(module.run)
            assert callable(module.check)


class TestSerialization:
    def test_to_json_dict_roundtrips_through_json(self, result):
        import json

        payload = json.dumps(result.to_json_dict())
        parsed = json.loads(payload)
        assert parsed["experiment_id"] == "demo"
        assert parsed["rows"][0] == ["a", 1.0, 2.0]

    def test_tuple_keys_sanitized(self):
        r = ExperimentResult(
            experiment_id="x",
            title="t",
            columns=("a",),
            rows=[(1,)],
            paper_values={(1, 2): 3.0},
        )
        import json

        parsed = json.loads(json.dumps(r.to_json_dict()))
        assert parsed["paper_values"] == {"(1, 2)": 3.0}

    def test_to_csv(self, result):
        lines = result.to_csv().strip().splitlines()
        assert lines[0] == "kind,x,y"
        assert len(lines) == 4

    def test_cli_export_files(self, tmp_path, capsys):
        from repro.experiments.cli import main

        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        assert (
            main(
                [
                    "run",
                    "ebar",
                    "--no-check",
                    "--json",
                    str(json_path),
                    "--csv",
                    str(csv_path),
                ]
            )
            == 0
        )
        assert json_path.exists() and csv_path.exists()
