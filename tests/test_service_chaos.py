"""Chaos-injection tests: kill workers, stall requests, truncate responses.

Every scenario runs the *real* stack — ThreadedServer, asyncio server,
HTTP framing, worker pool — with one deterministic fault armed on the
live :class:`FaultInjector`, then asserts the exact recovery behavior
promised by the resilience layer: supervised pool restarts with
bit-identical retried results, 504 deadlines that never stall the event
loop, degraded inline fallback, and client-side retries over truncated
responses.
"""

import threading
import time

import pytest

from repro.service import work
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.config import ServiceConfig
from repro.service.retry import RetryPolicy
from repro.service.schemas import UnderlayRequest
from repro.service.testing import ThreadedServer

DISTANCES = [float(d) for d in range(40, 140, 5)]
UNDERLAY_ARGS = dict(p=1e-3, mt=2, mr=2, d=5.0, bandwidth=10e3)


def _underlay_direct():
    return work.underlay_rows(
        UnderlayRequest(distances=tuple(DISTANCES), **UNDERLAY_ARGS)
    )


class TestWorkerKill:
    def test_kill_recovers_retries_and_stays_bit_identical(self):
        config = ServiceConfig(
            port=0, workers=1, coalesce_ms=0.0, request_log=False
        )
        with ThreadedServer(config) as server:
            server.service.faults.arm_kill_worker(1)
            payload = server.client().underlay_energy(
                distance=DISTANCES, **UNDERLAY_ARGS
            )
            # The sweep that rode through a SIGKILLed worker must match the
            # direct library call bit for bit.
            assert payload["rows"] == _underlay_direct()
            assert payload["count"] == len(DISTANCES)

            snap = server.client().metrics_snapshot()
            assert snap["pool"]["restarts"] >= 1
            assert snap["pool"]["task_retries"] >= 1
            assert snap["pool"]["degraded_requests"] == 0

            # The pool healed: readiness is back to plain ok and a
            # follow-up sweep flows through the fresh executor.
            assert server.client().healthz() == {"status": "ok"}
            assert server.service.pool.degraded is False
            again = server.client().underlay_energy(
                distance=DISTANCES, **UNDERLAY_ARGS
            )
            assert again["rows"] == payload["rows"]

    def test_exhausted_restart_budget_degrades_but_still_serves(self):
        config = ServiceConfig(
            port=0,
            workers=1,
            coalesce_ms=0.0,
            request_log=False,
            max_pool_restarts=0,
        )
        with ThreadedServer(config) as server:
            server.service.faults.arm_kill_worker(1)
            payload = server.client().underlay_energy(
                distance=DISTANCES, **UNDERLAY_ARGS
            )
            # No budget to restart: the task falls back inline, and the
            # result is still exactly the library answer.
            assert payload["rows"] == _underlay_direct()

            assert server.client().healthz() == {"status": "degraded"}
            snap = server.client().metrics_snapshot()
            assert snap["health"] == "degraded"
            assert snap["pool"]["restarts"] == 0
            assert snap["pool"]["degraded_requests"] >= 1
            assert server.service.pool.degraded is True


class TestDeadline:
    def test_stalled_request_gets_504_without_blocking_the_loop(self):
        config = ServiceConfig(
            port=0,
            workers=0,
            coalesce_ms=0.0,
            request_log=False,
            request_timeout_ms=200.0,
        )
        with ThreadedServer(config) as server:
            server.service.faults.arm_delay(
                5.0, times=1, paths=("/v1/ebar",)
            )
            failures = []

            def stalled():
                try:
                    server.client().ebar(0.001, 2, 2, 2)
                except ServiceClientError as exc:
                    failures.append(exc)

            thread = threading.Thread(target=stalled)
            thread.start()
            time.sleep(0.05)  # the stalled request is now inside its delay

            # A concurrent probe answers while the stall is pending — the
            # injected latency is awaited, not blocking the event loop.
            probe_started = time.monotonic()
            assert server.client().healthz() == {"status": "ok"}
            assert time.monotonic() - probe_started < 2.0

            thread.join(30.0)
            assert len(failures) == 1
            exc = failures[0]
            assert exc.status == 504
            assert exc.payload["error"] == "Gateway Timeout"
            assert exc.payload["status"] == 504
            assert "deadline" in str(exc.payload["detail"])

            snap = server.client().metrics_snapshot()
            assert snap["deadline_timeouts"] == 1

    def test_fast_requests_are_untouched_by_the_deadline(self):
        config = ServiceConfig(
            port=0,
            workers=0,
            coalesce_ms=0.0,
            request_log=False,
            request_timeout_ms=30000.0,
        )
        with ThreadedServer(config) as server:
            payload = server.client().ebar(0.001, 2, 2, 2)
            assert payload["e_bar"] > 0
            assert server.client().metrics_snapshot()["deadline_timeouts"] == 0


class TestAbortedResponse:
    def test_truncated_response_maps_to_transport_failure(self):
        config = ServiceConfig(
            port=0, workers=0, coalesce_ms=0.0, request_log=False
        )
        with ThreadedServer(config) as server:
            server.service.faults.arm_abort(1, paths=("/v1/ebar",))
            with pytest.raises(ServiceClientError) as err:
                server.client().ebar(0.001, 2, 2, 2)
            assert err.value.status == 599
            assert err.value.is_transport_failure

    def test_retry_policy_rides_through_the_abort(self):
        config = ServiceConfig(
            port=0, workers=0, coalesce_ms=0.0, request_log=False
        )
        with ThreadedServer(config) as server:
            server.service.faults.arm_abort(1, paths=("/v1/ebar",))
            sleeps = []
            client = ServiceClient(
                server.config.host,
                server.port,
                retry=RetryPolicy(max_attempts=3, rng=7),
                sleep=sleeps.append,
            )
            payload = client.ebar(0.001, 2, 2, 2)
            # First attempt hit the truncated response, the retry landed.
            assert payload["e_bar"] > 0
            assert len(sleeps) == 1
