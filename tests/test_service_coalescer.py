"""Coalescer semantics: merging, demux, per-item errors, drain."""

import asyncio

import pytest

from repro.service.coalescer import Coalescer


def run(coro):
    return asyncio.run(coro)


class TestMerging:
    def test_concurrent_same_key_submissions_form_one_batch(self):
        calls = []

        def batch_fn(key, items):
            calls.append((key, tuple(items)))
            return [item * 10 for item in items]

        async def main():
            coal = Coalescer(batch_fn, window_s=0.01)
            return await asyncio.gather(
                coal.submit("k", 1), coal.submit("k", 2), coal.submit("k", 3)
            )

        assert run(main()) == [10, 20, 30]
        assert calls == [("k", (1, 2, 3))]

    def test_distinct_keys_do_not_merge(self):
        calls = []

        def batch_fn(key, items):
            calls.append((key, tuple(items)))
            return list(items)

        async def main():
            coal = Coalescer(batch_fn, window_s=0.01)
            return await asyncio.gather(coal.submit("a", 1), coal.submit("b", 2))

        assert run(main()) == [1, 2]
        assert sorted(calls) == [("a", (1,)), ("b", (2,))]

    def test_max_batch_flushes_immediately(self):
        sizes = []

        def batch_fn(key, items):
            sizes.append(len(items))
            return list(items)

        async def main():
            # Generous window: only max_batch can trigger the first flush.
            coal = Coalescer(batch_fn, window_s=5.0, max_batch=2)
            a = asyncio.ensure_future(coal.submit("k", 1))
            b = asyncio.ensure_future(coal.submit("k", 2))
            results = await asyncio.wait_for(asyncio.gather(a, b), timeout=1.0)
            assert coal.pending_groups == 0
            return results

        assert run(main()) == [1, 2]
        assert sizes == [2]

    def test_sequential_submissions_are_separate_batches(self):
        sizes = []

        def batch_fn(key, items):
            sizes.append(len(items))
            return list(items)

        async def main():
            coal = Coalescer(batch_fn, window_s=0.0)
            first = await coal.submit("k", 1)
            second = await coal.submit("k", 2)
            return first, second

        assert run(main()) == (1, 2)
        assert sizes == [1, 1]

    def test_on_batch_hook_sees_sizes(self):
        observed = []

        async def main():
            coal = Coalescer(
                lambda key, items: list(items), window_s=0.01, on_batch=observed.append
            )
            await asyncio.gather(*(coal.submit("k", j) for j in range(4)))

        run(main())
        assert observed == [4]


class TestErrors:
    def test_per_item_exception_only_fails_that_waiter(self):
        def batch_fn(key, items):
            return [
                KeyError("bad item") if item < 0 else item for item in items
            ]

        async def main():
            coal = Coalescer(batch_fn, window_s=0.01)
            return await asyncio.gather(
                coal.submit("k", 1), coal.submit("k", -1), coal.submit("k", 3),
                return_exceptions=True,
            )

        good_a, bad, good_b = run(main())
        assert (good_a, good_b) == (1, 3)
        assert isinstance(bad, KeyError)

    def test_whole_batch_exception_fails_every_waiter(self):
        def batch_fn(key, items):
            raise ValueError("kernel blew up")

        async def main():
            coal = Coalescer(batch_fn, window_s=0.01)
            return await asyncio.gather(
                coal.submit("k", 1), coal.submit("k", 2), return_exceptions=True
            )

        results = run(main())
        assert all(isinstance(r, ValueError) for r in results)

    def test_length_mismatch_is_runtime_error(self):
        async def main():
            coal = Coalescer(lambda key, items: [1, 2, 3], window_s=0.0)
            with pytest.raises(RuntimeError, match="returned 3 results"):
                await coal.submit("k", 1)

        run(main())


class TestDrain:
    def test_flush_all_completes_open_windows_early(self):
        async def main():
            coal = Coalescer(lambda key, items: list(items), window_s=60.0)
            futures = [
                asyncio.ensure_future(coal.submit("k", j)) for j in range(3)
            ]
            await asyncio.sleep(0)  # let submissions register
            assert coal.pending_groups == 1
            coal.flush_all()
            return await asyncio.wait_for(asyncio.gather(*futures), timeout=1.0)

        assert run(main()) == [0, 1, 2]


class TestValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            Coalescer(lambda key, items: list(items), window_s=-1.0)

    def test_zero_max_batch_rejected(self):
        with pytest.raises(ValueError):
            Coalescer(lambda key, items: list(items), window_s=0.0, max_batch=0)
