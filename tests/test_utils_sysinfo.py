"""CPU-derived sizing helpers shared by ``--workers auto``/``--shards auto``."""

import pytest

from repro.utils.sysinfo import (
    available_cpu_count,
    default_shard_count,
    default_worker_count,
)


class TestAvailableCpuCount:
    def test_is_a_positive_int(self):
        count = available_cpu_count()
        assert isinstance(count, int)
        assert count >= 1

    def test_respects_affinity_when_present(self, monkeypatch):
        import repro.utils.sysinfo as sysinfo

        monkeypatch.setattr(
            sysinfo.os, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=False
        )
        assert available_cpu_count() == 3


class TestDerivedDefaults:
    def test_shards_cover_every_available_cpu(self, monkeypatch):
        import repro.utils.sysinfo as sysinfo

        monkeypatch.setattr(
            sysinfo.os, "sched_getaffinity", lambda pid: set(range(8)), raising=False
        )
        assert default_shard_count() == 8

    @pytest.mark.parametrize("cpus,expected", [(1, 1), (2, 1), (8, 7)])
    def test_workers_leave_one_cpu_for_the_event_loop(
        self, monkeypatch, cpus, expected
    ):
        import repro.utils.sysinfo as sysinfo

        monkeypatch.setattr(
            sysinfo.os,
            "sched_getaffinity",
            lambda pid: set(range(cpus)),
            raising=False,
        )
        assert default_worker_count() == expected
