"""QAM modem tests: every b in 2..16, Gray property, normalization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.modulation import modem_for_bits_per_symbol
from repro.modulation.qam import QAMModem


class TestConstruction:
    def test_rejects_b_below_2(self):
        with pytest.raises(ValueError):
            QAMModem(1)

    @pytest.mark.parametrize("b", range(2, 17))
    def test_constellation_size(self, b):
        modem = QAMModem(b)
        assert modem.constellation_size == 2**b
        assert modem.constellation.shape == (2**b,)


class TestNormalization:
    @pytest.mark.parametrize("b", [2, 3, 4, 5, 6, 8, 10])
    def test_unit_average_energy(self, b):
        points = QAMModem(b).constellation
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("b", [2, 4, 6])
    def test_square_qam_symmetric_rails(self, b):
        points = QAMModem(b).constellation
        assert np.mean(points.real**2) == pytest.approx(np.mean(points.imag**2))


class TestRoundTrip:
    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_noiseless_roundtrip(self, b, seed):
        modem = QAMModem(b)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 20 * b, dtype=np.int8)
        np.testing.assert_array_equal(modem.demodulate(modem.modulate(bits)), bits)

    @pytest.mark.parametrize("b", [2, 3, 4, 7, 16])
    def test_all_symbols_distinct(self, b):
        points = QAMModem(b).constellation
        assert len(set(np.round(points, 9))) == 2**b

    def test_small_noise_tolerated(self, rng):
        modem = QAMModem(4)
        bits = rng.integers(0, 2, 4000, dtype=np.int8)
        symbols = modem.modulate(bits)
        # half the minimum distance of 16-QAM is ~0.316; noise well below
        noisy = symbols + 0.01 * (rng.standard_normal(1000) + 1j * rng.standard_normal(1000))
        np.testing.assert_array_equal(modem.demodulate(noisy), bits)


class TestGrayProperty:
    @pytest.mark.parametrize("b", [2, 4, 6])
    def test_nearest_neighbours_differ_in_one_bit(self, b):
        """Every pair of closest constellation points differs in exactly
        one bit — the property formula (5)'s BER coefficient relies on."""
        modem = QAMModem(b)
        points = modem.constellation
        n = points.size
        dist = np.abs(points[:, None] - points[None, :])
        np.fill_diagonal(dist, np.inf)
        dmin = dist.min()
        ii, jj = np.where(np.isclose(dist, dmin))
        for i, j in zip(ii, jj):
            assert bin(i ^ j).count("1") == 1


class TestClipping:
    def test_far_outliers_clip_to_edge(self):
        modem = QAMModem(4)
        bits = modem.demodulate(np.array([100.0 + 100.0j]))
        # decodes to *some* valid corner rather than crashing
        assert bits.shape == (4,)
        assert set(bits.tolist()) <= {0, 1}


class TestFactory:
    def test_b1_is_bpsk(self):
        assert modem_for_bits_per_symbol(1).name == "BPSK"

    def test_b2_is_qpsk(self):
        assert modem_for_bits_per_symbol(2).name == "QPSK"

    @pytest.mark.parametrize("b", [3, 4, 9])
    def test_higher_b_is_qam(self, b):
        modem = modem_for_bits_per_symbol(b)
        assert isinstance(modem, QAMModem)
        assert modem.bits_per_symbol == b
