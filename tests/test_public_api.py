"""Public-API integrity checks.

A release-quality library keeps its ``__all__`` lists honest and its
public surface documented.  These tests walk every subpackage and assert:

* every name in ``__all__`` actually resolves;
* every public module, class and function has a docstring;
* the package docstrings mention the modules they re-export (guarding the
  navigational docs against drift).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.beamforming",
    "repro.channel",
    "repro.coding",
    "repro.core",
    "repro.energy",
    "repro.experiments",
    "repro.geometry",
    "repro.mac",
    "repro.modulation",
    "repro.network",
    "repro.phy",
    "repro.sensing",
    "repro.simulation",
    "repro.stbc",
    "repro.testbed",
    "repro.utils",
]


def _walk_modules():
    """Every module under the repro package."""
    seen = []
    for pkg_name in SUBPACKAGES:
        pkg = importlib.import_module(pkg_name)
        seen.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                seen.append(importlib.import_module(f"{pkg_name}.{info.name}"))
    return {m.__name__: m for m in seen}.values()


class TestAllLists:
    @pytest.mark.parametrize("pkg_name", SUBPACKAGES)
    def test_all_names_resolve(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        assert hasattr(pkg, "__all__"), f"{pkg_name} lacks __all__"
        for name in pkg.__all__:
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name!r}"

    @pytest.mark.parametrize("pkg_name", SUBPACKAGES)
    def test_no_duplicate_exports(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        assert len(pkg.__all__) == len(set(pkg.__all__))


class TestDocstrings:
    def test_every_module_documented(self):
        for module in _walk_modules():
            assert module.__doc__ and module.__doc__.strip(), (
                f"module {module.__name__} has no docstring"
            )

    def test_every_public_symbol_documented(self):
        undocumented = []
        for module in _walk_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name, None)
                if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public symbols: {undocumented}"

    def test_public_methods_documented(self):
        """Every public method of every exported class has a docstring
        (inherited docstrings — e.g. Modem.modulate overrides — count)."""
        undocumented = []
        for module in _walk_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name, None)
                if not inspect.isclass(obj):
                    continue
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr):
                        doc = inspect.getdoc(getattr(obj, attr_name))
                        if not (doc and doc.strip()):
                            undocumented.append(
                                f"{module.__name__}.{name}.{attr_name}"
                            )
        assert not undocumented, f"undocumented methods: {undocumented}"


class TestVersioning:
    def test_version_matches_pyproject(self):
        import pathlib

        pyproject = (
            pathlib.Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        )
        text = pyproject.read_text()
        assert f'version = "{repro.__version__}"' in text
