"""EbarTable tests: grid building, lookup semantics, serialization."""

import numpy as np
import pytest

from repro.energy.ebar import solve_ebar
from repro.energy.table import EbarTable


@pytest.fixture(scope="module")
def small_table():
    return EbarTable(
        p_values=(0.01, 0.001),
        b_values=(1, 2, 4),
        mt_values=(1, 2),
        mr_values=(1, 2),
    )


class TestBuild:
    def test_size(self, small_table):
        assert len(small_table) == 2 * 3 * 2 * 2

    def test_matches_solver(self, small_table):
        assert small_table.lookup(0.001, 2, 2, 2) == pytest.approx(
            solve_ebar(0.001, 2, 2, 2)
        )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            EbarTable(p_values=())


class TestLookup:
    def test_p_snaps_to_nearest(self, small_table):
        assert small_table.lookup(0.0012, 2, 1, 1) == small_table.lookup(0.001, 2, 1, 1)

    def test_off_grid_b_rejected(self, small_table):
        with pytest.raises(KeyError):
            small_table.lookup(0.001, 3, 1, 1)

    def test_off_grid_m_rejected(self, small_table):
        with pytest.raises(KeyError):
            small_table.lookup(0.001, 2, 4, 1)

    def test_callable_interface(self, small_table):
        assert small_table(0.001, 2, 1, 2) == small_table.lookup(0.001, 2, 1, 2)

    def test_infeasible_entry_is_nan_and_raises(self):
        # p = 0.4 is above b=4's ceiling 0.375 -> NaN entry
        table = EbarTable(p_values=(0.4,), b_values=(1, 4), mt_values=(1,), mr_values=(1,))
        with pytest.raises(KeyError):
            table.lookup(0.4, 4, 1, 1)
        # but b = 1 (ceiling 0.5) works
        assert table.lookup(0.4, 1, 1, 1) > 0


class TestSelection:
    def test_min_ebar_b_is_true_minimum(self, small_table):
        b, value = small_table.min_ebar_b(0.001, 2, 2)
        for cand in small_table.b_values:
            assert value <= small_table.lookup(0.001, cand, 2, 2) + 1e-30
        assert b in small_table.b_values

    def test_feasible_b_excludes_nan(self):
        table = EbarTable(p_values=(0.4,), b_values=(1, 4), mt_values=(1,), mr_values=(1,))
        assert table.feasible_b(0.4, 1, 1) == (1,)


class TestModelIntegration:
    def test_plugs_into_energy_model(self, small_table):
        from repro.energy.model import EnergyModel

        model = EnergyModel(ebar_provider=small_table)
        exact = EnergyModel()
        via_table = model.mimo_tx(0.001, 2, 2, 2, 150.0, 10e3).total
        direct = exact.mimo_tx(0.001, 2, 2, 2, 150.0, 10e3).total
        assert via_table == pytest.approx(direct, rel=1e-9)


class TestSerialization:
    def test_roundtrip(self, small_table):
        arrays = small_table.to_arrays()
        rebuilt = EbarTable.from_arrays(arrays)
        assert len(rebuilt) == len(small_table)
        assert rebuilt.lookup(0.001, 2, 2, 2) == small_table.lookup(0.001, 2, 2, 2)

    def test_savez_roundtrip(self, small_table, tmp_path):
        path = tmp_path / "table.npz"
        np.savez(path, **small_table.to_arrays())
        with np.load(path) as data:
            rebuilt = EbarTable.from_arrays(data)
        assert rebuilt.lookup(0.01, 1, 1, 2) == small_table.lookup(0.01, 1, 1, 2)


class TestInterpolation:
    def test_exact_on_grid_points(self, small_table):
        for p in small_table.p_values:
            assert small_table.lookup_interpolated(p, 2, 1, 1) == pytest.approx(
                small_table.lookup(p, 2, 1, 1), rel=1e-12
            )

    def test_between_grid_points_accurate(self, small_table):
        """Log-log interpolation lands within a few percent of the exact
        solver at an off-grid BER."""
        p_mid = 0.003
        interpolated = small_table.lookup_interpolated(p_mid, 2, 2, 2)
        exact = solve_ebar(p_mid, 2, 2, 2)
        assert interpolated == pytest.approx(exact, rel=0.1)

    def test_monotone_in_p(self, small_table):
        values = [
            small_table.lookup_interpolated(p, 2, 1, 1)
            for p in (0.008, 0.005, 0.002, 0.0012)
        ]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_clamps_outside_grid(self, small_table):
        below = small_table.lookup_interpolated(1e-6, 2, 1, 1)
        assert below == pytest.approx(small_table.lookup(0.001, 2, 1, 1), rel=1e-12)
        above = small_table.lookup_interpolated(0.4, 1, 1, 1)
        assert above == pytest.approx(small_table.lookup(0.01, 1, 1, 1), rel=1e-12)

    def test_all_nan_column_raises(self):
        table = EbarTable(p_values=(0.4,), b_values=(4,), mt_values=(1,), mr_values=(1,))
        with pytest.raises(KeyError):
            table.lookup_interpolated(0.4, 4, 1, 1)


class TestOffGridRegression:
    """Regression tests for the grid-membership guard.

    An earlier version compared a stale memo key against itself, so an
    off-grid (b, mt, mr) could silently return a neighbouring entry instead
    of raising.  Every axis must now reject off-grid and non-integer values.
    """

    def test_off_grid_b_raises_not_nearest(self, small_table):
        with pytest.raises(KeyError, match="b=3"):
            small_table.lookup(0.001, 3, 1, 1)

    def test_non_integer_b_raises(self, small_table):
        with pytest.raises(KeyError, match="b=2.5"):
            small_table.lookup(0.001, 2.5, 1, 1)

    def test_off_grid_mt_raises(self, small_table):
        with pytest.raises(KeyError, match="mt=3"):
            small_table.lookup(0.001, 2, 3, 1)

    def test_off_grid_mr_raises(self, small_table):
        with pytest.raises(KeyError, match="mr=4"):
            small_table.lookup(0.001, 2, 1, 4)

    def test_non_integer_m_raises(self, small_table):
        with pytest.raises(KeyError):
            small_table.lookup(0.001, 2, 1.5, 1)
        with pytest.raises(KeyError):
            small_table.lookup(0.001, 2, 1, 1.5)

    def test_other_helpers_share_the_guard(self, small_table):
        with pytest.raises(KeyError):
            small_table.lookup_interpolated(0.001, 3, 1, 1)
        with pytest.raises(KeyError):
            small_table.feasible_b(0.001, 3, 1)
        with pytest.raises(KeyError):
            small_table.min_ebar_b(0.001, 3, 1)


class TestArrayLookups:
    def test_array_p_lookup(self, small_table):
        p = np.array([0.01, 0.001, 0.0012])
        out = small_table.lookup(p, 2, 1, 1)
        assert out.shape == (3,)
        assert out[0] == small_table.lookup(0.01, 2, 1, 1)
        assert out[1] == out[2] == small_table.lookup(0.001, 2, 1, 1)

    def test_array_b_lookup_broadcasts(self, small_table):
        out = small_table.lookup(0.001, np.array([1, 2, 4]), 2, 2)
        assert out.shape == (3,)
        for j, b in enumerate((1, 2, 4)):
            assert out[j] == small_table.lookup(0.001, b, 2, 2)

    def test_array_lookup_passes_nan_through(self):
        table = EbarTable(
            p_values=(0.4,), b_values=(1, 4), mt_values=(1,), mr_values=(1,)
        )
        out = table.lookup(0.4, np.array([1, 4]), 1, 1)
        assert np.isfinite(out[0])
        assert np.isnan(out[1])

    def test_array_min_ebar_b(self, small_table):
        p = np.array([0.01, 0.001])
        b_arr, e_arr = small_table.min_ebar_b(p, 2, 2)
        for i, p_i in enumerate(p):
            b_scalar, e_scalar = small_table.min_ebar_b(float(p_i), 2, 2)
            assert b_arr[i] == b_scalar
            assert e_arr[i] == e_scalar

    def test_array_interpolated_lookup(self, small_table):
        p = np.array([0.008, 0.002])
        out = small_table.lookup_interpolated(p, 2, 1, 1)
        assert out.shape == (2,)
        for i, p_i in enumerate(p):
            assert out[i] == pytest.approx(
                small_table.lookup_interpolated(float(p_i), 2, 1, 1), rel=1e-12
            )
