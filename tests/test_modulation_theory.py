"""Theoretical BER tests: anchors, closed forms, asymptotics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.modulation.theory import (
    ber_bpsk_awgn,
    ber_bpsk_rayleigh,
    ber_mqam_awgn,
    instantaneous_ber,
    mqam_ber_coefficients,
    rayleigh_diversity_avg_qfunc,
)


class TestCoefficients:
    def test_bpsk(self):
        assert mqam_ber_coefficients(1) == (1.0, 2.0)

    def test_qpsk_matches_bpsk_kernel(self):
        # b = 2: a = (4/2)(1 - 1/2) = 1, g = 6/3 = 2 — same as BPSK per bit
        a, g = mqam_ber_coefficients(2)
        assert (a, g) == (pytest.approx(1.0), pytest.approx(2.0))

    def test_16qam(self):
        a, g = mqam_ber_coefficients(4)
        assert a == pytest.approx(0.75)
        assert g == pytest.approx(12.0 / 15.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            mqam_ber_coefficients(0)


class TestAwgnCurves:
    def test_bpsk_textbook_point(self):
        # BPSK at 9.6 dB: BER ~1e-5 (classic anchor)
        assert ber_bpsk_awgn(9.6) == pytest.approx(1e-5, rel=0.1)

    def test_bpsk_at_zero_snr_is_half(self):
        assert ber_bpsk_awgn(-100.0) == pytest.approx(0.5, abs=1e-3)

    def test_qpsk_equals_bpsk_per_bit(self):
        np.testing.assert_allclose(
            ber_mqam_awgn(np.array([0.0, 5.0, 10.0]), 2),
            ber_bpsk_awgn(np.array([0.0, 5.0, 10.0])),
        )

    def test_higher_order_worse_at_fixed_ebn0(self):
        assert ber_mqam_awgn(10.0, 6) > ber_mqam_awgn(10.0, 2)

    def test_monotone_decreasing(self):
        snrs = np.linspace(-5, 15, 40)
        assert np.all(np.diff(ber_bpsk_awgn(snrs)) < 0)


class TestRayleigh:
    def test_closed_form_anchor(self):
        # at 10 dB mean SNR: 0.5(1 - sqrt(10/11)) ~ 0.0233
        assert ber_bpsk_rayleigh(10.0) == pytest.approx(0.0233, rel=0.01)

    def test_much_worse_than_awgn(self):
        assert ber_bpsk_rayleigh(10.0) > 100 * ber_bpsk_awgn(10.0)

    def test_inverse_snr_asymptote(self):
        # Rayleigh BPSK falls off as 1/(4 gamma)
        ber = ber_bpsk_rayleigh(40.0)
        assert ber == pytest.approx(1.0 / (4.0 * 1e4), rel=0.01)


class TestDiversityAverage:
    def test_k1_matches_rayleigh_closed_form(self):
        for snr_db in (0.0, 5.0, 10.0, 20.0):
            c = 10 ** (snr_db / 10)
            assert rayleigh_diversity_avg_qfunc(c, 1) == pytest.approx(
                float(ber_bpsk_rayleigh(snr_db)), rel=1e-12
            )

    def test_matches_monte_carlo(self, rng):
        from repro.utils.qfunc import qfunc

        c, k = 2.0, 4
        g = rng.gamma(k, 1.0, 400_000)
        mc = np.mean(qfunc(np.sqrt(2 * c * g)))
        assert rayleigh_diversity_avg_qfunc(c, k) == pytest.approx(mc, rel=0.02)

    @given(st.floats(min_value=0.01, max_value=1e4), st.integers(1, 16))
    def test_bounded_by_half(self, c, k):
        val = rayleigh_diversity_avg_qfunc(c, k)
        assert 0.0 <= val <= 0.5

    @given(st.integers(1, 12))
    def test_monotone_in_c(self, k):
        cs = np.logspace(-2, 3, 30)
        vals = rayleigh_diversity_avg_qfunc(cs, k)
        assert np.all(np.diff(vals) < 0)

    @given(st.floats(min_value=0.5, max_value=100.0))
    def test_monotone_in_diversity(self, c):
        vals = [rayleigh_diversity_avg_qfunc(c, k) for k in range(1, 8)]
        assert all(b < a for a, b in zip(vals, vals[1:]))

    def test_diversity_slope(self):
        """At high SNR, k-branch diversity falls as gamma^-k: a 10x SNR
        increase buys ~10^k in BER."""
        for k in (1, 2, 3):
            hi = rayleigh_diversity_avg_qfunc(1e4, k)
            lo = rayleigh_diversity_avg_qfunc(1e3, k)
            assert lo / hi == pytest.approx(10.0**k, rel=0.15)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            rayleigh_diversity_avg_qfunc(1.0, 0)
        with pytest.raises(ValueError):
            rayleigh_diversity_avg_qfunc(-1.0, 2)


class TestInstantaneous:
    def test_matches_kernel(self):
        a, g = mqam_ber_coefficients(4)
        from repro.utils.qfunc import qfunc

        gamma = 3.7
        assert instantaneous_ber(gamma, 4) == pytest.approx(
            a * float(qfunc(np.sqrt(g * gamma)))
        )

    def test_rejects_negative_gamma(self):
        with pytest.raises(ValueError):
            instantaneous_ber(-0.1, 2)
