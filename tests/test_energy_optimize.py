"""Constellation-size optimizer tests."""

import pytest

from repro.energy.optimize import (
    DEFAULT_B_RANGE,
    OptimizationResult,
    maximize_mimo_distance,
    minimize_mimo_tx_energy,
    minimize_over_b,
)


class TestMinimizeOverB:
    def test_finds_minimum(self):
        result = minimize_over_b(lambda b: (b - 5) ** 2, range(1, 10))
        assert result.b == 5
        assert result.value == 0.0

    def test_maximize_mode(self):
        result = minimize_over_b(lambda b: -((b - 3) ** 2), range(1, 10), maximize=True)
        assert result.b == 3

    def test_skips_infeasible_candidates(self):
        def objective(b):
            if b < 4:
                raise ValueError("infeasible")
            return float(b)

        result = minimize_over_b(objective, range(1, 8))
        assert result.b == 4

    def test_all_infeasible_raises(self):
        def objective(b):
            raise ValueError("never feasible")

        with pytest.raises(ValueError):
            minimize_over_b(objective, range(1, 4))

    def test_unpacking(self):
        b, value = OptimizationResult(b=3, value=1.5)
        assert (b, value) == (3, 1.5)

    def test_default_range_is_paper_sweep(self):
        assert DEFAULT_B_RANGE == tuple(range(1, 17))


class TestEnergyObjectives:
    def test_minimize_energy_beats_fixed_b(self, energy_model):
        best = minimize_mimo_tx_energy(energy_model, 0.001, 2, 2, 200.0, 10e3)
        for b in (1, 2, 4, 8):
            fixed = energy_model.mimo_tx(0.001, b, 2, 2, 200.0, 10e3).total
            assert best.value <= fixed + 1e-30

    def test_maximize_distance_beats_fixed_b(self, energy_model):
        budget = 2e-5
        best = maximize_mimo_distance(energy_model, budget, 0.001, 2, 1, 10e3)
        for b in (1, 2, 4):
            fixed = energy_model.max_mimo_distance(budget, 0.001, b, 2, 1, 10e3)
            assert best.value >= fixed - 1e-12

    def test_callable_extra_circuit(self, energy_model):
        budget = 2e-5
        result = maximize_mimo_distance(
            energy_model,
            budget,
            0.001,
            2,
            1,
            10e3,
            extra_circuit=lambda b: energy_model.mimo_rx(b, 10e3).total,
        )
        plain = maximize_mimo_distance(energy_model, budget, 0.001, 2, 1, 10e3)
        assert result.value < plain.value

    def test_wide_bandwidth_prefers_low_b(self, energy_model):
        """With cheap circuit energy the PA dominates, and the PA is
        minimized by small constellations (lower required SNR)."""
        best = minimize_mimo_tx_energy(energy_model, 0.001, 1, 1, 300.0, 1e6)
        assert best.b <= 2

    def test_empty_range_rejected(self, energy_model):
        with pytest.raises(ValueError):
            minimize_mimo_tx_energy(energy_model, 0.001, 1, 1, 100.0, 10e3, b_range=())
