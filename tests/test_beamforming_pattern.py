"""Radiation pattern tests: null placement, symmetry, multipath."""

import numpy as np
import pytest

from repro.beamforming.pattern import (
    design_null_delay,
    pattern_null_angle,
    radiation_pattern,
)
from repro.channel.multipath import MultipathEnvironment

WAVELENGTH = 0.1224
SPACING = WAVELENGTH / 2.0


class TestDesign:
    @pytest.mark.parametrize("target", [30.0, 60.0, 90.0, 120.0, 150.0])
    def test_null_lands_on_target(self, target):
        delta = design_null_delay(SPACING, WAVELENGTH, target)
        angle, depth = pattern_null_angle(SPACING, WAVELENGTH, delta)
        assert angle == pytest.approx(target, abs=0.5)
        assert depth < 1e-3

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            design_null_delay(0.0, WAVELENGTH, 120.0)


class TestPattern:
    def test_max_two_min_zero(self):
        delta = design_null_delay(SPACING, WAVELENGTH, 120.0)
        angles = np.linspace(0.0, 180.0, 721)
        amps = radiation_pattern(SPACING, WAVELENGTH, delta, angles)
        assert amps.max() == pytest.approx(2.0, abs=0.01)
        assert amps.min() < 1e-2

    def test_mirror_symmetry_about_axis(self):
        """A linear array's pattern is symmetric under theta -> -theta."""
        delta = design_null_delay(SPACING, WAVELENGTH, 60.0)
        up = radiation_pattern(SPACING, WAVELENGTH, delta, np.array([40.0, 70.0]))
        down = radiation_pattern(SPACING, WAVELENGTH, delta, np.array([-40.0, -70.0]))
        np.testing.assert_allclose(up, down, rtol=1e-9)

    def test_finite_radius_close_to_far_field(self):
        delta = design_null_delay(SPACING, WAVELENGTH, 120.0)
        angles = np.arange(0.0, 181.0, 20.0)
        near = radiation_pattern(SPACING, WAVELENGTH, delta, angles, radius=1.0)
        far = radiation_pattern(SPACING, WAVELENGTH, delta, angles, radius=1e4)
        np.testing.assert_allclose(near, far, atol=0.05)

    def test_multipath_fills_null(self):
        delta = design_null_delay(SPACING, WAVELENGTH, 120.0)
        room = MultipathEnvironment.random_indoor(rng=5)
        clean = radiation_pattern(SPACING, WAVELENGTH, delta, np.array([120.0]), radius=1.0)
        dirty = radiation_pattern(
            SPACING, WAVELENGTH, delta, np.array([120.0]), radius=1.0, environment=room
        )
        assert clean[0] < 1e-2
        assert dirty[0] > clean[0]

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            radiation_pattern(SPACING, WAVELENGTH, 0.0, np.array([0.0]), radius=-1.0)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            pattern_null_angle(SPACING, WAVELENGTH, 0.0, resolution_deg=0.0)
