"""Cooperative sensing tests: fusion rules and the fading payoff."""

import numpy as np
import pytest

from repro.sensing.cooperative import CooperativeSensor, fuse_decisions
from repro.sensing.detector import EnergyDetector


class TestFuseDecisions:
    def test_or(self):
        assert fuse_decisions([False, True, False], "or")
        assert not fuse_decisions([False, False], "or")

    def test_and(self):
        assert fuse_decisions([True, True], "and")
        assert not fuse_decisions([True, False], "and")

    def test_majority(self):
        assert fuse_decisions([True, True, False], "majority")
        assert not fuse_decisions([True, False, False], "majority")
        # exact half counts as a majority (protective of the PU)
        assert fuse_decisions([True, False], "majority")

    def test_rejects_bad_rule_and_empty(self):
        with pytest.raises(ValueError):
            fuse_decisions([True], "xor")
        with pytest.raises(ValueError):
            fuse_decisions([], "or")


class TestClosedForms:
    def _sensor(self, rule, n=4):
        return CooperativeSensor(EnergyDetector(200, 0.05), n, rule)

    def test_or_pfa_compounds(self):
        sensor = self._sensor("or")
        expected = 1 - (1 - 0.05) ** 4
        assert sensor.false_alarm_probability() == pytest.approx(expected, rel=1e-9)

    def test_and_pfa_shrinks(self):
        sensor = self._sensor("and")
        assert sensor.false_alarm_probability() == pytest.approx(0.05**4, rel=1e-9)

    def test_or_pd_dominates_single(self):
        sensor = self._sensor("or")
        single = sensor.detector.detection_probability(0.05)
        assert sensor.detection_probability(0.05) > single

    def test_and_pd_below_single(self):
        sensor = self._sensor("and")
        single = sensor.detector.detection_probability(0.05)
        assert sensor.detection_probability(0.05) < single

    def test_majority_between(self):
        snr = 0.05
        p_or = self._sensor("or").detection_probability(snr)
        p_maj = self._sensor("majority").detection_probability(snr)
        p_and = self._sensor("and").detection_probability(snr)
        assert p_and < p_maj < p_or

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            CooperativeSensor(EnergyDetector(10), 0)
        with pytest.raises(ValueError):
            CooperativeSensor(EnergyDetector(10), 2, "xor")


class TestFadingPayoff:
    def test_cooperation_rescues_faded_sensing(self, rng):
        """Under Rayleigh fading, 4 OR-fused sensors detect far more
        reliably than one — the cognitive-radio motivation for cooperative
        sensing."""
        detector = EnergyDetector(500, 0.05)
        single = CooperativeSensor(detector, 1, "or")
        quad = CooperativeSensor(detector, 4, "or")
        mean_snr = 0.15
        p1 = single.detection_probability_faded(mean_snr, rng=rng)
        p4 = quad.detection_probability_faded(mean_snr, rng=rng)
        assert p4 > p1 + 0.2

    def test_faded_pd_below_awgn_pd_for_single(self, rng):
        """Fading hurts a single detector at usable SNR (concave Pd)."""
        detector = EnergyDetector(500, 0.05)
        single = CooperativeSensor(detector, 1, "or")
        mean_snr = 0.15
        faded = single.detection_probability_faded(mean_snr, rng=rng)
        awgn = single.detection_probability(mean_snr)
        assert faded < awgn


class TestLiveDecision:
    def test_decide_counts_sample_sets(self, rng):
        sensor = CooperativeSensor(EnergyDetector(100, 0.05), 2, "or")
        noise = [
            (rng.standard_normal(100) + 1j * rng.standard_normal(100)) / np.sqrt(2)
            for _ in range(2)
        ]
        assert isinstance(sensor.decide(noise), bool)
        with pytest.raises(ValueError):
            sensor.decide(noise[:1])

    def test_or_fires_when_one_sensor_sees_primary(self, rng):
        sensor = CooperativeSensor(EnergyDetector(1000, 0.01), 2, "or")
        quiet = (rng.standard_normal(1000) + 1j * rng.standard_normal(1000)) / np.sqrt(2)
        loud = quiet + 1.0
        assert sensor.decide([quiet, loud])
