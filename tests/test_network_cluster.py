"""Cluster (virtual MIMO node) tests: head election, geometry, liveness."""

import numpy as np
import pytest

from repro.network.cluster import Cluster
from repro.network.node import SUNode


def _cluster(batteries, positions=None):
    positions = positions or [(float(i), 0.0) for i in range(len(batteries))]
    nodes = [SUNode(i, pos, battery_j=b) for i, (pos, b) in enumerate(zip(positions, batteries))]
    return Cluster(0, nodes), nodes


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Cluster(0, [])

    def test_rejects_duplicate_ids(self):
        nodes = [SUNode(1, (0.0, 0.0)), SUNode(1, (1.0, 0.0))]
        with pytest.raises(ValueError):
            Cluster(0, nodes)

    def test_size(self):
        cluster, _ = _cluster([10.0, 10.0, 10.0])
        assert cluster.size == 3


class TestHeadElection:
    def test_most_battery_wins(self):
        cluster, nodes = _cluster([5.0, 20.0, 10.0])
        assert cluster.head is nodes[1]

    def test_tie_breaks_on_lower_id(self):
        cluster, nodes = _cluster([10.0, 10.0])
        assert cluster.head is nodes[0]

    def test_reelection_after_drain(self):
        cluster, nodes = _cluster([20.0, 10.0])
        nodes[0].consume(15.0)  # head drops to 5 J
        assert cluster.elect_head() is nodes[1]

    def test_dead_nodes_not_electable(self):
        cluster, nodes = _cluster([1.0, 10.0])
        nodes[1].consume(10.0)
        assert cluster.elect_head() is nodes[0]

    def test_all_dead_raises(self):
        cluster, nodes = _cluster([1.0])
        nodes[0].consume(1.0)
        with pytest.raises(RuntimeError):
            cluster.elect_head()

    def test_members_excludes_head(self):
        cluster, nodes = _cluster([5.0, 20.0, 10.0])
        assert nodes[1] not in cluster.members
        assert len(cluster.members) == 2


class TestGeometry:
    def test_centroid_and_diameter(self):
        cluster, _ = _cluster([10.0] * 2, positions=[(0.0, 0.0), (2.0, 0.0)])
        np.testing.assert_allclose(cluster.centroid, [1.0, 0.0])
        assert cluster.diameter == pytest.approx(2.0)

    def test_singleton_diameter_zero(self):
        cluster, _ = _cluster([10.0])
        assert cluster.diameter == 0.0

    def test_distance_to_is_max_pair(self):
        a, _ = _cluster([10.0] * 2, positions=[(0.0, 0.0), (1.0, 0.0)])
        b_nodes = [SUNode(10, (10.0, 0.0)), SUNode(11, (12.0, 0.0))]
        b = Cluster(1, b_nodes)
        assert a.distance_to(b) == pytest.approx(12.0)  # (0,0) to (12,0)
        assert b.distance_to(a) == pytest.approx(12.0)

    def test_min_distance_to(self):
        a, _ = _cluster([10.0] * 2, positions=[(0.0, 0.0), (1.0, 0.0)])
        b = Cluster(1, [SUNode(10, (10.0, 0.0))])
        assert a.min_distance_to(b) == pytest.approx(9.0)


class TestLiveness:
    def test_alive_while_any_member_lives(self):
        cluster, nodes = _cluster([1.0, 10.0])
        nodes[0].consume(1.0)
        assert cluster.is_alive
        assert cluster.alive_nodes == [nodes[1]]

    def test_total_consumed(self):
        cluster, nodes = _cluster([10.0, 10.0])
        nodes[0].consume(3.0)
        nodes[1].consume(4.0)
        assert cluster.total_consumed_j() == pytest.approx(7.0)
