"""Protocol-level session simulation tests."""

import numpy as np
import pytest

from repro.energy.model import EnergyModel
from repro.network import CoMIMONet, SUNode
from repro.network.protocol import SessionSimulator


def _network(battery_j=1000.0, seed=0, n_clusters=3, spacing=120.0):
    rng = np.random.default_rng(seed)
    nodes = []
    nid = 0
    for c in range(n_clusters):
        for _ in range(3):
            off = rng.uniform(-0.8, 0.8, 2)
            nodes.append(SUNode(nid, (c * spacing + off[0], off[1]), battery_j=battery_j))
            nid += 1
    return CoMIMONet(nodes, cluster_diameter=2.5, longhaul_range=spacing * 1.2)


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


class TestBasicSession:
    def test_delivers_full_payload(self, model):
        sim = SessionSimulator(_network(), model, rng=1)
        result = sim.run_session(0, 2, n_bits=500_000.0)
        assert result.completed
        assert result.delivered_bits == 500_000.0
        assert result.hops_completed == 2 * 5  # 2 hops x 5 chunks
        assert result.elapsed_s > 0.0
        assert result.goodput_bps > 0.0

    def test_latency_decomposition(self, model):
        sim = SessionSimulator(_network(), model, rng=2)
        result = sim.run_session(0, 2, n_bits=200_000.0)
        assert result.elapsed_s == pytest.approx(
            result.airtime_s + result.mac_delay_s, rel=1e-9
        )
        assert result.mac_delay_s > 0.0

    def test_energy_charged_to_route_clusters(self, model):
        sim = SessionSimulator(_network(), model, rng=3)
        result = sim.run_session(0, 2, n_bits=100_000.0)
        assert set(result.energy_by_cluster_j) == {0, 1, 2}
        assert result.total_energy_j > 0.0

    def test_same_cluster_session_trivial(self, model):
        sim = SessionSimulator(_network(), model, rng=4)
        result = sim.run_session(1, 1, n_bits=1000.0)
        assert result.completed
        assert result.hops_completed == 0

    def test_validation(self, model):
        sim = SessionSimulator(_network(), model, rng=5)
        with pytest.raises(ValueError):
            sim.run_session(0, 2, n_bits=0.0)


class TestPolicies:
    def test_cooperative_radiates_less_energy_total_at_long_range(self, model):
        """At 160 m hops the diversity savings beat the circuit overhead."""
        coop = SessionSimulator(
            _network(seed=7, spacing=160.0), model, cooperative=True, rng=6
        ).run_session(0, 2, 200_000.0)
        siso = SessionSimulator(
            _network(seed=7, spacing=160.0), model, cooperative=False, rng=6
        ).run_session(0, 2, 200_000.0)
        assert coop.completed and siso.completed
        assert coop.total_energy_j < siso.total_energy_j

    def test_siso_airtime_never_worse_at_matched_rate(self, model):
        """SISO skips the intra phases and the rate-1/2 stretch; the
        cooperative policy can only recover via a larger optimized b, so
        per-bit airtime is never strictly better than SISO's."""
        coop = SessionSimulator(_network(seed=8), model, cooperative=True, rng=7)
        siso = SessionSimulator(_network(seed=8), model, cooperative=False, rng=7)
        r_coop = coop.run_session(0, 2, 100_000.0)
        r_siso = siso.run_session(0, 2, 100_000.0)
        assert r_siso.hops_completed == r_coop.hops_completed
        assert r_siso.airtime_s <= r_coop.airtime_s + 1e-9


class TestFailureHandling:
    def test_tiny_batteries_end_session_early(self, model):
        network = _network(battery_j=0.5)
        sim = SessionSimulator(network, model, rng=9)
        result = sim.run_session(0, 2, n_bits=5e7, chunk_bits=1e6)
        assert not result.completed
        assert result.delivered_bits < 5e7

    def test_reconfiguration_counted(self, model):
        network = _network(battery_j=3.0)
        sim = SessionSimulator(network, model, rng=10)
        result = sim.run_session(0, 2, n_bits=5e7, chunk_bits=1e6)
        assert result.reconfigurations >= 1

    def test_partitioned_network_no_delivery(self, model):
        nodes = [SUNode(0, (0.0, 0.0)), SUNode(1, (5000.0, 0.0))]
        network = CoMIMONet(nodes, cluster_diameter=1.0, longhaul_range=10.0)
        sim = SessionSimulator(network, model, rng=11)
        result = sim.run_session(0, 1, n_bits=1000.0)
        assert not result.completed
        assert result.delivered_bits == 0.0
