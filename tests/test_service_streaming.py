"""NDJSON sweep streaming: row parity, segmentation, cache interop."""

import pytest

from repro.service.client import ServiceClientError
from repro.service.config import ServiceConfig
from repro.service.httpio import encode_chunk, encode_ndjson_line, render_stream_head
from repro.service.testing import ThreadedServer

D1 = [float(x) for x in range(60, 140)]  # 80 points
DIST = [float(x) for x in range(10, 50)]  # 40 points


@pytest.fixture(scope="module")
def server():
    # Tiny segments force genuinely multi-segment streams.
    config = ServiceConfig(
        port=0,
        workers=0,
        request_log=False,
        result_cache=False,
        stream_segment_points=16,
    )
    with ThreadedServer(config) as srv:
        yield srv


class TestOverlayStreaming:
    def test_rows_match_buffered(self, server):
        client = server.client(timeout_s=60.0)
        buffered = client.overlay_feasible(D1, m=2, bandwidth=10e3)
        rows = list(client.overlay_feasible_stream(D1, m=2, bandwidth=10e3))
        assert rows[-1] == {"done": True, "count": len(D1)}
        assert rows[:-1] == buffered["rows"]

    def test_single_point_stream(self, server):
        client = server.client(timeout_s=60.0)
        rows = list(client.overlay_feasible_stream([100.0], m=2, bandwidth=10e3))
        assert rows[-1] == {"done": True, "count": 1}
        assert len(rows) == 2

    def test_bad_axis_is_clean_400(self, server):
        client = server.client()
        with pytest.raises(ServiceClientError) as err:
            list(client.overlay_feasible_stream([-5.0], m=2, bandwidth=10e3))
        assert err.value.status == 400

    def test_oversize_axis_is_clean_400(self, server):
        client = server.client()
        axis = [float(i + 1) for i in range(5000)]
        with pytest.raises(ServiceClientError) as err:
            list(client.overlay_feasible_stream(axis, m=2, bandwidth=10e3))
        assert err.value.status == 400


class TestUnderlayStreaming:
    def test_rows_match_buffered(self, server):
        client = server.client(timeout_s=60.0)
        buffered = client.underlay_energy(
            p=1e-3, mt=2, mr=2, d=100.0, distance=DIST, bandwidth=10e3
        )
        rows = list(
            client.underlay_energy_stream(
                p=1e-3, mt=2, mr=2, d=100.0, distance=DIST, bandwidth=10e3
            )
        )
        assert rows[-1] == {"done": True, "count": len(DIST)}
        assert rows[:-1] == buffered["rows"]


class TestOptIn:
    def test_plain_accept_stays_buffered(self, server):
        """Without the NDJSON Accept header the endpoint buffers as before."""
        client = server.client(timeout_s=60.0)
        result = client.overlay_feasible(D1, m=2, bandwidth=10e3)
        assert result["count"] == len(D1)

    def test_non_streamable_endpoint_ignores_accept(self, server):
        client = server.client()
        assert not server.service.wants_stream(
            "POST", "/v1/ebar", {"accept": "application/x-ndjson"}
        )
        assert server.service.wants_stream(
            "POST", "/v1/overlay/feasible", {"accept": "application/x-ndjson"}
        )
        assert not server.service.wants_stream(
            "GET", "/v1/overlay/feasible", {"accept": "application/x-ndjson"}
        )
        del client


class TestCacheInterop:
    def test_stream_served_from_cache_matches(self, tmp_path):
        config = ServiceConfig(
            port=0,
            workers=0,
            request_log=False,
            result_cache=True,
            result_cache_dir=str(tmp_path),
            stream_segment_points=16,
        )
        with ThreadedServer(config) as srv:
            client = srv.client(timeout_s=60.0)
            fresh = list(client.overlay_feasible_stream(D1, m=2, bandwidth=10e3))
            hits_before = client.metrics_snapshot()["result_cache"]["hits"]
            replay = list(client.overlay_feasible_stream(D1, m=2, bandwidth=10e3))
            hits_after = client.metrics_snapshot()["result_cache"]["hits"]
            assert replay == fresh
            assert hits_after == hits_before + 1

    def test_streamed_fill_serves_buffered_hit(self, tmp_path):
        """A stream-populated cache entry satisfies the buffered endpoint."""
        config = ServiceConfig(
            port=0,
            workers=0,
            request_log=False,
            result_cache=True,
            result_cache_dir=str(tmp_path),
            stream_segment_points=16,
        )
        with ThreadedServer(config) as srv:
            client = srv.client(timeout_s=60.0)
            rows = list(client.overlay_feasible_stream(D1, m=2, bandwidth=10e3))
            buffered = client.overlay_feasible(D1, m=2, bandwidth=10e3)
            assert buffered["rows"] == rows[:-1]
            hits = client.metrics_snapshot()["result_cache"]["hits"]
            assert hits >= 1


class TestFraming:
    def test_stream_head_shape(self):
        head = render_stream_head().decode("latin-1")
        assert head.startswith("HTTP/1.1 200 OK\r\n")
        assert "Transfer-Encoding: chunked" in head
        assert "Connection: close" in head
        assert "Content-Length" not in head

    def test_chunk_roundtrip(self):
        line = encode_ndjson_line({"b": 1, "a": 2})
        assert line == b'{"a": 2, "b": 1}\n'
        chunk = encode_chunk(line)
        assert chunk == b"11\r\n" + line + b"\r\n"

    def test_empty_chunk_rejected(self):
        with pytest.raises(ValueError):
            encode_chunk(b"")
