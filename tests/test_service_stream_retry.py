"""RetryPolicy + CircuitBreaker on streaming endpoints.

The streaming analogue of the buffered retry tests: a truncated stream
is a *transport* failure (it trips the breaker and is retryable), a
terminal error row is a *protocol* failure (the transport proved
healthy), and because every streamed endpoint is a pure function of its
body, a retried sweep replays byte-identically — served from the
persistent result cache when one is configured.
"""

import json
import time

import pytest

from repro.service.client import (
    CircuitOpenError,
    ServiceClient,
    ServiceClientError,
)
from repro.service.config import ServiceConfig
from repro.service.retry import CircuitBreaker, RetryPolicy
from repro.service.testing import ThreadedServer

SIM_BODY = {
    "n_nodes": 60,
    "duration_s": 30.0,
    "snapshot_interval_s": 0.5,
    "seed": 9,
    "arena_m": [600.0, 600.0],
}

UNDERLAY_BODY = {
    "p": 1e-3,
    "mt": 2,
    "mr": 2,
    "d": 5.0,
    "distance": [30.0, 30.5, 31.0, 31.5, 32.0, 32.5],
    "bandwidth": 10e3,
}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        port=0,
        workers=0,
        request_log=False,
        result_cache=True,
        result_cache_dir=str(tmp_path_factory.mktemp("rescache")),
        max_sims=1,
        sim_stall_timeout_ms=5000.0,
    )
    with ThreadedServer(config) as srv:
        yield srv


def wait_for_idle(server, deadline_s=10.0):
    start = time.monotonic()
    while server.service.sims.active > 0:
        if time.monotonic() - start > deadline_s:
            raise AssertionError("simulate slot was never released")
        time.sleep(0.02)


class TestBreakerOnStreams:
    def test_truncation_counts_as_transport_failure(self, server):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=60.0)
        client = ServiceClient(
            server.config.host, server.port, breaker=breaker
        )
        server.service.faults.arm_truncate_stream(
            1, after_rows=1, paths=("/v1/underlay/energy",)
        )
        with pytest.raises(ServiceClientError) as excinfo:
            list(
                client.request_stream(
                    "POST", "/v1/underlay/energy", UNDERLAY_BODY
                )
            )
        assert excinfo.value.status == 599
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.request_stream(
                "POST", "/v1/underlay/energy", UNDERLAY_BODY
            )

    def test_error_row_close_is_not_a_transport_failure(self, server):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=60.0)
        client = ServiceClient(
            server.config.host, server.port, breaker=breaker
        )
        server.service.faults.arm_kill_sim_child(1, after_rows=0)
        rows = list(client.request_stream("POST", "/v1/simulate", SIM_BODY))
        wait_for_idle(server)
        assert rows[-1]["row"] == "error"
        # The server delivered a structured failure over a healthy
        # transport; the breaker must stay closed.
        assert breaker.state == "closed"


class TestStreamRowsRetry:
    def test_truncated_stream_retries_byte_identically_from_cache(
        self, server
    ):
        baseline = server.client().stream_rows(
            "POST", "/v1/underlay/energy", UNDERLAY_BODY
        )
        assert baseline[-1] == {"done": True, "count": len(baseline) - 1}
        hits_before = server.service.metrics.snapshot()["result_cache"]["hits"]

        sleeps = []
        client = ServiceClient(
            server.config.host,
            server.port,
            retry=RetryPolicy(
                max_attempts=3, base_delay_s=0.01, max_delay_s=0.02, rng=7
            ),
            sleep=sleeps.append,
        )
        server.service.faults.arm_truncate_stream(
            1, after_rows=1, paths=("/v1/underlay/energy",)
        )
        retried = client.stream_rows(
            "POST", "/v1/underlay/energy", UNDERLAY_BODY
        )
        assert len(sleeps) == 1  # one retry absorbed the truncation
        assert json.dumps(retried, sort_keys=True) == json.dumps(
            baseline, sort_keys=True
        )
        hits_after = server.service.metrics.snapshot()["result_cache"]["hits"]
        assert hits_after > hits_before

    def test_midstream_error_row_status_raises_through_stream_rows(
        self, server
    ):
        client = server.client()
        server.service.faults.arm_kill_sim_child(1, after_rows=0)
        with pytest.raises(ServiceClientError) as excinfo:
            client.stream_rows("POST", "/v1/simulate", SIM_BODY)
        wait_for_idle(server)
        assert excinfo.value.status == 500
        assert excinfo.value.payload["row"] == "error"

    def test_429_retry_honours_the_retry_after_hint(self, server):
        sims = server.service.sims
        sims.acquire()  # hold the only slot: the first attempt gets 429
        released = []

        def sleeper(delay_s):
            released.append(delay_s)
            sims.release()

        client = ServiceClient(
            server.config.host,
            server.port,
            retry=RetryPolicy(max_attempts=2, rng=3),
            sleep=sleeper,
        )
        rows = client.stream_rows("POST", "/v1/simulate", SIM_BODY)
        wait_for_idle(server)
        assert rows[-1]["row"] == "summary"
        # The server's hint overrides the jittered backoff exactly.
        assert released == [server.config.retry_after_s]
