"""EbarTable caching: process memo, on-disk cache, env controls.

The "Preprocessing" table is solved once and reused everywhere, so these
tests guard the warm-start contract: a second construction — in the same
process or from the disk cache — performs **zero** root-finding work, the
cache location respects ``REPRO_CACHE_DIR``/``XDG_CACHE_HOME``, and
``REPRO_NO_CACHE=1`` (or ``use_cache=False``) opts out entirely.
"""

import numpy as np
import pytest

import repro.energy.table as table_mod
from repro.energy.table import EbarTable, default_cache_dir

GRID = dict(
    p_values=(0.01, 0.001),
    b_values=(1, 2, 4),
    mt_values=(1, 2),
    mr_values=(1, 2),
)


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    """Route the disk cache to a tmp dir and start with a cold memo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    EbarTable.clear_memory_cache()
    yield
    EbarTable.clear_memory_cache()


@pytest.fixture
def count_solves(monkeypatch):
    """Count invocations of the batch solver the table builds with."""
    calls = []
    real = table_mod.solve_ebar_batch

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(table_mod, "solve_ebar_batch", counting)
    return calls


class TestProcessMemo:
    def test_second_instance_skips_solve(self, count_solves):
        EbarTable(**GRID)
        assert len(count_solves) == 1
        EbarTable(**GRID)
        assert len(count_solves) == 1

    def test_different_spec_solves_again(self, count_solves):
        EbarTable(**GRID)
        EbarTable(**GRID, convention="diversity_only")
        assert len(count_solves) == 2

    def test_memoed_instances_agree(self):
        first = EbarTable(**GRID)
        second = EbarTable(**GRID)
        assert np.array_equal(
            first.to_arrays()["ebar"], second.to_arrays()["ebar"]
        )


class TestDiskCache:
    def test_warm_disk_load_performs_zero_root_finds(self, count_solves):
        first = EbarTable(**GRID)
        assert len(count_solves) == 1
        # cold memo, warm disk: the solved grid must come back bit-identical
        # without a single solver call
        EbarTable.clear_memory_cache()
        warm = EbarTable(**GRID)
        assert len(count_solves) == 1
        assert np.array_equal(
            first.to_arrays()["ebar"], warm.to_arrays()["ebar"], equal_nan=True
        )

    def test_warm_construction_runs_zero_brentq(self, monkeypatch):
        EbarTable(**GRID)
        EbarTable.clear_memory_cache()

        from scipy import optimize as scipy_optimize

        def forbidden(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("brentq called despite a warm cache")

        monkeypatch.setattr(scipy_optimize, "brentq", forbidden)
        EbarTable(**GRID)

    def test_cache_file_lands_in_cache_dir(self, tmp_path):
        EbarTable(**GRID)
        files = list((tmp_path / "cache").glob("ebar-v*.npy"))
        assert len(files) == 1

    def test_corrupt_cache_file_triggers_resolve(self, tmp_path, count_solves):
        EbarTable(**GRID)
        (path,) = (tmp_path / "cache").glob("ebar-v*.npy")
        path.write_bytes(b"not a npy array file")
        EbarTable.clear_memory_cache()
        EbarTable(**GRID)
        assert len(count_solves) == 2

    def test_explicit_cache_dir_overrides_env(self, tmp_path, count_solves):
        explicit = tmp_path / "elsewhere"
        EbarTable(**GRID, cache_dir=explicit)
        assert list(explicit.glob("ebar-v*.npy"))
        assert not list((tmp_path / "cache").glob("ebar-v*.npy"))


class TestEnvironmentControls:
    def test_repro_cache_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "explicit"

    def test_xdg_cache_home_respected(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-comimo"
        EbarTable(**GRID)
        assert list((tmp_path / "xdg" / "repro-comimo").glob("ebar-v*.npy"))

    def test_home_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / ".cache" / "repro-comimo"

    def test_no_cache_env_disables_both_levels(
        self, tmp_path, monkeypatch, count_solves
    ):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        EbarTable(**GRID)
        EbarTable(**GRID)
        assert len(count_solves) == 2
        assert not list((tmp_path / "cache").glob("ebar-v*.npy"))

    def test_use_cache_false_disables_both_levels(self, tmp_path, count_solves):
        EbarTable(**GRID, use_cache=False)
        EbarTable(**GRID, use_cache=False)
        assert len(count_solves) == 2
        assert not list((tmp_path / "cache").glob("ebar-v*.npy"))

    def test_unwritable_cache_dir_is_tolerated(self, tmp_path, monkeypatch):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocked))
        table = EbarTable(**GRID)  # must not raise
        assert np.isfinite(table.lookup(0.001, 2, 1, 1))


class TestEnergyModelConstruction:
    def test_default_construction_runs_zero_root_finds(self, monkeypatch):
        """EnergyModel() must stay lazy: no solving at construction time."""
        from scipy import optimize as scipy_optimize

        def forbidden(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("brentq called during EnergyModel()")

        monkeypatch.setattr(scipy_optimize, "brentq", forbidden)
        from repro.energy.model import EnergyModel

        EnergyModel()

    def test_table_backed_model_with_warm_cache_runs_zero_root_finds(
        self, monkeypatch
    ):
        from repro.energy.model import EnergyModel

        warm = EbarTable(**GRID)
        del warm

        from scipy import optimize as scipy_optimize

        def forbidden(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("brentq called despite a warm table cache")

        monkeypatch.setattr(scipy_optimize, "brentq", forbidden)
        model = EnergyModel(ebar_provider=EbarTable(**GRID))
        assert model.ebar(0.001, 2, 2, 2) > 0.0


class TestMemmapCache:
    def test_warm_load_is_memory_mapped_readonly(self, count_solves):
        EbarTable(**GRID)
        EbarTable.clear_memory_cache()
        warm = EbarTable(**GRID)
        assert len(count_solves) == 1
        # Zero-copy contract: the warm grid is a read-only memmap over the
        # cache file, not a deserialized private copy.
        assert isinstance(warm._grid, np.memmap)
        assert warm._grid.flags.writeable is False

    def test_memmapped_instances_share_one_file_mapping(self):
        built = EbarTable(**GRID)
        EbarTable.clear_memory_cache()
        first = EbarTable(**GRID)
        second = EbarTable(**GRID)  # memo hit: the exact same mapping
        assert second._grid is first._grid
        assert np.array_equal(
            built.to_arrays()["ebar"], first.to_arrays()["ebar"], equal_nan=True
        )

    def test_stale_cache_version_is_ignored(self, tmp_path, count_solves):
        EbarTable(**GRID)
        (path,) = (tmp_path / "cache").glob("ebar-v*.npy")
        stale = path.with_name(path.name.replace("ebar-v", "ebar-v0", 1))
        path.rename(stale)
        EbarTable.clear_memory_cache()
        EbarTable(**GRID)  # the v-prefixed name misses; re-solve
        assert len(count_solves) == 2
