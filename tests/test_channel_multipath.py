"""Multipath/scatterer field tests: interference physics and the null."""

import numpy as np
import pytest

from repro.channel.multipath import MultipathEnvironment, Scatterer


class TestLineOfSight:
    def test_single_tx_unit_amplitude(self):
        env = MultipathEnvironment.line_of_sight()
        amp = env.amplitude_at(np.array([[0.0, 0.0]]), np.array([10.0, 0.0]), 1.0)
        assert amp == pytest.approx(1.0)

    def test_two_in_phase_tx_double(self):
        # co-located transmitters: fields add to amplitude 2
        env = MultipathEnvironment.line_of_sight()
        tx = np.array([[0.0, 0.0], [0.0, 0.0]])
        amp = env.amplitude_at(tx, np.array([5.0, 0.0]), 1.0)
        assert amp == pytest.approx(2.0)

    def test_half_wave_spacing_cancels_endfire(self):
        # spacing lambda/2 along the LOS direction: path difference lambda/2
        # -> pi phase -> perfect cancellation with equal phases
        env = MultipathEnvironment.line_of_sight()
        tx = np.array([[0.0, 0.0], [0.5, 0.0]])  # lambda = 1
        amp = env.amplitude_at(tx, np.array([100.0, 0.0]), 1.0)
        assert amp < 1e-9

    def test_phase_offset_restores(self):
        # adding pi offset to the delayed element re-aligns the endfire pair
        env = MultipathEnvironment.line_of_sight()
        tx = np.array([[0.0, 0.0], [0.5, 0.0]])
        amp = env.amplitude_at(
            tx, np.array([100.0, 0.0]), 1.0, tx_phases_rad=np.array([np.pi, 0.0])
        )
        assert amp == pytest.approx(2.0, abs=1e-9)

    def test_tx_amplitudes_scale(self):
        env = MultipathEnvironment.line_of_sight()
        amp = env.amplitude_at(
            np.array([[0.0, 0.0]]),
            np.array([3.0, 0.0]),
            1.0,
            tx_amplitudes=np.array([2.5]),
        )
        assert amp == pytest.approx(2.5)


class TestScatterers:
    def test_scatterer_fills_a_null(self):
        env_los = MultipathEnvironment.line_of_sight()
        env_mp = MultipathEnvironment(scatterers=(Scatterer((0.0, 3.0), 0.3),))
        tx = np.array([[0.0, 0.0], [0.5, 0.0]])
        rx = np.array([100.0, 0.0])
        assert env_los.amplitude_at(tx, rx, 1.0) < 1e-9
        assert env_mp.amplitude_at(tx, rx, 1.0) > 0.01

    def test_path_lengths_shape(self):
        env = MultipathEnvironment(
            scatterers=(Scatterer((1.0, 1.0), 0.2), Scatterer((2.0, 0.0), 0.1))
        )
        paths = env.path_lengths(np.array([[0.0, 0.0], [1.0, 0.0]]), np.array([5.0, 0.0]))
        assert paths.shape == (2, 3)
        # echo paths are longer than the direct path
        assert np.all(paths[:, 1:] >= paths[:, :1])

    def test_amplitude_decay_option(self):
        near = MultipathEnvironment(amplitude_decay_with_distance=True)
        tx = np.array([[0.0, 0.0]])
        a1 = near.amplitude_at(tx, np.array([1.0, 0.0]), 1.0)
        a2 = near.amplitude_at(tx, np.array([2.0, 0.0]), 1.0)
        assert a1 == pytest.approx(2.0 * a2)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ValueError):
            Scatterer((0.0, 0.0), -0.1)


class TestRandomIndoor:
    def test_scatterer_count_and_ring(self):
        env = MultipathEnvironment.random_indoor(
            n_scatterers=5, inner_radius_m=2.0, outer_radius_m=4.0, rng=3
        )
        assert len(env.scatterers) == 5
        for s in env.scatterers:
            r = np.hypot(*s.position)
            assert 2.0 - 1e-9 <= r <= 4.0 + 1e-9

    def test_amplitude_decay_sequence(self):
        env = MultipathEnvironment.random_indoor(
            n_scatterers=4, echo_amplitude=0.4, decay=0.5, rng=1
        )
        amps = [s.amplitude for s in env.scatterers]
        np.testing.assert_allclose(amps, [0.4, 0.2, 0.1, 0.05])

    def test_deterministic(self):
        a = MultipathEnvironment.random_indoor(rng=11)
        b = MultipathEnvironment.random_indoor(rng=11)
        assert a.scatterers == b.scatterers

    def test_rejects_bad_radii(self):
        with pytest.raises(ValueError):
            MultipathEnvironment.random_indoor(inner_radius_m=4.0, outer_radius_m=2.0)


class TestValidation:
    def test_phase_vector_length_checked(self):
        env = MultipathEnvironment.line_of_sight()
        with pytest.raises(ValueError):
            env.field_at(
                np.array([[0.0, 0.0], [1.0, 0.0]]),
                np.array([5.0, 0.0]),
                1.0,
                tx_phases_rad=np.array([0.0]),
            )

    def test_rejects_bad_wavelength(self):
        env = MultipathEnvironment.line_of_sight()
        with pytest.raises(ValueError):
            env.field_at(np.array([[0.0, 0.0]]), np.array([1.0, 0.0]), 0.0)


class TestBatchedReceivers:
    """amplitude_at/field_at over (N, 2) field points must equal the
    per-point scalar evaluation bit-for-bit (the Figure 8 fast path)."""

    TX = np.array([[0.06, 0.0], [-0.06, 0.0]])
    POINTS = np.array(
        [[np.cos(a), np.sin(a)] for a in np.linspace(0.0, np.pi, 7)]
    )

    def _environments(self):
        indoor = MultipathEnvironment.random_indoor(rng=5)
        return (
            MultipathEnvironment.line_of_sight(),
            indoor,
            MultipathEnvironment(
                scatterers=indoor.scatterers, amplitude_decay_with_distance=True
            ),
        )

    def test_batch_field_matches_scalar(self):
        for env in self._environments():
            batch = env.field_at(self.TX, self.POINTS, 0.1224)
            scalar = np.array(
                [env.field_at(self.TX, p, 0.1224) for p in self.POINTS]
            )
            assert batch.shape == (len(self.POINTS),)
            assert np.array_equal(batch, scalar)

    def test_batch_amplitude_matches_scalar(self):
        phases = np.array([0.7, 0.0])
        for env in self._environments():
            batch = env.amplitude_at(
                self.TX, self.POINTS, 0.1224, tx_phases_rad=phases
            )
            scalar = np.array(
                [
                    env.amplitude_at(self.TX, p, 0.1224, tx_phases_rad=phases)
                    for p in self.POINTS
                ]
            )
            assert np.array_equal(batch, scalar)

    def test_batch_path_lengths_match_scalar(self):
        for env in self._environments():
            batch = env.path_lengths(self.TX, self.POINTS)
            scalar = np.array(
                [env.path_lengths(self.TX, p) for p in self.POINTS]
            )
            assert np.array_equal(batch, scalar)

    def test_scalar_forms_unchanged(self):
        env = MultipathEnvironment.random_indoor(rng=5)
        field = env.field_at(self.TX, self.POINTS[0], 0.1224)
        assert isinstance(field, complex)
        assert isinstance(env.amplitude_at(self.TX, self.POINTS[0], 0.1224), float)

    def test_bad_rx_shape_rejected(self):
        env = MultipathEnvironment.line_of_sight()
        with pytest.raises(ValueError):
            env.path_lengths(self.TX, np.zeros((3, 4)))
