"""CSMA/CA simulator tests: conservation, contention behaviour, config."""

import pytest

from repro.mac.csma import CsmaCaSimulator, CsmaConfig, MacStats


class TestConfig:
    def test_defaults_valid(self):
        CsmaConfig()

    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError):
            CsmaConfig(slot_us=0.0)

    def test_rejects_bad_cw(self):
        with pytest.raises(ValueError):
            CsmaConfig(cw_min=64, cw_max=32)

    def test_rejects_bad_retry(self):
        with pytest.raises(ValueError):
            CsmaConfig(retry_limit=0)


class TestSingleStation:
    def test_no_collisions_alone(self):
        sim = CsmaCaSimulator(n_stations=1, rng=0)
        stats = sim.run(1_000_000)
        assert stats.collisions == 0
        assert stats.dropped == 0
        assert stats.delivered > 0

    def test_throughput_bounded_by_airtime(self):
        cfg = CsmaConfig()
        sim = CsmaCaSimulator(n_stations=1, config=cfg, rng=0)
        stats = sim.run(1_000_000)
        per_frame = cfg.frame_us + cfg.sifs_us + cfg.ack_us + cfg.difs_us
        upper = 1e6 / per_frame
        assert stats.throughput_frames_per_s() <= upper * 1.01


class TestContention:
    def test_collisions_grow_with_stations(self):
        probs = []
        for n in (2, 8, 24):
            sim = CsmaCaSimulator(n_stations=n, rng=1)
            stats = sim.run(2_000_000)
            probs.append(stats.collision_probability)
        assert probs[0] < probs[1] < probs[2]
        assert probs[0] > 0.0

    def test_attempts_conserved(self):
        sim = CsmaCaSimulator(n_stations=6, rng=2)
        stats = sim.run(2_000_000)
        assert stats.attempts == stats.delivered + stats.collisions

    def test_larger_cw_fewer_collisions(self):
        tight = CsmaCaSimulator(n_stations=8, config=CsmaConfig(cw_min=4), rng=3)
        wide = CsmaCaSimulator(n_stations=8, config=CsmaConfig(cw_min=64), rng=3)
        assert (
            wide.run(2_000_000).collision_probability
            < tight.run(2_000_000).collision_probability
        )

    def test_drops_happen_under_extreme_contention(self):
        cfg = CsmaConfig(cw_min=2, cw_max=2, retry_limit=1)
        sim = CsmaCaSimulator(n_stations=16, config=cfg, rng=4)
        assert sim.run(2_000_000).dropped > 0


class TestUnsaturated:
    def test_low_load_delivers_nearly_everything(self):
        sim = CsmaCaSimulator(
            n_stations=3, saturated=False, arrival_rate_fps=20.0, rng=5
        )
        stats = sim.run(5_000_000)  # 5 s
        expected = 3 * 20.0 * 5.0
        assert stats.delivered == pytest.approx(expected, rel=0.35)
        assert stats.collision_probability < 0.1

    def test_utilization_below_saturated(self):
        sat = CsmaCaSimulator(n_stations=3, saturated=True, rng=6).run(2_000_000)
        idle = CsmaCaSimulator(
            n_stations=3, saturated=False, arrival_rate_fps=10.0, rng=6
        ).run(2_000_000)
        assert idle.channel_utilization < sat.channel_utilization


class TestStats:
    def test_empty_stats_safe(self):
        stats = MacStats()
        assert stats.collision_probability == 0.0
        assert stats.mean_access_delay_us == 0.0
        assert stats.throughput_frames_per_s() == 0.0

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            CsmaCaSimulator(n_stations=1).run(0.0)

    def test_rejects_bad_station_count(self):
        with pytest.raises(ValueError):
            CsmaCaSimulator(n_stations=0)


class TestDeterminism:
    def test_same_seed_same_stats(self):
        a = CsmaCaSimulator(n_stations=12, rng=42).run(2_000_000)
        b = CsmaCaSimulator(n_stations=12, rng=42).run(2_000_000)
        assert (a.attempts, a.delivered, a.collisions, a.dropped) == (
            b.attempts,
            b.delivered,
            b.collisions,
            b.dropped,
        )
        assert a.mean_access_delay_us == b.mean_access_delay_us
        assert a.channel_utilization == b.channel_utilization

    def test_different_seed_different_stats(self):
        a = CsmaCaSimulator(n_stations=12, rng=42).run(2_000_000)
        b = CsmaCaSimulator(n_stations=12, rng=43).run(2_000_000)
        assert (a.delivered, a.collisions) != (b.delivered, b.collisions)

    def test_unsaturated_deterministic(self):
        runs = [
            CsmaCaSimulator(
                n_stations=5, saturated=False, arrival_rate_fps=30.0, rng=9
            ).run(2_000_000)
            for _ in range(2)
        ]
        assert runs[0].delivered == runs[1].delivered
        assert runs[0].attempts == runs[1].attempts


class TestCityScaleContention:
    """Regression pins for the ≥100-station regime the scenario runtime uses."""

    def test_hundred_stations_still_deliver(self):
        stats = CsmaCaSimulator(n_stations=100, rng=10).run(2_000_000)
        assert stats.delivered > 0
        assert stats.attempts == stats.delivered + stats.collisions
        # Collapse point: contention is severe but the channel still works.
        assert 0.5 < stats.collision_probability < 1.0

    def test_contention_monotone_through_city_scale(self):
        probs = []
        for n in (50, 100, 200):
            stats = CsmaCaSimulator(n_stations=n, rng=11).run(1_000_000)
            probs.append(stats.collision_probability)
        assert probs[0] < probs[1] < probs[2]

    def test_throughput_degrades_gracefully(self):
        """Aggregate throughput at 100 stations stays within the airtime
        bound and above a pinned floor (guards accidental collapse)."""
        cfg = CsmaConfig()
        stats = CsmaCaSimulator(n_stations=100, config=cfg, rng=12).run(2_000_000)
        per_frame = cfg.frame_us + cfg.sifs_us + cfg.ack_us + cfg.difs_us
        upper = 1e6 / per_frame
        throughput = stats.throughput_frames_per_s()
        assert throughput <= upper * 1.01
        assert throughput > 0.05 * upper

    def test_wide_cw_rescues_city_scale(self):
        tight = CsmaCaSimulator(
            n_stations=120, config=CsmaConfig(cw_min=8), rng=13
        ).run(1_000_000)
        wide = CsmaCaSimulator(
            n_stations=120, config=CsmaConfig(cw_min=256), rng=13
        ).run(1_000_000)
        assert wide.collision_probability < tight.collision_probability


class TestRtsCts:
    def test_overhead_properties(self):
        plain = CsmaConfig()
        handshake = CsmaConfig(rts_cts=True)
        assert handshake.success_overhead_us > plain.success_overhead_us
        assert handshake.collision_cost_us < plain.collision_cost_us

    def test_helps_under_heavy_contention_with_long_frames(self):
        """The classical RTS/CTS payoff: many stations, big frames."""
        plain = CsmaCaSimulator(
            n_stations=24, config=CsmaConfig(frame_us=8000.0, cw_min=8), rng=7
        ).run(5_000_000)
        rts = CsmaCaSimulator(
            n_stations=24,
            config=CsmaConfig(frame_us=8000.0, cw_min=8, rts_cts=True),
            rng=7,
        ).run(5_000_000)
        assert rts.delivered > plain.delivered

    def test_hurts_when_uncontended(self):
        """Alone on the channel the handshake is pure overhead."""
        plain = CsmaCaSimulator(n_stations=1, rng=8).run(2_000_000)
        rts = CsmaCaSimulator(
            n_stations=1, config=CsmaConfig(rts_cts=True), rng=8
        ).run(2_000_000)
        assert rts.delivered < plain.delivered

    def test_rejects_bad_rts_timing(self):
        with pytest.raises(ValueError):
            CsmaConfig(rts_us=0.0)
