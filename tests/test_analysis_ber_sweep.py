"""BER waterfall sweep and Wilson interval tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ber_sweep import sweep_ber, wilson_interval
from repro.modulation import BPSKModem
from repro.modulation.theory import ber_bpsk_rayleigh


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(10, 1000)
        assert low < 0.01 < high

    def test_zero_errors_finite_upper_bound(self):
        low, high = wilson_interval(0, 10_000)
        assert low == 0.0
        assert 0.0 < high < 1e-3

    def test_all_errors(self):
        low, high = wilson_interval(100, 100)
        assert high == 1.0
        assert low > 0.9

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1000, max_value=100_000),
    )
    @settings(max_examples=40)
    def test_valid_interval(self, errors, trials):
        low, high = wilson_interval(errors, trials)
        assert 0.0 <= low <= errors / trials <= high <= 1.0

    def test_narrows_with_samples(self):
        w1 = np.diff(wilson_interval(10, 1000))[0]
        w2 = np.diff(wilson_interval(100, 10_000))[0]
        assert w2 < w1

    def test_higher_confidence_wider(self):
        narrow = np.diff(wilson_interval(10, 1000, confidence=0.9))[0]
        wide = np.diff(wilson_interval(10, 1000, confidence=0.99))[0]
        assert wide > narrow

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)


class TestSweep:
    def test_waterfall_matches_theory(self, rng):
        points = sweep_ber(
            BPSKModem(), [5.0, 10.0, 15.0], target_errors=300, rng=rng
        )
        for pt in points:
            theory = float(ber_bpsk_rayleigh(pt.snr_db))
            assert pt.ci_low <= theory * 1.1 and theory * 0.9 <= pt.ci_high

    def test_monotone_decreasing(self, rng):
        points = sweep_ber(BPSKModem(), [4.0, 8.0, 12.0, 16.0], rng=rng)
        bers = [p.ber for p in points]
        assert all(b2 < b1 for b1, b2 in zip(bers, bers[1:]))

    def test_sample_escalation_at_low_ber(self, rng):
        points = sweep_ber(
            BPSKModem(),
            [0.0, 20.0],
            target_errors=200,
            initial_bits=20_000,
            max_bits=400_000,
            rng=rng,
        )
        # high-SNR point needs far more bits to collect its errors
        assert points[1].n_bits > points[0].n_bits

    def test_max_bits_respected(self, rng):
        points = sweep_ber(
            BPSKModem(), [40.0], target_errors=10_000, max_bits=50_000, rng=rng
        )
        assert points[0].n_bits <= 50_000

    def test_interval_brackets_estimate(self, rng):
        for pt in sweep_ber(BPSKModem(), [8.0], rng=rng):
            assert pt.ci_low <= pt.ber <= pt.ci_high
