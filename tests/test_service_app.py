"""PlanningService.handle: routing, payloads, and status-code mapping."""

import asyncio
import json

import pytest

from repro.service.app import PlanningService
from repro.service.config import ServiceConfig
from repro.service.errors import OverloadedError


@pytest.fixture(scope="module")
def service():
    svc = PlanningService(
        ServiceConfig(workers=0, coalesce_ms=0.0, request_log=False, seed=11)
    )
    yield svc
    svc.close()


def call(service, method, path, body=None):
    blob = b"" if body is None else json.dumps(body).encode()
    return asyncio.run(service.handle(method, path, blob))


class TestRouting:
    def test_healthz(self, service):
        assert call(service, "GET", "/healthz") == (200, {"status": "ok"})

    def test_metrics_shape(self, service):
        status, payload = call(service, "GET", "/metrics")
        assert status == 200
        assert {"requests_total", "coalesce", "pool", "latency_ms"} <= set(payload)

    def test_unknown_path_is_404(self, service):
        status, payload = call(service, "GET", "/nope")
        assert status == 404
        assert payload["error"] == "Not Found"

    def test_wrong_method_is_405(self, service):
        status, _ = call(service, "GET", "/v1/ebar")
        assert status == 405
        status, _ = call(service, "POST", "/healthz")
        assert status == 405

    def test_malformed_json_is_400(self, service):
        status, payload = asyncio.run(
            service.handle("POST", "/v1/ebar", b"{not json")
        )
        assert status == 400
        assert "JSON" in str(payload["detail"])

    def test_empty_body_is_400(self, service):
        status, _ = call(service, "POST", "/v1/ebar")
        assert status == 400


class TestEbarEndpoint:
    def test_table_lookup_matches_direct_table(self, service):
        status, payload = call(
            service, "POST", "/v1/ebar", {"p": 0.001, "b": 2, "mt": 2, "mr": 2}
        )
        assert status == 200
        table = service._table("paper")
        assert payload["e_bar"] == table.lookup(0.001, 2, 2, 2)
        assert payload["p_grid"] == 0.001

    def test_off_grid_b_is_404(self, service):
        status, payload = call(
            service, "POST", "/v1/ebar", {"p": 0.001, "b": 99, "mt": 2, "mr": 2}
        )
        assert status == 404
        assert "b=99" in str(payload["detail"])

    def test_off_grid_mt_is_404(self, service):
        status, _ = call(
            service, "POST", "/v1/ebar", {"p": 0.001, "b": 2, "mt": 9, "mr": 2}
        )
        assert status == 404

    def test_infeasible_grid_point_is_404(self, service, monkeypatch):
        # The default grids have no NaN entries, so emulate an infeasible
        # point with a stub table: the batch path must demux it to a 404.
        import numpy as np

        class NanTable:
            p_values = (0.0007,)
            b_values = (13,)
            mt_values = (1,)
            mr_values = (1,)

            def lookup(self, p, b, mt, mr):
                return np.full(np.shape(np.asarray(p, dtype=float)), np.nan)

        monkeypatch.setitem(service._tables, "paper", NanTable())
        status, payload = call(
            service, "POST", "/v1/ebar", {"p": 0.0007, "b": 13, "mt": 1, "mr": 1}
        )
        assert status == 404
        assert "infeasible" in str(payload["detail"])

    def test_exact_solver_runs_in_pool(self, service):
        from repro.energy.ebar import solve_ebar

        status, payload = call(
            service,
            "POST",
            "/v1/ebar",
            {"p": 0.005, "b": 3, "mt": 1, "mr": 2, "solver": "exact"},
        )
        assert status == 200
        assert payload["e_bar"] == solve_ebar(0.005, 3, 1, 2)
        assert "p_grid" not in payload

    def test_cache_hit_on_repeat(self, service):
        body = {"p": 0.01, "b": 4, "mt": 2, "mr": 1}
        call(service, "POST", "/v1/ebar", body)
        hits_before = service.metrics.snapshot()["ebar_cache"]["hits"]
        status, _ = call(service, "POST", "/v1/ebar", body)
        assert status == 200
        assert service.metrics.snapshot()["ebar_cache"]["hits"] == hits_before + 1


class TestParadigmEndpoints:
    def test_overlay_scalar_matches_direct_analysis(self, service):
        from repro.service import work

        status, payload = call(
            service,
            "POST",
            "/v1/overlay/feasible",
            {"d1": 40.0, "m": 2, "bandwidth": 10e3},
        )
        assert status == 200
        system = work._overlay("diversity_only")
        expected = work.overlay_row_dict(system.distance_analysis(40.0, 2, 10e3))
        assert payload["rows"] == [expected]

    def test_overlay_sweep_counts(self, service):
        status, payload = call(
            service,
            "POST",
            "/v1/overlay/feasible",
            {"d1": [20.0, 40.0, 60.0], "m": 2, "bandwidth": 10e3},
        )
        assert status == 200
        assert payload["count"] == 3
        assert [row["d1"] for row in payload["rows"]] == [20.0, 40.0, 60.0]

    def test_underlay_scalar_matches_direct_sweep(self, service):
        from repro.service import work

        status, payload = call(
            service,
            "POST",
            "/v1/underlay/energy",
            {"p": 1e-3, "mt": 2, "mr": 2, "d": 5.0, "distance": 80.0,
             "bandwidth": 10e3},
        )
        assert status == 200
        direct = work._underlay("paper").pa_energy(1e-3, 2, 2, 5.0, 80.0, 10e3)
        row = payload["rows"][0]
        assert row["total_pa"] == direct.total_pa
        assert row["peak_pa"] == direct.peak_pa
        assert row["b"] == direct.b

    def test_interweave_null_direction_is_deep(self, service):
        status, payload = call(
            service,
            "POST",
            "/v1/interweave/pattern",
            {"st1": [0.0, 0.0], "st2": [15.0, 0.0], "wavelength": 30.0,
             "point": [2000.0, 0.0], "pr": [100.0, 0.0]},
        )
        assert status == 200
        # Far along the null direction, the pair's field nearly cancels.
        assert payload["amplitudes"][0] < 0.05
        assert payload["delta"] == 0.0

    def test_interweave_unseeded_environment_reports_seed(self, service):
        body = {
            "st1": [0.0, 0.0], "st2": [15.0, 0.0], "wavelength": 30.0,
            "point": [40.0, 40.0], "delta": 0.0,
            "environment": {"n_scatterers": 3},
        }
        status, payload = call(service, "POST", "/v1/interweave/pattern", body)
        assert status == 200
        seed = payload["seed_used"]
        assert isinstance(seed, int)
        # Replaying with the echoed seed reproduces the amplitude exactly.
        body["environment"]["seed"] = seed
        _, replay = call(service, "POST", "/v1/interweave/pattern", body)
        assert replay["amplitudes"] == payload["amplitudes"]
        assert replay["seed_used"] == seed

    def test_out_of_domain_parameter_is_400(self, service):
        status, _ = call(
            service,
            "POST",
            "/v1/overlay/feasible",
            {"d1": 40.0, "m": 2, "bandwidth": -1.0},
        )
        assert status == 400


class TestBackpressure:
    def test_full_pool_maps_to_429(self, service):
        class _FullPool:
            workers = 1

            async def submit(self, fn, *args):
                raise OverloadedError("sweep queue full (1/1 in flight)")

        real_pool = service.pool
        service.pool = _FullPool()
        try:
            status, payload = call(
                service,
                "POST",
                "/v1/overlay/feasible",
                {"d1": [20.0, 40.0], "m": 2, "bandwidth": 10e3},
            )
        finally:
            service.pool = real_pool
        assert status == 429
        assert payload["error"] == "Too Many Requests"
        assert "queue full" in str(payload["detail"])

    def test_real_pool_queue_limit_rejects(self):
        import time

        svc = PlanningService(
            ServiceConfig(workers=1, queue_limit=1, coalesce_ms=0.0,
                          request_log=False, seed=3)
        )

        async def main():
            first = asyncio.ensure_future(svc.pool.submit(time.sleep, 0.3))
            await asyncio.sleep(0.05)
            status, _ = await svc.handle(
                "POST",
                "/v1/overlay/feasible",
                json.dumps({"d1": [20.0, 40.0], "m": 2,
                            "bandwidth": 10e3}).encode(),
            )
            await first
            return status

        try:
            assert asyncio.run(main()) == 429
        finally:
            svc.close()


class TestErrorPayloadShape:
    def test_every_error_body_carries_status_error_and_detail(self, service):
        status, payload = call(service, "GET", "/nope")
        assert status == 404
        assert {"error", "detail", "status"} <= set(payload)
        assert payload["status"] == 404


class TestHealthStates:
    def test_degraded_pool_flips_readiness(self):
        svc = PlanningService(
            ServiceConfig(workers=0, coalesce_ms=0.0, request_log=False)
        )
        try:
            assert svc.health_status() == "ok"
            svc.pool._degraded = True
            assert svc.health_status() == "degraded"
            status, payload = call(svc, "GET", "/healthz")
            assert (status, payload) == (200, {"status": "degraded"})
            status, payload = call(svc, "GET", "/metrics")
            assert payload["health"] == "degraded"
        finally:
            svc.close()

    def test_draining_wins_over_degraded(self):
        svc = PlanningService(
            ServiceConfig(workers=0, coalesce_ms=0.0, request_log=False)
        )
        try:
            svc.pool._degraded = True
            svc.mark_draining()
            assert svc.health_status() == "draining"
        finally:
            svc.close()


class TestDeadline:
    def _service(self, timeout_ms):
        return PlanningService(
            ServiceConfig(
                workers=0,
                coalesce_ms=0.0,
                request_log=False,
                request_timeout_ms=timeout_ms,
            )
        )

    def test_stalled_request_maps_to_504(self):
        svc = self._service(50.0)
        svc.faults.arm_delay(5.0, times=1)
        try:
            status, payload = call(
                svc, "POST", "/v1/ebar", {"p": 0.001, "b": 2, "mt": 2, "mr": 2}
            )
        finally:
            svc.close()
        assert status == 504
        assert payload["error"] == "Gateway Timeout"
        assert payload["status"] == 504
        assert "50 ms" in str(payload["detail"])
        assert svc.metrics.snapshot()["deadline_timeouts"] == 1

    def test_no_timeout_configured_never_cancels(self):
        svc = PlanningService(
            ServiceConfig(workers=0, coalesce_ms=0.0, request_log=False)
        )
        svc.faults.arm_delay(0.05, times=1)
        try:
            status, _ = call(
                svc, "POST", "/v1/ebar", {"p": 0.001, "b": 2, "mt": 2, "mr": 2}
            )
        finally:
            svc.close()
        assert status == 200

    def test_fast_request_beats_the_deadline(self):
        svc = self._service(30000.0)
        try:
            status, _ = call(svc, "GET", "/healthz")
        finally:
            svc.close()
        assert status == 200
        assert svc.metrics.snapshot()["deadline_timeouts"] == 0
