"""Q-function tests: anchors, symmetry, inverse, bounds."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.qfunc import inv_qfunc, qfunc, qfunc_chernoff_bound


class TestValues:
    def test_q_of_zero(self):
        assert qfunc(0.0) == pytest.approx(0.5)

    def test_textbook_anchor(self):
        # Q(1.96) ~ 0.025 (the 95% two-sided normal quantile)
        assert qfunc(1.96) == pytest.approx(0.025, abs=5e-4)

    def test_deep_tail_no_underflow(self):
        # naive 1 - Phi(x) would return exactly 0 long before x = 35
        assert 0.0 < qfunc(35.0) < 1e-200

    def test_symmetry(self):
        assert qfunc(-1.3) == pytest.approx(1.0 - qfunc(1.3))

    def test_broadcasts(self):
        out = qfunc(np.array([0.0, 1.0, 2.0]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)


class TestInverse:
    @given(st.floats(min_value=1e-9, max_value=1.0 - 1e-9))
    def test_roundtrip(self, p):
        assert qfunc(inv_qfunc(p)) == pytest.approx(p, rel=1e-6)

    def test_median(self):
        assert inv_qfunc(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_boundaries(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                inv_qfunc(bad)


class TestBounds:
    @given(st.floats(min_value=0.0, max_value=20.0))
    def test_chernoff_dominates(self, x):
        assert qfunc(x) <= qfunc_chernoff_bound(x) + 1e-15

    def test_chernoff_rejects_negative(self):
        with pytest.raises(ValueError):
            qfunc_chernoff_bound(-1.0)

    @given(st.floats(min_value=-10.0, max_value=10.0))
    def test_q_in_unit_interval(self, x):
        assert 0.0 <= qfunc(x) <= 1.0
