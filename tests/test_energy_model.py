"""Energy model tests: formulas (1)-(4), splits, distance inversion."""

import numpy as np
import pytest

from repro.constants import PAPER_CONSTANTS
from repro.energy.ebar import solve_ebar
from repro.energy.model import EnergyModel


class TestLocalTx:
    def test_pa_formula_by_hand(self, energy_model):
        """Recompute e_PA^{Lt} of formula (1) from raw constants."""
        p, b, d = 0.001, 2, 4.0
        c = PAPER_CONSTANTS
        alpha = c.peak_to_average_alpha(b)
        expected = (
            (4.0 / 3.0)
            * (1 + alpha)
            * (2**b - 1)
            / b
            * np.log(4 * (1 - 2 ** (-b / 2)) / (b * p))
            * (0.01 * d**3.5 * 1e4)
            * 10.0
            * c.sigma2_w_hz
        )
        got = energy_model.local_tx(p, b, d, 10e3)
        assert got.pa == pytest.approx(expected)

    def test_circuit_formula(self, energy_model):
        got = energy_model.local_tx(0.001, 2, 1.0, 10e3)
        expected = 0.04864 / (2 * 10e3) + 0.05 * 5e-6 / energy_model.packet_bits
        assert got.circuit == pytest.approx(expected)

    def test_grows_with_distance(self, energy_model):
        e1 = energy_model.local_tx(0.001, 2, 1.0, 10e3).pa
        e16 = energy_model.local_tx(0.001, 2, 16.0, 10e3).pa
        assert e16 == pytest.approx(e1 * 16**3.5, rel=1e-9)

    def test_stricter_ber_costs_more(self, energy_model):
        lax = energy_model.local_tx(0.01, 2, 2.0, 10e3).pa
        strict = energy_model.local_tx(0.0001, 2, 2.0, 10e3).pa
        assert strict > lax

    def test_lax_target_infeasible(self, energy_model):
        # ln argument <= 1 for p close to the constellation ceiling:
        # 4 (1 - 2^{-b/2}) / (b p) = 0.83 < 1 at b = 4, p = 0.9
        with pytest.raises(ValueError):
            energy_model.local_tx(0.9, 4, 2.0, 10e3)


class TestLocalRx:
    def test_circuit_only(self, energy_model):
        got = energy_model.local_rx(2, 10e3)
        assert got.pa == 0.0
        expected = 0.0625 / (2 * 10e3) + 0.05 * 5e-6 / energy_model.packet_bits
        assert got.circuit == pytest.approx(expected)

    def test_longhaul_reception_cheaper_than_transmission(self, energy_model):
        """Transmission needs more energy than reception (the Section 6.1
        explanation for D3 > D2) — true on the long haul where the PA
        dominates.  (Locally the paper's P_cr exceeds P_ct, so the claim is
        a long-haul statement.)"""
        rx = energy_model.mimo_rx(2, 10e3).total
        tx = energy_model.mimo_tx(0.001, 2, 1, 1, 200.0, 10e3).total
        assert rx < tx / 5.0


class TestMimoTx:
    def test_formula_by_hand(self, energy_model):
        p, b, mt, mr, dist, bw = 0.001, 2, 2, 3, 150.0, 10e3
        c = PAPER_CONSTANTS
        alpha = c.peak_to_average_alpha(b)
        ebar = solve_ebar(p, b, mt, mr, n0=c.n0_w_hz)
        expected_pa = (1.0 / mt) * (1 + alpha) * ebar * c.longhaul_gain(dist)
        got = energy_model.mimo_tx(p, b, mt, mr, dist, bw)
        assert got.pa == pytest.approx(expected_pa)
        assert got.circuit == pytest.approx((0.04864 + 0.05) / (2 * 10e3))

    def test_quadratic_in_distance(self, energy_model):
        e100 = energy_model.mimo_tx(0.001, 2, 2, 2, 100.0, 10e3).pa
        e300 = energy_model.mimo_tx(0.001, 2, 2, 2, 300.0, 10e3).pa
        assert e300 == pytest.approx(9.0 * e100, rel=1e-9)

    def test_diversity_saves_energy(self, energy_model):
        siso = energy_model.mimo_tx(0.001, 2, 1, 1, 200.0, 10e3).pa
        mimo = energy_model.mimo_tx(0.001, 2, 2, 3, 200.0, 10e3).pa
        assert mimo < siso / 10.0

    def test_bandwidth_only_affects_circuit(self, energy_model):
        lo = energy_model.mimo_tx(0.001, 2, 2, 2, 200.0, 10e3)
        hi = energy_model.mimo_tx(0.001, 2, 2, 2, 200.0, 100e3)
        assert lo.pa == hi.pa
        assert lo.circuit == pytest.approx(10.0 * hi.circuit)


class TestMimoRx:
    def test_formula(self, energy_model):
        got = energy_model.mimo_rx(4, 20e3)
        assert got.pa == 0.0
        assert got.circuit == pytest.approx((0.0625 + 0.05) / (4 * 20e3))


class TestBreakdown:
    def test_total_is_sum(self, energy_model):
        e = energy_model.local_tx(0.001, 2, 3.0, 10e3)
        assert e.total == pytest.approx(e.pa + e.circuit)


class TestDistanceInversion:
    def test_roundtrip(self, energy_model):
        """max_mimo_distance inverts mimo_tx exactly."""
        p, b, mt, mr, bw = 0.001, 2, 3, 1, 10e3
        d_true = 173.2
        budget = energy_model.mimo_tx(p, b, mt, mr, d_true, bw).total
        got = energy_model.max_mimo_distance(budget, p, b, mt, mr, bw)
        assert got == pytest.approx(d_true, rel=1e-9)

    def test_extra_circuit_shrinks_distance(self, energy_model):
        budget = 1e-5
        base = energy_model.max_mimo_distance(budget, 0.001, 2, 2, 1, 10e3)
        loaded = energy_model.max_mimo_distance(
            budget, 0.001, 2, 2, 1, 10e3, extra_circuit=budget / 2
        )
        assert loaded < base

    def test_infeasible_budget_gives_zero(self, energy_model):
        tiny = 1e-12  # below the circuit energy at 10 kHz
        assert energy_model.max_mimo_distance(tiny, 0.001, 2, 2, 1, 10e3) == 0.0

    def test_negative_extra_rejected(self, energy_model):
        with pytest.raises(ValueError):
            energy_model.max_mimo_distance(1e-5, 0.001, 2, 2, 1, 10e3, extra_circuit=-1.0)


class TestProviderPlumbing:
    def test_custom_provider_used(self):
        calls = []

        def provider(p, b, mt, mr):
            calls.append((p, b, mt, mr))
            return 1e-19

        model = EnergyModel(ebar_provider=provider)
        model.mimo_tx(0.001, 2, 2, 3, 100.0, 10e3)
        assert calls == [(0.001, 2, 2, 3)]

    def test_convention_threads_to_solver(self):
        paper = EnergyModel(ebar_convention="paper")
        div = EnergyModel(ebar_convention="diversity_only")
        assert paper.ebar(0.001, 2, 3, 1) == pytest.approx(
            3.0 * div.ebar(0.001, 2, 3, 1), rel=1e-9
        )
