"""BPSK/QPSK modem tests: mapping, energy, round-trip, decisions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.modulation.psk import BPSKModem, QPSKModem

bit_arrays = st.lists(st.integers(0, 1), min_size=0, max_size=256).map(
    lambda l: np.array(l, dtype=np.int8)
)


class TestBPSK:
    def test_mapping(self):
        out = BPSKModem().modulate(np.array([0, 1]))
        np.testing.assert_array_equal(out, [1.0 + 0j, -1.0 + 0j])

    def test_unit_energy(self):
        out = BPSKModem().modulate(np.array([0, 1, 1, 0]))
        np.testing.assert_allclose(np.abs(out), 1.0)

    @given(bit_arrays)
    def test_roundtrip(self, bits):
        modem = BPSKModem()
        np.testing.assert_array_equal(modem.demodulate(modem.modulate(bits)), bits)

    def test_decision_threshold(self):
        modem = BPSKModem()
        np.testing.assert_array_equal(
            modem.demodulate(np.array([0.1, -0.1, 2.0, -3.0])), [0, 1, 0, 1]
        )

    def test_imaginary_noise_ignored(self):
        modem = BPSKModem()
        assert modem.demodulate(np.array([1.0 + 5j]))[0] == 0

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            BPSKModem().modulate(np.array([0, 2]))


class TestQPSK:
    def test_unit_average_energy(self):
        modem = QPSKModem()
        bits = np.array([0, 0, 0, 1, 1, 0, 1, 1])
        out = modem.modulate(bits)
        np.testing.assert_allclose(np.abs(out), 1.0)

    def test_four_distinct_points(self):
        modem = QPSKModem()
        bits = np.array([0, 0, 0, 1, 1, 0, 1, 1])
        points = modem.modulate(bits)
        assert len(set(np.round(points, 9))) == 4

    @given(bit_arrays.filter(lambda b: b.size % 2 == 0))
    def test_roundtrip(self, bits):
        modem = QPSKModem()
        np.testing.assert_array_equal(modem.demodulate(modem.modulate(bits)), bits)

    def test_gray_property(self):
        """Adjacent constellation points (90 deg apart) differ in one bit."""
        modem = QPSKModem()
        labels = [(0, 0), (0, 1), (1, 0), (1, 1)]
        points = {
            lab: complex(modem.modulate(np.array(lab))[0]) for lab in labels
        }
        for a in labels:
            for b in labels:
                hamming = sum(x != y for x, y in zip(a, b))
                phase_gap = abs(np.angle(points[a] / points[b]))
                if hamming == 2:  # opposite corners are pi apart
                    assert phase_gap == pytest.approx(np.pi)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            QPSKModem().modulate(np.array([1]))

    def test_metadata(self):
        modem = QPSKModem()
        assert modem.bits_per_symbol == 2
        assert modem.constellation_size == 4
        assert modem.snr_efficiency == 1.0
        assert modem.name == "QPSK"
