"""Validation helper tests: accepted values, rejections, edge values."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_and_returns_float(self):
        assert check_positive(3, "x") == 3.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("3", "x")

    def test_message_names_parameter(self):
        with pytest.raises(ValueError, match="bandwidth"):
            check_positive(-1.0, "bandwidth")


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(4, "m") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "m")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "m")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "m")

    def test_maximum_enforced(self):
        assert check_positive_int(4, "m", maximum=4) == 4
        with pytest.raises(ValueError):
            check_positive_int(5, "m", maximum=4)


class TestCheckProbability:
    def test_accepts_interior(self):
        assert check_probability(0.005, "p") == 0.005

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_boundary_and_outside(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0
        assert check_in_range(2.0, "x", 1.0, 2.0) == 2.0

    def test_exclusive_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive=False)

    def test_outside(self):
        with pytest.raises(ValueError):
            check_in_range(2.5, "x", 1.0, 2.0)
