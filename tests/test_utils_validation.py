"""Validation helper tests: accepted values, rejections, edge values."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_and_returns_float(self):
        assert check_positive(3, "x") == 3.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("3", "x")

    def test_message_names_parameter(self):
        with pytest.raises(ValueError, match="bandwidth"):
            check_positive(-1.0, "bandwidth")


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(4, "m") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "m")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "m")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "m")

    def test_maximum_enforced(self):
        assert check_positive_int(4, "m", maximum=4) == 4
        with pytest.raises(ValueError):
            check_positive_int(5, "m", maximum=4)


class TestCheckProbability:
    def test_accepts_interior(self):
        assert check_probability(0.005, "p") == 0.005

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_boundary_and_outside(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0
        assert check_in_range(2.0, "x", 1.0, 2.0) == 2.0

    def test_exclusive_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive=False)

    def test_outside(self):
        with pytest.raises(ValueError):
            check_in_range(2.5, "x", 1.0, 2.0)


class TestCheckFinite:
    def test_accepts_any_sign_and_returns_float(self):
        assert check_finite(-171.0, "n0") == -171.0
        assert check_finite(0, "x") == 0.0
        assert isinstance(check_finite(3, "x"), float)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_rejects_nonfinite(self, bad):
        with pytest.raises(ValueError):
            check_finite(bad, "x")

    @pytest.mark.parametrize("bad", ["3", None, [1.0], (1.0,), {"x": 1}])
    def test_rejects_wrong_types(self, bad):
        with pytest.raises(TypeError):
            check_finite(bad, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_finite(False, "x")

    def test_accepts_numpy_scalar(self):
        assert check_finite(np.float64(-3.5), "x") == -3.5

    def test_message_names_parameter(self):
        with pytest.raises(ValueError, match="snr_db"):
            check_finite(float("nan"), "snr_db")


class TestCheckNonNegative:
    def test_accepts_zero_and_positive(self):
        assert check_non_negative(0.0, "t") == 0.0
        assert check_non_negative(5e-6, "t") == 5e-6

    @pytest.mark.parametrize("bad", [-1e-12, -3.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_non_negative(bad, "t")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_non_negative(True, "t")

    def test_accepts_numpy_scalar(self):
        assert check_non_negative(np.float64(2.0), "t") == 2.0


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "n") == 0

    def test_returns_builtin_int(self):
        out = check_non_negative_int(np.int64(7), "n")
        assert out == 7
        assert isinstance(out, int)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "n")

    @pytest.mark.parametrize("bad", [2.0, "2", None, np.float64(2.0)])
    def test_rejects_non_integers(self, bad):
        with pytest.raises(TypeError):
            check_non_negative_int(bad, "n")

    def test_rejects_bool_as_int(self):
        with pytest.raises(TypeError):
            check_non_negative_int(True, "n")
        with pytest.raises(TypeError):
            check_non_negative_int(False, "n")


class TestMoreEdgeCases:
    def test_positive_int_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(3), "m") == 3

    def test_positive_int_maximum_message_names_bound(self):
        with pytest.raises(ValueError, match="<= 4"):
            check_positive_int(9, "m", maximum=4)

    def test_positive_accepts_numpy_scalar(self):
        assert check_positive(np.float64(0.35), "eta") == 0.35

    def test_probability_rejects_bool(self):
        with pytest.raises(TypeError):
            check_probability(True, "p")

    def test_in_range_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            check_in_range("mid", "x", 0.0, 1.0)

    def test_in_range_rejects_nan(self):
        with pytest.raises(ValueError):
            check_in_range(float("nan"), "x", 0.0, 1.0)
