"""d-clustering tests: invariants via hypothesis, determinism, caps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.clustering import cluster_diameter, d_cluster, validate_clustering

point_sets = st.integers(min_value=0, max_value=10_000).map(
    lambda seed: np.random.default_rng(seed).uniform(0, 50, size=(seed % 40 + 1, 2))
)


class TestInvariants:
    @given(point_sets, st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=40)
    def test_partition_and_diameter(self, pts, d):
        clusters = d_cluster(pts, d)
        validate_clustering(pts, clusters, d)  # raises on violation

    @given(point_sets, st.floats(min_value=0.5, max_value=20.0), st.integers(1, 4))
    @settings(max_examples=40)
    def test_size_cap(self, pts, d, cap):
        clusters = d_cluster(pts, d, max_size=cap)
        validate_clustering(pts, clusters, d, max_size=cap)


class TestBehaviour:
    def test_far_points_separate(self):
        pts = np.array([[0.0, 0.0], [100.0, 0.0]])
        assert len(d_cluster(pts, 1.0)) == 2

    def test_close_points_merge(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [0.0, 0.5]])
        assert len(d_cluster(pts, 2.0)) == 1

    def test_tiny_d_gives_singletons(self):
        pts = np.random.default_rng(0).uniform(0, 10, (20, 2))
        clusters = d_cluster(pts, 1e-6)
        assert len(clusters) == 20

    def test_huge_d_gives_one_cluster(self):
        pts = np.random.default_rng(1).uniform(0, 10, (20, 2))
        assert len(d_cluster(pts, 1e6)) == 1

    def test_deterministic(self):
        pts = np.random.default_rng(2).uniform(0, 30, (25, 2))
        assert d_cluster(pts, 5.0) == d_cluster(pts, 5.0)

    def test_empty_input(self):
        assert d_cluster(np.zeros((0, 2)), 1.0) == []

    def test_greedy_compactness(self):
        """Two well-separated blobs of 3 nodes end up as two clusters."""
        rng = np.random.default_rng(3)
        blob1 = rng.uniform(0, 1, (3, 2))
        blob2 = rng.uniform(0, 1, (3, 2)) + 100.0
        clusters = d_cluster(np.vstack([blob1, blob2]), 3.0)
        assert sorted(map(sorted, clusters)) == [[0, 1, 2], [3, 4, 5]]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            d_cluster(np.zeros((2, 2)), 0.0)
        with pytest.raises(ValueError):
            d_cluster(np.zeros((2, 2)), 1.0, max_size=0)


class TestDiameter:
    def test_singleton_zero(self):
        assert cluster_diameter(np.array([[1.0, 1.0]]), [0]) == 0.0

    def test_pair(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert cluster_diameter(pts, [0, 1]) == pytest.approx(5.0)


class TestValidateErrors:
    def test_detects_missing_node(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError):
            validate_clustering(pts, [[0, 1]], d=1.0)

    def test_detects_duplicate(self):
        pts = np.zeros((2, 2))
        with pytest.raises(ValueError):
            validate_clustering(pts, [[0, 1], [1]], d=1.0)

    def test_detects_oversized_diameter(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        with pytest.raises(ValueError):
            validate_clustering(pts, [[0, 1]], d=1.0)

    def test_detects_cap_violation(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError):
            validate_clustering(pts, [[0, 1, 2]], d=1.0, max_size=2)
