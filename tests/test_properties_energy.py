"""Hypothesis property tests on the energy model's structure.

These pin down the *shape* guarantees the paradigm layer relies on:
monotonicities in distance, BER target, bandwidth and diversity; the
PA/circuit split; and the exact quadratic distance law.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.ebar import solve_ebar
from repro.energy.model import EnergyModel

MODEL = EnergyModel()

bers = st.sampled_from([0.05, 0.01, 0.005, 0.001, 0.0005])
b_values = st.integers(min_value=1, max_value=10)
m_values = st.integers(min_value=1, max_value=4)
distances = st.floats(min_value=10.0, max_value=500.0)
bandwidths = st.sampled_from([10e3, 20e3, 40e3, 100e3])


class TestMimoTxProperties:
    @given(bers, b_values, m_values, m_values, distances, bandwidths)
    @settings(max_examples=40)
    def test_positive_split(self, p, b, mt, mr, d, bw):
        e = MODEL.mimo_tx(p, b, mt, mr, d, bw)
        assert e.pa > 0.0
        assert e.circuit > 0.0
        assert e.total == pytest.approx(e.pa + e.circuit)

    @given(bers, b_values, m_values, m_values, distances, bandwidths)
    @settings(max_examples=40)
    def test_farther_costs_more(self, p, b, mt, mr, d, bw):
        near = MODEL.mimo_tx(p, b, mt, mr, d, bw).total
        far = MODEL.mimo_tx(p, b, mt, mr, d * 1.5, bw).total
        assert far > near

    @given(bers, b_values, m_values, m_values, distances, bandwidths)
    @settings(max_examples=40)
    def test_exact_square_law(self, p, b, mt, mr, d, bw):
        pa1 = MODEL.mimo_tx(p, b, mt, mr, d, bw).pa
        pa2 = MODEL.mimo_tx(p, b, mt, mr, 2.0 * d, bw).pa
        assert pa2 == pytest.approx(4.0 * pa1, rel=1e-9)

    @given(b_values, m_values, m_values, distances, bandwidths)
    @settings(max_examples=40)
    def test_stricter_target_costs_more(self, b, mt, mr, d, bw):
        lax = MODEL.mimo_tx(0.01, b, mt, mr, d, bw).pa
        strict = MODEL.mimo_tx(0.0005, b, mt, mr, d, bw).pa
        assert strict > lax

    @given(bers, b_values, m_values, m_values, distances)
    @settings(max_examples=40)
    def test_bandwidth_cuts_circuit_only(self, p, b, mt, mr, d):
        narrow = MODEL.mimo_tx(p, b, mt, mr, d, 10e3)
        wide = MODEL.mimo_tx(p, b, mt, mr, d, 100e3)
        assert narrow.pa == wide.pa
        assert wide.circuit < narrow.circuit

    @given(bers, b_values, m_values, distances, bandwidths)
    @settings(max_examples=40)
    def test_receive_diversity_always_helps(self, p, b, mt, d, bw):
        less = MODEL.mimo_tx(p, b, mt, 1, d, bw).pa
        more = MODEL.mimo_tx(p, b, mt, 3, d, bw).pa
        assert more < less


class TestDistanceInversionProperties:
    @given(bers, b_values, m_values, m_values, distances, bandwidths)
    @settings(max_examples=40)
    def test_inversion_is_exact(self, p, b, mt, mr, d, bw):
        budget = MODEL.mimo_tx(p, b, mt, mr, d, bw).total
        assert MODEL.max_mimo_distance(budget, p, b, mt, mr, bw) == pytest.approx(
            d, rel=1e-9
        )

    @given(bers, b_values, m_values, m_values, bandwidths)
    @settings(max_examples=40)
    def test_bigger_budget_reaches_farther(self, p, b, mt, mr, bw):
        small = MODEL.max_mimo_distance(1e-5, p, b, mt, mr, bw)
        large = MODEL.max_mimo_distance(2e-5, p, b, mt, mr, bw)
        assert large >= small


class TestEbarProperties:
    @given(bers, st.integers(1, 6), m_values, m_values)
    @settings(max_examples=40)
    def test_positive_and_finite(self, p, b, mt, mr):
        from repro.modulation.theory import mqam_ber_coefficients

        a, _ = mqam_ber_coefficients(b)
        if p >= a / 2:
            return
        value = solve_ebar(p, b, mt, mr)
        assert 0.0 < value < 1e-10

    @given(st.integers(1, 6), m_values, m_values)
    @settings(max_examples=30)
    def test_strictly_monotone_in_target(self, b, mt, mr):
        values = [solve_ebar(p, b, mt, mr) for p in (0.01, 0.001)]
        assert values[1] > values[0]

    @given(bers, st.integers(1, 6))
    @settings(max_examples=30)
    def test_diversity_never_hurts(self, p, b):
        from repro.modulation.theory import mqam_ber_coefficients

        a, _ = mqam_ber_coefficients(b)
        if p >= a / 2:
            return
        siso = solve_ebar(p, b, 1, 1)
        div = solve_ebar(p, b, 1, 4)
        assert div < siso

    @given(bers, st.integers(1, 6), m_values, m_values)
    @settings(max_examples=30)
    def test_paper_convention_scales_linearly_in_mt(self, p, b, mt, mr):
        from repro.modulation.theory import mqam_ber_coefficients

        a, _ = mqam_ber_coefficients(b)
        if p >= a / 2:
            return
        paper = solve_ebar(p, b, mt, mr, convention="paper")
        sym = solve_ebar(p, b, mt, mr, convention="diversity_only")
        assert paper == pytest.approx(mt * sym, rel=1e-8)
