"""Multi-pair interweave cluster tests (Algorithm 3 beyond one pair)."""

import numpy as np
import pytest

from repro.core.interweave import InterweaveCluster


def _four_node_cluster():
    # two vertical pairs, 15 m spacing each, 40 m apart horizontally
    positions = np.array(
        [
            [0.0, 7.5],
            [0.0, -7.5],
            [40.0, 7.5],
            [40.0, -7.5],
        ]
    )
    return InterweaveCluster(positions)


class TestConstruction:
    def test_pairing(self):
        cluster = _four_node_cluster()
        assert cluster.pair_indices == [(0, 1), (2, 3)]
        assert cluster.n_active == 4

    def test_odd_node_sits_out(self):
        positions = np.array([[0.0, 7.5], [0.0, -7.5], [500.0, 500.0]])
        cluster = InterweaveCluster(positions)
        assert cluster.n_active == 2
        assert len(cluster.pairs) == 1

    def test_default_wavelength(self):
        cluster = _four_node_cluster()
        assert cluster.wavelength == pytest.approx(30.0)

    def test_rejects_single_node(self):
        with pytest.raises(ValueError):
            InterweaveCluster(np.array([[0.0, 0.0]]))


class TestNulling:
    def test_exact_delay_nulls_aggregate_field(self):
        cluster = _four_node_cluster()
        pr = np.array([20.0, -130.0])
        assert cluster.amplitude_at(pr, pr, exact=True) < 1e-9

    def test_far_field_delay_small_residual(self):
        cluster = _four_node_cluster()
        pr = np.array([10.0, -140.0])
        residual = cluster.amplitude_at(pr, pr, exact=False)
        assert residual < 0.3  # two pairs, each leaking a little

    def test_phases_structure(self):
        cluster = _four_node_cluster()
        phases = cluster.transmit_phases(np.array([0.0, -120.0]))
        assert phases.shape == (4,)
        assert phases[1] == 0.0 and phases[3] == 0.0  # second of each pair


class TestDiversityGain:
    def test_two_pairs_up_to_4x_siso(self):
        """Four coherent transmitters can quadruple the SISO amplitude; a
        broadside receiver with the null down the axis gets most of it."""
        cluster = _four_node_cluster()
        pr = np.array([20.0, -5000.0])  # far, down the pair axes
        sr = np.array([20.0, 0.0])  # between the pairs, broadside
        amp = cluster.amplitude_at(sr, pr, exact=True)
        siso = cluster.siso_reference_amplitude(sr)
        assert amp / siso > 2.0  # beats a single pair's ceiling
        assert amp / siso <= 4.0 + 1e-9

    def test_trial_interface(self):
        cluster = _four_node_cluster()
        candidates = np.array([[5.0, -140.0], [120.0, 5.0]])
        srs = np.array([[20.0, 0.0], [22.0, 2.0]])
        trial = cluster.run_trial(candidates, srs, exact_delay=True)
        assert trial.picked_pr == (5.0, -140.0)
        assert trial.residual_at_pr < 1e-9
        assert trial.gain_over_siso > 1.5
