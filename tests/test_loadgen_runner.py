"""End-to-end loadgen runs: verdicts, fault recovery, bit-identical replay."""

import json

import pytest

from repro.loadgen import (
    ArrivalSpec,
    ClientPolicy,
    EndpointMix,
    FaultEvent,
    InjectorFaultDriver,
    PrearmedFaultDriver,
    TrafficSpec,
    evaluate,
    load_trace,
    outcome_digest,
    run_plan,
)
from repro.loadgen.cli import main as loadgen_main
from repro.service.config import ServiceConfig
from repro.service.testing import ThreadedServer


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(
        port=0,
        workers=1,
        request_log=False,
        result_cache=False,
        max_sims=4,
        sim_stall_timeout_ms=2000.0,
    )
    with ThreadedServer(config) as srv:
        yield srv


def small_spec(**overrides):
    """A quick mixed plan: scalars, a streamed sweep, a streamed simulate."""
    base = dict(
        seed=7,
        duration_s=2.0,
        mix=(
            EndpointMix(kind="ebar", arrival=ArrivalSpec(rate_per_s=5.0)),
            EndpointMix(
                kind="underlay_stream",
                arrival=ArrivalSpec(rate_per_s=2.5),
                sweep_points=4,
            ),
            EndpointMix(
                kind="simulate_stream",
                arrival=ArrivalSpec(rate_per_s=1.0),
                sim_nodes=6,
                sim_duration_s=1.5,
                sim_snapshot_s=0.5,
            ),
        ),
        client=ClientPolicy(max_attempts=4, base_delay_s=0.02, max_delay_s=0.2),
        max_concurrency=6,
        time_scale=0.0,  # fire as fast as possible
    )
    base.update(overrides)
    return TrafficSpec(**base)


FAULTS = (
    FaultEvent(
        action="truncate_stream",
        at_request=4,
        after_rows=1,
        path="/v1/underlay/energy",
    ),
    FaultEvent(action="kill_sim_child", at_request=8, after_rows=1),
    FaultEvent(action="drop_client", at_request=12, path="/v1/ebar"),
    FaultEvent(action="kill_worker", at_request=2),
)


class TestCleanRun:
    def test_every_request_ok(self, server):
        trace = run_plan(small_spec(), server.config.host, server.port)
        verdict = evaluate(trace.records)
        assert verdict.passed
        assert verdict.counts["ok"] == verdict.total == len(trace.records)
        assert all(r.retries == 0 for r in trace.records)

    def test_streamed_rows_counted(self, server):
        trace = run_plan(small_spec(), server.config.host, server.port)
        sweep = [r for r in trace.records if r.kind == "underlay_stream"]
        assert sweep
        # 4 data rows plus the terminal done row.
        assert all(r.rows == 5 for r in sweep)


class TestFaultedRun:
    def test_faults_are_absorbed_and_accounted(self, server):
        spec = small_spec(faults=FAULTS)
        driver = InjectorFaultDriver(server.service.faults)
        trace = run_plan(spec, server.config.host, server.port,
                         fault_driver=driver)
        verdict = evaluate(trace.records)
        assert verdict.passed, verdict.violations
        assert sum(r.retries for r in trace.records) >= 1

    def test_replay_is_bit_identical(self, server):
        spec = small_spec(faults=FAULTS)
        driver = InjectorFaultDriver(server.service.faults)
        first = run_plan(spec, server.config.host, server.port,
                         fault_driver=driver)
        second = run_plan(spec, server.config.host, server.port,
                          fault_driver=driver)
        assert outcome_digest(first.records) == outcome_digest(second.records)
        assert evaluate(second.records).passed

    def test_unretried_truncation_is_accounted_not_violating(self, server):
        spec = TrafficSpec(
            seed=11,
            duration_s=1.5,
            mix=(
                EndpointMix(
                    kind="underlay_stream",
                    arrival=ArrivalSpec(rate_per_s=8.0),
                    sweep_points=4,
                ),
            ),
            client=ClientPolicy(max_attempts=1),
            faults=(
                FaultEvent(action="truncate_stream", at_request=0, after_rows=1),
            ),
            max_concurrency=1,  # deterministic fault → request assignment
            time_scale=0.0,
        )
        driver = InjectorFaultDriver(server.service.faults)
        trace = run_plan(spec, server.config.host, server.port,
                         fault_driver=driver)
        verdict = evaluate(trace.records)
        assert verdict.passed, verdict.violations
        hit = trace.records[0]
        assert hit.status == 599
        assert hit.truncated and not hit.timed_out
        assert hit.rows == 1  # one complete row before the mid-row cut
        assert verdict.counts["truncated"] == 1

    def test_fault_plan_without_driver_fails_fast(self, server):
        with pytest.raises(ValueError, match="fault driver"):
            run_plan(small_spec(faults=FAULTS), server.config.host, server.port)

    def test_undeliverable_actions_fail_fast(self, server):
        spec = small_spec(faults=(FaultEvent(action="kill_shard"),))
        with pytest.raises(ValueError, match="kill_shard"):
            run_plan(spec, server.config.host, server.port,
                     fault_driver=PrearmedFaultDriver(None))


class TestCli:
    def _write_spec(self, tmp_path, spec):
        from repro.loadgen import traffic_to_mapping

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(traffic_to_mapping(spec)))
        return str(path)

    def test_run_verify_replay(self, server, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path, small_spec())
        trace_path = str(tmp_path / "trace.json")
        assert loadgen_main([
            "run", "--spec", spec_path,
            "--host", server.config.host, "--port", str(server.port),
            "--trace", trace_path,
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True

        assert loadgen_main(["verify", "--trace", trace_path]) == 0
        recorded = json.loads(capsys.readouterr().out)
        assert recorded["outcome_digest"] == report["outcome_digest"]

        assert loadgen_main([
            "replay", "--trace", trace_path,
            "--host", server.config.host, "--port", str(server.port),
        ]) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert replayed["digest_mismatch"] is False
        assert replayed["recorded_digest"] == report["outcome_digest"]

    def test_replay_detects_divergence(self, server, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path, small_spec())
        trace_path = str(tmp_path / "trace.json")
        assert loadgen_main([
            "run", "--spec", spec_path,
            "--host", server.config.host, "--port", str(server.port),
            "--trace", trace_path,
        ]) == 0
        capsys.readouterr()
        # Forge a diverging record set, re-stamping the self-check digest
        # (replay must flag the outcome mismatch, not the file checksum).
        trace = load_trace(trace_path)
        data = trace.to_mapping()
        data["records"][0]["rows"] += 1
        from repro.loadgen.trace import RequestRecord, outcome_digest as digest_of

        forged = [RequestRecord.from_mapping(r) for r in data["records"]]
        data["outcome_digest"] = digest_of(forged)
        with open(trace_path, "w") as handle:
            json.dump(data, handle)
        assert loadgen_main([
            "replay", "--trace", trace_path,
            "--host", server.config.host, "--port", str(server.port),
        ]) == 1
        replayed = json.loads(capsys.readouterr().out)
        assert replayed["digest_mismatch"] is True

    def test_plan_summary_and_env_plan(self, tmp_path, capsys):
        assert loadgen_main(["plan", "--preset", "smoke"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_requests"] > 0
        assert "kill_worker" in summary["faults"]

        assert loadgen_main(["plan", "--preset", "smoke", "--env-plan"]) == 0
        env_plan = json.loads(capsys.readouterr().out)
        assert env_plan["truncate_stream"] == 1

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        assert loadgen_main(["run", "--port", "1"]) == 2
        assert loadgen_main(["verify", "--trace",
                             str(tmp_path / "missing.json")]) == 2
