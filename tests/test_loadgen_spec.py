"""TrafficSpec model, arrival processes, plan determinism, fault-plan compile."""

import json

import numpy as np
import pytest

from repro.loadgen.arrivals import arrival_offsets_s
from repro.loadgen.plan import build_plan, env_fault_plan
from repro.loadgen.presets import bench_spec, smoke_spec
from repro.loadgen.spec import (
    ENDPOINT_KINDS,
    ArrivalSpec,
    ClientPolicy,
    EndpointMix,
    FaultEvent,
    TrafficSpec,
    endpoint_route,
    traffic_from_mapping,
    traffic_to_mapping,
)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = TrafficSpec()
        assert spec.mix[0].kind == "ebar"

    def test_every_kind_routes(self):
        for kind in ENDPOINT_KINDS:
            method, path, stream = endpoint_route(kind)
            assert method in ("GET", "POST")
            assert path.startswith("/")
            assert isinstance(stream, bool)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown endpoint kind"):
            EndpointMix(kind="teleport")

    def test_unknown_arrival_process_rejected(self):
        with pytest.raises(ValueError, match="process"):
            ArrivalSpec(process="lognormal")

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TrafficSpec(mix=(EndpointMix(), EndpointMix()))

    def test_unknown_fault_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultEvent(action="meteor_strike")

    def test_delay_fault_needs_duration(self):
        with pytest.raises(ValueError, match="delay_ms"):
            FaultEvent(action="delay", delay_ms=0.0)

    def test_retry_on_statuses_range_checked(self):
        with pytest.raises(ValueError):
            ClientPolicy(retry_on=(200,))


class TestMappingRoundTrip:
    def test_smoke_spec_round_trips(self):
        spec = smoke_spec(include_shard_kill=True)
        assert traffic_from_mapping(traffic_to_mapping(spec)) == spec

    def test_bench_spec_round_trips(self):
        spec = bench_spec()
        assert traffic_from_mapping(traffic_to_mapping(spec)) == spec

    def test_mapping_survives_json(self):
        spec = smoke_spec()
        blob = json.dumps(traffic_to_mapping(spec), sort_keys=True)
        assert traffic_from_mapping(json.loads(blob)) == spec

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic spec field"):
            traffic_from_mapping({"surprise": 1})

    def test_unknown_nested_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown mix"):
            traffic_from_mapping({"mix": [{"kind": "ebar", "extra": 1}]})
        with pytest.raises(ValueError, match="unknown client field"):
            traffic_from_mapping({"client": {"rps": 5}})
        with pytest.raises(ValueError, match="unknown faults"):
            traffic_from_mapping({"faults": [{"action": "abort", "when": 3}]})

    def test_type_mismatches_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            traffic_from_mapping({"seed": 1.5})
        with pytest.raises(ValueError, match="retry_on"):
            traffic_from_mapping({"client": {"retry_on": ["429"]}})


class TestArrivals:
    def _seq(self, n=7):
        return np.random.SeedSequence(n)

    @pytest.mark.parametrize("process", ["poisson", "bursty", "ramp"])
    def test_deterministic_and_sorted(self, process):
        arrival = ArrivalSpec(process=process, rate_per_s=20.0)
        a = arrival_offsets_s(arrival, 5.0, self._seq())
        b = arrival_offsets_s(arrival, 5.0, self._seq())
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) >= 0.0)
        assert a.size == 0 or (a[0] >= 0.0 and a[-1] < 5.0)

    def test_poisson_rate_is_roughly_right(self):
        arrival = ArrivalSpec(process="poisson", rate_per_s=50.0)
        times = arrival_offsets_s(arrival, 20.0, self._seq())
        assert 700 <= times.size <= 1300  # 1000 expected

    def test_bursty_respects_off_windows(self):
        arrival = ArrivalSpec(
            process="bursty", rate_per_s=40.0, burst_on_s=1.0, burst_off_s=1.0
        )
        times = arrival_offsets_s(arrival, 10.0, self._seq())
        phase = np.mod(times, 2.0)
        assert np.all(phase < 1.0)  # nothing lands in an off window
        assert times.size > 0

    def test_ramp_grows_over_the_run(self):
        arrival = ArrivalSpec(process="ramp", rate_per_s=30.0, ramp_factor=5.0)
        times = arrival_offsets_s(arrival, 20.0, self._seq())
        first_half = int(np.sum(times < 10.0))
        second_half = int(np.sum(times >= 10.0))
        assert second_half > first_half

    def test_different_seeds_differ(self):
        arrival = ArrivalSpec(rate_per_s=20.0)
        a = arrival_offsets_s(arrival, 5.0, np.random.SeedSequence(1))
        b = arrival_offsets_s(arrival, 5.0, np.random.SeedSequence(2))
        assert not np.array_equal(a, b)


class TestPlan:
    def test_plan_is_deterministic(self):
        spec = smoke_spec()
        assert build_plan(spec) == build_plan(spec)

    def test_plan_indexes_and_order(self):
        plan = build_plan(smoke_spec())
        assert [r.index for r in plan] == list(range(len(plan)))
        sends = [r.t_send_s for r in plan]
        assert sends == sorted(sends)

    def test_plan_covers_every_mix_kind(self):
        spec = smoke_spec()
        kinds = {r.kind for r in build_plan(spec)}
        assert kinds == {m.kind for m in spec.mix}

    def test_bodies_are_json_and_digested(self):
        for request in build_plan(smoke_spec()):
            if request.body is not None:
                json.dumps(request.body)  # must be plain JSON
            assert len(request.payload_digest) == 64

    def test_adding_a_mix_entry_preserves_other_streams(self):
        base = smoke_spec()
        extended = TrafficSpec(
            seed=base.seed,
            duration_s=base.duration_s,
            mix=base.mix + (EndpointMix(kind="simulate"),),
            client=base.client,
            faults=base.faults,
        )
        base_bodies = [
            (r.kind, r.t_send_s, r.payload_digest) for r in build_plan(base)
        ]
        extended_bodies = [
            (r.kind, r.t_send_s, r.payload_digest)
            for r in build_plan(extended)
            if r.kind != "simulate"
        ]
        assert base_bodies == extended_bodies

    def test_seed_changes_the_plan(self):
        a = build_plan(smoke_spec(seed=1))
        b = build_plan(smoke_spec(seed=2))
        assert [r.payload_digest for r in a] != [r.payload_digest for r in b]


class TestEnvFaultPlan:
    def test_smoke_plan_compiles_to_known_injector_keys(self):
        from repro.service.faults import FaultInjector, FAULTS_ENV_VAR

        spec = smoke_spec(include_shard_kill=True)
        plan_json = json.dumps(env_fault_plan(spec))
        injector = FaultInjector.from_env(environ={FAULTS_ENV_VAR: plan_json})
        assert injector.armed

    def test_kill_shard_is_excluded(self):
        spec = smoke_spec(include_shard_kill=True)
        assert "kill_shard" not in env_fault_plan(spec)

    def test_skip_counts_requests_before_the_event(self):
        spec = TrafficSpec(
            duration_s=2.0,
            mix=(
                EndpointMix(
                    kind="underlay_stream", arrival=ArrivalSpec(rate_per_s=8.0)
                ),
            ),
            faults=(
                FaultEvent(
                    action="truncate_stream",
                    at_request=3,
                    path="/v1/underlay/energy",
                ),
            ),
        )
        compiled = env_fault_plan(spec)
        assert compiled["truncate_stream"] == 1
        assert compiled["truncate_stream_skip"] == 3
        assert compiled["paths"] == ["/v1/underlay/energy"]
