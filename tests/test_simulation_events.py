"""Discrete-event scheduler tests: ordering, cancellation, horizons."""

import pytest

from repro.simulation.events import EventScheduler


class TestOrdering:
    def test_time_order(self):
        sched = EventScheduler()
        log = []
        sched.schedule(3.0, lambda: log.append("c"))
        sched.schedule(1.0, lambda: log.append("a"))
        sched.schedule(2.0, lambda: log.append("b"))
        sched.run()
        assert log == ["a", "b", "c"]
        assert sched.now == 3.0

    def test_fifo_at_same_instant(self):
        sched = EventScheduler()
        log = []
        for tag in "xyz":
            sched.schedule(1.0, lambda t=tag: log.append(t))
        sched.run()
        assert log == ["x", "y", "z"]

    def test_nested_scheduling(self):
        sched = EventScheduler()
        log = []

        def first():
            log.append(("first", sched.now))
            sched.schedule(0.5, lambda: log.append(("second", sched.now)))

        sched.schedule(1.0, first)
        sched.run()
        assert log == [("first", 1.0), ("second", 1.5)]

    def test_schedule_at_absolute(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        sched.run()
        log = []
        sched.schedule_at(5.0, lambda: log.append(sched.now))
        sched.run()
        assert log == [5.0]

    def test_schedule_in_past_rejected(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sched = EventScheduler()
        log = []
        handle = sched.schedule(1.0, lambda: log.append("dead"))
        sched.schedule(2.0, lambda: log.append("alive"))
        handle.cancel()
        sched.run()
        assert log == ["alive"]
        assert sched.events_processed == 1


class TestBatchInsertion:
    def test_schedule_many_orders_with_singles(self):
        sched = EventScheduler()
        log = []
        sched.schedule(2.0, lambda: log.append("single"))
        sched.schedule_many([1.0, 3.0], lambda: log.append("batch"))
        sched.run()
        assert log == ["batch", "single", "batch"]

    def test_schedule_many_handles_cancellable(self):
        sched = EventScheduler()
        log = []
        handles = sched.schedule_many([1.0, 2.0, 3.0], lambda: log.append("x"))
        assert len(handles) == 3
        handles[1].cancel()
        sched.run()
        assert log == ["x", "x"]

    def test_schedule_many_rejects_negative(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_many([1.0, -2.0], lambda: None)

    def test_schedule_many_empty(self):
        sched = EventScheduler()
        assert sched.schedule_many([], lambda: None) == []
        assert sched.pending == 0


class TestHorizons:
    def test_run_until_stops_clock(self):
        sched = EventScheduler()
        log = []
        sched.schedule(1.0, lambda: log.append(1))
        sched.schedule(10.0, lambda: log.append(10))
        sched.run(until=5.0)
        assert log == [1]
        assert sched.now == 5.0
        assert sched.pending == 1
        sched.run()
        assert log == [1, 10]

    def test_until_advances_clock_when_queue_empty(self):
        sched = EventScheduler()
        sched.run(until=7.0)
        assert sched.now == 7.0

    def test_max_events_budget(self):
        sched = EventScheduler()
        log = []
        for i in range(5):
            sched.schedule(float(i), lambda i=i: log.append(i))
        sched.run(max_events=2)
        assert log == [0, 1]

    def test_step(self):
        sched = EventScheduler()
        log = []
        sched.schedule(1.0, lambda: log.append("a"))
        assert sched.step() is True
        assert sched.step() is False
        assert log == ["a"]
