"""MIMO capacity tests against known information-theoretic anchors."""

import numpy as np
import pytest

from repro.analysis.capacity import (
    capacity_samples,
    capacity_slope,
    ergodic_capacity,
    outage_capacity,
)


class TestErgodic:
    def test_siso_closed_form_anchor(self, rng):
        """SISO Rayleigh ergodic capacity at 10 dB is the classic
        ~2.9 b/s/Hz (E[log2(1 + snr |h|^2)], snr = 10)."""
        c = ergodic_capacity(1, 1, 10.0, n_channels=100_000, rng=rng)
        # exact value: e^{1/snr} E_1(1/snr) / ln 2 at snr = 10 -> 2.901
        assert c == pytest.approx(2.90, abs=0.05)

    def test_receive_diversity_adds_capacity(self, rng):
        c1 = ergodic_capacity(1, 1, 10.0, rng=np.random.default_rng(1))
        c2 = ergodic_capacity(1, 2, 10.0, rng=np.random.default_rng(1))
        c4 = ergodic_capacity(1, 4, 10.0, rng=np.random.default_rng(1))
        assert c1 < c2 < c4

    def test_mimo_beats_same_total_antennas_split(self, rng):
        """2x2 exceeds 1x4 at high SNR: multiplexing beats pure diversity."""
        gen = np.random.default_rng(2)
        c22 = ergodic_capacity(2, 2, 25.0, n_channels=30_000, rng=gen)
        c14 = ergodic_capacity(1, 4, 25.0, n_channels=30_000, rng=gen)
        assert c22 > c14

    def test_capacity_increases_with_snr(self, rng):
        lo = ergodic_capacity(2, 2, 5.0, rng=np.random.default_rng(3))
        hi = ergodic_capacity(2, 2, 15.0, rng=np.random.default_rng(3))
        assert hi > lo


class TestOutage:
    def test_outage_below_ergodic(self, rng):
        gen = np.random.default_rng(4)
        out = outage_capacity(2, 2, 10.0, outage_probability=0.05, rng=gen)
        erg = ergodic_capacity(2, 2, 10.0, rng=np.random.default_rng(4))
        assert out < erg

    def test_diversity_tightens_outage(self, rng):
        """More antennas harden the capacity distribution: the 5% outage
        rate gains more than the mean does."""
        gen1, gen2 = np.random.default_rng(5), np.random.default_rng(5)
        out_siso = outage_capacity(1, 1, 10.0, 0.05, rng=gen1)
        out_mimo = outage_capacity(2, 2, 10.0, 0.05, rng=gen2)
        assert out_mimo > 3.0 * out_siso

    def test_monotone_in_outage_probability(self, rng):
        gen = np.random.default_rng(6)
        samples_seed = 6
        strict = outage_capacity(2, 2, 10.0, 0.01, rng=np.random.default_rng(samples_seed))
        lax = outage_capacity(2, 2, 10.0, 0.2, rng=np.random.default_rng(samples_seed))
        assert strict < lax

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            outage_capacity(1, 1, 10.0, outage_probability=0.0, rng=rng)


class TestMultiplexingGain:
    @pytest.mark.parametrize("mt,mr,expected", [(1, 1, 1), (2, 2, 2), (3, 2, 2)])
    def test_slope_approaches_min_antennas(self, mt, mr, expected):
        slope = capacity_slope(mt, mr, 25.0, 35.0, n_channels=20_000, rng=7)
        assert slope == pytest.approx(expected, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            capacity_slope(1, 1, 20.0, 10.0)


class TestSamples:
    def test_positive(self, rng):
        samples = capacity_samples(2, 3, 10.0, n_channels=1000, rng=rng)
        assert samples.shape == (1000,)
        assert np.all(samples > 0.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            capacity_samples(0, 1, 10.0, rng=rng)
        with pytest.raises(ValueError):
            capacity_samples(1, 1, -1.0, rng=rng)
