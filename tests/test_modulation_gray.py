"""Gray coding and bit packing tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.modulation.gray import bits_to_ints, gray_decode, gray_encode, ints_to_bits


class TestGrayCode:
    def test_first_eight_codes(self):
        # the canonical binary-reflected sequence
        expected = [0, 1, 3, 2, 6, 7, 5, 4]
        np.testing.assert_array_equal(gray_encode(np.arange(8)), expected)

    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=50))
    def test_roundtrip(self, values):
        arr = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(gray_decode(gray_encode(arr)), arr)

    @given(st.integers(min_value=0, max_value=2**20 - 2))
    def test_adjacent_codes_differ_in_one_bit(self, v):
        a = int(gray_encode(np.array([v]))[0])
        b = int(gray_encode(np.array([v + 1]))[0])
        assert bin(a ^ b).count("1") == 1

    def test_bijective_over_range(self):
        n = 1 << 10
        codes = gray_encode(np.arange(n))
        assert len(np.unique(codes)) == n

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gray_encode(np.array([-1]))
        with pytest.raises(ValueError):
            gray_decode(np.array([-1]))


class TestBitPacking:
    def test_known_value(self):
        bits = np.array([1, 0, 1, 1], dtype=np.int8)
        assert bits_to_ints(bits, 4)[0] == 0b1011

    def test_msb_first(self):
        assert bits_to_ints(np.array([1, 0, 0]), 3)[0] == 4

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_roundtrip(self, width, count, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << width, count, dtype=np.int64)
        bits = ints_to_bits(values, width)
        assert bits.dtype == np.int8
        np.testing.assert_array_equal(bits_to_ints(bits, width), values)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bits_to_ints(np.array([1, 0, 1]), 2)

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ValueError):
            ints_to_bits(np.array([4]), 2)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            ints_to_bits(np.array([0]), 0)
        with pytest.raises(ValueError):
            bits_to_ints(np.array([0]), 0)
