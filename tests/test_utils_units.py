"""Unit-conversion tests: known anchors, inverses, and error paths."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.units import (
    amplitude_ratio_to_db,
    db_to_amplitude_ratio,
    db_to_linear,
    dbi_to_linear,
    dbm_per_hz_to_watts_per_hz,
    dbm_to_watts,
    linear_to_db,
    linear_to_dbm,
    milliwatts_to_watts,
    watts_to_dbm,
)


class TestAnchors:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_about_two(self):
        assert db_to_linear(3.0) == pytest.approx(2.0, rel=0.01)

    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_thermal_noise_floor(self):
        # -174 dBm/Hz is the textbook room-temperature value ~4e-21 W/Hz
        assert dbm_per_hz_to_watts_per_hz(-174.0) == pytest.approx(3.98e-21, rel=0.01)

    def test_dbi_matches_db(self):
        assert dbi_to_linear(5.0) == pytest.approx(db_to_linear(5.0))

    def test_milliwatts(self):
        assert milliwatts_to_watts(48.64) == pytest.approx(0.04864)


class TestInverses:
    @given(st.floats(min_value=-200.0, max_value=200.0))
    def test_db_roundtrip(self, x):
        assert linear_to_db(db_to_linear(x)) == pytest.approx(x, abs=1e-9)

    @given(st.floats(min_value=-150.0, max_value=60.0))
    def test_dbm_roundtrip(self, x):
        assert watts_to_dbm(dbm_to_watts(x)) == pytest.approx(x, abs=1e-9)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_monotone(self, x):
        assert db_to_linear(x + 1.0) > db_to_linear(x)


class TestArrays:
    def test_db_to_linear_broadcasts(self):
        out = db_to_linear(np.array([0.0, 10.0, 20.0]))
        np.testing.assert_allclose(out, [1.0, 10.0, 100.0])

    def test_linear_to_db_rejects_nonpositive_array(self):
        with pytest.raises(ValueError):
            linear_to_db(np.array([1.0, 0.0]))


class TestErrors:
    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            linear_to_db(-3.0)

    def test_watts_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)


class TestAmplitudeRatios:
    """The 20-log helpers added for the testbed radio model."""

    def test_unity_ratio_is_zero_db(self):
        assert amplitude_ratio_to_db(1.0) == 0.0

    def test_doubling_amplitude_is_about_six_db(self):
        assert amplitude_ratio_to_db(2.0) == pytest.approx(6.0206, rel=1e-4)

    def test_power_is_square_of_amplitude(self):
        # halving the DAC amplitude costs the same dB as quartering power
        assert amplitude_ratio_to_db(0.5) == pytest.approx(
            linear_to_db(0.25), abs=1e-12
        )

    @given(st.floats(min_value=-60.0, max_value=60.0))
    def test_roundtrip(self, x):
        assert amplitude_ratio_to_db(db_to_amplitude_ratio(x)) == pytest.approx(
            x, abs=1e-9
        )

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ValueError):
            amplitude_ratio_to_db(0.0)
        with pytest.raises(ValueError):
            amplitude_ratio_to_db(-1.0)

    def test_broadcasts(self):
        out = amplitude_ratio_to_db(np.array([800.0, 400.0]) / 800.0)
        np.testing.assert_allclose(out, [0.0, -6.0206], rtol=1e-4)


class TestMoreRoundTrips:
    @given(st.floats(min_value=1e-12, max_value=1e6))
    def test_linear_db_roundtrip_from_linear_side(self, x):
        assert db_to_linear(linear_to_db(x)) == pytest.approx(x, rel=1e-9)

    @given(st.floats(min_value=1e-15, max_value=1e3))
    def test_watts_dbm_roundtrip_from_watts_side(self, w):
        assert dbm_to_watts(watts_to_dbm(w)) == pytest.approx(w, rel=1e-9)

    def test_linear_to_dbm_is_deprecated_watts_to_dbm(self):
        with pytest.warns(DeprecationWarning, match="watts_to_dbm"):
            assert linear_to_dbm(0.5) == watts_to_dbm(0.5)

    def test_dbm_per_hz_alias_consistency(self):
        assert dbm_per_hz_to_watts_per_hz(-171.0) == dbm_to_watts(-171.0)
