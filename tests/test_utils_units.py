"""Unit-conversion tests: known anchors, inverses, and error paths."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.units import (
    db_to_linear,
    dbi_to_linear,
    dbm_per_hz_to_watts_per_hz,
    dbm_to_watts,
    linear_to_db,
    milliwatts_to_watts,
    watts_to_dbm,
)


class TestAnchors:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_about_two(self):
        assert db_to_linear(3.0) == pytest.approx(2.0, rel=0.01)

    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_thermal_noise_floor(self):
        # -174 dBm/Hz is the textbook room-temperature value ~4e-21 W/Hz
        assert dbm_per_hz_to_watts_per_hz(-174.0) == pytest.approx(3.98e-21, rel=0.01)

    def test_dbi_matches_db(self):
        assert dbi_to_linear(5.0) == pytest.approx(db_to_linear(5.0))

    def test_milliwatts(self):
        assert milliwatts_to_watts(48.64) == pytest.approx(0.04864)


class TestInverses:
    @given(st.floats(min_value=-200.0, max_value=200.0))
    def test_db_roundtrip(self, x):
        assert linear_to_db(db_to_linear(x)) == pytest.approx(x, abs=1e-9)

    @given(st.floats(min_value=-150.0, max_value=60.0))
    def test_dbm_roundtrip(self, x):
        assert watts_to_dbm(dbm_to_watts(x)) == pytest.approx(x, abs=1e-9)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_monotone(self, x):
        assert db_to_linear(x + 1.0) > db_to_linear(x)


class TestArrays:
    def test_db_to_linear_broadcasts(self):
        out = db_to_linear(np.array([0.0, 10.0, 20.0]))
        np.testing.assert_allclose(out, [1.0, 10.0, 100.0])

    def test_linear_to_db_rejects_nonpositive_array(self):
        with pytest.raises(ValueError):
            linear_to_db(np.array([1.0, 0.0]))


class TestErrors:
    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            linear_to_db(-3.0)

    def test_watts_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)
