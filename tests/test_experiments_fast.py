"""End-to-end experiment runs (fast mode) with their shape checks.

These are the integration tests of the whole reproduction: each experiment
regenerates its table/figure on reduced Monte-Carlo sizes and must still
satisfy every shape claim asserted against the paper.
"""

import pytest

from repro.experiments.registry import EXPERIMENTS, check_experiment, run_experiment

FAST_CAPABLE = sorted(EXPERIMENTS)


@pytest.mark.parametrize("experiment_id", FAST_CAPABLE)
def test_experiment_fast_run_passes_checks(experiment_id):
    result = run_experiment(experiment_id, fast=True)
    assert result.experiment_id == experiment_id
    assert result.rows, f"{experiment_id} produced no rows"
    check_experiment(result)


@pytest.mark.parametrize("experiment_id", FAST_CAPABLE)
def test_experiment_deterministic(experiment_id):
    a = run_experiment(experiment_id, fast=True)
    b = run_experiment(experiment_id, fast=True)
    assert a.rows == b.rows


def test_text_rendering_of_every_experiment():
    for experiment_id in FAST_CAPABLE:
        text = run_experiment(experiment_id, fast=True).to_text()
        assert experiment_id in text
        assert len(text.splitlines()) > 3
