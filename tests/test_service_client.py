"""ServiceClient transport-failure mapping and error surface.

The regression at the heart of this file: a request to a port nobody is
listening on must raise :class:`ServiceClientError` (status 599), never a
raw ``urllib``/``socket`` exception.
"""

import socket

import pytest

from repro.service.client import (
    RETRYABLE_STATUSES,
    TRANSPORT_FAILURE_STATUS,
    CircuitOpenError,
    ServiceClient,
    ServiceClientError,
    _parse_retry_after,
)


def _closed_port():
    """An ephemeral port that was bound once and is now closed."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestTransportFailures:
    def test_connection_refused_raises_599_not_urllib_error(self):
        client = ServiceClient("127.0.0.1", _closed_port(), timeout_s=5.0)
        with pytest.raises(ServiceClientError) as err:
            client.healthz()
        assert err.value.status == TRANSPORT_FAILURE_STATUS
        assert err.value.is_transport_failure
        assert "transport failure" in err.value.message

    def test_transport_failure_chains_the_original_exception(self):
        client = ServiceClient("127.0.0.1", _closed_port(), timeout_s=5.0)
        with pytest.raises(ServiceClientError) as err:
            client.request("GET", "/healthz")
        assert err.value.__cause__ is not None

    def test_transport_status_is_retryable(self):
        assert TRANSPORT_FAILURE_STATUS in RETRYABLE_STATUSES
        assert 429 in RETRYABLE_STATUSES
        assert 503 in RETRYABLE_STATUSES
        assert 400 not in RETRYABLE_STATUSES


class TestServiceClientError:
    def test_carries_status_message_and_payload(self):
        exc = ServiceClientError(429, "too many", {"detail": "busy"})
        assert exc.status == 429
        assert exc.payload == {"detail": "busy"}
        assert "429" in str(exc)
        assert not exc.is_transport_failure

    def test_retry_after_defaults_to_none(self):
        assert ServiceClientError(503, "unavailable").retry_after_s is None

    def test_negative_retry_after_rejected(self):
        with pytest.raises(ValueError):
            ServiceClientError(503, "unavailable", retry_after_s=-1.0)

    def test_out_of_range_status_rejected(self):
        with pytest.raises(ValueError):
            ServiceClientError(600, "nope")

    def test_circuit_open_error_is_a_503_client_error(self):
        exc = CircuitOpenError("breaker open")
        assert isinstance(exc, ServiceClientError)
        assert exc.status == 503
        assert not exc.is_transport_failure


class TestParseRetryAfter:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("3", 3.0),
            ("  2.5 ", 2.5),
            ("0", 0.0),
            (None, None),
            ("-1", None),
            ("Wed, 21 Oct 2026 07:28:00 GMT", None),
            ("soon", None),
        ],
    )
    def test_delta_seconds_only(self, raw, expected):
        assert _parse_retry_after(raw) == expected


class TestValidation:
    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient(port=0)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient(timeout_s=0.0)
