"""Mobility model and re-clustering interval tests."""

import numpy as np
import pytest

from repro.network.mobility import RandomWaypointMobility, simulate_recluster_interval
from repro.utils.rng import as_rng


class TestRandomWaypoint:
    def test_positions_stay_in_arena(self):
        model = RandomWaypointMobility(arena=(50.0, 30.0))
        start = model.initial_positions(10, rng=0)
        traj = model.walk(start, duration_s=120.0, step_s=1.0, rng=0)
        assert np.all(traj[..., 0] >= -1e-9) and np.all(traj[..., 0] <= 50.0 + 1e-9)
        assert np.all(traj[..., 1] >= -1e-9) and np.all(traj[..., 1] <= 30.0 + 1e-9)

    def test_trajectory_shape(self):
        model = RandomWaypointMobility()
        start = model.initial_positions(5, rng=1)
        traj = model.walk(start, duration_s=10.0, step_s=1.0, rng=1)
        assert traj.shape == (11, 5, 2)
        np.testing.assert_array_equal(traj[0], start)

    def test_speed_respected(self):
        model = RandomWaypointMobility(speed_range=(1.0, 2.0))
        start = model.initial_positions(8, rng=2)
        traj = model.walk(start, duration_s=60.0, step_s=1.0, rng=2)
        step_lengths = np.linalg.norm(np.diff(traj, axis=0), axis=-1)
        assert np.max(step_lengths) <= 2.0 + 1e-9

    def test_nodes_actually_move(self):
        model = RandomWaypointMobility(speed_range=(1.0, 1.0))
        start = model.initial_positions(5, rng=3)
        traj = model.walk(start, duration_s=30.0, step_s=1.0, rng=3)
        displacement = np.linalg.norm(traj[-1] - traj[0], axis=-1)
        assert np.all(displacement > 0.0)

    def test_pause_slows_progress(self):
        fast = RandomWaypointMobility(speed_range=(1.5, 1.5), pause_s=0.0)
        slow = RandomWaypointMobility(speed_range=(1.5, 1.5), pause_s=20.0)
        start = fast.initial_positions(10, rng=4)
        path_fast = fast.walk(start, 120.0, 1.0, rng=4)
        path_slow = slow.walk(start.copy(), 120.0, 1.0, rng=4)
        dist_fast = np.sum(np.linalg.norm(np.diff(path_fast, axis=0), axis=-1))
        dist_slow = np.sum(np.linalg.norm(np.diff(path_slow, axis=0), axis=-1))
        assert dist_slow < dist_fast

    def test_deterministic(self):
        model = RandomWaypointMobility()
        start = model.initial_positions(4, rng=5)
        a = model.walk(start.copy(), 20.0, 1.0, rng=6)
        b = model.walk(start.copy(), 20.0, 1.0, rng=6)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(arena=(0.0, 10.0))
        with pytest.raises(ValueError):
            RandomWaypointMobility(speed_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypointMobility(pause_s=-1.0)
        model = RandomWaypointMobility()
        with pytest.raises(ValueError):
            model.walk(np.zeros((3, 3)), 10.0, 1.0)


class TestIncrementalWalk:
    """start/step must reproduce walk bit-for-bit from one RNG stream."""

    def test_step_matches_walk(self):
        model = RandomWaypointMobility(arena=(80.0, 60.0), pause_s=3.0)
        start = model.initial_positions(7, rng=10)
        traj = model.walk(start.copy(), duration_s=40.0, step_s=1.0, rng=11)
        gen = as_rng(11)
        state = model.start(start.copy(), gen)
        np.testing.assert_array_equal(state.positions, traj[0])
        for k in range(1, traj.shape[0]):
            model.step(state, 1.0, gen)
            np.testing.assert_array_equal(state.positions, traj[k])

    def test_seeded_steps_deterministic(self):
        model = RandomWaypointMobility()
        start = model.initial_positions(5, rng=12)
        runs = []
        for _ in range(2):
            gen = as_rng(13)
            state = model.start(start.copy(), gen)
            for _ in range(25):
                model.step(state, 0.5, gen)
            runs.append(state.positions.copy())
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_admit_appends_node(self):
        model = RandomWaypointMobility(arena=(40.0, 40.0))
        gen = as_rng(14)
        state = model.start(model.initial_positions(3, gen), gen)
        index = model.admit(state, gen)
        assert index == 3
        assert state.n == 4
        assert np.all(state.positions[3] >= 0.0)
        assert np.all(state.positions[3] <= 40.0)
        # the admitted node participates in subsequent steps
        before = state.positions[3].copy()
        for _ in range(10):
            model.step(state, 1.0, gen)
        assert np.linalg.norm(state.positions[3] - before) > 0.0

    def test_admit_does_not_disturb_existing_nodes(self):
        model = RandomWaypointMobility()
        gen = as_rng(15)
        state = model.start(model.initial_positions(4, gen), gen)
        existing = state.positions[:4].copy()
        model.admit(state, gen)
        np.testing.assert_array_equal(state.positions[:4], existing)

    def test_step_keeps_nodes_in_arena(self):
        model = RandomWaypointMobility(arena=(25.0, 15.0), speed_range=(3.0, 6.0))
        gen = as_rng(16)
        state = model.start(model.initial_positions(10, gen), gen)
        for _ in range(100):
            pos = model.step(state, 1.0, gen)
            assert np.all(pos[:, 0] >= -1e-9) and np.all(pos[:, 0] <= 25.0 + 1e-9)
            assert np.all(pos[:, 1] >= -1e-9) and np.all(pos[:, 1] <= 15.0 + 1e-9)

    def test_start_rejects_bad_shape(self):
        model = RandomWaypointMobility()
        with pytest.raises(ValueError):
            model.start(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            model.step(model.start(np.zeros((2, 2))), step_s=0.0)


class TestReclusterInterval:
    def test_faster_nodes_break_clusters_sooner(self):
        slow = RandomWaypointMobility(arena=(100.0, 100.0), speed_range=(0.1, 0.2))
        fast = RandomWaypointMobility(arena=(100.0, 100.0), speed_range=(2.0, 4.0))
        t_slow = np.mean(
            simulate_recluster_interval(
                20, 15.0, slow, max_duration_s=120.0, n_trials=10, rng=0
            )
        )
        t_fast = np.mean(
            simulate_recluster_interval(
                20, 15.0, fast, max_duration_s=120.0, n_trials=10, rng=0
            )
        )
        assert t_fast < t_slow

    def test_looser_diameter_lasts_longer(self):
        mobility = RandomWaypointMobility(arena=(100.0, 100.0), speed_range=(1.0, 2.0))
        tight = np.mean(
            simulate_recluster_interval(
                20, 8.0, mobility, max_duration_s=120.0, n_trials=10, rng=1
            )
        )
        loose = np.mean(
            simulate_recluster_interval(
                20, 40.0, mobility, max_duration_s=120.0, n_trials=10, rng=1
            )
        )
        assert loose >= tight

    def test_intervals_bounded_by_window(self):
        mobility = RandomWaypointMobility()
        intervals = simulate_recluster_interval(
            10, 20.0, mobility, max_duration_s=30.0, n_trials=5, rng=2
        )
        assert len(intervals) == 5
        assert all(0.0 < t <= 30.0 for t in intervals)
