"""Mobility model and re-clustering interval tests."""

import numpy as np
import pytest

from repro.network.mobility import RandomWaypointMobility, simulate_recluster_interval


class TestRandomWaypoint:
    def test_positions_stay_in_arena(self):
        model = RandomWaypointMobility(arena=(50.0, 30.0))
        start = model.initial_positions(10, rng=0)
        traj = model.walk(start, duration_s=120.0, step_s=1.0, rng=0)
        assert np.all(traj[..., 0] >= -1e-9) and np.all(traj[..., 0] <= 50.0 + 1e-9)
        assert np.all(traj[..., 1] >= -1e-9) and np.all(traj[..., 1] <= 30.0 + 1e-9)

    def test_trajectory_shape(self):
        model = RandomWaypointMobility()
        start = model.initial_positions(5, rng=1)
        traj = model.walk(start, duration_s=10.0, step_s=1.0, rng=1)
        assert traj.shape == (11, 5, 2)
        np.testing.assert_array_equal(traj[0], start)

    def test_speed_respected(self):
        model = RandomWaypointMobility(speed_range=(1.0, 2.0))
        start = model.initial_positions(8, rng=2)
        traj = model.walk(start, duration_s=60.0, step_s=1.0, rng=2)
        step_lengths = np.linalg.norm(np.diff(traj, axis=0), axis=-1)
        assert np.max(step_lengths) <= 2.0 + 1e-9

    def test_nodes_actually_move(self):
        model = RandomWaypointMobility(speed_range=(1.0, 1.0))
        start = model.initial_positions(5, rng=3)
        traj = model.walk(start, duration_s=30.0, step_s=1.0, rng=3)
        displacement = np.linalg.norm(traj[-1] - traj[0], axis=-1)
        assert np.all(displacement > 0.0)

    def test_pause_slows_progress(self):
        fast = RandomWaypointMobility(speed_range=(1.5, 1.5), pause_s=0.0)
        slow = RandomWaypointMobility(speed_range=(1.5, 1.5), pause_s=20.0)
        start = fast.initial_positions(10, rng=4)
        path_fast = fast.walk(start, 120.0, 1.0, rng=4)
        path_slow = slow.walk(start.copy(), 120.0, 1.0, rng=4)
        dist_fast = np.sum(np.linalg.norm(np.diff(path_fast, axis=0), axis=-1))
        dist_slow = np.sum(np.linalg.norm(np.diff(path_slow, axis=0), axis=-1))
        assert dist_slow < dist_fast

    def test_deterministic(self):
        model = RandomWaypointMobility()
        start = model.initial_positions(4, rng=5)
        a = model.walk(start.copy(), 20.0, 1.0, rng=6)
        b = model.walk(start.copy(), 20.0, 1.0, rng=6)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(arena=(0.0, 10.0))
        with pytest.raises(ValueError):
            RandomWaypointMobility(speed_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypointMobility(pause_s=-1.0)
        model = RandomWaypointMobility()
        with pytest.raises(ValueError):
            model.walk(np.zeros((3, 3)), 10.0, 1.0)


class TestReclusterInterval:
    def test_faster_nodes_break_clusters_sooner(self):
        slow = RandomWaypointMobility(arena=(100.0, 100.0), speed_range=(0.1, 0.2))
        fast = RandomWaypointMobility(arena=(100.0, 100.0), speed_range=(2.0, 4.0))
        t_slow = np.mean(
            simulate_recluster_interval(
                20, 15.0, slow, max_duration_s=120.0, n_trials=10, rng=0
            )
        )
        t_fast = np.mean(
            simulate_recluster_interval(
                20, 15.0, fast, max_duration_s=120.0, n_trials=10, rng=0
            )
        )
        assert t_fast < t_slow

    def test_looser_diameter_lasts_longer(self):
        mobility = RandomWaypointMobility(arena=(100.0, 100.0), speed_range=(1.0, 2.0))
        tight = np.mean(
            simulate_recluster_interval(
                20, 8.0, mobility, max_duration_s=120.0, n_trials=10, rng=1
            )
        )
        loose = np.mean(
            simulate_recluster_interval(
                20, 40.0, mobility, max_duration_s=120.0, n_trials=10, rng=1
            )
        )
        assert loose >= tight

    def test_intervals_bounded_by_window(self):
        mobility = RandomWaypointMobility()
        intervals = simulate_recluster_interval(
            10, 20.0, mobility, max_duration_s=30.0, n_trials=5, rng=2
        )
        assert len(intervals) == 5
        assert all(0.0 < t <= 30.0 for t in intervals)
