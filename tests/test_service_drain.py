"""Graceful drain: in-flight requests finish, new connections are refused.

Uses :meth:`ThreadedServer.request_stop` to trigger SIGTERM-style drain
without joining, so the draining state itself is observable: a keep-alive
connection opened *before* the drain can still talk to the server (and
sees ``/healthz`` report ``draining`` with ``Connection: close``), while
fresh connections bounce off the closed listener.
"""

import http.client
import json
import threading
import time

import pytest

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.config import ServiceConfig
from repro.service.testing import ThreadedServer


class TestGracefulDrain:
    def test_inflight_completes_probes_see_draining_new_connections_refused(self):
        config = ServiceConfig(
            port=0,
            workers=0,
            coalesce_ms=0.0,
            request_log=False,
            drain_timeout_s=30.0,
        )
        server = ThreadedServer(config).start()
        try:
            port = server.port  # unreadable once the listener is closed
            # A keep-alive connection established before the drain begins.
            conn = http.client.HTTPConnection(config.host, port, timeout=30.0)
            conn.request("GET", "/healthz")
            first = conn.getresponse()
            assert json.loads(first.read()) == {"status": "ok"}

            # Park one request inside an injected stall, then start draining
            # while it is still in flight.
            server.service.faults.arm_delay(0.8, times=1, paths=("/v1/ebar",))
            results = []

            def inflight():
                results.append(server.client().ebar(0.001, 2, 2, 2))

            thread = threading.Thread(target=inflight)
            thread.start()
            time.sleep(0.2)  # request is now inside its 0.8 s stall
            server.request_stop()
            time.sleep(0.2)  # listener closed, drain waiting on in-flight

            # The pre-drain connection still gets answers: readiness flips
            # to draining and the server asks it to close.
            conn.request("GET", "/healthz")
            probe = conn.getresponse()
            assert json.loads(probe.read()) == {"status": "draining"}
            assert probe.getheader("Connection") == "close"
            conn.close()

            # The in-flight request completes normally despite the drain.
            thread.join(30.0)
            assert not thread.is_alive()
            assert len(results) == 1
            assert results[0]["e_bar"] > 0

            # New connections are refused: the listening socket is gone.
            with pytest.raises(ServiceClientError) as err:
                ServiceClient(config.host, port, timeout_s=5.0).healthz()
            assert err.value.status == 599
            assert err.value.is_transport_failure
        finally:
            server.stop()
