"""Diversity combining tests: exactness, SNR ordering, validation."""

import numpy as np
import pytest

from repro.channel.awgn import complex_gaussian
from repro.channel.rayleigh import rayleigh_mimo_channel
from repro.stbc.combining import (
    equal_gain_combine,
    maximal_ratio_combine,
    selection_combine,
)

COMBINERS = [maximal_ratio_combine, equal_gain_combine, selection_combine]


def _branches(rng, n=40_000, branches=3, noise_var=0.3):
    s = np.ones(n, dtype=complex)  # all-ones pilot symbol
    h = rayleigh_mimo_channel(1, branches, n, rng=rng)[:, :, 0]
    y = h * s[:, None] + complex_gaussian((n, branches), noise_var, rng)
    return s, h, y


class TestNoiseless:
    @pytest.mark.parametrize("combiner", COMBINERS)
    def test_exact_recovery(self, combiner, rng):
        n, branches = 200, 4
        s = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        h = rayleigh_mimo_channel(1, branches, n, rng=rng)[:, :, 0]
        y = h * s[:, None]
        np.testing.assert_allclose(combiner(y, h), s, atol=1e-9)


class TestUnbiasedness:
    @pytest.mark.parametrize("combiner", COMBINERS)
    def test_mean_preserved_under_noise(self, combiner, rng):
        s, h, y = _branches(rng)
        out = combiner(y, h)
        assert np.mean(out).real == pytest.approx(1.0, abs=0.02)


class TestSnrOrdering:
    def test_mrc_best_then_egc_then_sc(self, rng):
        """Post-combining error power ordering: MRC <= EGC <= SC (textbook)."""
        s, h, y = _branches(rng, noise_var=0.5)
        errors = {}
        for combiner in COMBINERS:
            out = combiner(y, h)
            errors[combiner.__name__] = np.mean(np.abs(out - s) ** 2)
        assert errors["maximal_ratio_combine"] < errors["equal_gain_combine"]
        assert errors["equal_gain_combine"] < errors["selection_combine"]

    def test_combining_beats_single_branch(self, rng):
        s, h, y = _branches(rng, noise_var=0.5)
        single = y[:, 0] / h[:, 0]
        combined = equal_gain_combine(y, h)
        assert np.mean(np.abs(combined - s) ** 2) < np.mean(np.abs(single - s) ** 2)


class TestSelection:
    def test_picks_strongest_branch(self):
        y = np.array([[1.0 + 0j, 10.0 + 0j]])
        h = np.array([[0.1 + 0j, 2.0 + 0j]])
        out = selection_combine(y, h)
        np.testing.assert_allclose(out, [5.0 + 0j])


class TestValidation:
    @pytest.mark.parametrize("combiner", COMBINERS)
    def test_shape_mismatch(self, combiner):
        with pytest.raises(ValueError):
            combiner(np.zeros((3, 2), complex), np.zeros((3, 3), complex))

    @pytest.mark.parametrize("combiner", COMBINERS)
    def test_one_dimensional_rejected(self, combiner):
        with pytest.raises(ValueError):
            combiner(np.zeros(5, complex), np.zeros(5, complex))

    @pytest.mark.parametrize("combiner", COMBINERS)
    def test_zero_gain_row_rejected(self, combiner):
        y = np.ones((1, 2), complex)
        h = np.zeros((1, 2), complex)
        with pytest.raises(ValueError):
            combiner(y, h)
