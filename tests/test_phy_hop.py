"""Full cooperative-hop simulation tests (Section 2.2 end to end)."""

import numpy as np
import pytest

from repro.modulation import BPSKModem, QPSKModem
from repro.phy.hop import simulate_hop


class TestBasics:
    def test_siso_reduces_to_plain_link(self, rng):
        r = simulate_hop(60_000, BPSKModem(), 25.0, 10.0, 1, 1, rng=rng)
        assert r.member_broadcast_bers == ()
        from repro.modulation.theory import ber_bpsk_rayleigh

        assert r.ber == pytest.approx(float(ber_bpsk_rayleigh(10.0)), rel=0.15)

    def test_member_ber_count(self, rng):
        r = simulate_hop(20_000, BPSKModem(), 25.0, 10.0, 3, 2, rng=rng)
        assert len(r.member_broadcast_bers) == 2

    def test_deterministic(self):
        a = simulate_hop(10_000, BPSKModem(), 20.0, 8.0, 2, 2, rng=5)
        b = simulate_hop(10_000, BPSKModem(), 20.0, 8.0, 2, 2, rng=5)
        assert a.ber == b.ber

    def test_qpsk_supported(self, rng):
        r = simulate_hop(40_000, QPSKModem(), 25.0, 12.0, 2, 2, rng=rng)
        assert 0.0 <= r.ber < 0.05

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_hop(0, BPSKModem(), 20.0, 10.0, 1, 1, rng=rng)
        with pytest.raises(ValueError):
            simulate_hop(100, BPSKModem(), 20.0, 10.0, 5, 1, rng=rng)
        with pytest.raises(ValueError):
            simulate_hop(100, BPSKModem(), 20.0, 10.0, 1, 1, intra_rician_k=-1, rng=rng)


class TestDiversityGains:
    def test_cooperation_improves_with_clean_intra(self, rng):
        """With strong local links the hop realizes the diversity gain the
        energy model promises."""
        kwargs = dict(intra_snr_db=30.0, longhaul_snr_db=10.0, rng=rng)
        siso = simulate_hop(150_000, BPSKModem(), mt=1, mr=1, **kwargs)
        miso = simulate_hop(150_000, BPSKModem(), mt=2, mr=1, **kwargs)
        mimo = simulate_hop(150_000, BPSKModem(), mt=2, mr=2, **kwargs)
        assert miso.ber < siso.ber / 2.0
        assert mimo.ber < miso.ber

    def test_receive_side_cooperation_helps(self, rng):
        kwargs = dict(intra_snr_db=30.0, longhaul_snr_db=8.0, rng=rng)
        simo = simulate_hop(150_000, BPSKModem(), mt=1, mr=2, **kwargs)
        siso = simulate_hop(150_000, BPSKModem(), mt=1, mr=1, **kwargs)
        assert simo.ber < siso.ber / 2.0


class TestErrorPropagation:
    def test_weak_intra_links_floor_the_hop(self, rng):
        """A noisy broadcast phase poisons the antenna streams: the hop BER
        is floored near the member decode error rate, however good the
        long haul is — the effect the analytic model abstracts away."""
        r = simulate_hop(
            120_000, BPSKModem(), intra_snr_db=6.0, longhaul_snr_db=40.0,
            mt=2, mr=1, rng=rng,
        )
        member_ber = r.member_broadcast_bers[0]
        assert member_ber > 0.001
        assert r.ber > member_ber / 10.0

    def test_intra_quality_monotone(self, rng):
        bers = []
        for intra in (8.0, 15.0, 30.0):
            r = simulate_hop(
                80_000, BPSKModem(), intra_snr_db=intra, longhaul_snr_db=12.0,
                mt=2, mr=2, rng=np.random.default_rng(3),
            )
            bers.append(r.ber)
        assert bers[0] > bers[2]

    def test_forwarding_noise_costs_something(self, rng):
        """Sample-and-forward at modest intra SNR is worse than an ideal
        co-located receive array."""
        ideal = simulate_hop(
            120_000, BPSKModem(), intra_snr_db=60.0, longhaul_snr_db=6.0,
            mt=1, mr=3, rng=np.random.default_rng(4),
        )
        noisy = simulate_hop(
            120_000, BPSKModem(), intra_snr_db=10.0, longhaul_snr_db=6.0,
            mt=1, mr=3, rng=np.random.default_rng(4),
        )
        assert noisy.ber > ideal.ber
