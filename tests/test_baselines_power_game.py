"""Game-theoretic underlay baseline tests."""

import numpy as np
import pytest

from repro.baselines.power_game import (
    GameOutcome,
    PowerControlGame,
    interference_guarantee_comparison,
)


def _symmetric_game(price=1e9, cross=1e-9):
    g = np.array([[1e-6, cross], [cross, 1e-6]])
    h = np.array([1e-8, 1e-8])
    return PowerControlGame(g, h, noise_w=1e-13, price=price, p_max_w=0.1)


class TestConstruction:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            PowerControlGame(np.ones((2, 3)), np.ones(2))

    def test_rejects_wrong_pu_gain_length(self):
        with pytest.raises(ValueError):
            PowerControlGame(np.ones((2, 2)), np.ones(3))

    def test_rejects_nonpositive_gains(self):
        g = np.array([[1.0, 0.0], [0.1, 1.0]])
        with pytest.raises(ValueError):
            PowerControlGame(g, np.ones(2))


class TestEquilibrium:
    def test_converges(self):
        outcome = _symmetric_game().run()
        assert outcome.converged
        assert isinstance(outcome, GameOutcome)

    def test_equilibrium_is_fixed_point(self):
        game = _symmetric_game()
        outcome = game.run()
        np.testing.assert_allclose(
            game.best_response(outcome.powers_w), outcome.powers_w, atol=1e-12
        )

    def test_symmetric_players_equal_powers(self):
        outcome = _symmetric_game().run()
        assert outcome.powers_w[0] == pytest.approx(outcome.powers_w[1], rel=1e-6)

    def test_equilibrium_is_nash(self):
        """No unilateral deviation improves a player's utility."""
        game = _symmetric_game(price=1e11)
        outcome = game.run()
        base = game.utilities(outcome.powers_w)
        for player in range(2):
            for deviation in (0.5, 0.9, 1.1, 2.0):
                p = outcome.powers_w.copy()
                p[player] = np.clip(p[player] * deviation, 0.0, game.p_max_w)
                if p[player] == outcome.powers_w[player]:
                    continue
                assert game.utilities(p)[player] <= base[player] + 1e-9

    def test_powers_respect_cap(self):
        outcome = _symmetric_game(price=1.0).run()  # negligible price
        assert np.all(outcome.powers_w <= 0.1 + 1e-15)

    def test_higher_price_lower_interference(self):
        low = _symmetric_game(price=1e10).run()
        high = _symmetric_game(price=1e12).run()
        assert high.pu_interference_w < low.pu_interference_w
        assert high.total_power_w < low.total_power_w

    def test_huge_price_shuts_everyone_off(self):
        outcome = _symmetric_game(price=1e30).run()
        np.testing.assert_allclose(outcome.powers_w, 0.0)
        assert outcome.pu_interference_w == 0.0

    def test_rates_positive_at_equilibrium(self):
        outcome = _symmetric_game(price=1e10).run()
        assert np.all(outcome.rates_bps_hz > 0.0)


class TestPaperCritique:
    def test_aggregate_interference_grows_with_population(self):
        """The Section 1 critique: per-player pricing caps nobody's sum."""
        results = interference_guarantee_comparison(
            n_sus_values=(2, 4, 8), n_geometries=40, rng=0
        )
        means = [results[n]["mean_interference_w"] for n in (2, 4, 8)]
        assert means[0] < means[1] < means[2]
        # roughly linear in the player count
        assert means[2] / means[0] == pytest.approx(4.0, rel=0.4)

    def test_guarantee_erodes_with_population(self):
        results = interference_guarantee_comparison(
            n_sus_values=(2, 8), n_geometries=40, rng=0
        )
        assert results[2]["violation_rate"] < 0.2
        assert results[8]["violation_rate"] > 0.8

    def test_game_converges_reliably(self):
        results = interference_guarantee_comparison(
            n_sus_values=(4,), n_geometries=40, rng=1
        )
        assert results[4]["convergence_rate"] > 0.9

    def test_cooperative_mimo_guarantee_contrast(self):
        """The cooperative paradigm's margin holds regardless of how many
        clusters transmit, because each hop's peak PA is bounded by
        construction — the contrast the paper draws."""
        from repro.core.underlay import UnderlaySystem
        from repro.energy.model import EnergyModel

        system = UnderlaySystem(EnergyModel())
        for _ in range(3):  # any number of simultaneous hops
            assert system.meets_noise_floor(
                0.001, 2, 3, 1.0, 200.0, 10e3, required_margin=10.0
            )
