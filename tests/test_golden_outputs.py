"""Golden-file regression tests for every experiment.

The fast-mode output of each experiment is pinned to a committed CSV
(``tests/golden/``).  Any change to the numerical core — the ē_b solver,
the link simulator, a testbed calibration, even a seed-threading change —
shows up here as a precise diff instead of a silent drift of the
reproduction.  Regenerate deliberately with::

    python -c "
    from repro.experiments.registry import EXPERIMENTS, run_experiment
    for name in sorted(EXPERIMENTS):
        open(f'tests/golden/{name}_fast.csv', 'w').write(
            run_experiment(name, fast=True).to_csv())
    "
"""

import csv
import pathlib

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def _parse(text: str):
    rows = list(csv.reader(text.strip().splitlines()))
    return rows[0], rows[1:]


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_matches_golden(name):
    golden_path = GOLDEN_DIR / f"{name}_fast.csv"
    assert golden_path.exists(), f"missing golden file for {name}"
    golden_header, golden_rows = _parse(golden_path.read_text())

    result = run_experiment(name, fast=True)
    header, rows = _parse(result.to_csv())

    assert header == golden_header, f"{name}: column schema changed"
    assert len(rows) == len(golden_rows), f"{name}: row count changed"
    for i, (got, want) in enumerate(zip(rows, golden_rows)):
        for j, (g, w) in enumerate(zip(got, want)):
            try:
                g_val, w_val = float(g), float(w)
            except ValueError:
                assert g == w, f"{name} row {i} col {header[j]}: {g!r} != {w!r}"
                continue
            assert g_val == pytest.approx(w_val, rel=1e-9, abs=1e-300), (
                f"{name} row {i} col {header[j]}: {g_val} != {w_val}"
            )


def test_no_orphan_golden_files():
    on_disk = {p.stem.replace("_fast", "") for p in GOLDEN_DIR.glob("*_fast.csv")}
    assert on_disk == set(EXPERIMENTS)
