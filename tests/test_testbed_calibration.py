"""Calibration utility tests."""

import pytest

from repro.testbed.calibration import (
    bisect_monotone,
    calibrate_reference_power,
    calibrate_wall_attenuation,
)
from repro.testbed.environment import table2_testbed


class TestBisection:
    def test_increasing_function(self):
        root = bisect_monotone(lambda x: x**2, 9.0, 0.0, 10.0, increasing=True)
        assert root == pytest.approx(3.0, abs=1e-3)

    def test_decreasing_function(self):
        root = bisect_monotone(lambda x: 10.0 - x, 4.0, 0.0, 10.0, increasing=False)
        assert root == pytest.approx(6.0, abs=1e-3)

    def test_rejects_bad_bracket(self):
        with pytest.raises(ValueError):
            bisect_monotone(lambda x: x, 1.0, 5.0, 5.0, increasing=True)


class TestWallCalibration:
    def test_recovers_a_target_ber(self):
        """Calibrate the Table 2 board to a 15% direct BER and verify."""
        wall = calibrate_wall_attenuation(
            lambda db: table2_testbed(board_attenuation_db=db),
            "tx",
            "rx",
            target_ber=0.15,
            n_bits=30_000,
            seed=1,
            iterations=12,
        )
        assert 5.0 < wall < 35.0
        achieved = (
            table2_testbed(board_attenuation_db=wall)
            .run_relay_experiment("tx", [], "rx", n_bits=30_000, rng=1)
            .ber
        )
        assert achieved == pytest.approx(0.15, abs=0.03)

    def test_shipped_calibration_is_a_fixed_point(self):
        """The 20 dB board shipped in table2_testbed reproduces the paper's
        ~11% direct BER; re-calibrating against that target lands nearby."""
        wall = calibrate_wall_attenuation(
            lambda db: table2_testbed(board_attenuation_db=db),
            "tx",
            "rx",
            target_ber=0.11,
            n_bits=30_000,
            seed=1,
            iterations=12,
        )
        assert wall == pytest.approx(20.0, abs=3.0)


class TestPowerCalibration:
    def test_recovers_a_target_ber(self):
        from repro.channel.indoor import IndoorChannel
        from repro.testbed.radio import RadioNode, SimulatedTestbed

        def build(ref_dbm):
            channel = IndoorChannel(noise_power_dbm=-110.0)
            nodes = [
                RadioNode("tx", (0.0, 0.0), reference_power_dbm=ref_dbm),
                RadioNode("rx", (4.0, 0.0), reference_power_dbm=ref_dbm),
            ]
            return SimulatedTestbed(channel, nodes, rician_k=0.0)

        ref = calibrate_reference_power(
            build, "tx", "rx", target_ber=0.05, n_bits=30_000, seed=2, iterations=12
        )
        achieved = build(ref).run_relay_experiment(
            "tx", [], "rx", n_bits=30_000, rng=2
        ).ber
        assert achieved == pytest.approx(0.05, abs=0.015)
