"""Shared fixtures and hypothesis settings for the test suite."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for everything: property tests run enough cases to
# mean something without dominating the suite's runtime.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    """A deterministically seeded generator for Monte-Carlo tests."""
    return np.random.default_rng(123456789)


@pytest.fixture(scope="session")
def energy_model():
    """A paper-constant energy model shared across tests (stateless)."""
    from repro.energy.model import EnergyModel

    return EnergyModel()
