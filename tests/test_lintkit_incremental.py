"""Incremental-analysis cache: warm runs must not re-parse, and must not
change results.

The cache is content-hash addressed (file source + path + a digest of the
linter's own source), so the invariants under test are behavioral: a warm
run over an unchanged tree parses zero files, yields byte-identical
findings — including graph-tier RP2xx findings rebuilt from cached module
summaries — and is measurably faster than the cold run.
"""

import time

import pytest

from repro.lintkit import AnalysisCache, LintStats, analyze_paths
from repro.lintkit.cache import lintkit_rule_key


@pytest.fixture
def cache(tmp_path, monkeypatch):
    # CI's test jobs export REPRO_NO_CACHE=1; these tests are *about* the
    # cache, so re-enable it and point it at a private directory.
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return AnalysisCache(tmp_path / "cache")


def write_tree(root, n_files=6, lines_per_file=12):
    src = root / "src" / "repro" / "service"
    src.mkdir(parents=True, exist_ok=True)
    for index in range(n_files):
        body = "\n".join(
            f"def fn_{index}_{j}(x):\n    return x + {j}" for j in range(lines_per_file)
        )
        (src / f"mod_{index}.py").write_text(body + "\n")
    # One file with a real graph-tier finding: blocking sleep in a handler.
    (src / "app.py").write_text(
        "async def _handle_x(self):\n    time.sleep(0.01)\n"
    )
    return root / "src"


def run(tree, cache, **kwargs):
    stats = LintStats()
    findings = analyze_paths([str(tree)], stats=stats, jobs=1, cache=cache, **kwargs)
    return findings, stats


class TestWarmRuns:
    def test_warm_run_parses_nothing_and_matches_cold(self, tmp_path, cache):
        tree = write_tree(tmp_path)
        cold_findings, cold = run(tree, cache)
        warm_findings, warm = run(tree, cache)

        assert cold.parsed == cold.files and cold.cached == 0
        assert warm.parsed == 0 and warm.cached == warm.files == cold.files
        assert warm_findings == cold_findings
        # The graph tier fires identically from cached summaries alone.
        assert any(f.rule_id == "RP201" for f in warm_findings)

    def test_editing_one_file_reparses_only_that_file(self, tmp_path, cache):
        tree = write_tree(tmp_path)
        run(tree, cache)
        (tree / "repro" / "service" / "mod_0.py").write_text(
            "def changed(x):\n    return x\n"
        )
        _, warm = run(tree, cache)
        assert warm.parsed == 1
        assert warm.cached == warm.files - 1

    def test_select_change_invalidates_entries(self, tmp_path, cache):
        tree = write_tree(tmp_path)
        run(tree, cache, select=["RP201"])
        _, warm = run(tree, cache, select=["RP205"])
        assert warm.parsed == warm.files  # different rule_key, all misses

    def test_corrupt_entry_is_a_silent_miss(self, tmp_path, cache):
        tree = write_tree(tmp_path, n_files=2)
        cold_findings, _ = run(tree, cache)
        entries = sorted(cache.directory.rglob("*.json"))
        assert entries
        entries[0].write_text("{not json")
        warm_findings, warm = run(tree, cache)
        assert warm.parsed == 1  # only the clobbered entry re-analyzes
        assert warm_findings == cold_findings

    def test_no_cache_env_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        disabled = AnalysisCache(tmp_path / "cache")
        assert not disabled.enabled
        tree = write_tree(tmp_path, n_files=2)
        run(tree, disabled)
        _, warm = run(tree, disabled)
        assert warm.cached == 0 and warm.parsed == warm.files

    def test_incremental_false_bypasses_cache(self, tmp_path, cache):
        tree = write_tree(tmp_path, n_files=2)
        run(tree, cache)
        _, warm = run(tree, cache, incremental=False)
        assert warm.cached == 0 and warm.parsed == warm.files


class TestWarmSpeed:
    def test_warm_run_is_measurably_faster(self, tmp_path, cache):
        # Enough files that parse + rule time dominates file reads.
        tree = write_tree(tmp_path, n_files=40, lines_per_file=40)
        lintkit_rule_key("")  # pre-warm the one-time self-digest memo

        start = time.perf_counter()
        cold_findings, cold = run(tree, cache)
        cold_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        warm_findings, warm = run(tree, cache)
        warm_elapsed = time.perf_counter() - start

        assert cold.parsed == cold.files and warm.parsed == 0
        assert warm_findings == cold_findings
        # "Measurably faster": generous bound to stay robust on loaded CI
        # machines — in practice the warm run skips all parsing and rule
        # execution and lands well under half the cold time.
        assert warm_elapsed < cold_elapsed * 0.8, (
            f"warm {warm_elapsed:.3f}s not faster than cold {cold_elapsed:.3f}s"
        )
