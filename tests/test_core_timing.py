"""Hop airtime (latency) accounting tests — the Section 2.2 time slots."""

import pytest

from repro.core.schemes import hop_timing


class TestHopTiming:
    def test_siso_is_pure_stream(self):
        t = hop_timing(10_000, b=2, mt=1, mr=1, bandwidth=10e3)
        assert t.intra_a_s == 0.0
        assert t.intra_b_s == 0.0
        assert t.longhaul_s == pytest.approx(10_000 / (2 * 10e3))
        assert t.stbc_rate == 1.0

    def test_alamouti_rate_one_no_stretch(self):
        siso = hop_timing(10_000, 2, 1, 1, 10e3)
        miso2 = hop_timing(10_000, 2, 2, 1, 10e3)
        assert miso2.longhaul_s == pytest.approx(siso.longhaul_s)
        # but the intra-A broadcast adds a phase
        assert miso2.total_s > siso.total_s

    def test_rate_half_codes_double_longhaul(self):
        two = hop_timing(10_000, 2, 2, 1, 10e3)
        three = hop_timing(10_000, 2, 3, 1, 10e3)
        four = hop_timing(10_000, 2, 4, 1, 10e3)
        assert three.stbc_rate == 0.5
        assert three.longhaul_s == pytest.approx(2.0 * two.longhaul_s)
        assert four.longhaul_s == pytest.approx(three.longhaul_s)

    def test_intra_b_scales_with_mr(self):
        t = hop_timing(8_000, 1, 1, 3, 10e3)
        stream = 8_000 / 10e3
        assert t.intra_b_s == pytest.approx(3 * stream)
        assert t.intra_a_s == 0.0

    def test_total_is_phase_sum(self):
        t = hop_timing(5_000, 2, 3, 2, 20e3)
        assert t.total_s == pytest.approx(t.intra_a_s + t.longhaul_s + t.intra_b_s)

    def test_higher_b_faster(self):
        slow = hop_timing(10_000, 1, 2, 2, 10e3)
        fast = hop_timing(10_000, 4, 2, 2, 10e3)
        assert fast.total_s == pytest.approx(slow.total_s / 4.0)

    def test_energy_latency_tradeoff_exists(self):
        """mt = 3 saves long-haul energy (diversity) but costs airtime
        (rate-1/2 code + broadcast) — the ablation DESIGN.md calls out."""
        siso = hop_timing(10_000, 2, 1, 1, 10e3)
        coop = hop_timing(10_000, 2, 3, 3, 10e3)
        assert coop.total_s > 2.0 * siso.total_s

    def test_validation(self):
        with pytest.raises(ValueError):
            hop_timing(0, 2, 1, 1, 10e3)
        with pytest.raises(ValueError):
            hop_timing(100, 2, 0, 1, 10e3)
        with pytest.raises(ValueError):
            hop_timing(100, 2, 1, 1, 0.0)
