"""HTTP framing: request parsing and response rendering."""

import asyncio
import json

import pytest

from repro.service.errors import BadRequestError, PayloadTooLargeError
from repro.service.httpio import (
    MAX_BODY_BYTES,
    RequestHead,
    read_request,
    render_response,
)


def _feed(blob: bytes):
    """Run read_request against an in-memory stream."""

    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(blob)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(main())


class TestReadRequest:
    def test_parses_request_line_headers_and_body(self):
        body = b'{"p": 0.001}'
        blob = (
            b"POST /v1/ebar?x=1 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        head, got = _feed(blob)
        assert head.method == "POST"
        assert head.path == "/v1/ebar"  # query string stripped
        assert head.headers["host"] == "localhost"
        assert got == body

    def test_idle_close_returns_none(self):
        assert _feed(b"") is None

    def test_keep_alive_defaults(self):
        head = RequestHead("GET", "/", "HTTP/1.1", {})
        assert head.keep_alive is True
        head10 = RequestHead("GET", "/", "HTTP/1.0", {})
        assert head10.keep_alive is False
        closed = RequestHead("GET", "/", "HTTP/1.1", {"connection": "close"})
        assert closed.keep_alive is False

    @pytest.mark.parametrize(
        "blob",
        [
            b"NOT-A-REQUEST\r\n\r\n",
            b"GET /x HTTP/2\r\n\r\n",
            b"GET /x HTTP/1.1\r\nBadHeader\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",  # truncated
            b"GET /x HTTP/1.1\r\nHost: x",  # truncated head
        ],
    )
    def test_malformed_framing_raises_bad_request(self, blob):
        with pytest.raises(BadRequestError):
            _feed(blob)

    def test_oversized_body_raises_413(self):
        blob = (
            b"POST /x HTTP/1.1\r\nContent-Length: "
            + str(MAX_BODY_BYTES + 1).encode()
            + b"\r\n\r\n"
        )
        with pytest.raises(PayloadTooLargeError):
            _feed(blob)


class TestRenderResponse:
    def test_renders_parsable_json_with_framing(self):
        raw = render_response(200, {"a": 1}, keep_alive=True)
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Type: application/json" in lines
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: keep-alive" in lines
        assert json.loads(body) == {"a": 1}

    def test_close_and_reason_phrases(self):
        raw = render_response(429, {"error": "too many"}, keep_alive=False)
        assert raw.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Connection: close\r\n" in raw

    def test_gateway_timeout_reason_phrase(self):
        raw = render_response(504, {"error": "Gateway Timeout"})
        assert raw.startswith(b"HTTP/1.1 504 Gateway Timeout\r\n")

    def test_extra_headers_are_emitted(self):
        raw = render_response(
            429,
            {"error": "too many"},
            keep_alive=False,
            extra_headers={"Retry-After": "2"},
        )
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"\r\nRetry-After: 2\r\n" in head + b"\r\n"
        assert json.loads(body) == {"error": "too many"}

    def test_no_extra_headers_by_default(self):
        raw = render_response(429, {"error": "too many"})
        assert b"Retry-After" not in raw
