"""RNG plumbing tests: coercion, determinism, stream independence."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, keyed_seed_sequence, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(7).integers(0, 1_000_000, 10)
        b = as_rng(7).integers(0, 1_000_000, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_seedsequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_rng("seed")


class TestSpawn:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_deterministic_from_seed(self):
        a = [g.random() for g in spawn_rngs(42, 3)]
        b = [g.random() for g in spawn_rngs(42, 3)]
        assert a == b

    def test_children_differ_from_each_other(self):
        children = spawn_rngs(42, 4)
        draws = [g.integers(0, 2**62) for g in children]
        assert len(set(draws)) == 4


class TestKeyedSeedSequence:
    def test_same_keys_same_stream(self):
        a = as_rng(keyed_seed_sequence(7, 3)).random(4)
        b = as_rng(keyed_seed_sequence(7, 3)).random(4)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        draws = {
            as_rng(keyed_seed_sequence(*keys)).integers(0, 2**62)
            for keys in [(7, 3), (7, 4), (8, 3), (3, 7)]
        }
        assert len(draws) == 4

    def test_numpy_ints_accepted(self):
        a = keyed_seed_sequence(np.int64(7), np.int32(3))
        assert a.entropy == keyed_seed_sequence(7, 3).entropy

    def test_no_keys_rejected(self):
        with pytest.raises(ValueError):
            keyed_seed_sequence()

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            keyed_seed_sequence("seed")
