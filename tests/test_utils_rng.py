"""RNG plumbing tests: coercion, determinism, stream independence."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(7).integers(0, 1_000_000, 10)
        b = as_rng(7).integers(0, 1_000_000, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_seedsequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_rng("seed")


class TestSpawn:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_deterministic_from_seed(self):
        a = [g.random() for g in spawn_rngs(42, 3)]
        b = [g.random() for g in spawn_rngs(42, 3)]
        assert a == b

    def test_children_differ_from_each_other(self):
        children = spawn_rngs(42, 4)
        draws = [g.integers(0, 2**62) for g in children]
        assert len(set(draws)) == 4
