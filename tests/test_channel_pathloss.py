"""Path-loss model tests: formulas, monotonicity, inversion."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PowerLawPathLoss,
)

distances = st.floats(min_value=0.1, max_value=1e4)


class TestPowerLaw:
    def test_matches_paper_constants(self):
        model = PowerLawPathLoss()  # paper defaults
        assert model.gain(10.0) == pytest.approx(0.01 * 10**3.5 * 1e4)

    @given(distances, distances)
    def test_monotone(self, d1, d2):
        model = PowerLawPathLoss()
        if d1 < d2:
            assert model.gain(d1) < model.gain(d2)

    def test_exponent_effect(self):
        shallow = PowerLawPathLoss(kappa=2.0)
        steep = PowerLawPathLoss(kappa=4.0)
        # same at 1 m, steeper divergence beyond
        assert steep.gain(10.0) / steep.gain(1.0) > shallow.gain(10.0) / shallow.gain(1.0)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            PowerLawPathLoss(g1=-1.0)
        with pytest.raises(ValueError):
            PowerLawPathLoss().gain(0.0)


class TestFreeSpace:
    def test_square_law(self):
        model = FreeSpacePathLoss()
        assert model.gain(200.0) == pytest.approx(model.gain(100.0) * 4.0)

    def test_attenuation_db_consistent(self):
        model = FreeSpacePathLoss()
        assert model.attenuation_db(50.0) == pytest.approx(
            10 * np.log10(model.gain(50.0))
        )

    @given(distances)
    def test_invert_gain_roundtrip(self, d):
        model = FreeSpacePathLoss()
        assert model.invert_gain(model.gain(d)) == pytest.approx(d, rel=1e-9)

    def test_invert_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FreeSpacePathLoss().invert_gain(0.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FreeSpacePathLoss(wavelength_m=0.0)


class TestLogDistance:
    def test_reference_point(self):
        model = LogDistancePathLoss(reference_loss_db=40.0, exponent=3.0)
        assert model.attenuation_db(1.0) == pytest.approx(40.0)

    def test_slope_per_decade(self):
        model = LogDistancePathLoss(reference_loss_db=40.0, exponent=3.0)
        assert model.attenuation_db(10.0) - model.attenuation_db(1.0) == (
            pytest.approx(30.0)
        )

    def test_gain_matches_db(self):
        model = LogDistancePathLoss()
        assert model.gain(7.0) == pytest.approx(10 ** (model.attenuation_db(7.0) / 10))

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)
        with pytest.raises(ValueError):
            LogDistancePathLoss(reference_distance_m=-1.0)
