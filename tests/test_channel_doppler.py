"""Jakes/Clarke fading process tests: statistics and correlation."""

import numpy as np
import pytest

from repro.channel.doppler import JakesFadingProcess, coherence_time_s, max_doppler_hz


class TestHelpers:
    def test_doppler_at_2_45ghz_walking(self):
        fd = max_doppler_hz(1.0, 0.1224)
        assert fd == pytest.approx(8.17, rel=0.01)

    def test_coherence_time(self):
        assert coherence_time_s(10.0) == pytest.approx(0.0423)

    def test_quasi_static_packets_justified(self):
        """A 48 ms packet at 250 kbps vs pedestrian coherence time: the
        testbed's per-packet fading assumption is borderline-correct, and
        static nodes (fd -> 0) make it exact."""
        fd = max_doppler_hz(0.5, 0.1224)  # slow indoor motion
        assert coherence_time_s(fd) > 0.048

    def test_validation(self):
        with pytest.raises(ValueError):
            max_doppler_hz(0.0, 1.0)
        with pytest.raises(ValueError):
            coherence_time_s(-1.0)


class TestProcess:
    def test_unit_mean_power(self):
        proc = JakesFadingProcess(doppler_hz=10.0, n_oscillators=64, rng=0)
        t = np.linspace(0.0, 100.0, 50_000)
        h = proc.sample(t)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.15)

    def test_deterministic_in_time(self):
        proc = JakesFadingProcess(doppler_hz=5.0, rng=1)
        a = proc.sample(np.array([0.0, 0.5, 1.0]))
        b = proc.sample(np.array([0.0, 0.5, 1.0]))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        t = np.array([0.3])
        a = JakesFadingProcess(10.0, rng=1).sample(t)
        b = JakesFadingProcess(10.0, rng=2).sample(t)
        assert a != b

    def test_autocorrelation_tracks_bessel(self):
        """Empirical autocorrelation vs J0(2 pi fd tau): same first zero
        region and high correlation at small lags (averaged over
        process realizations)."""
        fd = 10.0
        lags = np.array([0.0, 0.005, 0.01, 0.02, 0.0383])
        theory = JakesFadingProcess(fd, rng=0).theoretical_autocorrelation(lags)
        est = np.zeros(len(lags), dtype=complex)
        n_procs = 200
        for seed in range(n_procs):
            proc = JakesFadingProcess(fd, n_oscillators=32, rng=seed)
            t0 = np.linspace(0.0, 1.0, 200)
            h0 = proc.sample(t0)
            for i, lag in enumerate(lags):
                h1 = proc.sample(t0 + lag)
                est[i] += np.mean(h0 * np.conj(h1))
        est = (est / n_procs).real
        # exact at zero lag, Bessel-shaped decay after
        assert est[0] == pytest.approx(1.0, abs=0.05)
        np.testing.assert_allclose(est, theory, atol=0.08)

    def test_first_bessel_zero_decorrelates(self):
        # J0's first zero: 2 pi fd tau = 2.405 -> tau = 0.0383 s at 10 Hz
        proc = JakesFadingProcess(10.0, rng=0)
        assert abs(proc.theoretical_autocorrelation(np.array([0.0383]))[0]) < 0.01

    def test_block_gains(self):
        proc = JakesFadingProcess(10.0, rng=3)
        gains = proc.block_gains(100, 1e-3)
        assert gains.shape == (100,)
        # 1 ms blocks at 10 Hz Doppler: adjacent blocks highly correlated
        corr = np.corrcoef(np.abs(gains[:-1]), np.abs(gains[1:]))[0, 1]
        assert corr > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            JakesFadingProcess(doppler_hz=0.0)
        with pytest.raises(ValueError):
            JakesFadingProcess(10.0, n_oscillators=0)
        with pytest.raises(ValueError):
            JakesFadingProcess(10.0, rng=0).block_gains(0, 1.0)
