"""Differential PSK tests: phase-reference independence and penalties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.awgn import complex_gaussian
from repro.modulation.dpsk import DBPSKModem, DQPSKModem
from repro.modulation.theory import ber_bpsk_awgn

bit_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=128).map(
    lambda l: np.array(l, dtype=np.int8)
)


class TestDBPSK:
    def test_burst_length(self):
        out = DBPSKModem().modulate(np.array([0, 1, 1]))
        assert out.shape == (4,)  # reference symbol + 3

    def test_constant_envelope(self):
        out = DBPSKModem().modulate(np.array([0, 1, 0, 1, 1]))
        np.testing.assert_allclose(np.abs(out), 1.0)

    @given(bit_arrays)
    def test_roundtrip(self, bits):
        modem = DBPSKModem()
        np.testing.assert_array_equal(modem.demodulate(modem.modulate(bits)), bits)

    @given(bit_arrays, st.floats(min_value=-np.pi, max_value=np.pi))
    def test_unknown_channel_phase_irrelevant(self, bits, phase):
        """The whole point of differential encoding: a constant unknown
        rotation (no equalization!) does not affect the decisions."""
        modem = DBPSKModem()
        rotated = modem.modulate(bits) * np.exp(1j * phase)
        np.testing.assert_array_equal(modem.demodulate(rotated), bits)

    def test_short_burst_rejected(self):
        with pytest.raises(ValueError):
            DBPSKModem().demodulate(np.array([1.0 + 0j]))

    def test_awgn_penalty_vs_coherent(self, rng):
        """DBPSK sits between coherent BPSK and BPSK 3 dB worse."""
        snr_db = 8.0
        modem = DBPSKModem()
        n = 400_000
        bits = rng.integers(0, 2, n, dtype=np.int8)
        tx = modem.modulate(bits)
        noise_var = 1.0 / 10 ** (snr_db / 10)
        rx = tx + complex_gaussian(tx.shape, noise_var, rng)
        ber = float(np.mean(modem.demodulate(rx) != bits))
        assert float(ber_bpsk_awgn(snr_db)) < ber < float(ber_bpsk_awgn(snr_db - 3.0))

    def test_single_symbol_error_hits_two_bits(self, rng):
        """Flip one mid-burst symbol: exactly the two adjacent differential
        decisions break."""
        modem = DBPSKModem()
        bits = np.zeros(20, dtype=np.int8)
        tx = modem.modulate(bits)
        tx[10] = -tx[10]
        errors = int(np.sum(modem.demodulate(tx) != bits))
        assert errors == 2


class TestDQPSK:
    def test_burst_length(self):
        out = DQPSKModem().modulate(np.array([0, 0, 1, 1]))
        assert out.shape == (3,)

    @given(bit_arrays.filter(lambda b: b.size % 2 == 0 and b.size > 0))
    def test_roundtrip(self, bits):
        modem = DQPSKModem()
        np.testing.assert_array_equal(modem.demodulate(modem.modulate(bits)), bits)

    @given(
        bit_arrays.filter(lambda b: b.size % 2 == 0 and b.size > 0),
        st.floats(min_value=-np.pi, max_value=np.pi),
    )
    def test_phase_rotation_immunity(self, bits, phase):
        modem = DQPSKModem()
        rotated = modem.modulate(bits) * np.exp(1j * phase)
        np.testing.assert_array_equal(modem.demodulate(rotated), bits)

    def test_gray_steps_one_bit_apart(self):
        """Adjacent phase increments differ in one bit (Gray mapping)."""
        steps = DQPSKModem._PHASE_STEP
        inv = {v: k for k, v in steps.items()}
        for s in range(4):
            a, b = inv[s], inv[(s + 1) % 4]
            assert sum(x != y for x, y in zip(a, b)) == 1

    def test_small_noise_tolerated(self, rng):
        modem = DQPSKModem()
        bits = rng.integers(0, 2, 2000, dtype=np.int8)
        tx = modem.modulate(bits)
        rx = tx + complex_gaussian(tx.shape, 0.01, rng)
        np.testing.assert_array_equal(modem.demodulate(rx), bits)

    def test_short_burst_rejected(self):
        with pytest.raises(ValueError):
            DQPSKModem().demodulate(np.array([1.0 + 0j]))
