"""Floor-plan testbed tests: geometry and calibrated SNR regimes."""

import numpy as np
import pytest

from repro.testbed.environment import (
    FEET,
    table2_testbed,
    table3_testbed,
    table4_testbed,
)


class TestTable2Layout:
    def test_equilateral_triangle(self):
        tb = table2_testbed()
        tx, relay, rx = (tb.node(n).position for n in ("tx", "relay", "rx"))
        d = lambda a, b: np.hypot(a[0] - b[0], a[1] - b[1])
        assert d(tx, rx) == pytest.approx(2.0)
        assert d(tx, relay) == pytest.approx(2.0, rel=1e-6)
        assert d(relay, rx) == pytest.approx(2.0, rel=1e-6)

    def test_board_blocks_only_direct_path(self):
        tb = table2_testbed()
        assert not tb.channel.is_line_of_sight(
            tb.node("tx").position, tb.node("rx").position
        )
        assert tb.channel.is_line_of_sight(
            tb.node("tx").position, tb.node("relay").position
        )
        assert tb.channel.is_line_of_sight(
            tb.node("relay").position, tb.node("rx").position
        )

    def test_direct_link_in_error_regime(self):
        tb = table2_testbed()
        snr = tb.link_snr_db("tx", "rx")
        assert -5.0 < snr < 5.0  # the ~10% BER regime for BPSK/Rayleigh

    def test_relay_links_clean(self):
        tb = table2_testbed()
        assert tb.link_snr_db("tx", "relay") > 15.0
        assert tb.link_snr_db("relay", "rx") > 15.0


class TestTable3Layout:
    def test_distance_over_30_feet(self):
        tb = table3_testbed()
        tx, rx = tb.node("tx").position, tb.node("rx").position
        assert np.hypot(tx[0] - rx[0], tx[1] - rx[1]) > 30.0 * FEET

    def test_direct_path_crosses_three_lab_walls(self):
        tb = table3_testbed(lab_wall_db=9.0, corridor_wall_db=18.0)
        blockage = tb.channel.blockage_db(
            tb.node("tx").position, tb.node("rx").position
        )
        assert blockage == pytest.approx(27.0)

    def test_relay_paths_cross_corridor_wall(self):
        tb = table3_testbed()
        mid = tb.node("relay_mid")
        blockage = tb.channel.blockage_db(tb.node("tx").position, mid.position)
        assert blockage > 0.0  # corridor separator (plus possibly one lab wall)

    def test_relay_chain_snrs_beat_direct(self):
        tb = table3_testbed()
        direct = tb.link_snr_db("tx", "rx")
        via_mid = min(tb.link_snr_db("tx", "relay_mid"), tb.link_snr_db("relay_mid", "rx"))
        assert via_mid > direct

    def test_relays_in_corridor_row(self):
        tb = table3_testbed()
        ys = {tb.node(f"relay{i}").position[1] for i in (1, 2, 3)}
        assert len(ys) == 1  # same corridor line


class TestTable4Layout:
    def test_transmitters_adjacent(self):
        tb = table4_testbed()
        t1, t2 = tb.node("tx1").position, tb.node("tx2").position
        assert np.hypot(t1[0] - t2[0], t1[1] - t2[1]) < 0.5

    def test_receiver_at_12_feet(self):
        tb = table4_testbed()
        t1, rx = tb.node("tx1").position, tb.node("rx").position
        assert np.hypot(t1[0] - rx[0], t1[1] - rx[1]) == pytest.approx(12.0 * FEET)

    def test_solo_snr_near_packet_threshold(self):
        """Calibration: the amplitude-800 solo link sits near the ~9.5 dB
        packet-survival threshold (see EXPERIMENTS.md)."""
        tb = table4_testbed()
        assert 9.0 < tb.link_snr_db("tx1", "rx") < 14.0

    def test_amplitude_ladder_spans_the_cliff(self):
        tb = table4_testbed()
        tb.nodes["tx1"] = tb.nodes["tx1"].with_amplitude(400.0)
        low = tb.link_snr_db("tx1", "rx")
        assert low < 7.0  # amplitude 400 falls below the threshold
