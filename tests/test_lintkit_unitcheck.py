"""Per-rule self-tests for the RP3xx dimensional-analysis family.

Mirrors ``test_lintkit_rules.py``: every rule fires on a minimal bad
example, stays silent on the corresponding good one, and honours a
``# lint: ignore[RP3xx]``.  The mutation tests are the acceptance gate:
deleting a ``db_to_linear`` conversion from a correct fixture (the
classic unit bug this tier exists to catch) must produce a finding.
"""

import json

import pytest

from repro.lintkit import (
    AnalysisCache,
    LintStats,
    all_rules,
    analyze_paths,
    lint_source,
)
from repro.lintkit.cli import main

LIB = "src/repro/somemodule.py"
TEST = "tests/test_somemodule.py"
UNITS = "src/repro/utils/units.py"


def rule_ids(findings):
    return [f.rule_id for f in findings]


def lint(source, path=LIB, select=("RP3",)):
    return lint_source(source, path=path, rules=all_rules(list(select)))


# --------------------------------------------------------------------- #
# RP301 — mixed-domain arithmetic                                       #
# --------------------------------------------------------------------- #


class TestRP301:
    @pytest.mark.parametrize(
        "expr",
        [
            "noise_w * snr_db",
            "snr_db + noise_w",
            "noise_w - snr_db",
            "noise_w / snr_db",
        ],
    )
    def test_fires_on_mixed_domains(self, expr):
        src = f"def f(noise_w, snr_db):\n    return {expr}\n"
        assert rule_ids(lint(src)) == ["RP301"]

    def test_fires_on_db_times_db(self):
        src = "def f(a_db, b_db):\n    return a_db * b_db\n"
        findings = lint(src)
        assert rule_ids(findings) == ["RP301"]
        assert "combine by addition" in findings[0].message

    def test_flows_through_assignment(self):
        src = (
            "def f(noise_w, snr_db):\n"
            "    x = snr_db\n"
            "    y = noise_w\n"
            "    return x * y\n"
        )
        assert rule_ids(lint(src)) == ["RP301"]

    def test_silent_on_converted(self):
        src = (
            "from repro.utils.units import db_to_linear\n"
            "def f(noise_w, snr_db):\n"
            "    return noise_w * db_to_linear(snr_db)\n"
        )
        assert lint(src) == []

    def test_silent_on_db_plus_db(self):
        src = "def f(a_db, b_db):\n    return a_db + b_db\n"
        assert lint(src) == []

    def test_silent_on_literal_scaling(self):
        # Literals are UNKNOWN on purpose: halving a dB value is fine.
        src = "def f(snr_db):\n    return snr_db / 2.0\n"
        assert lint(src) == []

    def test_branch_join_degrades_to_unknown(self):
        src = (
            "def f(noise_w, snr_db, flag):\n"
            "    x = snr_db if flag else noise_w\n"
            "    return noise_w * x\n"
        )
        assert lint(src) == []

    def test_silent_in_tests(self):
        src = "def f(noise_w, snr_db):\n    return noise_w * snr_db\n"
        assert lint(src, path=TEST) == []

    def test_exempt_in_units_module(self):
        src = "def f(noise_w, snr_db):\n    return noise_w * snr_db\n"
        assert lint(src, path=UNITS) == []

    def test_suppressed(self):
        src = (
            "def f(noise_w, snr_db):\n"
            "    return noise_w * snr_db  # lint: ignore[RP301]\n"
        )
        assert lint(src) == []


# --------------------------------------------------------------------- #
# RP303 — redundant or missing conversion                               #
# --------------------------------------------------------------------- #


class TestRP303:
    def test_fires_on_already_converted(self):
        src = (
            "from repro.utils.units import db_to_linear\n"
            "def f(snr_db):\n"
            "    lin = db_to_linear(snr_db)\n"
            "    return db_to_linear(lin)\n"
        )
        findings = lint(src, select=("RP303",))
        assert rule_ids(findings) == ["RP303"]
        assert "already ratio" in findings[0].message

    def test_fires_on_wrong_converter_with_hint(self):
        src = (
            "from repro.utils.units import dbm_to_watts\n"
            "def f(psd_dbm_hz):\n"
            "    return dbm_to_watts(psd_dbm_hz)\n"
        )
        findings = lint(src, select=("RP303",))
        assert rule_ids(findings) == ["RP303"]
        assert "dbm_per_hz_to_watts_per_hz()" in findings[0].message

    def test_silent_on_correct_conversion(self):
        src = (
            "from repro.utils.units import db_to_linear\n"
            "def f(snr_db):\n"
            "    return db_to_linear(snr_db)\n"
        )
        assert lint(src, select=("RP303",)) == []

    def test_silent_on_unknown_argument(self):
        src = (
            "from repro.utils.units import db_to_linear\n"
            "def f(value):\n"
            "    return db_to_linear(value)\n"
        )
        assert lint(src, select=("RP303",)) == []

    def test_suppressed(self):
        src = (
            "from repro.utils.units import db_to_linear\n"
            "def f(margin_linear):\n"
            "    return db_to_linear(margin_linear)  # lint: ignore[RP303]\n"
        )
        assert lint(src, select=("RP303",)) == []


# --------------------------------------------------------------------- #
# RP304 — suffix / annotation / value disagreement                      #
# --------------------------------------------------------------------- #


class TestRP304:
    def test_fires_on_suffix_vs_value(self):
        src = (
            "from repro.utils.units import db_to_linear\n"
            "def f(snr_db):\n"
            "    gain_db = db_to_linear(snr_db)\n"
            "    return gain_db\n"
        )
        findings = lint(src, select=("RP304",))
        assert rule_ids(findings) == ["RP304"]

    def test_fires_on_suffix_vs_annotation(self):
        src = (
            "from repro.utils.units import DB\n"
            "def f(power_w: DB):\n"
            "    return power_w\n"
        )
        findings = lint(src, select=("RP304",))
        assert rule_ids(findings) == ["RP304"]
        assert "power_w" in findings[0].message

    def test_silent_on_agreement(self):
        src = (
            "from repro.utils.units import DB, db_to_linear\n"
            "def f(snr_db: DB):\n"
            "    snr_linear = db_to_linear(snr_db)\n"
            "    return snr_linear\n"
        )
        assert lint(src, select=("RP304",)) == []

    def test_suppressed(self):
        src = (
            "from repro.utils.units import db_to_linear\n"
            "def f(snr_db):\n"
            "    gain_db = db_to_linear(snr_db)  # lint: ignore[RP304]\n"
            "    return gain_db\n"
        )
        assert lint(src, select=("RP304",)) == []


# --------------------------------------------------------------------- #
# RP302 — call argument vs annotated parameter (project tier)           #
# --------------------------------------------------------------------- #


def project_lint(tmp_path, files, select, stats=None):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return analyze_paths(
        [str(tmp_path / "src")],
        select=select,
        stats=stats,
        jobs=1,
        incremental=False,
    )


CONSUMER = (
    "from repro.utils.units import Watts\n"
    "def consume(power_w: Watts):\n"
    "    return power_w\n"
)


class TestRP302:
    def test_fires_across_modules(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                "src/repro/pkg/lib.py": CONSUMER,
                "src/repro/pkg/caller.py": (
                    "from repro.pkg.lib import consume\n"
                    "def run(snr_db):\n"
                    "    return consume(snr_db)\n"
                ),
            },
            select=["RP302"],
        )
        assert rule_ids(findings) == ["RP302"]
        assert "caller.py" in findings[0].path
        assert "annotated watts" in findings[0].message

    def test_fires_on_keyword_argument(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                "src/repro/pkg/lib.py": CONSUMER,
                "src/repro/pkg/caller.py": (
                    "from repro.pkg.lib import consume\n"
                    "def run(snr_db):\n"
                    "    return consume(power_w=snr_db)\n"
                ),
            },
            select=["RP302"],
        )
        assert rule_ids(findings) == ["RP302"]
        assert "keyword argument 'power_w'" in findings[0].message

    def test_silent_on_matching_units(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                "src/repro/pkg/lib.py": CONSUMER,
                "src/repro/pkg/caller.py": (
                    "from repro.pkg.lib import consume\n"
                    "def run(noise_w):\n"
                    "    return consume(noise_w)\n"
                ),
            },
            select=["RP302"],
        )
        assert findings == []

    def test_silent_on_unannotated_callee(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                "src/repro/pkg/lib.py": (
                    "def consume(power):\n    return power\n"
                ),
                "src/repro/pkg/caller.py": (
                    "from repro.pkg.lib import consume\n"
                    "def run(snr_db):\n"
                    "    return consume(snr_db)\n"
                ),
            },
            select=["RP302"],
        )
        assert findings == []

    def test_suppressed_at_call_site(self, tmp_path):
        findings = project_lint(
            tmp_path,
            {
                "src/repro/pkg/lib.py": CONSUMER,
                "src/repro/pkg/caller.py": (
                    "from repro.pkg.lib import consume\n"
                    "def run(snr_db):\n"
                    "    return consume(snr_db)  # lint: ignore[RP302]\n"
                ),
            },
            select=["RP302"],
        )
        assert findings == []


# --------------------------------------------------------------------- #
# Mutation tests — the acceptance gate for the whole tier               #
# --------------------------------------------------------------------- #

CORRECT_FIXTURE = (
    "from repro.utils.units import db_to_linear\n"
    "def rx_power(noise_w, snr_db):\n"
    "    snr = db_to_linear(snr_db)\n"
    "    return noise_w * snr\n"
)


class TestMutationDetection:
    def test_correct_fixture_is_clean(self):
        assert lint(CORRECT_FIXTURE) == []

    def test_dropping_the_conversion_is_caught(self):
        # Replace the db_to_linear call with the identity: the canonical
        # unit bug.  The tier must flag the now-mixed arithmetic.
        mutated = CORRECT_FIXTURE.replace(
            "snr = db_to_linear(snr_db)", "snr = snr_db"
        )
        findings = lint(mutated)
        assert "RP301" in rule_ids(findings)

    def test_doubling_the_conversion_is_caught(self):
        mutated = CORRECT_FIXTURE.replace(
            "db_to_linear(snr_db)", "db_to_linear(db_to_linear(snr_db))"
        )
        findings = lint(mutated)
        assert "RP303" in rule_ids(findings)

    def test_wrong_argument_is_caught(self):
        mutated = CORRECT_FIXTURE.replace(
            "db_to_linear(snr_db)", "db_to_linear(noise_w)"
        )
        findings = lint(mutated)
        assert "RP303" in rule_ids(findings)


# --------------------------------------------------------------------- #
# Engine integration: select expansion, cache warmth, SARIF             #
# --------------------------------------------------------------------- #


class TestEngineIntegration:
    def test_select_prefix_expands_to_the_whole_tier(self):
        ids = {rule.rule_id for rule in all_rules(["RP3"])}
        assert ids == {"RP301", "RP303", "RP304"}

    def test_cli_select_rp3(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def f(noise_w, snr_db):\n    return noise_w * snr_db\n"
        )
        assert main([str(tmp_path / "src"), "--select", "RP3", "--no-incremental"]) == 1
        out = capsys.readouterr().out
        assert "RP301" in out

    def test_warm_run_reparses_nothing_with_rp3_enabled(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = AnalysisCache(tmp_path / "cache")
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def f(noise_w, snr_db):\n    return noise_w * snr_db\n"
        )
        (pkg / "caller.py").write_text(CONSUMER)

        def run():
            stats = LintStats()
            findings = analyze_paths(
                [str(tmp_path / "src")], stats=stats, jobs=1, cache=cache
            )
            return findings, stats

        cold_findings, cold = run()
        warm_findings, warm = run()
        assert cold.parsed == cold.files and cold.cached == 0
        assert warm.parsed == 0 and warm.cached == warm.files
        assert warm_findings == cold_findings
        assert "RP301" in rule_ids(warm_findings)

    def test_sarif_includes_rp3_findings_with_location(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def f(noise_w, snr_db):\n    return noise_w * snr_db\n"
        )
        assert (
            main(
                [
                    str(tmp_path / "src"),
                    "--format",
                    "sarif",
                    "--no-incremental",
                ]
            )
            == 1
        )
        doc = json.loads(capsys.readouterr().out)
        run = doc["runs"][0]
        rule_index = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"RP301", "RP302", "RP303", "RP304"} <= rule_index
        results = [r for r in run["results"] if r["ruleId"] == "RP301"]
        assert results
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert region["startColumn"] >= 1
