"""`/v1/simulate` tests: buffered + streamed runs, replay, backpressure."""

import pytest

from repro.scenario.runtime import ScenarioRuntime
from repro.scenario.spec import scenario_from_mapping
from repro.service.client import ServiceClientError
from repro.service.config import ServiceConfig
from repro.service.simulate import SimulationRunner, parse_simulate_request
from repro.service.testing import ThreadedServer

SCENARIO = {
    "n_nodes": 25,
    "arena_m": [300.0, 300.0],
    "duration_s": 15.0,
    "seed": 21,
    "snapshot_interval_s": 5.0,
    "churn": {"leave_rate_per_node_s": 0.005, "join_rate_per_s": 0.2},
}


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(
        port=0, workers=0, request_log=False, result_cache=False, max_sims=1
    )
    with ThreadedServer(config) as srv:
        yield srv


class TestBuffered:
    def test_buffered_simulate(self, server):
        client = server.client(timeout_s=120.0)
        result = client.simulate(SCENARIO)
        assert result["count"] == 3
        assert len(result["rows"]) == 3
        assert result["summary"]["row"] == "summary"
        assert result["summary"]["digest"]

    def test_buffered_matches_library(self, server):
        client = server.client(timeout_s=120.0)
        result = client.simulate(SCENARIO)
        rows = list(ScenarioRuntime(scenario_from_mapping(SCENARIO)).run())
        assert result["rows"] == rows[:-1]
        assert result["summary"] == rows[-1]

    def test_bad_scenario_is_400(self, server):
        client = server.client()
        with pytest.raises(ServiceClientError) as err:
            client.simulate({"warp_factor": 9})
        assert err.value.status == 400

    def test_node_cap_is_400(self, server):
        client = server.client()
        with pytest.raises(ServiceClientError) as err:
            client.simulate({"n_nodes": 100000})
        assert err.value.status == 400


class TestStreamed:
    def test_stream_matches_buffered(self, server):
        client = server.client(timeout_s=120.0)
        buffered = client.simulate(SCENARIO)
        rows = list(client.simulate_stream(SCENARIO))
        assert rows[:-1] == buffered["rows"]
        assert rows[-1] == buffered["summary"]

    def test_streamed_replay_bit_identical(self, server):
        client = server.client(timeout_s=120.0)
        first = list(client.simulate_stream(SCENARIO))
        second = list(client.simulate_stream(SCENARIO))
        assert first == second

    def test_stream_bad_scenario_is_400(self, server):
        client = server.client()
        with pytest.raises(ServiceClientError) as err:
            list(client.simulate_stream({"n_nodes": -3}))
        assert err.value.status == 400

    def test_stream_counts_in_metrics(self, server):
        client = server.client(timeout_s=120.0)
        before = client.metrics_snapshot()["streams"]
        n = len(list(client.simulate_stream(SCENARIO)))
        after = client.metrics_snapshot()["streams"]
        assert after["opened"] == before["opened"] + 1
        assert after["rows"] == before["rows"] + n


class TestBackpressure:
    def test_second_stream_gets_429(self, server):
        # max_sims=1: hold one stream open mid-flight, then ask for another.
        client = server.client(timeout_s=120.0)
        slow = dict(SCENARIO, duration_s=60.0, n_nodes=60)
        stream = client.request_stream("POST", "/v1/simulate", slow)
        next(stream)  # the stream is committed and its slot is held
        try:
            with pytest.raises(ServiceClientError) as err:
                list(client.simulate_stream(SCENARIO))
            assert err.value.status == 429
            assert err.value.retry_after_s is not None
        finally:
            stream.close()

    def test_slot_released_after_close(self, server):
        # The abandoned stream's slot frees once the server notices the
        # disconnect (on its next row write) — poll briefly for that.
        import time

        client = server.client(timeout_s=120.0)
        deadline = time.monotonic() + 60.0
        while True:
            try:
                assert list(client.simulate_stream(SCENARIO))
                return
            except ServiceClientError as err:
                assert err.status == 429
                assert time.monotonic() < deadline, "slot never released"
                time.sleep(0.2)


class TestRunnerUnit:
    def test_acquire_release(self):
        runner = SimulationRunner(max_sims=2)
        runner.acquire()
        runner.acquire()
        with pytest.raises(Exception):
            runner.acquire()
        runner.release()
        runner.acquire()
        assert runner.active == 2

    def test_release_never_negative(self):
        runner = SimulationRunner(max_sims=1)
        runner.release()
        assert runner.active == 0

    def test_bad_max_sims(self):
        with pytest.raises(ValueError):
            SimulationRunner(max_sims=0)

    def test_parse_rejects_non_object(self):
        from repro.service.errors import BadRequestError

        with pytest.raises(BadRequestError):
            parse_simulate_request([1, 2], max_nodes=100)
