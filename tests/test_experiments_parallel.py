"""Parallel experiment execution: ``--jobs`` must not change a single bit.

The harness fans independent work units over processes; these tests pin the
reproducibility contract — parallel rows equal serial rows exactly — plus
the seed-derivation and kwargs-filtering plumbing of ``run_experiments``.
"""

import numpy as np
import pytest

from repro.experiments import fig6_overlay_distance as fig6
from repro.experiments import fig7_underlay_energy as fig7
from repro.experiments.cli import _build_parser
from repro.experiments.registry import _accepted_kwargs, run_experiments


@pytest.fixture(scope="module")
def fig6_serial():
    return fig6.run(fast=True, jobs=1)


@pytest.fixture(scope="module")
def fig7_serial():
    return fig7.run(fast=True, jobs=1)


class TestBitIdentity:
    def test_fig6_parallel_rows_identical(self, fig6_serial):
        parallel = fig6.run(fast=True, jobs=2)
        assert parallel.rows == fig6_serial.rows

    def test_fig7_parallel_rows_identical(self, fig7_serial):
        parallel = fig7.run(fast=True, jobs=2)
        assert parallel.rows == fig7_serial.rows

    def test_registry_fanout_identical(self, fig6_serial, fig7_serial):
        results = run_experiments(["fig6", "fig7"], jobs=2, fast=True)
        assert [r.experiment_id for r in results] == ["fig6", "fig7"]
        assert results[0].rows == fig6_serial.rows
        assert results[1].rows == fig7_serial.rows


class TestSeedDerivation:
    def test_seeded_runs_match_across_jobs(self):
        serial = run_experiments(["fig8"], jobs=1, seed=42, fast=True)
        parallel = run_experiments(["fig8"], jobs=2, seed=42, fast=True)
        assert serial[0].rows == parallel[0].rows

    def test_per_task_seeds_follow_seedsequence_spawn(self):
        children = np.random.SeedSequence(7).spawn(2)
        expected = int(children[1].generate_state(1)[0])
        results = run_experiments(["fig8", "fig8"], seed=7, fast=True)
        direct = fig8_run(seed=expected)
        assert results[1].rows == direct.rows

    def test_unseeded_runs_use_experiment_defaults(self):
        from repro.experiments.registry import run_experiment

        assert (
            run_experiments(["fig8"], fast=True)[0].rows
            == run_experiment("fig8", fast=True).rows
        )


def fig8_run(seed):
    from repro.experiments import fig8_beam_pattern

    return fig8_beam_pattern.run(seed=seed, fast=True)


class TestKwargsFiltering:
    def test_jobs_dropped_for_experiments_without_support(self):
        kwargs = _accepted_kwargs("fig8", {"fast": True, "jobs": 4, "seed": 1})
        assert kwargs == {"fast": True, "seed": 1}

    def test_jobs_kept_for_parallel_experiments(self):
        kwargs = _accepted_kwargs("fig6", {"fast": True, "jobs": 4})
        assert kwargs == {"fast": True, "jobs": 4}

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_experiments(["fig6"], jobs=0)


class TestCli:
    def test_run_accepts_jobs_flag(self):
        args = _build_parser().parse_args(["run", "fig6", "--fast", "--jobs", "2"])
        assert args.jobs == 2

    def test_all_and_report_accept_jobs_flag(self, tmp_path):
        assert _build_parser().parse_args(["all", "--jobs", "3"]).jobs == 3
        report = _build_parser().parse_args(
            ["report", str(tmp_path / "r.md"), "--jobs", "3"]
        )
        assert report.jobs == 3

    def test_jobs_default_is_serial(self):
        assert _build_parser().parse_args(["run", "fig6"]).jobs == 1

    def test_nonpositive_jobs_rejected_by_every_subcommand(self, capsys):
        parser = _build_parser()
        for argv in (
            ["run", "fig6", "--jobs", "0"],
            ["all", "--jobs", "0"],
            ["report", "r.md", "--jobs", "-2"],
        ):
            with pytest.raises(SystemExit) as exc:
                parser.parse_args(argv)
            assert exc.value.code == 2
            assert "must be >= 1" in capsys.readouterr().err
