"""Alamouti code tests: structure, exact recovery, diversity."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.awgn import complex_gaussian
from repro.channel.rayleigh import rayleigh_mimo_channel
from repro.stbc.alamouti import alamouti_decode, alamouti_encode

finite = st.floats(min_value=-10, max_value=10)
symbols = st.lists(
    st.tuples(finite, finite).map(lambda t: complex(*t)), min_size=2, max_size=40
).filter(lambda l: len(l) % 2 == 0)


class TestEncode:
    def test_block_structure(self):
        s = np.array([1 + 2j, 3 - 1j])
        block = alamouti_encode(s)[0]
        np.testing.assert_allclose(block[0], [1 + 2j, 3 - 1j])
        np.testing.assert_allclose(block[1], [-(3 + 1j), 1 - 2j])

    def test_column_orthogonality(self):
        """X^H X = (|s1|^2 + |s2|^2) I — the defining OSTBC property."""
        s = np.array([0.7 - 0.2j, -1.1 + 0.5j])
        x = alamouti_encode(s)[0]
        gram = x.conj().T @ x
        energy = np.sum(np.abs(s) ** 2)
        np.testing.assert_allclose(gram, energy * np.eye(2), atol=1e-12)

    def test_rejects_odd_length(self):
        with pytest.raises(ValueError):
            alamouti_encode(np.array([1.0 + 0j]))


class TestDecode:
    @given(symbols, st.integers(1, 3), st.integers(0, 2**31))
    def test_noiseless_exact_recovery(self, syms, mr, seed):
        s = np.array(syms, dtype=complex)
        n_blocks = s.size // 2
        h = rayleigh_mimo_channel(2, mr, n_blocks, rng=seed)
        x = alamouti_encode(s)
        y = np.einsum("btm,bjm->btj", x, h)
        recovered = alamouti_decode(y, h)
        np.testing.assert_allclose(recovered, s, atol=1e-9)

    def test_noise_does_not_bias(self, rng):
        n_blocks = 20_000
        s = np.ones(2 * n_blocks, dtype=complex)
        h = rayleigh_mimo_channel(2, 1, n_blocks, rng=rng)
        y = np.einsum("btm,bjm->btj", alamouti_encode(s), h)
        y += complex_gaussian(y.shape, 0.1, rng)
        recovered = alamouti_decode(y, h)
        assert np.mean(recovered).real == pytest.approx(1.0, abs=0.01)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            alamouti_decode(np.zeros((2, 3, 1), complex), np.zeros((2, 1, 2), complex))
        with pytest.raises(ValueError):
            alamouti_decode(np.zeros((2, 2, 1), complex), np.zeros((2, 1, 3), complex))

    def test_zero_channel_rejected(self):
        y = np.zeros((1, 2, 1), complex)
        h = np.zeros((1, 1, 2), complex)
        with pytest.raises(ValueError):
            alamouti_decode(y, h)


class TestDiversity:
    def test_two_branch_gain_over_siso(self, rng):
        """At the same per-symbol SNR, Alamouti 2x1 BPSK beats SISO BPSK
        over Rayleigh fading by a visible margin (diversity order 2)."""
        from repro.modulation.psk import BPSKModem
        from repro.phy.link import simulate_link

        snr_db = 12.0
        n = 200_000
        siso = simulate_link(n, BPSKModem(), snr_db, mt=1, mr=1, rng=rng)
        alam = simulate_link(n, BPSKModem(), snr_db, mt=2, mr=1, rng=rng)
        assert alam.ber < siso.ber / 4.0
