"""Radio node / testbed orchestrator tests."""

import pytest

from repro.channel.indoor import IndoorChannel, Wall
from repro.modulation import BPSKModem, GMSKModem
from repro.testbed.radio import RadioNode, SimulatedTestbed


class TestRadioNode:
    def test_reference_power(self):
        node = RadioNode("a", (0.0, 0.0), tx_amplitude=800.0)
        assert node.tx_power_dbm == pytest.approx(node.reference_power_dbm)

    def test_quadratic_amplitude_law(self):
        node = RadioNode("a", (0.0, 0.0), tx_amplitude=400.0)
        # half amplitude = -6.02 dB
        assert node.tx_power_dbm == pytest.approx(node.reference_power_dbm - 6.02, abs=0.01)

    def test_with_amplitude_copies(self):
        node = RadioNode("a", (1.0, 2.0), tx_amplitude=800.0)
        other = node.with_amplitude(600.0)
        assert other.tx_amplitude == 600.0
        assert other.position == node.position
        assert node.tx_amplitude == 800.0

    def test_rejects_nonpositive_amplitude(self):
        with pytest.raises(ValueError):
            RadioNode("a", (0.0, 0.0), tx_amplitude=0.0)


def _simple_testbed(**kwargs):
    channel = IndoorChannel(noise_power_dbm=-110.0)
    nodes = [
        RadioNode("tx", (0.0, 0.0), tx_amplitude=800.0),
        RadioNode("relay", (1.0, 1.0), tx_amplitude=800.0),
        RadioNode("rx", (2.0, 0.0), tx_amplitude=800.0),
    ]
    return SimulatedTestbed(channel, nodes, **kwargs)


class TestTestbed:
    def test_duplicate_names_rejected(self):
        channel = IndoorChannel()
        nodes = [RadioNode("x", (0.0, 0.0)), RadioNode("x", (1.0, 0.0))]
        with pytest.raises(ValueError):
            SimulatedTestbed(channel, nodes)

    def test_link_snr_uses_tx_power(self):
        tb = _simple_testbed()
        base = tb.link_snr_db("tx", "rx")
        tb.nodes["tx"] = tb.nodes["tx"].with_amplitude(400.0)
        assert tb.link_snr_db("tx", "rx") == pytest.approx(base - 6.02, abs=0.01)

    def test_blocked_link_goes_rayleigh(self):
        channel = IndoorChannel(walls=[Wall((1.0, -1.0), (1.0, 1.0), 10.0)])
        nodes = [RadioNode("tx", (0.0, 0.0)), RadioNode("rx", (2.0, 0.0))]
        tb = SimulatedTestbed(channel, nodes, rician_k=4.0)
        assert tb._link_k("tx", "rx") == 0.0

    def test_clear_link_keeps_k(self):
        tb = _simple_testbed(rician_k=4.0)
        assert tb._link_k("tx", "relay") == 4.0

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            _simple_testbed(rician_k=-1.0)


class TestRelayExperiment:
    def test_runs_and_improves(self):
        channel = IndoorChannel(
            walls=[Wall((1.0, -0.5), (1.0, 0.5), 25.0)], noise_power_dbm=-110.0
        )
        nodes = [
            RadioNode("tx", (0.0, 0.0), tx_amplitude=60.0),
            RadioNode("relay", (1.0, 1.5), tx_amplitude=60.0),
            RadioNode("rx", (2.0, 0.0), tx_amplitude=60.0),
        ]
        tb = SimulatedTestbed(channel, nodes)
        direct = tb.run_relay_experiment("tx", [], "rx", n_bits=30_000, rng=0)
        coop = tb.run_relay_experiment("tx", ["relay"], "rx", n_bits=30_000, rng=1)
        assert coop.ber < direct.ber

    def test_deterministic(self):
        tb = _simple_testbed()
        a = tb.run_relay_experiment("tx", ["relay"], "rx", n_bits=5_000, rng=3)
        b = tb.run_relay_experiment("tx", ["relay"], "rx", n_bits=5_000, rng=3)
        assert a.ber == b.ber


class TestPacketExperiment:
    def test_power_constraints_ordering(self):
        """coherent (>6 dB worth) <= per_node (+3 dB) <= total."""
        tb = _simple_testbed(rician_k=4.0)
        # weaken the link so PER is observable
        for name in ("tx", "relay"):
            node = tb.nodes[name].with_amplitude(800.0)
            node.reference_power_dbm = -52.0
            tb.nodes[name] = node
        pers = {}
        for mode in ("coherent", "per_node", "total"):
            result = tb.run_packet_experiment(
                ["tx", "relay"], "rx", n_packets=250, packet_bits=2048,
                modem=GMSKModem(), power_constraint=mode, rng=9,
            )
            pers[mode] = result.per
        assert pers["coherent"] <= pers["per_node"] + 0.05
        assert pers["per_node"] <= pers["total"] + 0.05

    def test_solo_matches_modes(self):
        """With one transmitter every power mode reduces to plain SISO."""
        tb = _simple_testbed()
        results = [
            tb.run_packet_experiment(
                ["tx"], "rx", n_packets=20, packet_bits=512,
                modem=BPSKModem(), power_constraint=mode, rng=4,
            ).per
            for mode in ("coherent", "per_node", "total")
        ]
        assert results[0] == results[1] == results[2]

    def test_validation(self):
        tb = _simple_testbed()
        with pytest.raises(ValueError):
            tb.run_packet_experiment([], "rx", 10, 128, BPSKModem())
        with pytest.raises(ValueError):
            tb.run_packet_experiment(["tx", "relay", "rx"], "rx", 10, 128, BPSKModem())
        with pytest.raises(ValueError):
            tb.run_packet_experiment(["tx"], "rx", 10, 128, BPSKModem(), power_constraint="x")
