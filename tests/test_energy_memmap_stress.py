"""Multiprocess stress for the memory-mapped ē_b disk cache.

The v2 cache contract: any number of processes may race on one cache
directory — concurrent cold builders, memmap readers and an atomic
re-writer — and every one of them must end up with the bit-identical
solved grid, because the writer publishes complete files only
(tmp + ``os.replace``) and a malformed/missing file is a silent re-solve,
never a torn read.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.energy.table import EbarTable

GRID = dict(
    p_values=(0.01, 0.001),
    b_values=(1, 2, 4),
    mt_values=(1, 2),
    mr_values=(1, 2),
)


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    """Fresh cache dir, cold memo, caching force-enabled for children."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    EbarTable.clear_memory_cache()
    yield
    EbarTable.clear_memory_cache()


def _load_grid_bytes(cache_dir):
    """Child: build/load the table against ``cache_dir``; return raw grid."""
    EbarTable.clear_memory_cache()
    table = EbarTable(cache_dir=cache_dir, **GRID)
    return np.asarray(table.to_arrays()["ebar"]).tobytes()


def _churn_writer(cache_dir, rounds):
    """Child: repeatedly delete and atomically republish the cache file."""
    for _ in range(rounds):
        EbarTable.clear_memory_cache()
        table = EbarTable(cache_dir=cache_dir, **GRID)
        for name in os.listdir(cache_dir):
            if name.startswith("ebar-v") and name.endswith(".npy"):
                try:
                    os.unlink(os.path.join(cache_dir, name))
                except FileNotFoundError:
                    pass
        # Rebuild from scratch: re-solves and atomically rewrites the file.
        EbarTable.clear_memory_cache()
        del table
    EbarTable.clear_memory_cache()
    EbarTable(cache_dir=cache_dir, **GRID)  # leave a final file behind
    return True


def _churn_reader(cache_dir, rounds):
    """Child: load the grid ``rounds`` times while the writer races."""
    blobs = []
    for _ in range(rounds):
        blobs.append(_load_grid_bytes(cache_dir))
    return blobs


class TestColdStartRace:
    def test_concurrent_cold_builders_agree_bit_for_bit(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=3) as pool:
            blobs = pool.map(_load_grid_bytes, [cache_dir] * 3)
        reference = _load_grid_bytes(cache_dir)
        assert all(blob == reference for blob in blobs)
        # The racing writers collapsed onto exactly one published file.
        files = [n for n in os.listdir(cache_dir) if n.endswith(".npy")]
        assert len(files) == 1
        assert not [n for n in os.listdir(cache_dir) if n.endswith(".tmp")]

    def test_published_file_is_the_solved_grid(self, tmp_path):
        table = EbarTable(**GRID)
        (path,) = (tmp_path / "cache").glob("ebar-v*.npy")
        on_disk = np.load(path, mmap_mode="r")
        assert np.array_equal(
            np.asarray(on_disk),
            np.asarray(table.to_arrays()["ebar"]),
            equal_nan=True,
        )


class TestWriterReaderRace:
    def test_readers_never_see_torn_or_divergent_grids(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        reference = _load_grid_bytes(cache_dir)
        rounds = 6
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=3) as pool:
            writer = pool.apply_async(_churn_writer, (cache_dir, rounds))
            readers = [
                pool.apply_async(_churn_reader, (cache_dir, rounds))
                for _ in range(2)
            ]
            assert writer.get(timeout=120) is True
            blobs = [blob for r in readers for blob in r.get(timeout=120)]
        # Every load — whether it mapped the file mid-churn or re-solved a
        # momentarily missing one — produced the bit-identical grid.
        assert len(blobs) == 2 * rounds
        assert all(blob == reference for blob in blobs)
        assert not [n for n in os.listdir(cache_dir) if n.endswith(".tmp")]
