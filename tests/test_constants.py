"""SystemConstants tests: paper values, derived quantities, immutability."""

import dataclasses

import numpy as np
import pytest

from repro.constants import PAPER_CONSTANTS, SPEED_OF_LIGHT, SystemConstants


class TestPaperValues:
    def test_circuit_powers(self):
        assert PAPER_CONSTANTS.p_ct_w == pytest.approx(0.04864)
        assert PAPER_CONSTANTS.p_cr_w == pytest.approx(0.0625)
        assert PAPER_CONSTANTS.p_syn_w == pytest.approx(0.05)

    def test_noise_densities(self):
        assert PAPER_CONSTANTS.sigma2_w_hz == pytest.approx(3.981e-21, rel=1e-3)
        assert PAPER_CONSTANTS.n0_w_hz == pytest.approx(7.943e-21, rel=1e-3)

    def test_linear_conversions(self):
        assert PAPER_CONSTANTS.link_margin_linear == pytest.approx(1e4)
        assert PAPER_CONSTANTS.noise_figure_linear == pytest.approx(10.0)
        assert PAPER_CONSTANTS.antenna_gain_linear == pytest.approx(10**0.5)

    def test_carrier_frequency_near_2_5ghz(self):
        freq = PAPER_CONSTANTS.carrier_frequency_hz
        assert freq == pytest.approx(SPEED_OF_LIGHT / 0.1199)
        assert 2.4e9 < freq < 2.6e9


class TestLocalGain:
    def test_formula(self):
        # G_d = G1 d^kappa M_l at d = 10 m
        expected = 0.01 * 10**3.5 * 1e4
        assert PAPER_CONSTANTS.local_gain(10.0) == pytest.approx(expected)

    def test_monotone_in_distance(self):
        assert PAPER_CONSTANTS.local_gain(2.0) > PAPER_CONSTANTS.local_gain(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PAPER_CONSTANTS.local_gain(0.0)


class TestLonghaulGain:
    def test_exact_square_law(self):
        g1 = PAPER_CONSTANTS.longhaul_gain(1.0)
        assert PAPER_CONSTANTS.longhaul_gain(250.0) == pytest.approx(g1 * 250.0**2)

    def test_formula_at_unit_distance(self):
        c = PAPER_CONSTANTS
        expected = (
            (4 * np.pi) ** 2 / (c.antenna_gain_linear * c.wavelength_m**2) * 1e4 * 10
        )
        assert c.longhaul_gain(1.0) == pytest.approx(expected)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PAPER_CONSTANTS.longhaul_gain(-5.0)


class TestAlpha:
    def test_bpsk_value(self):
        # alpha(1) = 3(sqrt(2)-1) / (0.35 (sqrt(2)+1))
        expected = 3 * (np.sqrt(2) - 1) / (0.35 * (np.sqrt(2) + 1))
        assert PAPER_CONSTANTS.peak_to_average_alpha(1) == pytest.approx(expected)

    def test_increases_with_constellation(self):
        alphas = [PAPER_CONSTANTS.peak_to_average_alpha(b) for b in range(1, 10)]
        assert all(a2 > a1 for a1, a2 in zip(alphas, alphas[1:]))

    def test_asymptote(self):
        # as M -> inf, alpha -> 3/0.35
        assert PAPER_CONSTANTS.peak_to_average_alpha(20) == pytest.approx(
            3 / 0.35, rel=0.01
        )

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            PAPER_CONSTANTS.peak_to_average_alpha(0)


class TestImmutability:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_CONSTANTS.kappa = 2.0

    def test_replace_makes_new_instance(self):
        modified = PAPER_CONSTANTS.replace(noise_figure_db=6.0)
        assert modified.noise_figure_db == 6.0
        assert PAPER_CONSTANTS.noise_figure_db == 10.0
        assert modified is not PAPER_CONSTANTS

    def test_default_constructor_matches_paper(self):
        assert SystemConstants() == PAPER_CONSTANTS
