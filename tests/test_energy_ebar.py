"""e_bar_b solver tests: paper anchors, inversion, Monte-Carlo cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.ebar import (
    DEFAULT_N0,
    average_ber,
    average_ber_monte_carlo,
    solve_ebar,
)


class TestPaperAnchors:
    def test_siso_b2_anchor(self):
        """Section 6.2 quotes 1.90e-18 for (p=0.001, b=2, SISO)."""
        value = solve_ebar(0.001, 2, 1, 1)
        assert value == pytest.approx(1.90e-18, rel=0.10)

    def test_2x3_anchor_same_order(self):
        """Section 6.2 quotes 3.20e-20 for the 2x3 MIMO link; ours agrees
        within the convention uncertainty (same order of magnitude)."""
        value = solve_ebar(0.001, 2, 2, 3)
        assert 1e-20 < value < 1e-19

    def test_siso_to_mimo_gap(self):
        """The ~59x gap between the two quoted values is reproduced."""
        gap = solve_ebar(0.001, 2, 1, 1) / solve_ebar(0.001, 2, 2, 3)
        assert gap == pytest.approx(59.0, rel=0.8)

    def test_siso_closed_form(self):
        """For b=1 SISO the exact Rayleigh inversion is available:
        ebar = N0 * g/(1+g) inverted from p = (1 - sqrt(g/(1+g)))/2."""
        p = 0.005
        mu = 1.0 - 2.0 * p
        c = mu**2 / (1.0 - mu**2)
        assert solve_ebar(p, 1, 1, 1) == pytest.approx(c * DEFAULT_N0, rel=1e-9)


class TestInversion:
    @given(
        st.sampled_from([0.1, 0.01, 0.001, 0.0005]),
        st.integers(1, 8),
        st.integers(1, 4),
        st.integers(1, 4),
    )
    @settings(max_examples=30)
    def test_roundtrip(self, p, b, mt, mr):
        from repro.modulation.theory import mqam_ber_coefficients

        a, _ = mqam_ber_coefficients(b)
        if p >= a / 2:
            return  # infeasible target for this constellation
        ebar = solve_ebar(p, b, mt, mr)
        assert float(average_ber(ebar, b, mt, mr)) == pytest.approx(p, rel=1e-6)

    def test_monotone_in_target(self):
        values = [solve_ebar(p, 2, 2, 2) for p in (0.05, 0.01, 0.001, 0.0005)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_monotone_in_diversity(self):
        values = [solve_ebar(0.001, 2, 1, mr) for mr in (1, 2, 3, 4)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_infeasible_target_rejected(self):
        # BER 0.45 is above b=4's zero-energy ceiling a/2 = 0.375
        with pytest.raises(ValueError):
            solve_ebar(0.45, 4, 1, 1)


class TestConventions:
    def test_paper_convention_scales_with_mt(self):
        # gamma_b carries 1/mt -> doubling mt doubles the required ebar at
        # fixed diversity... the diversity changes too; compare conventions
        paper = solve_ebar(0.001, 2, 3, 1, convention="paper")
        div = solve_ebar(0.001, 2, 3, 1, convention="diversity_only")
        assert paper == pytest.approx(3.0 * div, rel=1e-9)

    def test_conventions_agree_for_mt_1(self):
        a = solve_ebar(0.001, 2, 1, 3, convention="paper")
        b = solve_ebar(0.001, 2, 1, 3, convention="diversity_only")
        assert a == pytest.approx(b, rel=1e-12)

    def test_diversity_only_symmetric(self):
        a = solve_ebar(0.001, 2, 3, 2, convention="diversity_only")
        b = solve_ebar(0.001, 2, 2, 3, convention="diversity_only")
        assert a == pytest.approx(b, rel=1e-12)

    def test_unknown_convention_rejected(self):
        with pytest.raises(ValueError):
            average_ber(1e-19, 2, 1, 1, convention="bogus")


class TestAverageBer:
    def test_zero_energy_gives_ceiling(self):
        from repro.modulation.theory import mqam_ber_coefficients

        a, _ = mqam_ber_coefficients(4)
        assert float(average_ber(0.0, 4, 2, 2)) == pytest.approx(a / 2)

    def test_broadcasts(self):
        out = average_ber(np.array([1e-20, 1e-19, 1e-18]), 2, 2, 2)
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            average_ber(-1e-20, 2, 1, 1)


class TestMonteCarlo:
    @pytest.mark.parametrize("mt,mr", [(1, 1), (2, 1), (2, 3)])
    def test_closed_form_agrees_with_mc(self, mt, mr, rng):
        p = 0.002
        ebar = solve_ebar(p, 2, mt, mr)
        mc = average_ber_monte_carlo(ebar, 2, mt, mr, n_channels=300_000, rng=rng)
        assert mc == pytest.approx(p, rel=0.08)

    def test_rejects_nonpositive_ebar(self, rng):
        with pytest.raises(ValueError):
            average_ber_monte_carlo(0.0, 2, 1, 1, rng=rng)
