"""Graph algorithm tests, cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.graph import Graph, build_communication_graph


def _random_graph(seed: int, n: int = 12, p: float = 0.35):
    rng = np.random.default_rng(seed)
    g = Graph()
    for i in range(n):
        g.add_vertex(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j, float(rng.uniform(0.1, 5.0)))
    return g


def _to_nx(g: Graph) -> nx.Graph:
    out = nx.Graph()
    out.add_nodes_from(g.vertices)
    for u, v, w in g.edges():
        out.add_edge(u, v, weight=w)
    return out


class TestBasics:
    def test_add_edge_creates_vertices(self):
        g = Graph()
        g.add_edge("a", "b", 2.0)
        assert set(g.vertices) == {"a", "b"}
        assert g.has_edge("a", "b") and g.has_edge("b", "a")
        assert g.weight("a", "b") == 2.0
        assert g.n_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph().add_edge(1, 1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Graph().add_edge(1, 2, -1.0)

    def test_remove_vertex(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.remove_vertex(2)
        assert 2 not in g.vertices
        assert not g.has_edge(1, 2)
        assert g.degree(1) == 0

    def test_remove_missing_vertex(self):
        with pytest.raises(KeyError):
            Graph().remove_vertex(7)


class TestComponents:
    def test_two_components(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        comps = {frozenset(c) for c in g.connected_components()}
        assert comps == {frozenset({1, 2}), frozenset({3, 4})}
        assert not g.is_connected()

    def test_empty_graph_connected(self):
        assert Graph().is_connected()

    @given(st.integers(0, 1000))
    @settings(max_examples=20)
    def test_matches_networkx(self, seed):
        g = _random_graph(seed)
        ours = sorted(sorted(c) for c in g.connected_components())
        theirs = sorted(sorted(c) for c in nx.connected_components(_to_nx(g)))
        assert ours == theirs


class TestShortestPaths:
    @given(st.integers(0, 1000))
    @settings(max_examples=20)
    def test_bfs_hop_count_matches_networkx(self, seed):
        g = _random_graph(seed)
        gx = _to_nx(g)
        for target in (1, 5, 11):
            ours = g.bfs_shortest_path(0, target)
            if ours is None:
                assert not nx.has_path(gx, 0, target)
            else:
                assert len(ours) - 1 == nx.shortest_path_length(gx, 0, target)

    @given(st.integers(0, 1000))
    @settings(max_examples=20)
    def test_dijkstra_matches_networkx(self, seed):
        g = _random_graph(seed)
        gx = _to_nx(g)
        dist, _ = g.dijkstra(0)
        theirs = nx.single_source_dijkstra_path_length(gx, 0)
        assert set(dist) == set(theirs)
        for v, d in theirs.items():
            assert dist[v] == pytest.approx(d)

    def test_weighted_path_is_consistent(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 1.0)
        g.add_edge("a", "c", 5.0)
        assert g.shortest_weighted_path("a", "c") == ["a", "b", "c"]

    def test_trivial_path(self):
        g = Graph()
        g.add_vertex("x")
        assert g.bfs_shortest_path("x", "x") == ["x"]

    def test_missing_vertex_raises(self):
        with pytest.raises(KeyError):
            Graph().bfs_shortest_path(0, 1)


class TestSpanningTrees:
    @given(st.integers(0, 1000))
    @settings(max_examples=20)
    def test_mst_weight_matches_networkx(self, seed):
        g = _random_graph(seed, p=0.6)
        if not g.is_connected():
            return
        ours = sum(w for _, _, w in g.minimum_spanning_tree().edges())
        theirs = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_tree(_to_nx(g)).edges(data=True)
        )
        assert ours == pytest.approx(theirs)

    def test_mst_is_tree(self):
        g = _random_graph(3, p=0.8)
        if g.is_connected():
            tree = g.minimum_spanning_tree()
            assert tree.n_edges == tree.n_vertices - 1
            assert tree.is_connected()

    def test_mst_requires_connected(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_vertex(3)
        with pytest.raises(ValueError):
            g.minimum_spanning_tree()

    def test_bfs_tree_spans_component(self):
        g = _random_graph(5, p=0.5)
        comp = next(c for c in g.connected_components() if 0 in c)
        tree = g.bfs_tree(0)
        assert set(tree.vertices) == comp
        assert tree.n_edges == len(comp) - 1


class TestCommunicationGraph:
    def test_range_threshold(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        g = build_communication_graph(pts, radio_range=1.5)
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 2)

    def test_edge_weight_is_distance(self):
        pts = np.array([[0.0, 0.0], [0.0, 2.0]])
        g = build_communication_graph(pts, radio_range=5.0)
        assert g.weight(0, 1) == pytest.approx(2.0)

    def test_isolated_nodes_kept(self):
        pts = np.array([[0.0, 0.0], [100.0, 0.0]])
        g = build_communication_graph(pts, radio_range=1.0)
        assert g.n_vertices == 2
        assert g.n_edges == 0

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            build_communication_graph(np.zeros((2, 2)), radio_range=0.0)
