"""Fading-channel draw tests: statistics of Rayleigh and Rician models."""

import numpy as np
import pytest
from scipy import stats

from repro.channel.rayleigh import (
    rayleigh_mimo_channel,
    rayleigh_siso_gain,
    rician_mimo_channel,
)


class TestRayleighMimo:
    def test_shape(self, rng):
        h = rayleigh_mimo_channel(3, 2, n_blocks=7, rng=rng)
        assert h.shape == (7, 2, 3)
        assert np.iscomplexobj(h)

    def test_unit_entry_power(self, rng):
        h = rayleigh_mimo_channel(2, 2, n_blocks=50_000, rng=rng)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.02)

    def test_frobenius_norm_is_gamma(self, rng):
        """||H||_F^2 ~ Gamma(mt*mr, 1) — the distribution the e_bar_b
        closed form rests on (KS test at the 1% level)."""
        mt, mr = 2, 3
        h = rayleigh_mimo_channel(mt, mr, n_blocks=20_000, rng=rng)
        frob = np.sum(np.abs(h) ** 2, axis=(1, 2))
        _, pvalue = stats.kstest(frob, "gamma", args=(mt * mr,))
        assert pvalue > 0.01

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ValueError):
            rayleigh_mimo_channel(0, 1, rng=rng)
        with pytest.raises(ValueError):
            rayleigh_mimo_channel(1, 1, n_blocks=0, rng=rng)


class TestRayleighSiso:
    def test_envelope_is_rayleigh(self, rng):
        h = rayleigh_siso_gain(20_000, rng=rng)
        _, pvalue = stats.kstest(np.abs(h), "rayleigh", args=(0, np.sqrt(0.5)))
        assert pvalue > 0.01

    def test_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            rayleigh_siso_gain(0, rng=rng)


class TestRician:
    def test_k_zero_is_rayleigh_power(self, rng):
        h = rician_mimo_channel(1, 1, k_factor=0.0, n_blocks=50_000, rng=rng)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.02)
        # zero mean (no LOS component)
        assert abs(np.mean(h)) < 0.02

    def test_unit_power_any_k(self, rng):
        h = rician_mimo_channel(2, 2, k_factor=5.0, n_blocks=50_000, rng=rng)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.02)

    def test_los_fraction(self, rng):
        k = 4.0
        h = rician_mimo_channel(1, 1, k_factor=k, n_blocks=50_000, rng=rng)
        los_power = abs(np.mean(h)) ** 2
        assert los_power == pytest.approx(k / (k + 1.0), rel=0.05)

    def test_large_k_small_variance(self, rng):
        h = rician_mimo_channel(1, 1, k_factor=100.0, n_blocks=10_000, rng=rng)
        assert np.var(np.abs(h)) < 0.01

    def test_rejects_negative_k(self, rng):
        with pytest.raises(ValueError):
            rician_mimo_channel(1, 1, k_factor=-0.5, rng=rng)
