"""Underlay system tests: PA accounting and the noise-floor criterion."""

import pytest

from repro.core.underlay import UnderlaySystem
from repro.energy.model import EnergyModel


@pytest.fixture(scope="module")
def system():
    return UnderlaySystem(EnergyModel())


class TestPaEnergy:
    def test_siso_has_no_local_component(self, system):
        res = system.pa_energy(0.001, 1, 1, 1.0, 200.0, 10e3)
        assert res.hop.pa_local_a == 0.0
        assert res.hop.pa_local_b == 0.0
        assert res.total_pa == pytest.approx(res.hop.pa_longhaul)

    def test_b_minimizes_total(self, system):
        res = system.pa_energy(0.001, 2, 2, 1.0, 200.0, 10e3)
        from repro.core.schemes import hop_energy

        for b in (1, 2, 4):
            alt = hop_energy(system.model, 0.001, b, 2, 2, 1.0, 200.0, 10e3).pa_total
            assert res.total_pa <= alt + 1e-30

    def test_peak_never_exceeds_total(self, system):
        for (mt, mr) in [(1, 1), (2, 1), (1, 3), (3, 2)]:
            res = system.pa_energy(0.001, mt, mr, 1.0, 150.0, 10e3)
            assert res.peak_pa <= res.total_pa + 1e-30

    def test_grows_with_distance(self, system):
        near = system.pa_energy(0.001, 2, 2, 1.0, 100.0, 10e3)
        far = system.pa_energy(0.001, 2, 2, 1.0, 300.0, 10e3)
        assert far.total_pa > near.total_pa


class TestNoiseFloorCriterion:
    def test_siso_dominates_cooperation(self, system):
        siso = system.siso_reference(0.001, 1.0, 200.0, 10e3)
        for (mt, mr) in [(2, 1), (1, 2), (1, 3), (2, 3), (3, 1)]:
            coop = system.pa_energy(0.001, mt, mr, 1.0, 200.0, 10e3)
            assert coop.total_pa < siso.total_pa

    def test_margin_matches_ratio(self, system):
        siso = system.siso_reference(0.001, 1.0, 200.0, 10e3)
        coop = system.pa_energy(0.001, 2, 3, 1.0, 200.0, 10e3)
        margin = system.interference_margin(0.001, 2, 3, 1.0, 200.0, 10e3)
        assert margin == pytest.approx(siso.total_pa / coop.total_pa)

    def test_mt_less_than_mr_cheaper(self, system):
        """Transmission costs more than reception (Section 6.2)."""
        e12 = system.pa_energy(0.001, 1, 2, 1.0, 200.0, 10e3).total_pa
        e21 = system.pa_energy(0.001, 2, 1, 1.0, 200.0, 10e3).total_pa
        assert e12 < e21

    def test_meets_noise_floor(self, system):
        assert system.meets_noise_floor(0.001, 2, 3, 1.0, 200.0, 10e3)
        assert not system.meets_noise_floor(
            0.001, 2, 3, 1.0, 200.0, 10e3, required_margin=1e9
        )
        with pytest.raises(ValueError):
            system.meets_noise_floor(0.001, 2, 3, 1.0, 200.0, 10e3, required_margin=0.0)

    def test_d_has_small_impact(self, system):
        """Section 6.2: 'the value of d doesn't give any big impact'."""
        small = system.pa_energy(0.001, 2, 3, 1.0, 200.0, 10e3).total_pa
        large = system.pa_energy(0.001, 2, 3, 16.0, 200.0, 10e3).total_pa
        assert large / small < 1.5


class TestSweep:
    def test_grid_size(self, system):
        rows = system.sweep(0.001, [(1, 1), (2, 2)], 1.0, (100.0, 200.0), 10e3)
        assert len(rows) == 4

    def test_validation(self, system):
        with pytest.raises(ValueError):
            system.pa_energy(0.001, 0, 1, 1.0, 100.0, 10e3)
        with pytest.raises(ValueError):
            system.pa_energy(0.001, 1, 1, 1.0, 0.0, 10e3)
        with pytest.raises(ValueError):
            UnderlaySystem(EnergyModel(), b_range=())


class TestVectorizedPaEnergySweep:
    """pa_energy_sweep must reproduce the scalar pa_energy exactly —
    same floats, same selected constellation sizes — per distance."""

    def test_matches_scalar_bitwise(self, system):
        distances = (100.0, 150.0, 200.0, 250.0, 300.0)
        for (mt, mr) in ((1, 1), (2, 1), (1, 2), (2, 3), (3, 1)):
            vec = system.pa_energy_sweep(0.001, mt, mr, 1.0, distances, 10e3)
            scalar = [
                system.pa_energy(0.001, mt, mr, 1.0, d, 10e3) for d in distances
            ]
            assert vec == scalar

    def test_matches_scalar_at_lax_ber(self, system):
        """A lax target makes small b infeasible on the local link; the
        vectorized skip must mirror minimize_over_b's."""
        distances = (100.0, 200.0)
        vec = system.pa_energy_sweep(0.05, 2, 2, 1.0, distances, 10e3)
        scalar = [system.pa_energy(0.05, 2, 2, 1.0, d, 10e3) for d in distances]
        assert vec == scalar

    def test_sweep_uses_vectorized_path(self, system):
        rows = system.sweep(0.001, [(1, 1), (2, 2)], 1.0, (100.0, 200.0), 10e3)
        assert [(r.mt, r.mr, r.distance) for r in rows] == [
            (1, 1, 100.0), (1, 1, 200.0), (2, 2, 100.0), (2, 2, 200.0)
        ]

    def test_validation(self, system):
        with pytest.raises(ValueError):
            system.pa_energy_sweep(0.001, 0, 1, 1.0, (100.0,), 10e3)
        with pytest.raises(ValueError):
            system.pa_energy_sweep(0.001, 1, 1, 1.0, (0.0,), 10e3)
