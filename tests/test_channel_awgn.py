"""AWGN tests: variance, complex circularity, SNR bookkeeping."""

import numpy as np
import pytest

from repro.channel.awgn import awgn, complex_gaussian, noise_variance_per_symbol


class TestComplexGaussian:
    def test_mean_power(self, rng):
        x = complex_gaussian(200_000, variance=2.5, rng=rng)
        assert np.mean(np.abs(x) ** 2) == pytest.approx(2.5, rel=0.02)

    def test_circular_symmetry(self, rng):
        x = complex_gaussian(200_000, variance=1.0, rng=rng)
        assert np.var(x.real) == pytest.approx(np.var(x.imag), rel=0.03)
        # real/imag uncorrelated
        assert np.mean(x.real * x.imag) == pytest.approx(0.0, abs=0.01)

    def test_zero_variance(self, rng):
        x = complex_gaussian(10, variance=0.0, rng=rng)
        np.testing.assert_array_equal(x, 0.0)

    def test_rejects_negative_variance(self, rng):
        with pytest.raises(ValueError):
            complex_gaussian(10, variance=-1.0, rng=rng)


class TestAwgn:
    def test_complex_signal_noise_power(self, rng):
        sig = np.ones(100_000, dtype=complex)
        noisy = awgn(sig, noise_variance=0.5, rng=rng)
        assert np.mean(np.abs(noisy - sig) ** 2) == pytest.approx(0.5, rel=0.03)

    def test_real_signal_stays_real(self, rng):
        sig = np.zeros(1000)
        noisy = awgn(sig, noise_variance=1.0, rng=rng)
        assert not np.iscomplexobj(noisy)
        assert np.var(noisy) == pytest.approx(1.0, rel=0.15)

    def test_zero_variance_identity(self, rng):
        sig = np.arange(5, dtype=complex)
        np.testing.assert_array_equal(awgn(sig, 0.0, rng), sig)

    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            awgn(np.zeros(3), -0.1, rng)


class TestNoiseVariance:
    def test_bpsk_at_0db(self):
        # Es = Eb for b = 1; N0 = 1 at Eb/N0 = 0 dB
        assert noise_variance_per_symbol(0.0, 1) == pytest.approx(1.0)

    def test_scaling_with_bits(self):
        # at fixed Eb/N0, more bits/symbol -> more symbol energy -> lower N0
        assert noise_variance_per_symbol(3.0, 4) == pytest.approx(
            noise_variance_per_symbol(3.0, 1) / 4.0
        )

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            noise_variance_per_symbol(0.0, 0)
