"""Placement generator tests: containment, determinism, spacing."""

import numpy as np
import pytest

from repro.geometry.placement import (
    place_on_arc,
    place_on_segment,
    random_in_annulus,
    random_in_disk,
    random_in_rectangle,
)


class TestDisk:
    def test_all_points_inside(self):
        pts = random_in_disk(500, center=(3.0, -2.0), radius=5.0, rng=0)
        r = np.linalg.norm(pts - np.array([3.0, -2.0]), axis=1)
        assert np.all(r <= 5.0 + 1e-12)

    def test_area_uniformity(self):
        # Under area-uniform sampling, ~25% of points land within r/2.
        pts = random_in_disk(20000, radius=1.0, rng=1)
        inside_half = np.mean(np.linalg.norm(pts, axis=1) < 0.5)
        assert inside_half == pytest.approx(0.25, abs=0.02)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_in_disk(10, rng=5), random_in_disk(10, rng=5)
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            random_in_disk(-1)
        with pytest.raises(ValueError):
            random_in_disk(3, radius=0.0)


class TestAnnulus:
    def test_containment(self):
        pts = random_in_annulus(400, inner_radius=2.0, outer_radius=3.0, rng=2)
        r = np.linalg.norm(pts, axis=1)
        assert np.all(r >= 2.0 - 1e-12)
        assert np.all(r <= 3.0 + 1e-12)

    def test_rejects_inverted_radii(self):
        with pytest.raises(ValueError):
            random_in_annulus(5, inner_radius=3.0, outer_radius=2.0)


class TestRectangle:
    def test_containment(self):
        pts = random_in_rectangle(300, low=(-1.0, 2.0), high=(4.0, 3.0), rng=3)
        assert np.all(pts[:, 0] >= -1.0) and np.all(pts[:, 0] <= 4.0)
        assert np.all(pts[:, 1] >= 2.0) and np.all(pts[:, 1] <= 3.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            random_in_rectangle(5, low=(0.0, 0.0), high=(0.0, 1.0))


class TestSegment:
    def test_single_relay_at_midpoint(self):
        pts = place_on_segment((0.0, 0.0), (10.0, 0.0), 1)
        np.testing.assert_allclose(pts, [[5.0, 0.0]])

    def test_three_relays_evenly_spaced(self):
        pts = place_on_segment((0.0, 0.0), (8.0, 0.0), 3)
        np.testing.assert_allclose(pts[:, 0], [2.0, 4.0, 6.0])

    def test_endpoint_margin(self):
        pts = place_on_segment((0.0, 0.0), (10.0, 0.0), 1, endpoint_margin=0.25)
        np.testing.assert_allclose(pts, [[5.0, 0.0]])  # midpoint unaffected

    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            place_on_segment((0, 0), (1, 0), 2, endpoint_margin=0.5)


class TestArc:
    def test_figure8_measurement_arc(self):
        pts = place_on_arc((0.0, 0.0), 1.0, 0.0, 180.0, 20.0)
        assert pts.shape == (10, 2)  # 0, 20, ..., 180
        np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0)
        np.testing.assert_allclose(pts[0], [1.0, 0.0], atol=1e-12)
        np.testing.assert_allclose(pts[-1], [-1.0, 0.0], atol=1e-12)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            place_on_arc((0, 0), 1.0, 0.0, 90.0, 0.0)
