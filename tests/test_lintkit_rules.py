"""Per-rule self-tests: every rule must fire on a minimal bad example and
stay silent on the corresponding good example and on a suppressed line."""

import pytest

from repro.lintkit import Finding, LintStats, all_rules, lint_source
from repro.lintkit.engine import PARSE_ERROR_RULE_ID

#: A path that counts as library code (library_only rules apply).
LIB = "src/repro/somemodule.py"
#: A path that counts as test code (library_only rules skip it).
TEST = "tests/test_somemodule.py"


def rule_ids(findings):
    return [f.rule_id for f in findings]


def lint(source, path=LIB, select=None):
    rules = all_rules(select) if select else None
    return lint_source(source, path=path, rules=rules)


# --------------------------------------------------------------------- #
# RP101 — inline dB/linear conversions                                  #
# --------------------------------------------------------------------- #


class TestRP101:
    @pytest.mark.parametrize(
        "snippet",
        [
            "y = 10.0 ** (x / 10.0)",
            "y = 10 ** (x / 20)",
            "y = np.power(10.0, x / 10.0)",
            "y = 10.0 * np.log10(x)",
            "y = 20.0 * np.log10(x)",
            "y = 10.0 * n * np.log10(x)",
            "y = np.log10(x) * 10.0",
        ],
    )
    def test_fires(self, snippet):
        assert "RP101" in rule_ids(lint(snippet, select=["RP101"]))

    @pytest.mark.parametrize(
        "snippet",
        [
            "y = db_to_linear(x)",
            "y = 2.0 ** (x / 10.0)",  # not base 10
            "y = 10.0 ** x",  # no dB divisor
            "y = 3.0 * np.log10(x)",  # not a dB factor
            "y = np.log10(x)",
        ],
    )
    def test_silent_on_good(self, snippet):
        assert lint(snippet, select=["RP101"]) == []

    def test_suppressed(self):
        src = "y = 10.0 ** (x / 10.0)  # lint: ignore[RP101]"
        assert lint(src, select=["RP101"]) == []

    def test_suppression_is_counted(self):
        stats = LintStats()
        src = "y = 10.0 ** (x / 10.0)  # lint: ignore[RP101]"
        lint_source(src, path=LIB, stats=stats)
        assert stats.suppressed == 1

    def test_units_module_is_exempt(self):
        src = "y = 10.0 ** (x / 10.0)"
        assert lint(src, path="src/repro/utils/units.py", select=["RP101"]) == []

    def test_tests_are_exempt(self):
        src = "y = 10.0 ** (x / 10.0)"
        assert lint(src, path=TEST, select=["RP101"]) == []


# --------------------------------------------------------------------- #
# RP102 — numpy.random outside utils/rng                                #
# --------------------------------------------------------------------- #


class TestRP102:
    @pytest.mark.parametrize(
        "snippet",
        [
            "rng = np.random.default_rng(0)",
            "rng = numpy.random.default_rng(seed)",
            "s = np.random.SeedSequence(7)",
            "x = np.random.rand(3)",
            "from numpy.random import default_rng\nrng = default_rng(0)",
        ],
    )
    def test_fires(self, snippet):
        assert "RP102" in rule_ids(lint(snippet, select=["RP102"]))

    @pytest.mark.parametrize(
        "snippet",
        [
            "gen = as_rng(rng)",
            # type references (not stream construction) are allowed
            "ok = isinstance(rng, np.random.Generator)",
            "x: np.random.Generator = gen",
        ],
    )
    def test_silent_on_good(self, snippet):
        assert lint(snippet, select=["RP102"]) == []

    def test_suppressed(self):
        src = "rng = np.random.default_rng(0)  # lint: ignore[RP102]"
        assert lint(src, select=["RP102"]) == []

    def test_rng_module_is_exempt(self):
        src = "rng = np.random.default_rng(0)"
        assert lint(src, path="src/repro/utils/rng.py", select=["RP102"]) == []

    def test_tests_are_exempt(self):
        src = "rng = np.random.default_rng(0)"
        assert lint(src, path=TEST, select=["RP102"]) == []


# --------------------------------------------------------------------- #
# RP103 — nondeterminism sources                                        #
# --------------------------------------------------------------------- #


class TestRP103:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import random",
            "from random import shuffle",
            "import time\nt = time.time()",
            "import uuid\nu = uuid.uuid4()",
            "import os\nk = os.urandom(16)",
            "import random\nx = random.random()",
        ],
    )
    def test_fires(self, snippet):
        assert "RP103" in rule_ids(lint(snippet, select=["RP103"]))

    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\ntime.sleep(0.1)",  # sleeping is not a result
            "gen = as_rng(7)",
            "import uuid\nu = uuid.uuid5(ns, name)",  # deterministic uuid
        ],
    )
    def test_silent_on_good(self, snippet):
        assert lint(snippet, select=["RP103"]) == []

    def test_suppressed(self):
        src = "import random  # lint: ignore[RP103]"
        assert lint(src, select=["RP103"]) == []

    def test_tests_are_exempt(self):
        assert lint("import random", path=TEST, select=["RP103"]) == []


# --------------------------------------------------------------------- #
# RP104 — unvalidated public numeric parameters                         #
# --------------------------------------------------------------------- #

BAD_DATACLASS = """
from dataclasses import dataclass

@dataclass
class Thing:
    count: int
"""

GOOD_DATACLASS = """
from dataclasses import dataclass
from repro.utils.validation import check_non_negative_int

@dataclass
class Thing:
    count: int

    def __post_init__(self):
        check_non_negative_int(self.count, "count")
"""

GUARDED_DATACLASS = """
from dataclasses import dataclass

@dataclass
class Thing:
    count: int

    def __post_init__(self):
        if self.count < 0:
            raise ValueError("count must be >= 0")
"""

BAD_INIT = """
class Thing:
    def __init__(self, rate: float):
        self.rate = rate
"""

GOOD_INIT = """
from repro.utils.validation import check_positive

class Thing:
    def __init__(self, rate: float):
        self.rate = check_positive(rate, "rate")
"""


class TestRP104:
    def test_fires_on_dataclass_field(self):
        assert "RP104" in rule_ids(lint(BAD_DATACLASS, select=["RP104"]))

    def test_fires_on_init_param(self):
        assert "RP104" in rule_ids(lint(BAD_INIT, select=["RP104"]))

    def test_fires_on_optional_numeric(self):
        src = (
            "from dataclasses import dataclass\n"
            "from typing import Optional\n"
            "@dataclass\n"
            "class Thing:\n"
            "    x: Optional[float] = None\n"
        )
        assert "RP104" in rule_ids(lint(src, select=["RP104"]))

    def test_silent_on_checked_dataclass(self):
        assert lint(GOOD_DATACLASS, select=["RP104"]) == []

    def test_silent_on_hand_rolled_guard(self):
        assert lint(GUARDED_DATACLASS, select=["RP104"]) == []

    def test_silent_on_checked_init(self):
        assert lint(GOOD_INIT, select=["RP104"]) == []

    def test_private_names_are_exempt(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Thing:\n"
            "    _cache: int = 0\n"
        )
        assert lint(src, select=["RP104"]) == []

    def test_private_classes_are_exempt(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class _Internal:\n"
            "    x: float = 0.0\n"
        )
        assert lint(src, select=["RP104"]) == []

    def test_non_numeric_fields_are_exempt(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Thing:\n"
            "    name: str\n"
        )
        assert lint(src, select=["RP104"]) == []

    def test_suppressed(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Thing:\n"
            "    count: int  # lint: ignore[RP104]\n"
        )
        assert lint(src, select=["RP104"]) == []

    def test_tests_are_exempt(self):
        assert lint(BAD_DATACLASS, path=TEST, select=["RP104"]) == []


# --------------------------------------------------------------------- #
# RP105 — __all__ consistency                                           #
# --------------------------------------------------------------------- #


class TestRP105:
    def test_fires_on_missing_name(self):
        src = '__all__ = ["ghost"]\n'
        assert "RP105" in rule_ids(lint(src, select=["RP105"]))

    def test_fires_on_duplicate(self):
        src = '__all__ = ["f", "f"]\ndef f():\n    pass\n'
        assert "RP105" in rule_ids(lint(src, select=["RP105"]))

    def test_fires_on_non_literal(self):
        src = "__all__ = [name for name in names]\n"
        assert "RP105" in rule_ids(lint(src, select=["RP105"]))

    def test_silent_on_consistent(self):
        src = (
            '__all__ = ["f", "C", "X", "np"]\n'
            "import numpy as np\n"
            "X = 1\n"
            "def f():\n    pass\n"
            "class C:\n    pass\n"
        )
        assert lint(src, select=["RP105"]) == []

    def test_conditional_definitions_count(self):
        src = (
            '__all__ = ["fast_path"]\n'
            "try:\n"
            "    from accel import fast_path\n"
            "except ImportError:\n"
            "    def fast_path():\n"
            "        pass\n"
        )
        assert lint(src, select=["RP105"]) == []

    def test_suppressed(self):
        src = '__all__ = ["ghost"]  # lint: ignore[RP105]\n'
        assert lint(src, select=["RP105"]) == []

    def test_applies_to_tests_too(self):
        src = '__all__ = ["ghost"]\n'
        assert "RP105" in rule_ids(lint(src, path=TEST, select=["RP105"]))


# --------------------------------------------------------------------- #
# RP106 — mutable default arguments                                     #
# --------------------------------------------------------------------- #


class TestRP106:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(x=[]):\n    pass",
            "def f(x={}):\n    pass",
            "def f(*, x=set()):\n    pass",
            "def f(x=list()):\n    pass",
            "def f(x=dict()):\n    pass",
            "lambda x=[]: x",
        ],
    )
    def test_fires(self, snippet):
        assert "RP106" in rule_ids(lint(snippet, select=["RP106"]))

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(x=None):\n    pass",
            "def f(x=()):\n    pass",  # tuples are immutable
            "def f(x=frozenset()):\n    pass",
        ],
    )
    def test_silent_on_good(self, snippet):
        assert lint(snippet, select=["RP106"]) == []

    def test_suppressed(self):
        src = "def f(x=[]):  # lint: ignore[RP106]\n    pass"
        assert lint(src, select=["RP106"]) == []

    def test_applies_to_tests_too(self):
        src = "def f(x=[]):\n    pass"
        assert "RP106" in rule_ids(lint(src, path=TEST, select=["RP106"]))


# --------------------------------------------------------------------- #
# Engine mechanics                                                      #
# --------------------------------------------------------------------- #


class TestEngine:
    def test_parse_error_becomes_rp000(self):
        findings = lint("def broken(:\n")
        assert rule_ids(findings) == [PARSE_ERROR_RULE_ID]

    def test_multi_rule_suppression_comment(self):
        src = "y = 10.0 ** (x / 10.0)  # lint: ignore[RP101, RP102]"
        assert lint(src) == []

    def test_suppression_of_other_rule_does_not_hide(self):
        src = "y = 10.0 ** (x / 10.0)  # lint: ignore[RP106]"
        assert "RP101" in rule_ids(lint(src))

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            all_rules(["RP999"])

    def test_findings_sorted_by_location(self):
        src = "def f(x=[]):\n    pass\n\ny = 10.0 ** (q / 10.0)\n"
        findings = lint(src)
        assert findings == sorted(findings)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_finding_format_shape(self):
        f = Finding(path="a.py", line=3, col=7, rule_id="RP101", message="msg")
        assert f.format() == "a.py:3:7: RP101 msg"
        assert f.to_dict() == {
            "path": "a.py",
            "line": 3,
            "col": 7,
            "rule": "RP101",
            "message": "msg",
        }

    def test_finding_rejects_negative_location(self):
        with pytest.raises(ValueError):
            Finding(path="a.py", line=-1, col=0, rule_id="RP101", message="msg")

    def test_every_registered_rule_has_id_and_summary(self):
        rules = all_rules()
        assert len(rules) >= 6
        for rule in rules:
            assert rule.rule_id.startswith("RP")
            assert rule.summary

    def test_stats_count_per_rule(self):
        stats = LintStats()
        lint_source("def f(x=[]):\n    pass\n", path=LIB, stats=stats)
        assert stats.per_rule.get("RP106") == 1


# --------------------------------------------------------------------- #
# RP107 — bare time.sleep in the service layer                          #
# --------------------------------------------------------------------- #

#: A path inside repro.service, where RP107 applies.
SERVICE = "src/repro/service/client.py"


class TestRP107:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\ntime.sleep(1.0)",
            "import time\nbackoff = time.sleep",  # bare reference, no call
            "import time\ndef f(sleep=time.sleep):\n    pass",
            "from time import sleep",
            "from time import sleep\nsleep(0.5)",
            "from time import sleep as pause\npause(0.5)",
        ],
    )
    def test_fires_in_service_code(self, snippet):
        assert "RP107" in rule_ids(lint(snippet, path=SERVICE, select=["RP107"]))

    @pytest.mark.parametrize(
        "snippet",
        [
            "import asyncio\nawait_ = asyncio.sleep",
            "import time\nt = time.monotonic()",
            "from repro.service.retry import default_sleeper\ndefault_sleeper(0.1)",
        ],
    )
    def test_silent_on_good_service_code(self, snippet):
        assert lint(snippet, path=SERVICE, select=["RP107"]) == []

    def test_non_service_library_code_is_exempt(self):
        src = "import time\ntime.sleep(1.0)"
        assert lint(src, path=LIB, select=["RP107"]) == []

    def test_retry_module_is_exempt(self):
        src = "import time\ntime.sleep(1.0)"
        path = "src/repro/service/retry.py"
        assert lint(src, path=path, select=["RP107"]) == []

    def test_tests_are_exempt(self):
        src = "import time\ntime.sleep(1.0)"
        assert lint(src, path="tests/test_service_pool.py", select=["RP107"]) == []

    def test_suppressed(self):
        src = "import time\ntime.sleep(1.0)  # lint: ignore[RP107]"
        assert lint(src, path=SERVICE, select=["RP107"]) == []
