"""Coded-link chain tests: coding gain and the interleaving rescue."""

import numpy as np
import pytest

from repro.coding.convolutional import ConvolutionalCode
from repro.coding.interleave import BlockInterleaver
from repro.modulation.theory import ber_bpsk_rayleigh
from repro.phy.coded import simulate_coded_link


class TestBasics:
    def test_clean_channel_error_free(self, rng):
        result = simulate_coded_link(5000, 30.0, fading="awgn", rng=rng)
        assert result.ber == 0.0
        assert result.channel_ber == 0.0

    def test_rate_accounting(self, rng):
        result = simulate_coded_link(1000, 10.0, fading="awgn", rng=rng)
        # K=7 terminated rate-1/2: (1000 + 6) * 2 channel bits
        assert result.n_channel_bits == (1000 + 6) * 2

    def test_deterministic(self):
        a = simulate_coded_link(2000, 4.0, rng=11)
        b = simulate_coded_link(2000, 4.0, rng=11)
        assert a.ber == b.ber and a.channel_ber == b.channel_ber

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_coded_link(0, 5.0, rng=rng)
        with pytest.raises(ValueError):
            simulate_coded_link(100, 5.0, symbols_per_fade=0, rng=rng)


class TestCodingGain:
    def test_decoder_beats_raw_channel(self, rng):
        """Post-Viterbi BER far below the raw channel BER at moderate SNR."""
        result = simulate_coded_link(50_000, 9.0, fading="rayleigh", rng=rng)
        assert result.channel_ber > 0.01
        assert result.ber < result.channel_ber / 5.0

    def test_coded_beats_uncoded_at_equal_ebn0(self, rng):
        """Fast Rayleigh fading: rate-1/2 coding + soft Viterbi crushes
        uncoded BPSK even after paying the 3 dB rate loss."""
        ebn0_db = 12.0
        symbol_snr_db = ebn0_db - 3.0  # rate-1/2 loss
        result = simulate_coded_link(
            60_000, symbol_snr_db, fading="rayleigh", symbols_per_fade=1, rng=rng
        )
        uncoded = float(ber_bpsk_rayleigh(ebn0_db))
        assert result.ber < uncoded / 10.0


class TestInterleavingRescue:
    def test_fade_bursts_defeat_bare_code(self, rng):
        """Quasi-static fade bursts (100-symbol coherence) overwhelm the
        K=7 traceback; interleaving across the bursts restores the gain."""
        kwargs = dict(
            n_info_bits=40_000,
            snr_db=10.0,
            fading="rayleigh",
            symbols_per_fade=100,
        )
        bare = simulate_coded_link(rng=np.random.default_rng(3), **kwargs)
        interleaved = simulate_coded_link(
            interleaver=BlockInterleaver(rows=100, cols=400),
            rng=np.random.default_rng(3),
            **kwargs,
        )
        assert interleaved.ber < bare.ber / 3.0

    def test_interleaver_harmless_on_fast_fading(self, rng):
        kwargs = dict(
            n_info_bits=30_000, snr_db=8.0, fading="rayleigh", symbols_per_fade=1
        )
        bare = simulate_coded_link(rng=np.random.default_rng(4), **kwargs)
        interleaved = simulate_coded_link(
            interleaver=BlockInterleaver(rows=16, cols=64),
            rng=np.random.default_rng(4),
            **kwargs,
        )
        # same order of magnitude: no burst structure to exploit
        assert interleaved.ber < max(bare.ber * 3.0, 1e-4) + 1e-4


class TestCustomCode:
    def test_weaker_code_worse(self, rng):
        strong = simulate_coded_link(
            30_000, 8.0, code=ConvolutionalCode(), rng=np.random.default_rng(5)
        )
        weak = simulate_coded_link(
            30_000,
            8.0,
            code=ConvolutionalCode(generators=(0o7, 0o5), constraint_length=3),
            rng=np.random.default_rng(5),
        )
        assert strong.ber <= weak.ber
