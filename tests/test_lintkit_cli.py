"""CLI contract tests: exit codes, output formats, path handling."""

import json
import subprocess
import sys

import pytest

from repro.lintkit.cli import main


@pytest.fixture
def tree(tmp_path):
    """A tiny src tree with one dirty and one clean module."""
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text("y = 10.0 ** (x / 10.0)\n")
    (pkg / "clean.py").write_text("def f(x=None):\n    return x\n")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        assert main([str(tree / "src" / "pkg" / "clean.py")]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, tree, capsys):
        assert main([str(tree / "src")]) == 1
        out = capsys.readouterr().out
        assert "RP101" in out
        assert "dirty.py" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tree, capsys):
        assert main([str(tree / "src"), "--select", "RP999"]) == 2
        assert "RP999" in capsys.readouterr().err


class TestOutput:
    def test_text_format_is_file_line_col(self, tree, capsys):
        main([str(tree / "src")])
        line = capsys.readouterr().out.splitlines()[0]
        path, lineno, col, rest = line.split(":", 3)
        assert path.endswith("dirty.py")
        assert int(lineno) == 1
        assert int(col) >= 1
        assert rest.strip().startswith("RP101")

    def test_json_format(self, tree, capsys):
        main([str(tree / "src"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["rule"] == "RP101"
        assert payload[0]["line"] == 1

    def test_statistics(self, tree, capsys):
        main([str(tree / "src"), "--statistics"])
        err = capsys.readouterr().err
        assert "RP101: 1 finding(s)" in err
        assert "checked 2 file(s)" in err

    def test_select_filters_rules(self, tree, capsys):
        assert main([str(tree / "src"), "--select", "RP106"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RP101", "RP102", "RP103", "RP104", "RP105", "RP106"):
            assert rule_id in out

    def test_list_rules_includes_project_tier(self, capsys):
        main(["--list-rules"])
        out = capsys.readouterr().out
        for rule_id in ("RP201", "RP202", "RP203", "RP204", "RP205"):
            assert rule_id in out
        assert "[project graph]" in out

    def test_sarif_format(self, tree, capsys):
        assert main([str(tree / "src"), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.lintkit"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"RP101", "RP201", "RP205"} <= rule_ids
        assert run["results"][0]["ruleId"] == "RP101"
        location = run["results"][0]["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 1

    def test_output_file(self, tree, tmp_path, capsys):
        # --output *also* writes the report: stdout keeps the findings
        # (for humans and logs), FILE gets the artifact CI uploads.
        report = tmp_path / "report.json"
        main([str(tree / "src"), "--format", "json", "--output", str(report)])
        payload = json.loads(report.read_text())
        assert payload[0]["rule"] == "RP101"
        assert json.loads(capsys.readouterr().out) == payload


class TestBaseline:
    def test_write_then_apply_suppresses_known_findings(self, tree, capsys):
        baseline = tree / "baseline.json"
        assert main([str(tree / "src"), "--write-baseline", str(baseline)]) == 0
        # Baselined findings are reported but no longer fail the run.
        assert main(
            [str(tree / "src"), "--baseline", str(baseline), "--statistics"]
        ) == 0
        assert "1 baselined" in capsys.readouterr().err
        # A new finding still fails even with the baseline applied.
        (tree / "src" / "pkg" / "fresh.py").write_text("z = 10.0 ** (w / 10.0)\n")
        assert main([str(tree / "src"), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out

    def test_corrupt_baseline_exits_two(self, tree, capsys):
        baseline = tree / "baseline.json"
        baseline.write_text("{not json")
        assert main([str(tree / "src"), "--baseline", str(baseline)]) == 2
        assert "baseline" in capsys.readouterr().err


class TestIncrementalFlags:
    def test_statistics_report_cache_hits(self, tree, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        argv = [
            str(tree / "src"),
            "--cache-dir",
            str(tree / "cache"),
            "--statistics",
        ]
        main(argv)
        assert "(2 parsed, 0 from cache)" in capsys.readouterr().err
        main(argv)
        assert "(0 parsed, 2 from cache)" in capsys.readouterr().err

    def test_no_incremental_bypasses_cache(self, tree, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        argv = [
            str(tree / "src"),
            "--cache-dir",
            str(tree / "cache"),
            "--statistics",
        ]
        main(argv)
        capsys.readouterr()
        main(argv + ["--no-incremental"])
        assert "(2 parsed, 0 from cache)" in capsys.readouterr().err

    def test_jobs_flag_parallel_parse(self, tree, capsys):
        assert main([str(tree / "src"), "--jobs", "2", "--no-incremental"]) == 1
        assert "RP101" in capsys.readouterr().out

    def test_no_project_skips_graph_tier(self, tmp_path, capsys):
        service = tmp_path / "src" / "repro" / "service"
        service.mkdir(parents=True)
        (service / "app.py").write_text(
            "async def _handle_x(self):\n    time.sleep(0.01)\n"
        )
        argv = [str(tmp_path / "src"), "--select", "RP201", "--no-incremental"]
        assert main(argv) == 1
        assert "RP201" in capsys.readouterr().out
        assert main(argv + ["--no-project"]) == 0


def test_module_entry_point(tree):
    """``python -m repro.lintkit`` works end to end as CI invokes it."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lintkit", str(tree / "src")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "RP101" in proc.stdout
