"""CLI contract tests: exit codes, output formats, path handling."""

import json
import subprocess
import sys

import pytest

from repro.lintkit.cli import main


@pytest.fixture
def tree(tmp_path):
    """A tiny src tree with one dirty and one clean module."""
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text("y = 10.0 ** (x / 10.0)\n")
    (pkg / "clean.py").write_text("def f(x=None):\n    return x\n")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        assert main([str(tree / "src" / "pkg" / "clean.py")]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, tree, capsys):
        assert main([str(tree / "src")]) == 1
        out = capsys.readouterr().out
        assert "RP101" in out
        assert "dirty.py" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tree, capsys):
        assert main([str(tree / "src"), "--select", "RP999"]) == 2
        assert "RP999" in capsys.readouterr().err


class TestOutput:
    def test_text_format_is_file_line_col(self, tree, capsys):
        main([str(tree / "src")])
        line = capsys.readouterr().out.splitlines()[0]
        path, lineno, col, rest = line.split(":", 3)
        assert path.endswith("dirty.py")
        assert int(lineno) == 1
        assert int(col) >= 1
        assert rest.strip().startswith("RP101")

    def test_json_format(self, tree, capsys):
        main([str(tree / "src"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["rule"] == "RP101"
        assert payload[0]["line"] == 1

    def test_statistics(self, tree, capsys):
        main([str(tree / "src"), "--statistics"])
        err = capsys.readouterr().err
        assert "RP101: 1 finding(s)" in err
        assert "checked 2 file(s)" in err

    def test_select_filters_rules(self, tree, capsys):
        assert main([str(tree / "src"), "--select", "RP106"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RP101", "RP102", "RP103", "RP104", "RP105", "RP106"):
            assert rule_id in out


def test_module_entry_point(tree):
    """``python -m repro.lintkit`` works end to end as CI invokes it."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lintkit", str(tree / "src")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "RP101" in proc.stdout
