"""Overlay system tests: Algorithm 1 accounting and the distance analysis."""

import pytest

from repro.core.overlay import OverlaySystem
from repro.energy.model import EnergyModel


@pytest.fixture(scope="module")
def system():
    return OverlaySystem(EnergyModel())


@pytest.fixture(scope="module")
def system_div():
    return OverlaySystem(EnergyModel(ebar_convention="diversity_only"))


class TestRelayEnergy:
    def test_components(self, system):
        res = system.relay_energy(p=0.001, m=3, d_pt_su=100.0, d_su_pr=150.0, bandwidth=10e3)
        assert res.m == 3
        assert res.su_total == pytest.approx(res.su_tx + res.su_rx)
        # reception is circuit-only, far below the long-haul transmit energy
        assert res.su_rx < res.su_tx
        assert res.primary_rx < res.primary_tx

    def test_b_choices_minimize(self, system):
        res = system.relay_energy(0.001, 2, 100.0, 100.0, 10e3)
        for b in (1, 2, 4, 8):
            alt = system.model.mimo_tx(0.001, b, 2, 1, 100.0, 10e3).total
            assert res.su_tx <= alt + 1e-30

    def test_validation(self, system):
        with pytest.raises(ValueError):
            system.relay_energy(0.001, 0, 100.0, 100.0, 10e3)
        with pytest.raises(ValueError):
            system.relay_energy(0.001, 2, -1.0, 100.0, 10e3)


class TestDirectLink:
    def test_energy_grows_with_distance(self, system):
        _, e_near = system.direct_link_energy(150.0, 0.005, 40e3)
        _, e_far = system.direct_link_energy(350.0, 0.005, 40e3)
        assert e_far > e_near

    def test_stricter_ber_costs_more(self, system):
        _, lax = system.direct_link_energy(250.0, 0.005, 40e3)
        _, strict = system.direct_link_energy(250.0, 0.0005, 40e3)
        assert strict > lax


class TestDistanceAnalysis:
    def test_fig6_shapes(self, system_div):
        res = system_div.distance_analysis(d1=250.0, m=3, bandwidth=40e3)
        # relays can sit beyond the direct distance at 10x better BER
        assert res.d2 > res.d1
        assert res.d3 > res.d1
        # the paper's asymmetry: farther from Pr than from Pt
        assert res.d3 > res.d2

    def test_paper_convention_symmetric(self, system):
        res = system.distance_analysis(d1=250.0, m=3, bandwidth=40e3)
        # reception energy drags D3 slightly below D2, nothing more
        assert res.d3 == pytest.approx(res.d2, rel=0.15)

    def test_distances_grow_with_d1(self, system_div):
        near = system_div.distance_analysis(150.0, 3, 40e3)
        far = system_div.distance_analysis(350.0, 3, 40e3)
        assert far.d2 > near.d2 and far.d3 > near.d3

    def test_more_relays_reach_farther(self, system_div):
        m2 = system_div.distance_analysis(250.0, 2, 40e3)
        m3 = system_div.distance_analysis(250.0, 3, 40e3)
        assert m3.d3 > m2.d3

    def test_sweep_covers_grid(self, system_div):
        rows = system_div.distance_sweep((150.0, 250.0), (2, 3), (20e3, 40e3))
        assert len(rows) == 2 * 2 * 2
        assert {(r.m, r.bandwidth) for r in rows} == {
            (2, 20e3), (3, 20e3), (2, 40e3), (3, 40e3)
        }

    def test_default_ber_targets(self, system_div):
        res = system_div.distance_analysis(200.0, 2, 20e3)
        assert res.p_direct == 0.005
        assert res.p_relay == 0.0005

    def test_empty_b_range_rejected(self):
        with pytest.raises(ValueError):
            OverlaySystem(EnergyModel(), b_range=())


class TestVectorizedDistanceAnalyses:
    """distance_analyses must reproduce the scalar per-point analysis
    exactly — same floats, same selected constellation sizes."""

    def test_matches_scalar_bitwise(self, system_div):
        d1_values = (150.0, 200.0, 250.0, 300.0, 350.0)
        for m in (2, 3):
            for bw in (20e3, 40e3):
                vec = system_div.distance_analyses(d1_values, m, bw)
                scalar = [
                    system_div.distance_analysis(d1, m, bw) for d1 in d1_values
                ]
                assert vec == scalar

    def test_paper_convention_matches_too(self):
        system = OverlaySystem(EnergyModel(ebar_convention="paper"))
        vec = system.distance_analyses((200.0, 300.0), 3, 20e3)
        scalar = [system.distance_analysis(d1, 3, 20e3) for d1 in (200.0, 300.0)]
        assert vec == scalar

    def test_sweep_order_preserved(self, system_div):
        rows = system_div.distance_sweep((150.0, 250.0), (2, 3), (20e3, 40e3))
        key = [(r.bandwidth, r.m, r.d1) for r in rows]
        assert key == sorted(key, key=lambda t: (t[0], t[1], t[2]))

    def test_validation(self, system_div):
        with pytest.raises(ValueError):
            system_div.distance_analyses((0.0, 100.0), 2, 20e3)
        with pytest.raises(ValueError):
            system_div.distance_analyses((100.0,), 0, 20e3)
