"""Image workload tests: size contract, transfer semantics, verdicts."""

import numpy as np
import pytest

from repro.testbed.image import (
    IMAGE_PACKETS,
    PACKET_BYTES,
    ImageTransferResult,
    synthetic_image,
    transfer_image,
)


class TestSyntheticImage:
    def test_exact_size(self):
        img = synthetic_image()
        assert img.size == IMAGE_PACKETS * PACKET_BYTES == 711_000
        assert img.dtype == np.uint8

    def test_deterministic(self):
        np.testing.assert_array_equal(synthetic_image(), synthetic_image())

    def test_has_structure(self):
        """Not a constant image: gradient + checker + disk show variance."""
        img = synthetic_image()
        assert img.std() > 20.0
        assert len(np.unique(img)) > 50


class TestTransfer:
    def test_perfect_channel(self):
        result = transfer_image(lambda bits, rng: bits, rng=0)
        assert result.per == 0.0
        assert result.mean_abs_error == 0.0
        assert result.verdict == "recovered"
        np.testing.assert_array_equal(result.received, synthetic_image())

    def test_lossy_channel_counts_packets(self):
        calls = []

        def flip_every_third(bits, rng):
            calls.append(None)
            out = bits.copy()
            if len(calls) % 3 == 0:
                out[0] ^= 1
            return out

        result = transfer_image(flip_every_third, rng=0)
        assert result.n_packets == IMAGE_PACKETS
        assert result.n_packet_errors == IMAGE_PACKETS // 3
        assert 0.30 < result.per < 0.36
        assert result.verdict == "cannot be recovered"
        assert result.mean_abs_error > 0.0

    def test_moderate_loss_verdict(self):
        calls = []

        def flip_every_tenth(bits, rng):
            calls.append(None)
            out = bits.copy()
            if len(calls) % 10 == 0:
                out[:8] ^= 1
            return out

        result = transfer_image(flip_every_tenth, rng=0)
        assert result.verdict == "recovered with distortions"

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            transfer_image(lambda bits, rng: bits[:-1], rng=0)

    def test_rng_threaded(self):
        seen = []

        def record(bits, rng):
            seen.append(rng)
            return bits

        transfer_image(record, rng=42)
        assert all(r is seen[0] for r in seen)  # one generator threaded through


class TestVerdictThresholds:
    def _result(self, per):
        return ImageTransferResult(
            n_packets=100,
            n_packet_errors=int(per * 100),
            mean_abs_error=0.0,
            received=np.zeros((1, 1), dtype=np.uint8),
        )

    def test_bands(self):
        assert self._result(0.0).verdict == "recovered"
        assert self._result(0.02).verdict == "recovered"
        assert self._result(0.1).verdict == "recovered with distortions"
        assert self._result(0.5).verdict == "cannot be recovered"
