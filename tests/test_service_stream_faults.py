"""Streaming fault surface: backpressure hints, stalls, kills, truncation.

Regressions backing the chaos loadgen's verdict contract: every
mid-stream failure must surface as a structured, *timely* signal the
client can classify — never a silent hang, a clean-looking close, or a
backpressure reply without its retry hint.
"""

import asyncio
import time

import pytest

from repro.service.app import PlanningService
from repro.service.client import ServiceClientError
from repro.service.config import ServiceConfig
from repro.service.errors import OverloadedError
from repro.service.testing import ThreadedServer

STALL_TIMEOUT_MS = 1200.0

#: A few hundred milliseconds of child compute — enough that a fault
#: applied at stream start always lands on a live process.
SIM_BODY = {
    "n_nodes": 60,
    "duration_s": 30.0,
    "snapshot_interval_s": 0.5,
    "seed": 3,
    "arena_m": [600.0, 600.0],
}

UNDERLAY_BODY = {
    "p": 1e-3,
    "mt": 2,
    "mr": 2,
    "d": 5.0,
    "distance": [30.0, 30.5, 31.0, 31.5],
    "bandwidth": 10e3,
}


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(
        port=0,
        workers=0,
        request_log=False,
        result_cache=False,
        max_sims=1,
        sim_stall_timeout_ms=STALL_TIMEOUT_MS,
    )
    with ThreadedServer(config) as srv:
        yield srv


def wait_for_idle(server, deadline_s=10.0):
    """Block until the (single) simulate slot has been released."""
    start = time.monotonic()
    while server.service.sims.active > 0:
        if time.monotonic() - start > deadline_s:
            raise AssertionError("simulate slot was never released")
        time.sleep(0.02)


class TestSimulateBackpressureHint:
    def test_second_stream_429_has_header_and_body_hints(self, server):
        client = server.client()
        stream = client.simulate_stream(SIM_BODY)
        try:
            next(stream)  # stream committed: the only slot is now taken
            with pytest.raises(ServiceClientError) as excinfo:
                client.simulate_stream(dict(SIM_BODY, seed=4))
            err = excinfo.value
            assert err.status == 429
            hint = server.config.retry_after_s
            assert err.retry_after_s == hint  # the Retry-After header
            assert err.payload["retry_after_s"] == hint  # mirrored in-body
            assert err.payload["status"] == 429
        finally:
            stream.close()
        wait_for_idle(server)


class TestMidStreamBackpressureRow:
    def _service(self):
        return PlanningService(
            ServiceConfig(workers=0, coalesce_ms=0.0, request_log=False)
        )

    def test_sweep_backpressure_row_carries_retry_hint(self):
        service = self._service()
        try:

            async def run(axis):
                raise OverloadedError("queue full; retry later")

            async def consume():
                gen = service._stream_sweep(
                    [{"distance": 1.0}], [(2.0,)], run, None
                )
                return [row async for row in gen]

            rows = asyncio.run(consume())
        finally:
            service.close()
        assert rows[0] == {"distance": 1.0}
        tail = rows[-1]
        assert tail["row"] == "error"
        assert tail["status"] == 429
        assert tail["retry_after_s"] == service.config.retry_after_s

    @pytest.mark.parametrize(
        "status,hinted",
        [(429, True), (503, True), (504, False), (500, False)],
    )
    def test_error_row_hint_policy(self, status, hinted):
        service = self._service()
        try:
            row = service._error_row(status, "stream failed", "detail")
        finally:
            service.close()
        assert row["status"] == status
        assert ("retry_after_s" in row) is hinted


class TestSimChildFaults:
    def test_stall_surfaces_within_the_deadline(self, server):
        server.service.faults.arm_stall_sim(1, after_rows=0)
        client = server.client()
        start = time.monotonic()
        rows = list(client.simulate_stream(SIM_BODY))
        elapsed = time.monotonic() - start
        wait_for_idle(server)
        tail = rows[-1]
        assert tail["row"] == "error"
        assert tail["status"] == 504
        assert "stall" in tail["detail"]
        # A terminal error row, not a hang: the stream ends promptly once
        # the stall deadline fires (slack covers poll granularity and CI).
        assert elapsed < STALL_TIMEOUT_MS / 1000.0 + 8.0

    def test_killed_child_surfaces_error_row(self, server):
        server.service.faults.arm_kill_sim_child(1, after_rows=0)
        client = server.client()
        rows = list(client.simulate_stream(SIM_BODY))
        wait_for_idle(server)
        tail = rows[-1]
        assert tail["row"] == "error"
        assert tail["status"] == 500


class TestTransportFaults:
    def test_truncated_sweep_raises_599(self, server):
        server.service.faults.arm_truncate_stream(
            1, after_rows=1, paths=("/v1/underlay/energy",)
        )
        client = server.client()
        stream = client.request_stream(
            "POST", "/v1/underlay/energy", UNDERLAY_BODY
        )
        with pytest.raises(ServiceClientError) as excinfo:
            list(stream)
        assert excinfo.value.status == 599
        assert "truncat" in str(excinfo.value)

    def test_dropped_connection_raises_599(self, server):
        server.service.faults.arm_drop_client(
            1, paths=("/v1/underlay/energy",)
        )
        client = server.client()
        with pytest.raises(ServiceClientError) as excinfo:
            list(
                client.request_stream(
                    "POST", "/v1/underlay/energy", UNDERLAY_BODY
                )
            )
        assert excinfo.value.status == 599
