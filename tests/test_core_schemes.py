"""Cooperative scheme tests: step plans and hop energy accounting."""

import pytest

from repro.core.schemes import cooperative_scheme, hop_energy
from repro.network.comimonet import LinkKind


class TestStepPlans:
    def test_siso_single_step(self):
        steps = cooperative_scheme(1, 1)
        assert len(steps) == 1
        assert not steps[0].local
        assert steps[0].n_tx == 1 and steps[0].n_rx == 1

    def test_miso_two_steps(self):
        steps = cooperative_scheme(3, 1)
        assert [s.name for s in steps] == ["intra-A broadcast", "long-haul MISO"]
        assert steps[0].n_tx == 1 and steps[0].n_rx == 2

    def test_simo_two_steps(self):
        steps = cooperative_scheme(1, 3)
        assert [s.name for s in steps] == ["long-haul SIMO", "intra-B collection"]

    def test_mimo_three_steps(self):
        steps = cooperative_scheme(3, 2)
        assert len(steps) == 3
        assert steps[1].n_tx == 3 and steps[1].n_rx == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            cooperative_scheme(0, 1)


class TestHopEnergy:
    def _hop(self, energy_model, mt, mr, **overrides):
        args = dict(p=0.001, b=2, mt=mt, mr=mr, local_distance=2.0,
                    longhaul_distance=150.0, bandwidth=10e3)
        args.update(overrides)
        return hop_energy(energy_model, **args)

    def test_siso_total_by_hand(self, energy_model):
        hop = self._hop(energy_model, 1, 1)
        expected = (
            energy_model.mimo_tx(0.001, 2, 1, 1, 150.0, 10e3).total
            + energy_model.mimo_rx(2, 10e3).total
        )
        assert hop.total == pytest.approx(expected)
        assert hop.pa_local_a == 0.0 and hop.pa_local_b == 0.0

    def test_mimo_total_by_hand(self, energy_model):
        mt, mr = 3, 2
        hop = self._hop(energy_model, mt, mr)
        ltx = energy_model.local_tx(0.001, 2, 2.0, 10e3)
        lrx = energy_model.local_rx(2, 10e3)
        mtx = energy_model.mimo_tx(0.001, 2, mt, mr, 150.0, 10e3)
        mrx = energy_model.mimo_rx(2, 10e3)
        expected = (
            ltx.total + (mt - 1) * lrx.total  # intra-A broadcast
            + mt * mtx.total + mr * mrx.total  # long haul
            + mr * ltx.total + mr * lrx.total  # intra-B collection
        )
        assert hop.total == pytest.approx(expected)

    def test_pa_peak_definition(self, energy_model):
        """E_PA = max(e_PA^{Lt}, mt * e_PA^{MIMOt}) — Section 4."""
        hop = self._hop(energy_model, 2, 2)
        ltx_pa = energy_model.local_tx(0.001, 2, 2.0, 10e3).pa
        mtx_pa = 2 * energy_model.mimo_tx(0.001, 2, 2, 2, 150.0, 10e3).pa
        assert hop.pa_peak == pytest.approx(max(ltx_pa, mtx_pa))

    def test_pa_total_is_sum_of_parts(self, energy_model):
        hop = self._hop(energy_model, 2, 3)
        assert hop.pa_total == pytest.approx(
            hop.pa_local_a + hop.pa_longhaul + hop.pa_local_b
        )

    def test_longhaul_pa_conventions(self, energy_model):
        """The 1/mt of formula (3) cancels the mt simultaneous transmitters,
        so the total radiated long-haul energy equals (1+alpha) e_bar C D^2.
        Under the symmetric table (diversity_only) that makes (2,1) and
        (1,2) radiate identically; under the paper convention e_bar itself
        carries the extra mt, making (2,1) radiate mt times more."""
        from repro.energy.model import EnergyModel

        div_model = EnergyModel(ebar_convention="diversity_only")
        d21 = self._hop(div_model, 2, 1)
        d12 = self._hop(div_model, 1, 2)
        assert d21.pa_longhaul == pytest.approx(d12.pa_longhaul, rel=1e-9)

        p21 = self._hop(energy_model, 2, 1)
        p12 = self._hop(energy_model, 1, 2)
        assert p21.pa_longhaul == pytest.approx(2.0 * p12.pa_longhaul, rel=1e-9)

    def test_kind_classified(self, energy_model):
        assert self._hop(energy_model, 1, 1).kind is LinkKind.SISO
        assert self._hop(energy_model, 2, 2).kind is LinkKind.MIMO

    def test_rejects_bad_distances(self, energy_model):
        with pytest.raises(ValueError):
            self._hop(energy_model, 2, 2, local_distance=0.0)
        with pytest.raises(ValueError):
            self._hop(energy_model, 2, 2, longhaul_distance=-1.0)
