"""FaultInjector: inert defaults, env parsing, arming, count decrement."""

import json

import pytest

from repro.service.app import PlanningService
from repro.service.config import ServiceConfig
from repro.service.faults import FAULTS_ENV_VAR, FaultInjector


class TestInertDefault:
    def test_fresh_injector_is_unarmed(self):
        faults = FaultInjector()
        assert not faults.armed

    def test_hooks_are_noops_when_unarmed(self):
        faults = FaultInjector()
        assert faults.request_delay_s("/v1/ebar") == 0.0
        assert faults.take_abort("/v1/ebar") is False
        assert faults.maybe_kill_worker(object()) is False

    def test_from_env_without_the_variable_is_inert(self):
        assert not FaultInjector.from_env(environ={}).armed


class TestFromEnv:
    def _env(self, plan):
        return {FAULTS_ENV_VAR: json.dumps(plan)}

    def test_full_plan_arms_everything(self):
        faults = FaultInjector.from_env(
            environ=self._env(
                {
                    "kill_worker": 2,
                    "delay_ms": 250,
                    "delay_times": 3,
                    "abort": 1,
                    "paths": ["/v1/underlay/energy"],
                }
            )
        )
        assert faults.armed
        assert faults.request_delay_s("/v1/underlay/energy") == 0.25
        assert faults.take_abort("/v1/underlay/energy") is True

    def test_delay_defaults_to_one_shot(self):
        faults = FaultInjector.from_env(environ=self._env({"delay_ms": 100}))
        assert faults.request_delay_s("/x") == 0.1
        assert faults.request_delay_s("/x") == 0.0

    def test_blank_value_is_inert(self):
        assert not FaultInjector.from_env(environ={FAULTS_ENV_VAR: "  "}).armed

    @pytest.mark.parametrize(
        "raw",
        [
            "{not json",
            '"just a string"',
            "[1, 2]",
            '{"surprise": 1}',
            '{"kill_worker": "one"}',
            '{"kill_worker": true}',
            '{"kill_worker": -1}',
            '{"delay_ms": "fast"}',
            '{"delay_ms": 10, "delay_times": 1.5}',
            '{"abort": 1, "paths": "/v1/ebar"}',
            '{"abort": 1, "paths": [1]}',
        ],
    )
    def test_malformed_plans_fail_loudly(self, raw):
        with pytest.raises(ValueError):
            FaultInjector.from_env(environ={FAULTS_ENV_VAR: raw})

    def test_service_reads_the_plan_at_boot(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, '{"abort": 1}')
        service = PlanningService(
            ServiceConfig(workers=0, coalesce_ms=0.0, request_log=False)
        )
        try:
            assert service.faults.armed
            assert service.faults.take_abort("/v1/ebar") is True
        finally:
            service.close()

    def test_explicit_injector_overrides_the_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, '{"abort": 5}')
        faults = FaultInjector()
        service = PlanningService(
            ServiceConfig(workers=0, coalesce_ms=0.0, request_log=False),
            faults=faults,
        )
        try:
            assert service.faults is faults
            assert not service.faults.armed
        finally:
            service.close()


class TestCounts:
    def test_delay_consumes_one_count_per_matching_request(self):
        faults = FaultInjector()
        faults.arm_delay(0.5, times=2)
        assert faults.request_delay_s("/a") == 0.5
        assert faults.request_delay_s("/b") == 0.5
        assert faults.request_delay_s("/c") == 0.0
        assert not faults.armed

    def test_path_mismatch_does_not_consume(self):
        faults = FaultInjector()
        faults.arm_delay(0.5, times=1, paths=("/v1/ebar",))
        assert faults.request_delay_s("/healthz") == 0.0
        assert faults.request_delay_s("/v1/ebar") == 0.5

    def test_abort_consumes_one_count(self):
        faults = FaultInjector()
        faults.arm_abort(1)
        assert faults.take_abort("/x") is True
        assert faults.take_abort("/x") is False

    def test_kill_without_processes_does_not_consume(self):
        faults = FaultInjector()
        faults.arm_kill_worker(1)
        assert faults.maybe_kill_worker(object()) is False
        assert faults.armed  # the count is still pending

    def test_negative_counts_rejected(self):
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.arm_kill_worker(-1)
        with pytest.raises(ValueError):
            faults.arm_delay(-0.1)
        with pytest.raises(ValueError):
            faults.arm_abort(-2)
