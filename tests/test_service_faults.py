"""FaultInjector: inert defaults, env parsing, arming, count decrement."""

import json

import pytest

from repro.service.app import PlanningService
from repro.service.config import ServiceConfig
from repro.service.faults import FAULTS_ENV_VAR, FaultInjector


class TestInertDefault:
    def test_fresh_injector_is_unarmed(self):
        faults = FaultInjector()
        assert not faults.armed

    def test_hooks_are_noops_when_unarmed(self):
        faults = FaultInjector()
        assert faults.request_delay_s("/v1/ebar") == 0.0
        assert faults.take_abort("/v1/ebar") is False
        assert faults.maybe_kill_worker(object()) is False

    def test_from_env_without_the_variable_is_inert(self):
        assert not FaultInjector.from_env(environ={}).armed


class TestFromEnv:
    def _env(self, plan):
        return {FAULTS_ENV_VAR: json.dumps(plan)}

    def test_full_plan_arms_everything(self):
        faults = FaultInjector.from_env(
            environ=self._env(
                {
                    "kill_worker": 2,
                    "delay_ms": 250,
                    "delay_times": 3,
                    "abort": 1,
                    "paths": ["/v1/underlay/energy"],
                }
            )
        )
        assert faults.armed
        assert faults.request_delay_s("/v1/underlay/energy") == 0.25
        assert faults.take_abort("/v1/underlay/energy") is True

    def test_stream_plan_arms_stream_faults(self):
        faults = FaultInjector.from_env(
            environ=self._env(
                {
                    "kill_sim_child": 1,
                    "kill_sim_child_after_rows": 2,
                    "truncate_stream": 1,
                    "truncate_stream_after_rows": 3,
                    "drop_client": 1,
                    "paths": ["/v1/simulate"],
                }
            )
        )
        assert faults.armed
        assert faults.take_sim_fault() == ("kill", 2)
        assert faults.take_truncate_stream("/v1/simulate") == 3
        assert faults.take_drop_client("/v1/simulate") is True

    def test_stall_plan_arms_stall(self):
        faults = FaultInjector.from_env(
            environ=self._env({"stall_sim": 1, "stall_sim_after_rows": 1})
        )
        assert faults.take_sim_fault() == ("stall", 1)
        assert faults.take_sim_fault() is None

    def test_skip_counters_from_env(self):
        faults = FaultInjector.from_env(
            environ=self._env(
                {"truncate_stream": 1, "truncate_stream_skip": 2}
            )
        )
        assert faults.take_truncate_stream("/a") is None
        assert faults.take_truncate_stream("/b") is None
        assert faults.take_truncate_stream("/c") == 1
        assert faults.take_truncate_stream("/d") is None

    def test_kill_shard_from_env(self):
        faults = FaultInjector.from_env(environ=self._env({"kill_shard": 2}))
        assert faults.take_kill_shard() is True
        assert faults.take_kill_shard() is True
        assert faults.take_kill_shard() is False

    def test_delay_defaults_to_one_shot(self):
        faults = FaultInjector.from_env(environ=self._env({"delay_ms": 100}))
        assert faults.request_delay_s("/x") == 0.1
        assert faults.request_delay_s("/x") == 0.0

    def test_blank_value_is_inert(self):
        assert not FaultInjector.from_env(environ={FAULTS_ENV_VAR: "  "}).armed

    @pytest.mark.parametrize(
        "raw",
        [
            "{not json",
            '"just a string"',
            "[1, 2]",
            '{"surprise": 1}',
            '{"kill_worker": "one"}',
            '{"kill_worker": true}',
            '{"kill_worker": -1}',
            '{"delay_ms": "fast"}',
            '{"delay_ms": 10, "delay_times": 1.5}',
            '{"abort": 1, "paths": "/v1/ebar"}',
            '{"abort": 1, "paths": [1]}',
            '{"kill_sim_child": "yes"}',
            '{"stall_sim": 1, "stall_sim_after_rows": -1}',
            '{"truncate_stream": 1.5}',
            '{"drop_client": 1, "drop_client_skip": "three"}',
        ],
    )
    def test_malformed_plans_fail_loudly(self, raw):
        with pytest.raises(ValueError):
            FaultInjector.from_env(environ={FAULTS_ENV_VAR: raw})

    def test_service_reads_the_plan_at_boot(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, '{"abort": 1}')
        service = PlanningService(
            ServiceConfig(workers=0, coalesce_ms=0.0, request_log=False)
        )
        try:
            assert service.faults.armed
            assert service.faults.take_abort("/v1/ebar") is True
        finally:
            service.close()

    def test_explicit_injector_overrides_the_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, '{"abort": 5}')
        faults = FaultInjector()
        service = PlanningService(
            ServiceConfig(workers=0, coalesce_ms=0.0, request_log=False),
            faults=faults,
        )
        try:
            assert service.faults is faults
            assert not service.faults.armed
        finally:
            service.close()


class TestCounts:
    def test_delay_consumes_one_count_per_matching_request(self):
        faults = FaultInjector()
        faults.arm_delay(0.5, times=2)
        assert faults.request_delay_s("/a") == 0.5
        assert faults.request_delay_s("/b") == 0.5
        assert faults.request_delay_s("/c") == 0.0
        assert not faults.armed

    def test_path_mismatch_does_not_consume(self):
        faults = FaultInjector()
        faults.arm_delay(0.5, times=1, paths=("/v1/ebar",))
        assert faults.request_delay_s("/healthz") == 0.0
        assert faults.request_delay_s("/v1/ebar") == 0.5

    def test_abort_consumes_one_count(self):
        faults = FaultInjector()
        faults.arm_abort(1)
        assert faults.take_abort("/x") is True
        assert faults.take_abort("/x") is False

    def test_kill_without_processes_does_not_consume(self):
        faults = FaultInjector()
        faults.arm_kill_worker(1)
        assert faults.maybe_kill_worker(object()) is False
        assert faults.armed  # the count is still pending

    def test_negative_counts_rejected(self):
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.arm_kill_worker(-1)
        with pytest.raises(ValueError):
            faults.arm_delay(-0.1)
        with pytest.raises(ValueError):
            faults.arm_abort(-2)
        with pytest.raises(ValueError):
            faults.arm_truncate_stream(1, after_rows=-1)
        with pytest.raises(ValueError):
            faults.arm_stall_sim(-1)

    def test_kill_beats_stall_when_both_armed(self):
        faults = FaultInjector()
        faults.arm_kill_sim_child(1, after_rows=4)
        faults.arm_stall_sim(1, after_rows=2)
        assert faults.take_sim_fault() == ("kill", 4)
        assert faults.take_sim_fault() == ("stall", 2)
        assert faults.take_sim_fault() is None

    def test_truncate_respects_paths_and_skip(self):
        faults = FaultInjector()
        faults.arm_truncate_stream(
            1, after_rows=2, paths=("/v1/simulate",), skip=1
        )
        assert faults.take_truncate_stream("/v1/ebar") is None  # path miss
        assert faults.take_truncate_stream("/v1/simulate") is None  # skipped
        assert faults.take_truncate_stream("/v1/simulate") == 2
        assert faults.take_truncate_stream("/v1/simulate") is None

    def test_drop_client_consumes_after_skip(self):
        faults = FaultInjector()
        faults.arm_drop_client(2, skip=1)
        assert faults.take_drop_client("/a") is False
        assert faults.take_drop_client("/b") is True
        assert faults.take_drop_client("/c") is True
        assert faults.take_drop_client("/d") is False
        assert not faults.armed
