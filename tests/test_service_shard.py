"""Shard supervisor: fleet boot, aggregation, replacement, chaos, fallback."""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.service import (
    LatencyHistogram,
    RestartBudget,
    ServiceClient,
    ServiceConfig,
    aggregate_snapshots,
    work,
)
from repro.service.shard import ShardSupervisor
from repro.service.schemas import UnderlayRequest

DISTANCES = [2.0, 4.0, 8.0]
UNDERLAY_ARGS = dict(p=1e-3, mt=2, mr=2, d=5.0, bandwidth=10e3)

BOOT_TIMEOUT_S = 120.0
RECOVERY_TIMEOUT_S = 60.0


def _underlay_direct():
    return work.underlay_rows(
        UnderlayRequest(distances=tuple(DISTANCES), **UNDERLAY_ARGS)
    )


# --------------------------------------------------------------------- #
# Unit: RestartBudget and metrics aggregation                           #
# --------------------------------------------------------------------- #


class TestRestartBudget:
    def test_spend_until_exhausted(self):
        budget = RestartBudget(2)
        assert (budget.left, budget.used, budget.exhausted) == (2, 0, False)
        assert budget.spend() is True
        assert budget.spend() is True
        assert budget.exhausted is True
        assert budget.spend() is False
        assert (budget.left, budget.used) == (0, 2)

    def test_zero_budget_starts_exhausted(self):
        budget = RestartBudget(0)
        assert budget.exhausted is True
        assert budget.spend() is False


class TestAggregateSnapshots:
    @staticmethod
    def _snapshot(latencies_ms, **over):
        histogram = LatencyHistogram()
        for value in latencies_ms:
            histogram.observe(value)
        snap = {
            "requests_total": len(latencies_ms),
            "responses_by_status": {"200": len(latencies_ms)},
            "latency_ms": histogram.snapshot(),
            "coalesce": {
                "batches": 2,
                "requests": 4,
                "mean_batch_size": 2.0,
                "max_batch_size": 3,
            },
            "result_cache": {"hits": 1, "misses": 2},
            "pool": {"depth": 0, "peak_depth": 1},
            "health": "ok",
        }
        snap.update(over)
        return snap

    def test_counters_sum_and_peaks_take_the_max(self):
        merged = aggregate_snapshots(
            [
                self._snapshot([1.0, 3.0]),
                self._snapshot(
                    [10.0],
                    coalesce={
                        "batches": 1,
                        "requests": 3,
                        "mean_batch_size": 3.0,
                        "max_batch_size": 5,
                    },
                    pool={"depth": 1, "peak_depth": 4},
                ),
            ]
        )
        assert merged["requests_total"] == 3
        assert merged["responses_by_status"] == {"200": 3}
        assert merged["coalesce"]["batches"] == 3
        assert merged["coalesce"]["requests"] == 7
        assert merged["coalesce"]["max_batch_size"] == 5
        assert merged["coalesce"]["mean_batch_size"] == pytest.approx(7 / 3)
        assert merged["pool"]["depth"] == 1
        assert merged["pool"]["peak_depth"] == 4
        assert merged["result_cache"] == {"hits": 2, "misses": 4}
        assert "health" not in merged

    def test_latency_histograms_merge_bucketwise(self):
        merged = aggregate_snapshots(
            [self._snapshot([1.0, 1.0]), self._snapshot([100.0, 100.0])]
        )
        latency = merged["latency_ms"]
        assert latency["count"] == 4
        assert latency["sum_ms"] == pytest.approx(202.0)
        assert latency["max_ms"] == pytest.approx(100.0)
        assert latency["buckets"]["le_1"] == 2
        assert latency["buckets"]["le_100"] == 2
        # Half the mass sits at ~1 ms, half at ~100 ms: p95 lands high.
        assert latency["p95_ms"] > 50.0

    def test_empty_input(self):
        assert aggregate_snapshots([]) == {}


# --------------------------------------------------------------------- #
# End-to-end fleets (CLI subprocess, SO_REUSEPORT path)                 #
# --------------------------------------------------------------------- #


class Fleet:
    """A ``repro-service --shards N`` subprocess plus its announce info."""

    def __init__(self, tmp_path, *extra_args, env_extra=None, shards=2):
        env = dict(os.environ)
        env.pop("REPRO_NO_CACHE", None)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "table-cache")
        if env_extra:
            env.update(env_extra)
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--shards",
                str(shards),
                "--port",
                "0",
                "--workers",
                "0",
                "--no-request-log",
                "--quiet",
                "--result-cache-dir",
                str(tmp_path / "results"),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.announce = self._read_announce()
        self.port = self.announce["port"]
        self.admin_port = self.announce["admin_port"]

    def _read_announce(self):
        box = {}

        def run():
            assert self.proc.stdout is not None
            box["line"] = self.proc.stdout.readline()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(BOOT_TIMEOUT_S)
        line = box.get("line")
        if not line:
            self.proc.kill()
            self.proc.wait()
            raise RuntimeError("fleet did not announce in time")
        return json.loads(line)

    def client(self):
        return ServiceClient("127.0.0.1", self.port, timeout_s=30.0)

    def admin(self):
        return ServiceClient("127.0.0.1", self.admin_port, timeout_s=30.0)

    def wait_healthy(self, min_restarts=0):
        deadline = time.monotonic() + RECOVERY_TIMEOUT_S
        last = None
        while time.monotonic() < deadline:
            try:
                last = self.admin().healthz()
            except Exception:
                last = None
            if (
                last is not None
                and last["status"] == "ok"
                and last["shards"]["restarts"] >= min_restarts
            ):
                return last
            time.sleep(0.25)
        raise AssertionError(f"fleet never became healthy; last={last!r}")

    def stop(self, expect_code=0):
        self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=60)
        assert code == expect_code

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


@pytest.fixture
def fleet(tmp_path):
    fleets = []

    def factory(*args, **kwargs):
        built = Fleet(tmp_path, *args, **kwargs)
        fleets.append(built)
        return built

    yield factory
    for built in fleets:
        built.kill()


class TestShardedFleet:
    def test_fleet_serves_aggregates_and_shares_the_result_cache(self, fleet):
        running = fleet()
        assert running.announce["shards"] == 2
        running.wait_healthy()

        client = running.client()
        first = client.underlay_energy(distance=DISTANCES, **UNDERLAY_ARGS)
        assert first["rows"] == _underlay_direct()
        second = client.underlay_energy(distance=DISTANCES, **UNDERLAY_ARGS)
        assert second == first

        metrics = running.admin().metrics_snapshot()
        shards = metrics["shards"]
        assert shards["count"] == 2
        assert shards["alive"] == 2
        assert shards["mode"] == "reuseport"
        assert len(shards["per_shard"]) == 2
        assert all(entry["alive"] for entry in shards["per_shard"])
        assert metrics["health"] == "ok"
        assert metrics["requests_total"] >= 2
        # The repeat went to *some* shard; the disk cache is shared, so it
        # hit no matter which one answered.
        cache = metrics["result_cache"]
        assert cache["hits"] >= 1
        assert cache["hits"] + cache["misses"] >= 2

        running.stop()

    def test_killed_shard_is_replaced_within_budget(self, fleet):
        running = fleet()
        running.wait_healthy()
        metrics = running.admin().metrics_snapshot()
        victim = metrics["shards"]["per_shard"][0]
        os.kill(victim["pid"], signal.SIGKILL)

        # Surviving shard keeps answering while the slot is refilled.
        payload = None
        for _ in range(20):
            try:
                payload = running.client().underlay_energy(
                    distance=DISTANCES, **UNDERLAY_ARGS
                )
                break
            except Exception:
                time.sleep(0.25)
        assert payload is not None
        assert payload["rows"] == _underlay_direct()

        health = running.wait_healthy(min_restarts=1)
        assert health["shards"]["alive"] == 2
        assert health["shards"]["degraded"] is False

        after = running.client().underlay_energy(
            distance=DISTANCES, **UNDERLAY_ARGS
        )
        assert after["rows"] == _underlay_direct()
        running.stop()

    def test_kill_shard_fault_plan_drives_replacement(self, fleet):
        running = fleet(env_extra={"REPRO_SERVICE_FAULTS": '{"kill_shard": 1}'})
        health = running.wait_healthy(min_restarts=1)
        assert health["shards"]["restarts"] == 1
        assert health["status"] == "ok"
        payload = running.client().underlay_energy(
            distance=DISTANCES, **UNDERLAY_ARGS
        )
        assert payload["rows"] == _underlay_direct()
        running.stop()


# --------------------------------------------------------------------- #
# Fallback mode: inherited listener (no SO_REUSEPORT)                   #
# --------------------------------------------------------------------- #


class SupervisedFleet:
    """In-process supervisor (subprocess shards) for harness-level tests."""

    def __init__(self, config, shards=2, **kwargs):
        self.supervisor = ShardSupervisor(config, shards, **kwargs)
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._error = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as error:
            self._error = error
            self._ready.set()

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.supervisor.run(
            stop=self._stop,
            install_signal_handlers=False,
            announce=False,
            on_ready=lambda _: self._ready.set(),
        )

    def __enter__(self):
        self._thread.start()
        if not self._ready.wait(BOOT_TIMEOUT_S):
            raise RuntimeError("supervised fleet did not come up in time")
        if self._error is not None:
            raise RuntimeError(f"supervisor failed: {self._error!r}")
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass
        self._thread.join(BOOT_TIMEOUT_S)


class TestListenFdFallback:
    def test_fleet_works_without_reuseport(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "table-cache"))
        config = ServiceConfig(
            port=0,
            workers=0,
            request_log=False,
            result_cache_dir=str(tmp_path / "results"),
        )
        with SupervisedFleet(config, reuse_port=False) as running:
            port = running.supervisor.port
            client = ServiceClient("127.0.0.1", port, timeout_s=30.0)
            payload = client.underlay_energy(distance=DISTANCES, **UNDERLAY_ARGS)
            assert payload["rows"] == _underlay_direct()
            admin = ServiceClient(
                "127.0.0.1", running.supervisor.admin_port, timeout_s=30.0
            )
            metrics = admin.metrics_snapshot()
            assert metrics["shards"]["mode"] == "listen-fd"
            assert metrics["shards"]["alive"] == 2
            assert metrics["health"] == "ok"
