"""Negative tests for the experiment shape checks.

The ``check()`` functions are the reproduction's guard rails; these tests
verify they actually *fire* — a check that passes tampered results would
silently accept a broken reproduction.  Each test runs an experiment in
fast mode, corrupts the specific quantity a paper claim rests on, and
asserts the check rejects it.
"""

import copy

import pytest

from repro.experiments.registry import check_experiment, run_experiment


def _tampered(result, mutate):
    clone = copy.deepcopy(result)
    mutate(clone)
    return clone


class TestFig6Checks:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig6", fast=True)

    def test_accepts_genuine(self, result):
        check_experiment(result)

    def test_rejects_non_monotone_distance(self, result):
        def mutate(r):
            # make D2 shrink with D1 for one convention/bandwidth/m series
            rows = [list(row) for row in r.rows]
            rows[1][6] = rows[0][6] / 2.0
            r.rows = [tuple(row) for row in rows]

        with pytest.raises(AssertionError):
            check_experiment(_tampered(result, mutate))

    def test_rejects_inverted_d3_d2(self, result):
        def mutate(r):
            rows = []
            for row in r.rows:
                row = list(row)
                if row[0] == "diversity_only":
                    row[7] = row[6] * 0.5  # D3 below D2
                rows.append(tuple(row))
            r.rows = rows

        with pytest.raises(AssertionError):
            check_experiment(_tampered(result, mutate))


class TestFig7Checks:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig7", fast=True)

    def test_accepts_genuine(self, result):
        check_experiment(result)

    def test_rejects_cheap_siso(self, result):
        def mutate(r):
            rows = []
            for row in r.rows:
                row = list(row)
                if row[1] == 1 and row[2] == 1:
                    row[5] = 1e-9  # SISO suddenly cheaper than cooperation
                rows.append(tuple(row))
            r.rows = rows

        with pytest.raises(AssertionError):
            check_experiment(_tampered(result, mutate))


class TestTable1Checks:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table1", fast=True)

    def test_accepts_genuine(self, result):
        check_experiment(result)

    def test_rejects_lost_diversity_gain(self, result):
        def mutate(r):
            rows = [list(row) for row in r.rows]
            for row in rows:
                row[4] = 1.2  # gain collapses
            r.rows = [tuple(row) for row in rows]

        with pytest.raises(AssertionError):
            check_experiment(_tampered(result, mutate))

    def test_rejects_leaky_null(self, result):
        def mutate(r):
            rows = [list(row) for row in r.rows]
            rows[0][5] = 0.8  # strong interference at the primary
            r.rows = [tuple(row) for row in rows]

        with pytest.raises(AssertionError):
            check_experiment(_tampered(result, mutate))


class TestTable4Checks:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table4", fast=True)

    def test_accepts_genuine(self, result):
        check_experiment(result)

    def test_rejects_cooperation_losing(self, result):
        def mutate(r):
            rows = [list(row) for row in r.rows]
            rows[0][1] = rows[0][2] + 0.1  # coop worse than solo at 800
            r.rows = [tuple(row) for row in rows]

        with pytest.raises(AssertionError):
            check_experiment(_tampered(result, mutate))


class TestGameChecks:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("game", fast=True)

    def test_accepts_genuine(self, result):
        check_experiment(result)

    def test_rejects_flat_violation_rate(self, result):
        def mutate(r):
            rows = [list(row) for row in r.rows]
            for row in rows:
                row[1] = 0.0  # the game suddenly guarantees the threshold
            r.rows = [tuple(row) for row in rows]

        with pytest.raises(AssertionError):
            check_experiment(_tampered(result, mutate))
