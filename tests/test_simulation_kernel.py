"""Event-kernel tests: heap/calendar equivalence, cancellation, horizons."""

import pytest

from repro.simulation.kernel import CalendarKernel, HeapKernel, make_kernel
from repro.simulation.workloads import (
    run_hold_churn,
    run_selfclock_churn,
    verify_order_trace,
)

KERNELS = [HeapKernel, CalendarKernel]


@pytest.fixture(params=KERNELS, ids=["heap", "calendar"])
def kernel(request):
    return request.param()


class TestFactory:
    def test_make_kernel(self):
        assert isinstance(make_kernel("heap"), HeapKernel)
        assert isinstance(make_kernel("calendar"), CalendarKernel)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_kernel("splay")

    def test_calendar_options(self):
        make_kernel("calendar", bucket_width=0.25, n_buckets=64)
        with pytest.raises(ValueError):
            make_kernel("calendar", bucket_width=0.0)


class TestOrdering:
    def test_time_order(self, kernel):
        log = []
        kernel.schedule(3.0, lambda: log.append("c"))
        kernel.schedule(1.0, lambda: log.append("a"))
        kernel.schedule(2.0, lambda: log.append("b"))
        kernel.run()
        assert log == ["a", "b", "c"]
        assert kernel.now == 3.0

    def test_fifo_at_same_instant(self, kernel):
        log = []
        for tag in "xyz":
            kernel.schedule(1.0, lambda t=tag: log.append(t))
        kernel.run()
        assert log == ["x", "y", "z"]

    def test_nested_scheduling(self, kernel):
        log = []

        def first():
            log.append(("first", kernel.now))
            kernel.schedule(0.5, lambda: log.append(("second", kernel.now)))

        kernel.schedule(1.0, first)
        kernel.run()
        assert log == [("first", 1.0), ("second", 1.5)]

    def test_schedule_at_absolute(self, kernel):
        kernel.schedule(1.0)
        kernel.run()
        log = []
        kernel.schedule_at(5.0, lambda: log.append(kernel.now))
        kernel.run()
        assert log == [5.0]

    def test_schedule_in_past_rejected(self, kernel):
        kernel.schedule(1.0)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule_at(0.5)

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.schedule(-1.0)
        with pytest.raises(ValueError):
            kernel.schedule_many([1.0, -0.5])


class TestEquivalence:
    """Both kernels dispatch in the identical (time, seq) total order."""

    @pytest.mark.parametrize("hold,n_events", [(64, 2000), (500, 5000)])
    def test_order_trace_identical(self, hold, n_events):
        trace_heap = verify_order_trace(HeapKernel(), hold, n_events)
        trace_cal = verify_order_trace(CalendarKernel(), hold, n_events)
        assert trace_heap == trace_cal

    def test_selfclock_counts_match(self):
        a = run_selfclock_churn(HeapKernel(), hold=50, n_events=3000)
        b = run_selfclock_churn(CalendarKernel(), hold=50, n_events=3000)
        assert a == b == 3000

    def test_hold_churn_conserves_events(self, kernel):
        assert run_hold_churn(kernel, hold=256, n_events=4096) == 4096
        # every inserted event is either dispatched or still pending
        assert kernel.events_processed + kernel.pending == 4096 + 256


class TestCancellation:
    def test_cancelled_event_skipped(self, kernel):
        log = []
        eid = kernel.schedule(1.0, lambda: log.append("dead"))
        kernel.schedule(2.0, lambda: log.append("alive"))
        assert kernel.cancel(eid) is True
        kernel.run()
        assert log == ["alive"]
        assert kernel.events_processed == 1

    def test_cancel_unknown_id(self, kernel):
        assert kernel.cancel(12345) is False

    def test_cancel_after_fire(self, kernel):
        eid = kernel.schedule(1.0)
        kernel.run()
        assert kernel.cancel(eid) is False

    def test_double_cancel(self, kernel):
        eid = kernel.schedule(1.0)
        assert kernel.cancel(eid) is True
        assert kernel.cancel(eid) is False

    def test_batch_ids_not_cancellable(self, kernel):
        ids = kernel.schedule_many([1.0, 2.0])
        assert all(kernel.cancel(i) is False for i in ids)
        assert kernel.run() == 2

    def test_pending_excludes_cancelled(self, kernel):
        eid = kernel.schedule(1.0)
        kernel.schedule(2.0)
        assert kernel.pending == 2
        kernel.cancel(eid)
        assert kernel.pending == 1

    def test_cancel_from_callback(self, kernel):
        log = []
        victim = kernel.schedule(2.0, lambda: log.append("victim"))
        kernel.schedule(1.0, lambda: kernel.cancel(victim))
        kernel.schedule(3.0, lambda: log.append("after"))
        kernel.run()
        assert log == ["after"]


class TestBatchInsertion:
    def test_schedule_many_returns_id_range(self, kernel):
        first = kernel.schedule(1.0)
        ids = kernel.schedule_many([0.5, 1.5, 2.5])
        assert list(ids) == [first + 1, first + 2, first + 3]
        assert kernel.pending == 4

    def test_empty_batch(self, kernel):
        assert len(kernel.schedule_many([])) == 0
        assert kernel.pending == 0

    def test_batch_interleaves_with_singles(self, kernel):
        log = []
        kernel.schedule(2.0, lambda: log.append("single"))
        kernel.schedule_many([1.0, 3.0], lambda: log.append("batch"))
        kernel.run()
        assert log == ["batch", "single", "batch"]


class TestHorizons:
    def test_run_until_stops_clock(self, kernel):
        log = []
        kernel.schedule(1.0, lambda: log.append(1))
        kernel.schedule(10.0, lambda: log.append(10))
        kernel.run(until=5.0)
        assert log == [1]
        assert kernel.now == 5.0
        assert kernel.pending == 1
        kernel.run()
        assert log == [1, 10]
        assert kernel.now == 10.0

    def test_until_advances_clock_when_queue_empty(self, kernel):
        kernel.run(until=7.0)
        assert kernel.now == 7.0

    def test_until_is_inclusive(self, kernel):
        log = []
        kernel.schedule(5.0, lambda: log.append(kernel.now))
        kernel.run(until=5.0)
        assert log == [5.0]

    def test_repeated_until_grid(self, kernel):
        """Snapshot-style run(until=k*dt) loops land exactly on the grid."""
        fired = []
        kernel.schedule_many([0.3, 1.7, 2.2, 4.9], lambda: fired.append(kernel.now))
        for k in range(1, 6):
            kernel.run(until=float(k))
            assert kernel.now == float(k)
        assert fired == [0.3, 1.7, 2.2, 4.9]

    def test_max_events_budget(self, kernel):
        log = []
        for i in range(5):
            kernel.schedule(float(i + 1), lambda i=i: log.append(i))
        assert kernel.run(max_events=2) == 2
        assert log == [0, 1]
        assert kernel.pending == 3
        kernel.run()
        assert log == [0, 1, 2, 3, 4]

    def test_budget_does_not_advance_to_until(self, kernel):
        kernel.schedule(1.0)
        kernel.schedule(2.0)
        kernel.run(until=10.0, max_events=1)
        assert kernel.now == 1.0

    def test_step(self, kernel):
        log = []
        kernel.schedule(1.0, lambda: log.append("a"))
        assert kernel.step() is True
        assert kernel.step() is False
        assert log == ["a"]


class TestCalendarResize:
    def test_growth_resize_preserves_order(self):
        """A bulk insert inside a callback forces a mid-run resize."""
        kernel = CalendarKernel(n_buckets=16)
        log = []

        def burst():
            log.append(("burst", kernel.now))
            kernel.schedule_many(
                [0.001 * i for i in range(2000)], lambda: log.append(None)
            )

        kernel.schedule(1.0, burst)
        kernel.schedule(0.5, lambda: log.append(("early", kernel.now)))
        kernel.schedule(4.0, lambda: log.append(("late", kernel.now)))
        kernel.run()
        assert log[0] == ("early", 0.5)
        assert log[1] == ("burst", 1.0)
        assert log[-1] == ("late", 4.0)
        assert kernel.events_processed == 2003

    def test_sparse_population_advances(self):
        """Events far beyond the initial bucket year are still reached."""
        kernel = CalendarKernel(bucket_width=0.01, n_buckets=16)
        log = []
        kernel.schedule(5000.0, lambda: log.append(kernel.now))
        kernel.run()
        assert log == [5000.0]

    def test_schedule_into_draining_slot(self):
        """A callback scheduling due-now work is dispatched this lap."""
        kernel = CalendarKernel(bucket_width=10.0)
        log = []

        def fire():
            log.append(kernel.now)
            if len(log) < 4:
                kernel.schedule(0.25, fire)

        kernel.schedule(1.0, fire)
        kernel.run()
        assert log == [1.0, 1.25, 1.5, 1.75]
