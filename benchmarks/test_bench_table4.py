"""Benchmark: regenerate Table 4 (underlay PER vs transmit amplitude)."""

from repro.experiments import run_experiment
from repro.experiments.table4_underlay_per import check
from repro.modulation import GMSKModem
from repro.testbed.environment import table4_testbed
from repro.testbed.image import PACKET_BYTES


def test_table4_amplitude_ladder(benchmark):
    result = benchmark(run_experiment, "table4", fast=True)
    check(result)


def test_table4_cooperative_image_burst(benchmark):
    """79 cooperative GMSK packets (the fast Table 4 unit of work)."""
    testbed = table4_testbed()
    result = benchmark(
        testbed.run_packet_experiment,
        ["tx1", "tx2"],
        "rx",
        79,
        PACKET_BYTES * 8,
        GMSKModem(),
    )
    assert result.per < 0.5
