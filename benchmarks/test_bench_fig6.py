"""Benchmark: regenerate Figure 6 (overlay relay distances)."""

from repro.experiments import run_experiment
from repro.experiments.fig6_overlay_distance import check
from repro.core.overlay import OverlaySystem
from repro.energy.model import EnergyModel


def test_fig6_full_sweep(benchmark):
    """Both conventions, full D1/m/B grid (the paper's Figure 6 axes)."""
    result = benchmark(run_experiment, "fig6", fast=True)
    check(result)


def test_fig6_single_point(benchmark):
    """The paper's worked example: D1 = 250 m, m = 3, B = 40 kHz."""
    system = OverlaySystem(EnergyModel(ebar_convention="diversity_only"))
    result = benchmark(system.distance_analysis, 250.0, 3, 40e3)
    assert result.d3 > result.d2 > result.d1
