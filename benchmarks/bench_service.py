"""Load generator for the repro.service planning daemon.

Boots ``python -m repro.service`` as a subprocess on an ephemeral port,
fires a mixed workload (>= 1k requests by default) from a thread pool of
stdlib clients, and writes ``BENCH_service.json`` with client-side
throughput and latency percentiles plus the server's own ``/metrics``
snapshot (coalesced-batch statistics, cache hit rate, pool counters).

Three variants run back to back:

* ``single`` — one server process, result cache off (the PR-5 baseline);
* ``sharded`` — ``--shards N`` (default: one per available CPU, min 2)
  behind one SO_REUSEPORT port, result cache off; the report records the
  speedup over ``single`` together with ``cpu_count`` so a multi-core
  runner can assert the >= 2x scaling criterion;
* ``warm_cache`` — one server with the persistent result cache on a
  fresh directory; the identical workload runs twice (cold, then warm)
  and the report records both passes plus the observed hit rate.

The workload is the seeded ``bench`` preset of :mod:`repro.loadgen` —
the same spec ``python -m repro.loadgen run --preset bench`` fires — so
the benchmark and the chaos load generator share one traffic model.  It
is deliberately coalescing-friendly: scalar requests share group keys
(same ``(mt, mr)`` ebar group, same overlay ``(m, bandwidth)`` config,
...) while varying the per-item axis, so concurrent arrivals within the
coalescing window merge into single batch-kernel calls.  The script
fails (exit 1) if the observed mean coalesced-batch size is not greater
than 1 — the whole point of the scheduler — or if the warm pass misses
the result cache.

Usage (from the repo root)::

    scripts/bench_service.sh
    PYTHONPATH=src python benchmarks/bench_service.py --requests 2000
"""

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

BENCH_RATE_PER_S = 128.0


# --------------------------------------------------------------------- #
# Workload construction                                                  #
# --------------------------------------------------------------------- #


def build_workload(n_requests):
    """Return a list of ``(endpoint_kind, fn(client) -> payload)`` calls.

    The mix comes from the seeded loadgen ``bench`` preset: scalar calls
    dominate (they exercise the coalescer — every payload is drawn from a
    shared-group grid) with a small tail of sweeps for the worker pool.
    Arrival order is the plan's own time-sorted interleaving, so repeated
    runs fire the identical sequence.
    """
    from repro.loadgen import bench_spec, build_plan

    spec = bench_spec(
        seed=2026,
        duration_s=max(10.0, 1.2 * n_requests / BENCH_RATE_PER_S),
        total_rate_per_s=BENCH_RATE_PER_S,
    )
    calls = [
        (request.kind,
         lambda c, r=request: c.request(r.method, r.path, r.body))
        for request in build_plan(spec)
    ]
    # Top up with round-robin repeats if the plan is short of the target
    # (repeats are cache hits for ebar — still valid requests).
    i = 0
    while len(calls) < n_requests:
        calls.append(calls[i])
        i += 1
    return calls[:n_requests]


# --------------------------------------------------------------------- #
# Load generation                                                        #
# --------------------------------------------------------------------- #


def run_load(host, port, calls, n_threads):
    """Fire every call from a thread pool; return per-request samples."""
    from repro.service.client import ServiceClient, ServiceClientError

    def fire(item):
        endpoint, fn = item
        client = ServiceClient(host, port, timeout_s=120.0)
        # Benchmarks measure wall-clock by definition (here and below).
        start = time.perf_counter()  # lint: ignore[RP103]
        try:
            fn(client)
            error = None
        except ServiceClientError as exc:
            error = exc.status
        latency_ms = 1e3 * (time.perf_counter() - start)  # lint: ignore[RP103]
        return endpoint, latency_ms, error

    wall_start = time.perf_counter()  # lint: ignore[RP103]
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        samples = list(pool.map(fire, calls))
    wall_s = time.perf_counter() - wall_start  # lint: ignore[RP103]
    return samples, wall_s


def summarize(latencies_ms):
    """Latency percentiles, shared with the loadgen trace summaries."""
    from repro.loadgen import summarize_latencies

    return summarize_latencies(latencies_ms)


# --------------------------------------------------------------------- #
# Server lifecycle                                                       #
# --------------------------------------------------------------------- #


class Server:
    """A ``repro.service`` subprocess (single or sharded) under test."""

    def __init__(self, workers, coalesce_ms, queue_limit, *, shards=1,
                 result_cache_dir=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        argv = [
            sys.executable, "-m", "repro.service",
            "--port", "0",
            "--shards", str(shards),
            "--workers", str(workers),
            "--coalesce-ms", str(coalesce_ms),
            "--queue-limit", str(queue_limit),
            "--seed", "2026",
            "--no-request-log",
            "--quiet",
        ]
        if result_cache_dir is None:
            argv.append("--no-result-cache")
        else:
            argv.extend(["--result-cache-dir", str(result_cache_dir)])
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        announced = json.loads(self.proc.stdout.readline())
        assert announced["event"] == "listening", announced
        self.host = announced["host"]
        self.port = announced["port"]
        # Sharded fleets expose /metrics on the supervisor's admin port
        # (shard listeners sit behind kernel balancing); single servers
        # answer /metrics on the main port directly.
        self.metrics_port = announced.get("admin_port", self.port)

    def metrics_snapshot(self):
        from repro.service.client import ServiceClient

        client = ServiceClient(self.host, self.metrics_port, timeout_s=60.0)
        return client.metrics_snapshot()

    def stop(self):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=60)

    def kill_if_alive(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def run_variant(server, calls, n_threads):
    """Fire the workload at a running server; return (pass report, metrics)."""
    samples, wall_s = run_load(server.host, server.port, calls, n_threads)
    metrics = server.metrics_snapshot()
    errors = [s for s in samples if s[2] is not None]
    by_endpoint = {}
    for endpoint, latency_ms, _ in samples:
        by_endpoint.setdefault(endpoint, []).append(latency_ms)
    report = {
        "totals": {
            "requests": len(samples),
            "errors": len(errors),
            "error_statuses": sorted({s[2] for s in errors}),
            "wall_time_s": wall_s,
            "throughput_rps": len(samples) / wall_s,
        },
        "latency_ms": summarize([s[1] for s in samples]),
        "latency_by_endpoint_ms": {
            endpoint: summarize(lats)
            for endpoint, lats in sorted(by_endpoint.items())
        },
    }
    return report, metrics


def server_metrics_summary(metrics):
    summary = {
        "coalesce": metrics["coalesce"],
        "ebar_cache": metrics["ebar_cache"],
        "result_cache": metrics.get("result_cache", {"hits": 0, "misses": 0}),
        "pool": metrics["pool"],
        "responses_by_status": metrics["responses_by_status"],
        "server_latency_ms": {
            k: metrics["latency_ms"][k]
            for k in ("count", "p50_ms", "p95_ms", "p99_ms", "max_ms")
        },
    }
    if "shards" in metrics:
        shards = metrics["shards"]
        summary["shards"] = {
            k: shards[k]
            for k in ("count", "alive", "restarts", "degraded", "mode")
        }
    return summary


def hit_rate(result_cache):
    total = result_cache["hits"] + result_cache["misses"]
    return result_cache["hits"] / total if total else 0.0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=1280,
                        help="request count per variant (>= 1000; default 1280)")
    parser.add_argument("--threads", type=int, default=16,
                        help="client thread count (default 16)")
    parser.add_argument("--workers", type=int, default=2,
                        help="server sweep workers (default 2)")
    parser.add_argument("--shards", default="auto",
                        help="shard count for the sharded variant "
                             "(int or 'auto' = one per CPU, min 2)")
    parser.add_argument("--coalesce-ms", type=float, default=5.0,
                        help="server coalescing window (default 5 ms)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="server sweep queue limit (default 64)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_service.json"),
                        help="output JSON path (default BENCH_service.json)")
    args = parser.parse_args(argv)
    if args.requests < 1000:
        parser.error("--requests must be >= 1000 for a meaningful run")

    from repro.utils.sysinfo import available_cpu_count

    cpu_count = available_cpu_count()
    shards = (max(2, cpu_count) if args.shards == "auto"
              else max(2, int(args.shards)))

    # Seeded loadgen plan: deterministic request mix for the bench.
    calls = build_workload(args.requests)
    print(f"bench_service: {len(calls)} requests/variant, "
          f"{args.threads} threads, coalesce window {args.coalesce_ms} ms, "
          f"{cpu_count} cpus, sharded variant uses {shards} shards",
          flush=True)

    variants = {}
    exit_codes = {}

    def run_server_variant(name, **server_kwargs):
        server = Server(args.workers, args.coalesce_ms, args.queue_limit,
                        **server_kwargs)
        try:
            report, metrics = run_variant(server, calls, args.threads)
            exit_codes[name] = server.stop()
        finally:
            server.kill_if_alive()
        report["server_metrics"] = server_metrics_summary(metrics)
        variants[name] = report
        totals, lat = report["totals"], report["latency_ms"]
        print(f"bench_service[{name}]: {totals['throughput_rps']:.1f} req/s, "
              f"p50 {lat['p50_ms']:.2f} ms, p95 {lat['p95_ms']:.2f} ms",
              flush=True)
        return report, metrics

    # Variant 1: single shard, result cache off — the baseline.
    single, _ = run_server_variant("single")

    # Variant 2: N shards behind one SO_REUSEPORT port, result cache off.
    sharded, _ = run_server_variant("sharded", shards=shards)
    sharded["shards"] = shards
    sharded["speedup_vs_single"] = (
        sharded["totals"]["throughput_rps"]
        / single["totals"]["throughput_rps"]
    )

    # Variant 3: one server, persistent result cache on a fresh directory;
    # the identical workload runs cold then warm against the same server.
    with tempfile.TemporaryDirectory(prefix="bench-rescache-") as cache_dir:
        server = Server(args.workers, args.coalesce_ms, args.queue_limit,
                        result_cache_dir=cache_dir)
        try:
            cold, _ = run_variant(server, calls, args.threads)
            warm, metrics = run_variant(server, calls, args.threads)
            exit_codes["warm_cache"] = server.stop()
        finally:
            server.kill_if_alive()
    warm_cache = {
        "cold": {"totals": cold["totals"], "latency_ms": cold["latency_ms"]},
        "warm": {"totals": warm["totals"], "latency_ms": warm["latency_ms"]},
        "warm_p50_over_cold_p50": (
            warm["latency_ms"]["p50_ms"] / cold["latency_ms"]["p50_ms"]
        ),
        "result_cache_hit_rate": hit_rate(metrics["result_cache"]),
        "server_metrics": server_metrics_summary(metrics),
    }
    variants["warm_cache"] = warm_cache
    print(f"bench_service[warm_cache]: cold p50 "
          f"{cold['latency_ms']['p50_ms']:.2f} ms, warm p50 "
          f"{warm['latency_ms']['p50_ms']:.2f} ms, hit rate "
          f"{warm_cache['result_cache_hit_rate']:.2f}", flush=True)

    coalesce = single["server_metrics"]["coalesce"]
    report = {
        "benchmark": "repro.service load test",
        "config": {
            "requests_per_variant": len(calls),
            "threads": args.threads,
            "workers": args.workers,
            "shards": shards,
            "cpu_count": cpu_count,
            "coalesce_ms": args.coalesce_ms,
            "queue_limit": args.queue_limit,
        },
        # Legacy top-level fields mirror the single-shard baseline so older
        # tooling reading BENCH_service.json keeps working.
        "totals": dict(single["totals"],
                       server_exit_code=exit_codes["single"]),
        "latency_ms": single["latency_ms"],
        "latency_by_endpoint_ms": single["latency_by_endpoint_ms"],
        "server_metrics": single["server_metrics"],
        "variants": variants,
        "scaling": {
            "cpu_count": cpu_count,
            "shards": shards,
            "sharded_speedup_vs_single": sharded["speedup_vs_single"],
            "note": ("speedup is bounded by cpu_count; the >= 2x criterion "
                     "applies on multi-core runners"),
        },
        "server_exit_codes": exit_codes,
    }
    pathlib.Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    lat = single["latency_ms"]
    print(f"bench_service: single {single['totals']['throughput_rps']:.1f} "
          f"req/s (p95 {lat['p95_ms']:.2f} ms), sharded x"
          f"{sharded['speedup_vs_single']:.2f} on {cpu_count} cpus, "
          f"warm/cold p50 {warm_cache['warm_p50_over_cold_p50']:.2f}, "
          f"mean coalesced batch {coalesce['mean_batch_size']:.2f} "
          f"(max {coalesce['max_batch_size']})", flush=True)
    print(f"wrote {args.output}", flush=True)

    failed = False
    for name, variant in variants.items():
        passes = ([variant] if "totals" in variant
                  else [variant["cold"], variant["warm"]])
        for item in passes:
            if item["totals"]["errors"]:
                print(f"bench_service: {name}: "
                      f"{item['totals']['errors']} requests failed "
                      f"(statuses {item['totals']['error_statuses']})",
                      file=sys.stderr)
                failed = True
    if coalesce["mean_batch_size"] <= 1.0:
        print("bench_service: mean coalesced-batch size <= 1 — "
              "coalescing never engaged", file=sys.stderr)
        failed = True
    if warm_cache["result_cache_hit_rate"] <= 0.5:
        print("bench_service: warm pass barely hit the result cache "
              f"(hit rate {warm_cache['result_cache_hit_rate']:.2f})",
              file=sys.stderr)
        failed = True
    for name, code in exit_codes.items():
        if code != 0:
            print(f"bench_service: {name} server exited {code}",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
