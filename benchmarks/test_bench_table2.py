"""Benchmark: regenerate Table 2 (single-relay overlay BER)."""

from repro.experiments import run_experiment
from repro.experiments.table2_single_relay_ber import check
from repro.testbed.environment import table2_testbed


def test_table2_three_trials(benchmark):
    result = benchmark(run_experiment, "table2", fast=True)
    check(result)


def test_table2_one_cooperative_run(benchmark):
    """One 100k-bit decode-and-forward run — the paper's unit experiment."""
    testbed = table2_testbed()
    result = benchmark(
        testbed.run_relay_experiment, "tx", ["relay"], "rx", 100_000
    )
    assert result.ber < 0.1
