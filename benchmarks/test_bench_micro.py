"""Micro-benchmarks of the library's hot kernels.

These track the throughput of the building blocks every experiment leans
on: the STBC encode/decode path, the Monte-Carlo link chain, clustering,
the MAC simulator and the field computations.
"""

import numpy as np
import pytest

from repro.channel.multipath import MultipathEnvironment
from repro.channel.rayleigh import rayleigh_mimo_channel
from repro.mac.csma import CsmaCaSimulator
from repro.modulation import BPSKModem, QAMModem
from repro.network.clustering import d_cluster
from repro.network.graph import build_communication_graph
from repro.phy.frame import bytes_to_bits, with_crc
from repro.phy.link import simulate_link
from repro.stbc.ostbc import ostbc_for


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestStbcThroughput:
    def test_alamouti_encode_decode_100k_symbols(self, benchmark, rng):
        code = ostbc_for(2)
        s = rng.standard_normal(100_000) + 1j * rng.standard_normal(100_000)
        h = rayleigh_mimo_channel(2, 2, 50_000, rng=rng)

        def chain():
            x = code.encode(s)
            y = np.einsum("btm,bjm->btj", x, h)
            return code.decode(y, h)

        out = benchmark(chain)
        assert out.shape == (100_000,)

    def test_g4_encode_decode(self, benchmark, rng):
        code = ostbc_for(4)
        s = rng.standard_normal(40_000) + 1j * rng.standard_normal(40_000)
        h = rayleigh_mimo_channel(4, 2, 10_000, rng=rng)

        def chain():
            x = code.encode(s)
            y = np.einsum("btm,bjm->btj", x, h)
            return code.decode(y, h)

        out = benchmark(chain)
        assert out.shape == (40_000,)


class TestLinkThroughput:
    def test_bpsk_rayleigh_200k_bits(self, benchmark):
        result = benchmark(simulate_link, 200_000, BPSKModem(), 10.0)
        assert 0.0 < result.ber < 0.1

    def test_qam64_mimo_2x2(self, benchmark):
        result = benchmark(
            simulate_link, 120_000, QAMModem(6), 25.0, 2, 2
        )
        assert result.ber < 0.2


class TestNetworkKernels:
    def test_d_cluster_500_nodes(self, benchmark, rng):
        pts = rng.uniform(0, 500, (500, 2))
        clusters = benchmark(d_cluster, pts, 10.0, 4)
        assert sum(len(c) for c in clusters) == 500

    def test_communication_graph_500_nodes(self, benchmark, rng):
        pts = rng.uniform(0, 200, (500, 2))
        graph = benchmark(build_communication_graph, pts, 25.0)
        assert graph.n_vertices == 500


class TestMacAndFraming:
    def test_csma_8_stations_1s(self, benchmark):
        def run():
            return CsmaCaSimulator(n_stations=8, rng=1).run(1_000_000)

        stats = benchmark(run)
        assert stats.delivered > 0

    def test_crc_frame_1500_bytes(self, benchmark, rng):
        payload = bytes_to_bits(rng.integers(0, 256, 1500).astype(np.uint8))
        frame = benchmark(with_crc, payload)
        assert frame.size == payload.size + 16


class TestFieldComputation:
    def test_indoor_field_1000_points(self, benchmark, rng):
        env = MultipathEnvironment.random_indoor(n_scatterers=8, rng=3)
        tx = np.array([[0.05, 0.0], [-0.05, 0.0]])
        points = rng.uniform(-3, 3, (1000, 2))

        amps = benchmark(env.amplitude_at, tx, points, 0.12)
        assert amps.shape == (1000,)

    def test_indoor_field_1000_points_scalar_loop(self, benchmark, rng):
        env = MultipathEnvironment.random_indoor(n_scatterers=8, rng=3)
        tx = np.array([[0.05, 0.0], [-0.05, 0.0]])
        points = rng.uniform(-3, 3, (1000, 2))

        def sweep():
            return [env.amplitude_at(tx, p, 0.12) for p in points]

        amps = benchmark(sweep)
        assert len(amps) == 1000
