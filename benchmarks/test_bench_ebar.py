"""Benchmark: the e_bar_b anchor table (Section 6.2 magnitudes)."""

from repro.energy.ebar import solve_ebar
from repro.energy.table import EbarTable
from repro.experiments import run_experiment
from repro.experiments.ebar_magnitudes import check


def test_ebar_anchor_grid(benchmark):
    result = benchmark(run_experiment, "ebar")
    check(result)


def test_ebar_single_solve(benchmark):
    value = benchmark(solve_ebar, 0.001, 2, 2, 3)
    assert 1e-20 < value < 1e-19


def test_ebar_preprocessing_table(benchmark):
    """The Algorithms' "Preprocessing" step: build a node's lookup table."""
    table = benchmark(
        EbarTable,
        (0.005, 0.001),
        tuple(range(1, 9)),
        (1, 2, 3),
        (1, 2, 3),
    )
    assert len(table) == 2 * 8 * 3 * 3
