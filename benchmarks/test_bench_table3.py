"""Benchmark: regenerate Table 3 (multi-relay overlay BER)."""

from repro.experiments import run_experiment
from repro.experiments.table3_multi_relay_ber import check
from repro.testbed.environment import table3_testbed


def test_table3_all_modes(benchmark):
    result = benchmark(run_experiment, "table3", fast=True)
    check(result)


def test_table3_three_relay_run(benchmark):
    testbed = table3_testbed()
    result = benchmark(
        testbed.run_relay_experiment,
        "tx",
        ["relay1", "relay2", "relay3"],
        "rx",
        100_000,
    )
    assert result.ber < 0.12
