"""Benchmarks for the extension systems beyond the paper's headline scope."""

import numpy as np
import pytest

from repro.baselines.power_game import PowerControlGame
from repro.channel.doppler import JakesFadingProcess
from repro.energy.model import EnergyModel
from repro.modulation import BPSKModem
from repro.network import CoMIMONet, SUNode
from repro.network.protocol import SessionSimulator
from repro.phy.hop import simulate_hop
from repro.sensing import CooperativeSensor, EnergyDetector


class TestHopSimulation:
    def test_full_mimo_hop_100k_bits(self, benchmark):
        result = benchmark(
            simulate_hop, 100_000, BPSKModem(), 25.0, 10.0, 3, 2, 8.0, 7
        )
        assert result.ber < 0.01


class TestSensing:
    def test_cooperative_faded_detection(self, benchmark):
        sensor = CooperativeSensor(EnergyDetector(500, 0.05), 4, "or")
        pd = benchmark(sensor.detection_probability_faded, 0.15, 20_000, 1)
        assert pd > 0.8


class TestPowerGame:
    def test_8_player_equilibrium(self, benchmark):
        rng = np.random.default_rng(0)
        n = 8
        d = rng.uniform(5.0, 100.0, (n, n))
        np.fill_diagonal(d, rng.uniform(2.0, 10.0, n))
        g = 1e-3 * d ** -3.5
        h = 1e-3 * rng.uniform(20.0, 120.0, n) ** -3.5
        game = PowerControlGame(g, h, price=1e12)
        outcome = benchmark(game.run)
        assert outcome.converged


class TestDoppler:
    def test_jakes_100k_samples(self, benchmark):
        proc = JakesFadingProcess(doppler_hz=10.0, n_oscillators=32, rng=0)
        t = np.linspace(0.0, 10.0, 100_000)
        h = benchmark(proc.sample, t)
        assert h.shape == (100_000,)


class TestProtocol:
    def test_three_hop_session(self, benchmark):
        def run():
            rng = np.random.default_rng(5)
            nodes = []
            nid = 0
            for cx in (0.0, 120.0, 240.0, 360.0):
                for _ in range(3):
                    off = rng.uniform(-0.8, 0.8, 2)
                    nodes.append(SUNode(nid, (cx + off[0], off[1]), battery_j=1e4))
                    nid += 1
            net = CoMIMONet(nodes, cluster_diameter=2.5, longhaul_range=150.0)
            sim = SessionSimulator(net, EnergyModel(), rng=5)
            return sim.run_session(0, 3, 500_000.0)

        result = benchmark(run)
        assert result.completed


class TestCoding:
    def test_viterbi_20k_info_bits(self, benchmark):
        from repro.phy.coded import simulate_coded_link

        result = benchmark(simulate_coded_link, 20_000, 8.0)
        assert result.ber < result.channel_ber


class TestCapacity:
    def test_ergodic_capacity_2x2(self, benchmark):
        from repro.analysis.capacity import ergodic_capacity

        c = benchmark(ergodic_capacity, 2, 2, 10.0, 20_000, 0)
        assert 4.0 < c < 7.0
