"""Kernel regression gate: time the hot kernels against a committed baseline.

Times the kernels that dominate every sweep, table build and simulation:

* ``ebar_batch_solve`` — the vectorized ``solve_ebar_batch`` over the
  full default anchor grid (the "Preprocessing" inner kernel);
* ``ebar_table_build`` — a cold ``EbarTable`` construction (cache off);
* ``fig6_sweep`` — the Figure 6 overlay distance sweep (``fast`` grid);
* ``fig7_sweep`` — the Figure 7 underlay PA energy sweep (``fast`` grid);
* ``sim_hold_heap`` / ``sim_hold_calendar`` — hold-model event churn on
  the two `repro.simulation` kernels at a 5k-timer population (the
  absolute events/sec floor lives in ``bench_sim.py``; this entry guards
  against relative regressions).

Two modes::

    PYTHONPATH=src python benchmarks/bench_kernels.py --update
    PYTHONPATH=src python benchmarks/bench_kernels.py --check

``--update`` rewrites ``benchmarks/BASELINE_kernels.json`` from the
current machine.  ``--check`` re-times every kernel and fails (exit 1) if
any is more than ``--tolerance`` (default 25%) slower than the baseline.

Raw wall-clock baselines do not transfer between machines, so the
baseline also records a *calibration* measurement — a fixed pure-numpy
workload whose speed tracks the host's floating-point throughput.  At
check time every kernel's budget is scaled by the measured calibration
ratio (current machine vs baseline machine), which keeps the 25% gate
meaningful on CI runners of different speeds.  Each kernel's score is
the best of ``--repeats`` runs, which suppresses scheduler noise.
"""

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BASELINE_kernels.json"
DEFAULT_TOLERANCE = 0.25
DEFAULT_REPEATS = 5


# --------------------------------------------------------------------- #
# Kernels                                                                #
# --------------------------------------------------------------------- #


def kernel_ebar_batch_solve():
    import numpy as np

    from repro.energy.ebar import solve_ebar_batch
    from repro.energy.table import DEFAULT_B_GRID, DEFAULT_M_GRID, DEFAULT_P_GRID

    p = np.asarray(DEFAULT_P_GRID)[:, None, None, None]
    b = np.asarray(DEFAULT_B_GRID)[None, :, None, None]
    mt = np.asarray(DEFAULT_M_GRID)[None, None, :, None]
    mr = np.asarray(DEFAULT_M_GRID)[None, None, None, :]
    grid = solve_ebar_batch(p, b, mt, mr)
    assert np.isfinite(grid).any()


def kernel_ebar_table_build():
    from repro.energy.table import EbarTable

    table = EbarTable(use_cache=False)
    assert len(table) > 0


def kernel_fig6_sweep():
    from repro.experiments import run_experiment
    from repro.experiments.fig6_overlay_distance import check

    check(run_experiment("fig6", fast=True))


def kernel_fig7_sweep():
    from repro.experiments import run_experiment
    from repro.experiments.fig7_underlay_energy import check

    check(run_experiment("fig7", fast=True))


def kernel_sim_hold_heap():
    from repro.simulation.kernel import HeapKernel
    from repro.simulation.workloads import run_hold_churn

    run_hold_churn(HeapKernel(), hold=5000, n_events=100_000)


def kernel_sim_hold_calendar():
    from repro.simulation.kernel import CalendarKernel
    from repro.simulation.workloads import run_hold_churn

    run_hold_churn(CalendarKernel(), hold=5000, n_events=100_000)


KERNELS = {
    "ebar_batch_solve": kernel_ebar_batch_solve,
    "ebar_table_build": kernel_ebar_table_build,
    "fig6_sweep": kernel_fig6_sweep,
    "fig7_sweep": kernel_fig7_sweep,
    "sim_hold_heap": kernel_sim_hold_heap,
    "sim_hold_calendar": kernel_sim_hold_calendar,
}


def calibration():
    """Fixed numpy workload; speed tracks host floating-point throughput."""
    import numpy as np

    # Calibration workload, not library results: a fixed-seed local
    # generator is exactly what a hardware probe wants.
    rng = np.random.default_rng(2026)  # lint: ignore[RP102]
    a = rng.standard_normal((400, 400))
    total = 0.0
    for _ in range(6):
        b = a @ a.T
        total += float(np.log1p(np.abs(b)).sum())
    assert total > 0.0


# --------------------------------------------------------------------- #
# Timing                                                                 #
# --------------------------------------------------------------------- #


def best_of(fn, repeats):
    """Best (minimum) wall-clock seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        # Benchmarks measure wall-clock by definition.
        start = time.perf_counter()  # lint: ignore[RP103]
        fn()
        best = min(best, time.perf_counter() - start)  # lint: ignore[RP103]
    return best


def measure_all(repeats):
    times = {"calibration": best_of(calibration, repeats)}
    for name, fn in KERNELS.items():
        times[name] = best_of(fn, repeats)
        print(f"bench_kernels: {name}: {times[name] * 1e3:.1f} ms "
              f"(best of {repeats})", flush=True)
    return times


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--update", action="store_true",
                      help="rewrite the committed baseline from this machine")
    mode.add_argument("--check", action="store_true",
                      help="fail if any kernel regressed past the tolerance")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="runs per kernel; best is kept (default 5)")
    parser.add_argument("--baseline", default=str(BASELINE_PATH),
                        help="baseline JSON path")
    args = parser.parse_args(argv)
    baseline_path = pathlib.Path(args.baseline)

    times = measure_all(args.repeats)

    if args.update:
        payload = {
            "note": ("best-of-N wall seconds; checks scale budgets by the "
                     "calibration ratio, so the baseline machine's absolute "
                     "speed does not matter"),
            "repeats": args.repeats,
            "seconds": times,
        }
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"bench_kernels: wrote {baseline_path}", flush=True)
        return 0

    baseline = json.loads(baseline_path.read_text())["seconds"]
    scale = times["calibration"] / baseline["calibration"]
    print(f"bench_kernels: calibration ratio {scale:.2f} "
          f"(this machine vs baseline)", flush=True)

    failed = []
    for name in KERNELS:
        budget = baseline[name] * scale * (1.0 + args.tolerance)
        status = "ok" if times[name] <= budget else "REGRESSED"
        print(f"bench_kernels: {name}: {times[name] * 1e3:.1f} ms vs "
              f"budget {budget * 1e3:.1f} ms — {status}", flush=True)
        if times[name] > budget:
            failed.append(name)

    if failed:
        print(f"bench_kernels: regression in {failed} "
              f"(> {args.tolerance:.0%} over scaled baseline)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
