"""Benchmark: regenerate Table 1 (interweave amplitudes)."""

from repro.core.interweave import InterweaveSystem
from repro.experiments import run_experiment
from repro.experiments.table1_interweave_amplitude import check


def test_table1_ten_trials(benchmark):
    result = benchmark(run_experiment, "table1", seed=2013)
    check(result)


def test_table1_single_trial(benchmark):
    system = InterweaveSystem(st1=(0.0, 7.5), st2=(0.0, -7.5))
    trials = benchmark(system.run_table1, 1, 20, 150.0, (60.0, 0.0), 12.0, 8, False, 42)
    assert trials[0].gain_over_siso > 1.5
