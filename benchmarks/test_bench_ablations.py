"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each benchmark times one side of an ablation and asserts the qualitative
outcome, so the ablation conclusions in EXPERIMENTS.md are continuously
re-verified alongside their cost.
"""

import numpy as np
import pytest

from repro.core.interweave import InterweaveSystem
from repro.core.overlay import OverlaySystem
from repro.core.schemes import hop_energy, hop_timing
from repro.core.underlay import UnderlaySystem
from repro.energy.model import EnergyModel
from repro.energy.optimize import minimize_over_b
from repro.testbed.environment import table3_testbed


class TestConstellationOptimization:
    def test_optimized_b_vs_fixed_b2(self, benchmark, energy_model):
        """How much the Algorithms' b-selection step saves vs always-QPSK."""
        system = UnderlaySystem(energy_model)

        def optimized():
            return system.pa_energy(0.001, 2, 2, 1.0, 250.0, 10e3)

        res = benchmark(optimized)
        fixed = hop_energy(energy_model, 0.001, 2, 2, 2, 1.0, 250.0, 10e3).pa_total
        assert res.total_pa <= fixed + 1e-30


class TestEbarConvention:
    def test_paper_vs_diversity_only_overlay(self, benchmark):
        """The Figure 6 convention ablation: D3/D2 flips across conventions."""

        def both():
            out = {}
            for convention in ("paper", "diversity_only"):
                system = OverlaySystem(EnergyModel(ebar_convention=convention))
                res = system.distance_analysis(250.0, 3, 40e3)
                out[convention] = res.d3 / res.d2
            return out

        ratios = benchmark(both)
        assert ratios["paper"] < 1.0 < ratios["diversity_only"]


class TestCombiningAblation:
    @pytest.mark.parametrize("combining", ["egc", "mrc", "sc"])
    def test_multi_relay_combiner(self, benchmark, combining):
        testbed = table3_testbed()
        result = benchmark(
            testbed.run_relay_experiment,
            "tx",
            ["relay1", "relay2", "relay3"],
            "rx",
            30_000,
            None,
            True,
            combining,
            6,
        )
        assert result.ber < 0.15


class TestDeltaApproximation:
    def test_exact_vs_far_field_null(self, benchmark):
        """Residual interference of Algorithm 3's closed-form delta."""
        system = InterweaveSystem(st1=(0.0, 7.5), st2=(0.0, -7.5))

        def run():
            approx = system.run_table1(n_trials=5, rng=3, exact_delay=False)
            exact = system.run_table1(n_trials=5, rng=3, exact_delay=True)
            return (
                float(np.mean([t.residual_at_pr for t in approx])),
                float(np.mean([t.residual_at_pr for t in exact])),
            )

        resid_approx, resid_exact = benchmark(run)
        assert resid_exact < 1e-9 < resid_approx < 0.1


class TestEnergyLatencyTradeoff:
    def test_diversity_vs_airtime(self, benchmark, energy_model):
        """mt = 3 buys radiated-energy savings at a 2x+ airtime cost."""

        def tradeoff():
            siso_e = hop_energy(energy_model, 0.001, 1, 1, 1, 1.0, 200.0, 10e3)
            coop_e = hop_energy(energy_model, 0.001, 1, 3, 3, 1.0, 200.0, 10e3)
            siso_t = hop_timing(10_000, 1, 1, 1, 10e3)
            coop_t = hop_timing(10_000, 1, 3, 3, 10e3)
            return siso_e, coop_e, siso_t, coop_t

        siso_e, coop_e, siso_t, coop_t = benchmark(tradeoff)
        assert coop_e.pa_total < siso_e.pa_total / 5.0
        assert coop_t.total_s > 2.0 * siso_t.total_s
