"""Benchmarks: vectorized ``e_bar_b`` grid solving and table caching.

Run via ``scripts/bench_energy.sh`` to regenerate ``BENCH_energy.json``;
the three comparisons of interest are

* ``batch_solve_default_grid`` vs ``scalar_solve_default_grid`` — the
  vectorized bisection against the per-point ``brentq`` loop it replaced
  (the PR's headline >= 10x);
* ``cold_build`` — table construction including the solve;
* ``warm_disk_load`` — table construction when only the on-disk cache is
  warm (the experiment/CI steady state: no root-finding at all).
"""

import numpy as np
import pytest

from repro.energy.ebar import solve_ebar, solve_ebar_batch
from repro.energy.table import (
    DEFAULT_B_GRID,
    DEFAULT_M_GRID,
    DEFAULT_P_GRID,
    EbarTable,
)


def _default_grid_arrays():
    return np.meshgrid(
        np.array(DEFAULT_P_GRID),
        np.array(DEFAULT_B_GRID),
        np.array(DEFAULT_M_GRID),
        np.array(DEFAULT_M_GRID),
        indexing="ij",
    )


def test_batch_solve_default_grid(benchmark):
    p_g, b_g, mt_g, mr_g = _default_grid_arrays()
    grid = benchmark(solve_ebar_batch, p_g, b_g, mt_g, mr_g)
    assert grid.shape == p_g.shape
    assert np.isfinite(grid).all()


def test_scalar_solve_default_grid(benchmark):
    """The pre-vectorization baseline: one brentq call per grid point."""
    p_g, b_g, mt_g, mr_g = _default_grid_arrays()

    def solve_all():
        out = np.empty(p_g.shape)
        for idx in np.ndindex(p_g.shape):
            out[idx] = solve_ebar(
                float(p_g[idx]), int(b_g[idx]), int(mt_g[idx]), int(mr_g[idx])
            )
        return out

    grid = benchmark.pedantic(solve_all, rounds=3, iterations=1)
    assert np.isfinite(grid).all()


def test_cold_build(benchmark):
    """Default-grid table construction with all caching disabled."""
    table = benchmark(EbarTable, use_cache=False)
    assert len(table) == (
        len(DEFAULT_P_GRID) * len(DEFAULT_B_GRID) * len(DEFAULT_M_GRID) ** 2
    )


def test_warm_disk_load(benchmark, tmp_path):
    """Construction against a warm on-disk cache (memo cleared each round)."""
    EbarTable(cache_dir=tmp_path)  # populate the disk cache

    def load():
        EbarTable.clear_memory_cache()
        return EbarTable(cache_dir=tmp_path)

    table = benchmark(load)
    assert len(table) > 0


def test_warm_memo_hit(benchmark, tmp_path):
    """Construction against the process-level memo (the in-process path)."""
    EbarTable(cache_dir=tmp_path)
    table = benchmark(EbarTable, cache_dir=tmp_path)
    assert len(table) > 0


def test_batch_lookup_scales(benchmark, tmp_path):
    """Array lookup over 10k BER queries (the sweeps' access pattern)."""
    table = EbarTable(cache_dir=tmp_path)
    rng = np.random.default_rng(0)
    p = rng.uniform(0.0005, 0.1, 10_000)
    out = benchmark(table.lookup, p, 2, 2, 2)
    assert out.shape == p.shape
