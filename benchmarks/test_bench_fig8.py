"""Benchmark: regenerate Figure 8 (beamformer pattern + measurements)."""

import numpy as np

from repro.beamforming.pattern import design_null_delay, radiation_pattern
from repro.experiments import run_experiment
from repro.experiments.fig8_beam_pattern import check


def test_fig8_measurement_sweep(benchmark):
    result = benchmark(run_experiment, "fig8", seed=7, fast=True)
    check(result)


def test_fig8_dense_pattern(benchmark):
    """A 1-degree-resolution LOS pattern (the simulated curve)."""
    wavelength = 0.1224
    delta = design_null_delay(wavelength / 2, wavelength, 120.0)
    angles = np.arange(0.0, 180.5, 1.0)
    amps = benchmark(radiation_pattern, wavelength / 2, wavelength, delta, angles, 1.0)
    assert amps.min() < 0.05
