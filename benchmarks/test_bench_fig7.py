"""Benchmark: regenerate Figure 7 (underlay PA energy sweep)."""

from repro.core.underlay import UnderlaySystem
from repro.energy.model import EnergyModel
from repro.experiments import run_experiment
from repro.experiments.fig7_underlay_energy import check


def test_fig7_sweep(benchmark):
    result = benchmark(run_experiment, "fig7", fast=True)
    check(result)


def test_fig7_single_configuration(benchmark, energy_model):
    """One (mt, mr, D) point with b-optimization — the inner loop of the
    Figure 7 sweep."""
    system = UnderlaySystem(energy_model)
    result = benchmark(system.pa_energy, 0.001, 2, 3, 1.0, 200.0, 10e3)
    assert result.total_pa > 0.0
