"""Benchmark-suite configuration.

Every paper artifact (table/figure) has a dedicated benchmark file that
times its regeneration and asserts its shape checks, so ``pytest
benchmarks/ --benchmark-only`` both measures and validates the full
reproduction.  Monte-Carlo sizes are the experiments' ``fast`` settings to
keep a benchmark round in seconds.
"""

import pytest


@pytest.fixture(scope="session")
def energy_model():
    from repro.energy.model import EnergyModel

    return EnergyModel()
