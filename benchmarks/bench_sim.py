"""Simulation benchmark: event-kernel throughput and `/v1/simulate` e2e.

Measures and writes ``BENCH_sim.json`` (repo root):

* ``kernels`` — hold-model churn throughput (events/sec) for the heap
  and calendar kernels at 1k and 5k held timers, via
  :func:`repro.simulation.workloads.run_hold_churn` — the bulk
  ``schedule_many`` path the city-scale scenario runtime leans on.
* ``simulate_stream`` — end-to-end NDJSON streaming through a live
  ``/v1/simulate``: a seeded mobile/churning scenario in a dedicated
  server-side process, timed client-side from request to summary row.

The kernel numbers also act as a regression gate: the calendar kernel
must sustain ``--target`` events/sec (default 1M) at every hold size,
scaled by the same floating-point calibration ratio the
``bench_kernels.py`` gate uses — the committed reference calibration
time makes the absolute target portable across machine speeds.  Run
with ``--no-gate`` to measure without failing.

Usage::

    scripts/bench_sim.sh                 # measure + gate + BENCH_sim.json
    PYTHONPATH=src python benchmarks/bench_sim.py --no-gate
"""

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_sim.json"

#: Seconds the bench_kernels calibration workload takes on the machine
#: that set the 1M events/sec target (same workload, same constant as
#: BASELINE_kernels.json's "calibration" entry — regenerate both together).
REF_CALIBRATION_S = 0.0199

DEFAULT_TARGET_EVENTS_PER_S = 1_000_000
DEFAULT_HOLDS = (1000, 5000)
DEFAULT_N_EVENTS = 200_000
DEFAULT_REPEATS = 3


def calibration():
    """Fixed numpy workload; speed tracks host floating-point throughput."""
    import numpy as np

    # Calibration workload, not library results: a fixed-seed local
    # generator is exactly what a hardware probe wants.
    rng = np.random.default_rng(2026)  # lint: ignore[RP102]
    a = rng.standard_normal((400, 400))
    total = 0.0
    for _ in range(6):
        b = a @ a.T
        total += float(np.log1p(np.abs(b)).sum())
    assert total > 0.0


def best_of(fn, repeats):
    """Best (minimum) wall-clock seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        # Benchmarks measure wall-clock by definition.
        start = time.perf_counter()  # lint: ignore[RP103]
        fn()
        best = min(best, time.perf_counter() - start)  # lint: ignore[RP103]
    return best


def bench_kernels(holds, n_events, repeats):
    """Hold-model churn throughput for both kernels at each hold size."""
    from repro.simulation.kernel import make_kernel
    from repro.simulation.workloads import run_hold_churn

    results = {}
    for kind in ("heap", "calendar"):
        for hold in holds:
            seconds = best_of(
                lambda kind=kind, hold=hold: run_hold_churn(
                    make_kernel(kind), hold=hold, n_events=n_events
                ),
                repeats,
            )
            rate = n_events / seconds
            results[f"{kind}_hold{hold}"] = {
                "hold": hold,
                "n_events": n_events,
                "seconds": seconds,
                "events_per_s": rate,
            }
            print(
                f"bench_sim: {kind} hold={hold}: {rate / 1e6:.2f} M events/s "
                f"(best of {repeats})",
                flush=True,
            )
    return results


def bench_simulate_stream(n_nodes, duration_s):
    """End-to-end `/v1/simulate` NDJSON streaming, timed client-side."""
    from repro.service.config import ServiceConfig
    from repro.service.testing import ThreadedServer

    scenario = {
        "n_nodes": n_nodes,
        "arena_m": [800.0, 800.0],
        "duration_s": duration_s,
        "seed": 2026,
        "snapshot_interval_s": 5.0,
        "churn": {"leave_rate_per_node_s": 0.002, "join_rate_per_s": 0.5},
    }
    config = ServiceConfig(port=0, workers=0, request_log=False, result_cache=False)
    with ThreadedServer(config) as server:
        client = server.client(timeout_s=600.0)
        start = time.perf_counter()  # lint: ignore[RP103]
        rows = list(client.simulate_stream(scenario))
        wall_s = time.perf_counter() - start  # lint: ignore[RP103]
    summary = rows[-1]
    assert summary["row"] == "summary", summary
    events = int(summary["events_processed"])
    result = {
        "n_nodes": n_nodes,
        "duration_s": duration_s,
        "snapshot_rows": len(rows) - 1,
        "events_processed": events,
        "wall_s": wall_s,
        "events_per_wall_s": events / wall_s,
        "rows_per_s": len(rows) / wall_s,
        "digest": summary["digest"],
    }
    print(
        f"bench_sim: /v1/simulate {n_nodes} nodes x {duration_s:g}s: "
        f"{len(rows) - 1} snapshots in {wall_s:.2f}s wall "
        f"({events / wall_s / 1e3:.0f}k sim events/s end-to-end)",
        flush=True,
    )
    return result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--n-events", type=int, default=DEFAULT_N_EVENTS,
                        help="dispatched events per kernel measurement")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="runs per measurement; best is kept")
    parser.add_argument("--target", type=float,
                        default=DEFAULT_TARGET_EVENTS_PER_S,
                        help="calendar-kernel events/sec gate, before "
                        "calibration scaling (default 1e6)")
    parser.add_argument("--sim-nodes", type=int, default=200,
                        help="scenario size for the /v1/simulate e2e leg")
    parser.add_argument("--sim-duration-s", type=float, default=60.0,
                        help="scenario duration for the e2e leg")
    parser.add_argument("--skip-e2e", action="store_true",
                        help="skip the /v1/simulate end-to-end leg")
    parser.add_argument("--no-gate", action="store_true",
                        help="measure and write JSON without failing on "
                        "the throughput gate")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help="output JSON path (default BENCH_sim.json)")
    args = parser.parse_args(argv)

    cal_s = best_of(calibration, args.repeats)
    # A slower machine (larger cal_s) gets a proportionally lower bar.
    scale = REF_CALIBRATION_S / cal_s
    scaled_target = args.target * scale
    print(
        f"bench_sim: calibration {cal_s * 1e3:.0f} ms "
        f"(ref {REF_CALIBRATION_S * 1e3:.0f} ms) -> scaled target "
        f"{scaled_target / 1e6:.2f} M events/s",
        flush=True,
    )

    kernels = bench_kernels(DEFAULT_HOLDS, args.n_events, args.repeats)
    payload = {
        "note": ("hold-model kernel churn plus /v1/simulate NDJSON "
                 "streaming; gate: calendar events/sec >= target scaled "
                 "by the calibration ratio"),
        "calibration_s": cal_s,
        "ref_calibration_s": REF_CALIBRATION_S,
        "target_events_per_s": args.target,
        "scaled_target_events_per_s": scaled_target,
        "kernels": kernels,
    }
    if not args.skip_e2e:
        payload["simulate_stream"] = bench_simulate_stream(
            args.sim_nodes, args.sim_duration_s
        )

    failed = []
    for name, row in kernels.items():
        if not name.startswith("calendar_"):
            continue
        ok = row["events_per_s"] >= scaled_target
        row["gate"] = "ok" if ok else "REGRESSED"
        if not ok:
            failed.append(name)

    output = pathlib.Path(args.output)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"bench_sim: wrote {output}", flush=True)

    if failed and not args.no_gate:
        print(
            f"bench_sim: {failed} below the scaled "
            f"{scaled_target / 1e6:.2f} M events/s target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
