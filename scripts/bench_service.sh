#!/bin/sh
# Regenerate BENCH_service.json: throughput, latency percentiles and
# coalesced-batch statistics for the repro.service planning daemon under
# a mixed >= 1k-request concurrent load.
#
# Usage: scripts/bench_service.sh  [extra bench_service.py args]
set -e
cd "$(dirname "$0")/.."
PYTHONPATH=src python benchmarks/bench_service.py "$@"
