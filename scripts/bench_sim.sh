#!/bin/sh
# Regenerate BENCH_sim.json: hold-model event-kernel throughput (heap vs
# calendar at 1k/5k held timers, gated at >= 1M events/sec calibration-
# scaled for the calendar kernel) plus /v1/simulate end-to-end NDJSON
# streaming throughput.
#
# Usage: scripts/bench_sim.sh  [extra bench_sim.py args]
set -e
cd "$(dirname "$0")/.."
PYTHONPATH=src python benchmarks/bench_sim.py "$@"
