#!/usr/bin/env bash
# One-shot static-analysis gate: repo lint rules + ruff + strict typing.
#
# Usage:  scripts/lint.sh
#
# Runs, in order:
#   1. repro.lintkit (always available — stdlib + numpy; per-file rules
#      RP101-RP107/RP204/RP205, project-graph rules RP201-RP203/RP206/RP302
#      and the RP301/RP303/RP304 dimensional-analysis rules) over
#      src, tests, benchmarks and scripts, against the committed baseline
#   2. ruff check    (skipped with a notice when ruff is not installed)
#   3. mypy --strict on the typed core (skipped when mypy is not installed)
#
# Exits non-zero if any tool that *did* run reported findings.  CI installs
# ruff and mypy so nothing is skipped there; the local dev container may
# lack them, in which case the lintkit pass still gates the repo rules.

set -u
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

status=0

echo "== repro.lintkit =="
python -m repro.lintkit src tests benchmarks scripts \
    --baseline lint-baseline.json --statistics || status=1

echo
echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests || status=1
elif python -c "import ruff" >/dev/null 2>&1; then
    python -m ruff check src tests || status=1
else
    echo "ruff not installed; skipping (CI runs it)"
fi

echo
echo "== mypy --strict (utils, energy, lintkit, service, network, mac, simulation, scenario, loadgen) =="
if command -v mypy >/dev/null 2>&1 || python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy --strict \
        -p repro.utils -p repro.energy -p repro.lintkit -p repro.service \
        -p repro.network -p repro.mac -p repro.simulation -p repro.scenario \
        -p repro.loadgen || status=1
else
    echo "mypy not installed; skipping (CI runs it)"
fi

exit "$status"
