#!/usr/bin/env python
"""CI chaos-replay gate: the seeded loadgen smoke plan vs the real binary.

Boots ``python -m repro.service --shards 2 --chaos-admin`` with the smoke
plan's server-side faults pre-armed through ``REPRO_SERVICE_FAULTS``
(worker kill, mid-stream truncation, sim-child kill and stall, dropped
connections), then runs the seeded smoke plan twice against it.  The
shard-kill fault is delivered at its scheduled request index through the
supervisor's ``POST /chaos/kill_shard`` admin endpoint.  The gate asserts:

* **every request is accounted for** — the verdict passes: each request
  ended 2xx-verified, as a clean structured 4xx/5xx carrying its retry
  hint where required, or as client-detected truncation; a hang, silent
  drop, malformed error body or zero-row close fails the run;
* **replay is bit-identical** — the second run reproduces the identical
  outcome digest;
* the fleet drains cleanly (SIGTERM exits 0) after all of the above.

Usage:  PYTHONPATH=src python scripts/chaos_replay.py [--trace-dir DIR]
"""

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.loadgen import (  # noqa: E402
    AdminFaultDriver,
    PrearmedFaultDriver,
    Trace,
    build_plan,
    env_fault_plan,
    evaluate,
    outcome_digest,
    run_plan,
    smoke_spec,
)
from repro.service.faults import FAULTS_ENV_VAR  # noqa: E402

#: Keep the stall fault's terminal 504 (and its retry) well inside CI time.
STALL_TIMEOUT_MS = 2000


def boot_fleet(env_plan):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env[FAULTS_ENV_VAR] = json.dumps(env_plan)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", "0",
            "--shards", "2",
            "--workers", "1",
            "--coalesce-ms", "1",
            "--seed", "2026",
            "--admin-port", "0",
            "--chaos-admin",
            "--sim-stall-timeout-ms", str(STALL_TIMEOUT_MS),
            "--no-request-log",
            "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    announced = json.loads(proc.stdout.readline())
    assert announced.get("event") == "listening", announced
    return proc, announced["host"], announced["port"], announced["admin_port"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--trace-dir", default=str(REPO_ROOT),
        help="where the two trace JSON artifacts land (default: repo root)",
    )
    args = parser.parse_args(argv)
    pathlib.Path(args.trace_dir).mkdir(parents=True, exist_ok=True)

    spec = smoke_spec(include_shard_kill=True)
    plan = build_plan(spec)
    env_plan = env_fault_plan(spec, plan)
    print(
        f"chaos_replay: {len(plan)} planned requests, "
        f"{len(spec.faults)} fault events "
        f"(env plan: {sorted(env_plan)})",
        flush=True,
    )

    proc, host, port, admin_port = boot_fleet(env_plan)
    failed = False
    try:
        driver = PrearmedFaultDriver(AdminFaultDriver(host, admin_port))
        traces = []
        for run in (1, 2):
            trace = run_plan(spec, host, port, plan=plan, fault_driver=driver)
            verdict = evaluate(trace.records)
            digest = outcome_digest(trace.records)
            retries = sum(r.retries for r in trace.records)
            trace_path = (
                pathlib.Path(args.trace_dir) / f"chaos_replay_run{run}.json"
            )
            trace.save(str(trace_path))
            print(
                f"chaos_replay[run {run}]: verdict "
                f"{'PASS' if verdict.passed else 'FAIL'} "
                f"{verdict.counts}, {retries} retries, digest {digest[:16]}…, "
                f"trace {trace_path}",
                flush=True,
            )
            if not verdict.passed:
                for violation in verdict.violations:
                    print(f"chaos_replay: violation: {violation}",
                          file=sys.stderr)
                failed = True
            traces.append(trace)
        digests = [outcome_digest(t.records) for t in traces]
        if digests[0] != digests[1]:
            print(
                f"chaos_replay: replay diverged: {digests[0]} != {digests[1]}",
                file=sys.stderr,
            )
            failed = True
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            exit_code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
            exit_code = -9
    if exit_code != 0:
        print(f"chaos_replay: fleet exited {exit_code}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("chaos_replay: every request accounted for, replay bit-identical",
          flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
