#!/usr/bin/env python
"""CI smoke test for `/v1/simulate`: a city-block scenario, streamed twice.

Boots ``python -m repro.service`` as a real subprocess on an ephemeral
port, streams a ~200-node scenario (mobility, battery drain, churn) over
NDJSON twice with the same seed, and asserts the two streams are
bit-identical — including the summary row's digest, which itself commits
to every snapshot.  Also cross-checks the buffered ``/v1/simulate`` path
returns the same rows, then SIGTERMs the server and expects exit 0.

Usage:  PYTHONPATH=src python scripts/sim_smoke.py [--nodes N]
"""

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402

SCENARIO = {
    "arena_m": [800.0, 800.0],
    "duration_s": 40.0,
    "seed": 314,
    "snapshot_interval_s": 5.0,
    "battery_j": 10.0,
    "churn": {"leave_rate_per_node_s": 0.002, "join_rate_per_s": 0.5},
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", type=int, default=200,
                        help="scenario population (default 200)")
    args = parser.parse_args()
    scenario = dict(SCENARIO, n_nodes=args.nodes)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--port",
            "0",
            "--workers",
            "1",
            "--no-result-cache",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    try:
        assert proc.stdout is not None
        announced = json.loads(proc.stdout.readline())
        assert announced["event"] == "listening", announced
        client = ServiceClient(announced["host"], announced["port"], timeout_s=600.0)

        first = list(client.simulate_stream(scenario))
        second = list(client.simulate_stream(scenario))
        assert first == second, "same-seed streams differ"
        summary = first[-1]
        assert summary["row"] == "summary", summary
        assert summary["digest"] == second[-1]["digest"]
        snapshots = [r for r in first if r.get("row") == "snapshot"]
        assert len(snapshots) == 8, len(snapshots)
        assert summary["delivered"] > 0, summary
        assert summary["joins"] > 0 and summary["leaves"] > 0, summary

        buffered = client.simulate(scenario)
        assert buffered["rows"] == first[:-1], "buffered rows diverge"
        assert buffered["summary"] == summary, "buffered summary diverges"

        print(
            json.dumps(
                {
                    "event": "sim_smoke_ok",
                    "nodes": args.nodes,
                    "snapshots": len(snapshots),
                    "events_processed": summary["events_processed"],
                    "delivery_ratio": summary["delivery_ratio"],
                    "digest": summary["digest"],
                },
                sort_keys=True,
            )
        )

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30.0)
        assert code == 0, f"server exited {code}"
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)


if __name__ == "__main__":
    raise SystemExit(main())
