#!/bin/sh
# Regenerate BENCH_energy.json: the energy-layer performance evidence
# (vectorized grid solve vs scalar loop, cold/warm table construction).
#
# Usage: scripts/bench_energy.sh  [extra pytest args]
set -e
cd "$(dirname "$0")/.."
REPRO_NO_CACHE=0 PYTHONPATH=src python -m pytest \
    benchmarks/test_bench_ebar_table.py \
    --benchmark-only \
    --benchmark-json=BENCH_energy.json \
    -q "$@"
echo "wrote BENCH_energy.json"
