#!/usr/bin/env python
"""CI smoke test for repro-service: boot, query every endpoint, drain.

Starts ``python -m repro.service`` as a real subprocess on an ephemeral
port, parses the ``{"event": "listening"}`` announcement, issues one query
per endpoint plus /healthz and /metrics, then sends SIGTERM and asserts a
clean (exit 0) graceful shutdown.

Usage:  PYTHONPATH=src python scripts/service_smoke.py
"""

import json
import os
import pathlib
import signal
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient, ServiceClientError  # noqa: E402


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--port",
            "0",
            "--workers",
            "1",
            "--coalesce-ms",
            "1",
            "--seed",
            "7",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    try:
        assert proc.stdout is not None
        line = proc.stdout.readline()
        announced = json.loads(line)
        assert announced["event"] == "listening", announced
        client = ServiceClient(announced["host"], announced["port"], timeout_s=60.0)

        assert client.healthz() == {"status": "ok"}
        ebar = client.ebar(0.001, 2, 2, 2)
        assert ebar["e_bar"] > 0.0, ebar
        overlay = client.overlay_feasible(40.0, 2, 10e3)
        assert overlay["count"] == 1 and "feasible" in overlay["rows"][0], overlay
        underlay = client.underlay_energy(1e-3, 2, 2, 5.0, [50.0, 100.0], 10e3)
        assert underlay["count"] == 2, underlay
        pattern = client.interweave_pattern(
            (0.0, 0.0), (15.0, 0.0), 30.0, (40.0, 40.0), pr=(100.0, 0.0)
        )
        assert len(pattern["amplitudes"]) == 1, pattern
        try:
            client.ebar(0.001, 99, 2, 2)
        except ServiceClientError as exc:
            assert exc.status == 404, exc
        else:
            raise AssertionError("off-grid b should be 404")
        metrics = client.metrics_snapshot()
        assert metrics["requests_total"] >= 6, metrics

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
        assert code == 0, f"expected clean exit, got {code}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
