#!/usr/bin/env python3
"""Fail when the committed lint baseline grows relative to a base revision.

The baseline (``lint-baseline.json``) is a migration tool, not a parking
lot: it may shrink as old findings are fixed, but a change that *adds*
fingerprints is smuggling a new accepted violation past the lint gate.
CI runs this in the ``lint-ratchet`` job, comparing the pull request's
baseline against the base branch's copy:

    python scripts/lint_ratchet.py base-baseline.json lint-baseline.json

Exit codes: 0 = no growth (shrinking is fine and is reported), 1 = the
head baseline contains fingerprints absent from the base, 2 = usage or
malformed input.  A missing *base* file is treated as an empty baseline
(the ratchet then requires the head baseline to be empty too), so the
check is well-defined on branches that predate the baseline file.
"""

import json
import sys
from typing import FrozenSet

_FORMAT = "repro.lintkit-baseline"


class RatchetError(Exception):
    """Unusable input — maps to exit code 2."""


def load_fingerprints(path: str, *, missing_ok: bool) -> FrozenSet[str]:
    """Read the fingerprint set from a baseline file."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        if missing_ok:
            return frozenset()
        raise RatchetError(f"{path} does not exist")
    except json.JSONDecodeError as exc:
        raise RatchetError(f"{path} is not valid JSON: {exc}")
    if not isinstance(data, dict) or data.get("format") != _FORMAT:
        raise RatchetError(f"{path} is not a {_FORMAT} file")
    fingerprints = data.get("fingerprints", [])
    if not isinstance(fingerprints, list) or not all(
        isinstance(item, str) for item in fingerprints
    ):
        raise RatchetError(f"{path} has a malformed fingerprint list")
    return frozenset(fingerprints)


def main(argv: "list[str]") -> int:
    if len(argv) != 3:
        print(
            "usage: lint_ratchet.py BASE_BASELINE HEAD_BASELINE", file=sys.stderr
        )
        return 2
    try:
        base = load_fingerprints(argv[1], missing_ok=True)
        head = load_fingerprints(argv[2], missing_ok=False)
    except RatchetError as exc:
        print(f"lint-ratchet: {exc}", file=sys.stderr)
        return 2
    added = sorted(head - base)
    removed = sorted(base - head)
    if removed:
        print(f"lint-ratchet: {len(removed)} baselined finding(s) fixed")
    if added:
        print(
            f"lint-ratchet: baseline grew by {len(added)} fingerprint(s); "
            "fix the findings or suppress them inline with a justification "
            "instead of baselining:",
            file=sys.stderr,
        )
        for fingerprint in added:
            print(f"  + {fingerprint}", file=sys.stderr)
        return 1
    print(
        f"lint-ratchet: ok ({len(head)} baselined, no growth vs base "
        f"{len(base)})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
