"""Coded link simulation: convolutional code + interleaver + modem + fading.

The full "signal processing blocks" chain the paper's Section 2.3 scoped
out.  The transmit side encodes, interleaves and modulates; the receive
side equalizes (via the OSTBC matched filter of the uncoded chain),
deinterleaves *soft* symbol observations and runs soft-decision Viterbi —
the textbook architecture whose gains justify the extension hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.awgn import complex_gaussian
from repro.coding.convolutional import ConvolutionalCode
from repro.coding.interleave import BlockInterleaver
from repro.modulation.psk import BPSKModem
from repro.utils.rng import RngLike, as_rng
from repro.utils.units import DB, db_to_linear
from repro.utils.validation import check_finite, check_non_negative_int

__all__ = ["CodedLinkResult", "simulate_coded_link"]


@dataclass(frozen=True)
class CodedLinkResult:
    """Outcome of a coded Monte-Carlo run."""

    n_info_bits: int
    n_info_errors: int
    n_channel_bits: int
    channel_ber: float  # raw (pre-decoder) hard-decision BER

    def __post_init__(self) -> None:
        check_non_negative_int(self.n_info_bits, "n_info_bits")
        check_non_negative_int(self.n_info_errors, "n_info_errors")
        check_non_negative_int(self.n_channel_bits, "n_channel_bits")
        check_finite(self.channel_ber, "channel_ber")

    @property
    def ber(self) -> float:
        """Post-decoding information bit error rate."""
        return self.n_info_errors / self.n_info_bits if self.n_info_bits else 0.0


def simulate_coded_link(
    n_info_bits: int,
    snr_db: DB,
    code: Optional[ConvolutionalCode] = None,
    interleaver: Optional[BlockInterleaver] = None,
    fading: str = "rayleigh",
    rician_k: float = 0.0,
    symbols_per_fade: int = 1,
    rng: RngLike = None,
) -> CodedLinkResult:
    """BPSK + convolutional code over a fading SISO link.

    Parameters
    ----------
    n_info_bits:
        Information bits (pre-coding).
    snr_db:
        Average received SNR per *channel symbol*.  Note the rate loss:
        at equal Eb/N0 a rate-1/2 code sees symbol SNR 3 dB lower.
    code:
        Default: the K=7 (171, 133) code.
    interleaver:
        Optional; essential whenever ``symbols_per_fade > 1`` (fade bursts).
    symbols_per_fade:
        Channel coherence in symbols (1 = fast fading).
    """
    if n_info_bits < 1:
        raise ValueError("n_info_bits must be >= 1")
    if symbols_per_fade < 1:
        raise ValueError("symbols_per_fade must be >= 1")
    gen = as_rng(rng)
    code = code or ConvolutionalCode()
    modem = BPSKModem()

    info = gen.integers(0, 2, n_info_bits, dtype=np.int8)
    coded = code.encode(info)
    channel_bits = coded if interleaver is None else interleaver.interleave(coded)

    symbols = modem.modulate(channel_bits)
    n = symbols.size
    if fading == "awgn":
        h = np.ones(n, dtype=complex)
    else:
        n_fades = -(-n // symbols_per_fade)
        k = rician_k if fading == "rician" else 0.0
        from repro.channel.rayleigh import rician_mimo_channel

        h_unique = rician_mimo_channel(1, 1, k, n_fades, gen)[:, 0, 0]
        h = np.repeat(h_unique, symbols_per_fade)[:n]
    noise_var = 1.0 / float(db_to_linear(snr_db))
    y = h * symbols + complex_gaussian(n, noise_var, gen)
    # Matched-filter statistic Re(h* y): the sufficient statistic for BPSK
    # with known fading — its magnitude carries the per-symbol reliability
    # (a deep fade contributes little to the path metric), which is where
    # most of the soft-decision gain over fading comes from.
    matched = (np.conj(h) * y).real

    channel_hard = (matched < 0).astype(np.int8)
    channel_errors = int(np.sum(channel_hard != channel_bits))

    soft = matched
    if interleaver is not None:
        # channel_bits was padded to a whole number of interleaver blocks,
        # so the observation vector deinterleaves directly
        soft = interleaver.deinterleave(soft, original_length=coded.size)
    decoded = code.decode(soft, soft=True)

    return CodedLinkResult(
        n_info_bits=n_info_bits,
        n_info_errors=int(np.sum(decoded != info)),
        n_channel_bits=int(channel_bits.size),
        channel_ber=channel_errors / channel_bits.size,
    )
