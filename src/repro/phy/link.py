"""End-to-end Monte-Carlo link simulation.

One call runs the full chain

    bits → modem → OSTBC encode → block-fading MIMO channel + AWGN
         → OSTBC matched-filter decode → modem hard decision → count errors

vectorized over every fading block simultaneously (no per-bit Python
loops).  SISO/MISO/SIMO/MIMO are all the same code path: the space-time
code is selected by ``mt`` (identity for mt = 1) and the channel matrix
carries ``mr`` columns of receive diversity.

SNR convention: ``snr_db`` is the average received symbol SNR per receive
antenna — total transmit symbol energy is normalized to 1 per time slot
(divided across the ``mt`` antennas via the code's ``power_per_slot``), and
channel entries have unit mean power, so the noise variance is
``1 / snr_linear`` scaled by the modem's :attr:`snr_efficiency`.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.channel.awgn import complex_gaussian
from repro.channel.rayleigh import rayleigh_mimo_channel, rician_mimo_channel
from repro.modulation.base import Modem
from repro.stbc.ostbc import ostbc_for
from repro.utils.rng import RngLike, as_rng
from repro.utils.units import DB, db_to_linear
from repro.utils.validation import check_non_negative_int

__all__ = ["LinkResult", "simulate_link", "simulate_packet_link", "transmit_bits"]


@dataclass(frozen=True)
class LinkResult:
    """Outcome of a Monte-Carlo link run."""

    n_bits: int
    n_bit_errors: int
    n_packets: int = 0
    n_packet_errors: int = 0

    def __post_init__(self) -> None:
        check_non_negative_int(self.n_bits, "n_bits")
        check_non_negative_int(self.n_bit_errors, "n_bit_errors")
        check_non_negative_int(self.n_packets, "n_packets")
        check_non_negative_int(self.n_packet_errors, "n_packet_errors")

    @property
    def ber(self) -> float:
        """Observed bit error rate."""
        return self.n_bit_errors / self.n_bits if self.n_bits else 0.0

    @property
    def per(self) -> float:
        """Observed packet error rate (0 when no packetization was used)."""
        return self.n_packet_errors / self.n_packets if self.n_packets else 0.0


def _draw_channel(
    mt: int,
    mr: int,
    n_blocks: int,
    fading: str,
    rician_k: float,
    rng: np.random.Generator,
) -> np.ndarray:
    if fading == "rayleigh":
        return rayleigh_mimo_channel(mt, mr, n_blocks, rng)
    if fading == "rician":
        return rician_mimo_channel(mt, mr, rician_k, n_blocks, rng)
    if fading == "awgn":
        return np.ones((n_blocks, mr, mt), dtype=complex)
    raise ValueError(f"unknown fading model {fading!r}")


def transmit_bits(
    bits: np.ndarray,
    modem: Modem,
    snr_db: DB,
    mt: int = 1,
    mr: int = 1,
    fading: str = "rayleigh",
    rician_k: float = 0.0,
    blocks_per_fade: int = 1,
    rng: RngLike = None,
) -> np.ndarray:
    """Push a bit array through the full chain; return the received bits.

    Parameters
    ----------
    bits:
        0/1 array.  It is padded internally to fill whole symbols and
        space-time blocks; the returned array has the original length.
    modem:
        Any :class:`repro.modulation.base.Modem`.
    snr_db:
        Average received symbol SNR per receive antenna.
    mt, mr:
        Cooperative transmit / receive antenna counts (1..4).
    fading:
        ``"rayleigh"`` (paper's long-haul model), ``"rician"`` (indoor LOS)
        or ``"awgn"`` (no fading).
    blocks_per_fade:
        Channel coherence: how many consecutive space-time blocks share one
        fading realization.  1 = fast fading; set large (e.g. a whole
        packet) for the quasi-static indoor testbed behaviour.
    rng:
        Seed or generator.
    """
    gen = as_rng(rng)
    arr = np.asarray(bits).astype(np.int8)
    if arr.ndim != 1:
        raise ValueError("bits must be 1-D")
    if blocks_per_fade < 1:
        raise ValueError("blocks_per_fade must be >= 1")
    code = ostbc_for(mt)

    bits_per_block = code.n_symbols * modem.bits_per_symbol
    n_blocks = -(-max(arr.size, 1) // bits_per_block)
    padded = np.zeros(n_blocks * bits_per_block, dtype=np.int8)
    padded[: arr.size] = arr

    symbols = modem.modulate(padded)
    x = code.encode(symbols) / np.sqrt(code.power_per_slot)  # (nb, T, mt)

    n_fades = -(-n_blocks // blocks_per_fade)
    h_unique = _draw_channel(mt, mr, n_fades, fading, rician_k, gen)
    h = np.repeat(h_unique, blocks_per_fade, axis=0)[:n_blocks]

    snr_linear = float(db_to_linear(snr_db)) * modem.snr_efficiency
    noise_var = 1.0 / snr_linear
    y = np.einsum("btm,bjm->btj", x, h)
    y = y + complex_gaussian(y.shape, noise_var, gen)

    # The decoder removes the code's power normalization implicitly via the
    # matched filter; rescale the channel it sees accordingly.
    s_hat = code.decode(y, h / np.sqrt(code.power_per_slot))
    rx_bits = modem.demodulate(s_hat)
    return rx_bits[: arr.size]


def simulate_link(
    n_bits: int,
    modem: Modem,
    snr_db: DB,
    mt: int = 1,
    mr: int = 1,
    fading: str = "rayleigh",
    rician_k: float = 0.0,
    blocks_per_fade: int = 1,
    rng: RngLike = None,
) -> LinkResult:
    """Monte-Carlo BER of one link configuration over random data."""
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    gen = as_rng(rng)
    tx = gen.integers(0, 2, n_bits, dtype=np.int8)
    rx = transmit_bits(
        tx, modem, snr_db, mt, mr, fading, rician_k, blocks_per_fade, gen
    )
    return LinkResult(n_bits=n_bits, n_bit_errors=int(np.sum(tx != rx)))


def simulate_packet_link(
    n_packets: int,
    packet_bits: int,
    modem: Modem,
    snr_db: DB,
    mt: int = 1,
    mr: int = 1,
    fading: str = "rayleigh",
    rician_k: float = 0.0,
    quasi_static: bool = True,
    rng: RngLike = None,
) -> LinkResult:
    """Monte-Carlo PER: a packet is errored iff any of its bits flips.

    ``quasi_static=True`` gives each packet a single fading realization
    (indoor testbed behaviour, where the coherence time far exceeds a
    packet's 48 ms airtime at 250 kbps); otherwise fading is per space-time
    block.
    """
    if n_packets < 1 or packet_bits < 1:
        raise ValueError("n_packets and packet_bits must be >= 1")
    gen = as_rng(rng)
    code = ostbc_for(mt)
    bits_per_block = code.n_symbols * modem.bits_per_symbol
    blocks_per_packet = -(-packet_bits // bits_per_block)
    blocks_per_fade = blocks_per_packet if quasi_static else 1

    padded_packet_bits = blocks_per_packet * bits_per_block
    tx = gen.integers(0, 2, (n_packets, padded_packet_bits), dtype=np.int8)
    rx = transmit_bits(
        tx.reshape(-1),
        modem,
        snr_db,
        mt,
        mr,
        fading,
        rician_k,
        blocks_per_fade,
        gen,
    ).reshape(n_packets, padded_packet_bits)

    errors = tx[:, :packet_bits] != rx[:, :packet_bits]
    bit_errors = int(errors.sum())
    packet_errors = int(np.any(errors, axis=1).sum())
    return LinkResult(
        n_bits=n_packets * packet_bits,
        n_bit_errors=bit_errors,
        n_packets=n_packets,
        n_packet_errors=packet_errors,
    )
