"""Link-level Monte-Carlo simulation: frames, links, and relay chains.

This is the software substitute for the paper's GNU Radio/USRP testbed
(Section 6.4): the same DSP path — modulation, space-time coding, fading,
noise, combining, hard decision, CRC-checked packets — driven by
channel-model SNRs instead of real RF hardware.
"""

from repro.phy.frame import (
    bits_to_bytes,
    bytes_to_bits,
    crc16,
    packetize_bits,
    verify_crc,
    with_crc,
)
from repro.phy.coded import CodedLinkResult, simulate_coded_link
from repro.phy.hop import HopSimulationResult, simulate_hop
from repro.phy.link import LinkResult, simulate_link, simulate_packet_link
from repro.phy.relay import RelayChainResult, simulate_relay_chain

__all__ = [
    "crc16",
    "with_crc",
    "verify_crc",
    "bytes_to_bits",
    "bits_to_bytes",
    "packetize_bits",
    "LinkResult",
    "simulate_link",
    "simulate_packet_link",
    "RelayChainResult",
    "simulate_relay_chain",
    "HopSimulationResult",
    "simulate_hop",
    "CodedLinkResult",
    "simulate_coded_link",
]
