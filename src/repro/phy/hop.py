"""End-to-end Monte-Carlo simulation of one cooperative hop.

The Section 2.2 schemes are three-phase protocols; :func:`simulate_hop`
runs all three phases through the actual physical layer, including the
error propagation the analytic model abstracts away:

1. **intra-A broadcast** (mt > 1): every member decodes the head's local
   transmission *independently* — a member that decodes wrong bits encodes
   those wrong bits into its STBC antenna stream;
2. **long-haul**: the ``mt`` (possibly disagreeing) member streams cross
   the Rayleigh MIMO channel.  Antenna disagreement is modeled exactly:
   each member modulates its own bit estimate and the space-time code is
   built per-antenna from the members' symbol streams;
3. **intra-B collection** (mr > 1): the members forward their *received
   complex samples* to the head over the local channel (sample-and-forward
   within the cluster, as the scheme's "transmits the received data"
   describes), each pickup adding local noise; the head then decodes the
   MIMO code from the collected observations.

The result quantifies how much of the ideal cooperative-diversity gain
survives realistic intra-cluster links — the gap the paper's energy model
prices via ``e^{Lt}`` but never error-models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import complex_gaussian
from repro.channel.rayleigh import rayleigh_mimo_channel, rician_mimo_channel
from repro.modulation.base import Modem
from repro.stbc.ostbc import ostbc_for
from repro.utils.rng import RngLike, as_rng
from repro.utils.units import DB, db_to_linear
from repro.utils.validation import check_non_negative_int

__all__ = ["HopSimulationResult", "simulate_hop"]


@dataclass(frozen=True)
class HopSimulationResult:
    """Outcome of one simulated cooperative hop."""

    n_bits: int
    n_bit_errors: int
    member_broadcast_bers: tuple  # per-member intra-A decode error rates

    def __post_init__(self) -> None:
        check_non_negative_int(self.n_bits, "n_bits")
        check_non_negative_int(self.n_bit_errors, "n_bit_errors")

    @property
    def ber(self) -> float:
        """End-to-end (head-to-head) bit error rate."""
        return self.n_bit_errors / self.n_bits if self.n_bits else 0.0


def _intra_siso(symbols, snr_db, rician_k, gen):
    """One intra-cluster SISO link: Rician fading + AWGN, unit-gain output."""
    n = symbols.size
    h = rician_mimo_channel(1, 1, rician_k, n, gen)[:, 0, 0]
    noise_var = 1.0 / float(db_to_linear(snr_db))
    y = h * symbols + complex_gaussian(n, noise_var, gen)
    return y / h


def simulate_hop(
    n_bits: int,
    modem: Modem,
    intra_snr_db: DB,
    longhaul_snr_db: DB,
    mt: int,
    mr: int,
    intra_rician_k: float = 8.0,
    rng: RngLike = None,
) -> HopSimulationResult:
    """Run one cooperative MIMO/MISO/SIMO/SISO hop end to end.

    Parameters
    ----------
    n_bits:
        Information bits from head x to head y.
    modem:
        Modulation used on every segment.
    intra_snr_db:
        Average SNR of the short intra-cluster links (both clusters).
        Intra links are short and line-of-sight, hence the high default
        Rician K.
    longhaul_snr_db:
        Average per-receive-antenna SNR of the long-haul Rayleigh link
        (total transmit power normalized across the ``mt`` antennas).
    mt, mr:
        Cooperating node counts (1..4).
    """
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    if mt < 1 or mt > 4 or mr < 1 or mr > 4:
        raise ValueError("mt and mr must lie in 1..4")
    if intra_rician_k < 0.0:
        raise ValueError("intra_rician_k must be non-negative")
    gen = as_rng(rng)
    code = ostbc_for(mt)

    bits_per_block = code.n_symbols * modem.bits_per_symbol
    n_blocks = -(-n_bits // bits_per_block)
    tx_bits = gen.integers(0, 2, n_blocks * bits_per_block, dtype=np.int8)

    # ---- Phase 1: intra-A broadcast (independent decoding per member) ----
    member_bits = []
    member_bers = []
    head_symbols = modem.modulate(tx_bits)
    for _ in range(mt - 1):
        received = _intra_siso(head_symbols, intra_snr_db, intra_rician_k, gen)
        decoded = modem.demodulate(received)
        member_bits.append(decoded)
        member_bers.append(float(np.mean(decoded != tx_bits)))
    # the head itself holds the true bits and acts as antenna 0
    antenna_bits = [tx_bits] + member_bits

    # ---- Phase 2: long-haul STBC with per-antenna symbol streams ----
    # Each antenna encodes ITS OWN bit estimate; build the dispersion sum
    # per antenna so disagreements land on the right matrix entries.
    antenna_symbols = [modem.modulate(b).reshape(n_blocks, code.n_symbols)
                       for b in antenna_bits]
    a_tensor, b_tensor = code.dispersion_a, code.dispersion_b
    x = np.zeros((n_blocks, code.block_length, mt), dtype=complex)
    for antenna in range(mt):
        s = antenna_symbols[antenna]
        x[:, :, antenna] = np.einsum("bk,kt->bt", s.real, a_tensor[:, :, antenna]) + (
            1j * np.einsum("bk,kt->bt", s.imag, b_tensor[:, :, antenna])
        )
    x /= np.sqrt(code.power_per_slot)

    h = rayleigh_mimo_channel(mt, mr, n_blocks, gen)
    noise_var = 1.0 / float(db_to_linear(longhaul_snr_db))
    y = np.einsum("btm,bjm->btj", x, h)
    y = y + complex_gaussian(y.shape, noise_var, gen)

    # ---- Phase 3: intra-B sample-and-forward to head y ----
    if mr > 1:
        forwarded = np.empty_like(y)
        # member 0 IS the head: no forwarding noise on its own antenna
        forwarded[:, :, 0] = y[:, :, 0]
        for j in range(1, mr):
            samples = y[:, :, j].reshape(-1)
            clean = _intra_siso(samples, intra_snr_db, intra_rician_k, gen)
            # equivalent: extra complex noise of the intra link's variance
            forwarded[:, :, j] = clean.reshape(n_blocks, code.block_length)
        y = forwarded

    s_hat = code.decode(y, h / np.sqrt(code.power_per_slot))
    rx_bits = modem.demodulate(s_hat)
    errors = int(np.sum(rx_bits[:n_bits] != tx_bits[:n_bits]))
    return HopSimulationResult(
        n_bits=n_bits,
        n_bit_errors=errors,
        member_broadcast_bers=tuple(member_bers),
    )
