"""Decode-and-forward relaying with diversity combining at the destination.

This is the overlay testbed topology (Section 6.4): a source transmits, one
or more relays each *decode* the frame (hard decisions, so relay errors
propagate — exactly as in the real decode-and-forward testbed), re-modulate
and forward; the destination combines the forwarded copies (plus optionally
the direct copy) with equal-gain combination — "The equal gain combination
is used for overlay systems" — and makes the final decision.

All branches fade independently; each branch's average SNR is supplied by
the caller (from :class:`repro.channel.indoor.IndoorChannel` in the testbed
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.channel.awgn import complex_gaussian
from repro.channel.rayleigh import rician_mimo_channel
from repro.modulation.base import Modem
from repro.stbc.combining import (
    equal_gain_combine,
    maximal_ratio_combine,
    selection_combine,
)
from repro.utils.rng import RngLike, as_rng
from repro.utils.units import DB, db_to_linear
from repro.utils.validation import check_non_negative_int

__all__ = ["RelayChainResult", "simulate_relay_chain"]

_COMBINERS = {
    "egc": equal_gain_combine,
    "mrc": maximal_ratio_combine,
    "sc": selection_combine,
}


@dataclass(frozen=True)
class RelayChainResult:
    """Outcome of a decode-and-forward Monte-Carlo run."""

    n_bits: int
    n_bit_errors: int
    relay_bers: tuple

    def __post_init__(self) -> None:
        check_non_negative_int(self.n_bits, "n_bits")
        check_non_negative_int(self.n_bit_errors, "n_bit_errors")

    @property
    def ber(self) -> float:
        """End-to-end bit error rate at the destination."""
        return self.n_bit_errors / self.n_bits if self.n_bits else 0.0


def _siso_receive(
    symbols: np.ndarray,
    snr_db: DB,
    fading: str,
    rician_k: float,
    blocks_per_fade: int,
    gen: np.random.Generator,
):
    """One fading SISO hop: returns (received, channel gains per symbol)."""
    n = symbols.size
    if fading == "awgn":
        h = np.ones(n, dtype=complex)
    else:
        n_fades = -(-n // blocks_per_fade)
        k = rician_k if fading == "rician" else 0.0
        h_unique = rician_mimo_channel(1, 1, k, n_fades, gen)[:, 0, 0]
        h = np.repeat(h_unique, blocks_per_fade)[:n]
    noise_var = 1.0 / float(db_to_linear(snr_db))
    y = h * symbols + complex_gaussian(n, noise_var, gen)
    return y, h


def simulate_relay_chain(
    n_bits: int,
    modem: Modem,
    source_relay_snrs_db: Sequence[float],
    relay_dest_snrs_db: Sequence[float],
    direct_snr_db: Optional[float] = None,
    combining: str = "egc",
    fading: str = "rician",
    rician_k: float = 4.0,
    symbols_per_fade: int = 64,
    rng: RngLike = None,
) -> RelayChainResult:
    """Monte-Carlo decode-and-forward relay simulation.

    Parameters
    ----------
    n_bits:
        Information bits to push end-to-end.
    modem:
        Modulation shared by all hops (the testbed uses BPSK).
    source_relay_snrs_db:
        Average SNR of each source→relay hop (one entry per relay; empty
        for a direct-only baseline, in which case ``direct_snr_db`` is
        required).
    relay_dest_snrs_db:
        Average SNR of each relay→destination hop; must match the relay
        count.
    direct_snr_db:
        Average SNR of the direct source→destination path, combined with
        the relayed copies when given (None = destination hears relays
        only — e.g. the obstructed Table 3 layout where the direct path is
        effectively dead is modeled with a very low value instead).
    combining:
        ``"egc"`` (paper), ``"mrc"`` or ``"sc"``.
    fading / rician_k:
        Per-branch small-scale fading model; indoor short-range links
        default to Rician K = 4.
    symbols_per_fade:
        Fading coherence in symbols.
    """
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    if len(source_relay_snrs_db) != len(relay_dest_snrs_db):
        raise ValueError("need one relay→destination SNR per relay")
    if not source_relay_snrs_db and direct_snr_db is None:
        raise ValueError("no relays and no direct path: nothing reaches the destination")
    if combining not in _COMBINERS:
        raise ValueError(f"combining must be one of {sorted(_COMBINERS)}")
    gen = as_rng(rng)

    b = modem.bits_per_symbol
    n_pad = (-n_bits) % b
    tx_bits = gen.integers(0, 2, n_bits + n_pad, dtype=np.int8)
    tx_symbols = modem.modulate(tx_bits)
    n_sym = tx_symbols.size

    branch_obs = []
    branch_gain = []
    relay_bers = []

    # Relay branches: source -> relay (decode) -> destination.
    for snr_sr, snr_rd in zip(source_relay_snrs_db, relay_dest_snrs_db):
        y_sr, h_sr = _siso_receive(
            tx_symbols, snr_sr, fading, rician_k, symbols_per_fade, gen
        )
        relay_bits = modem.demodulate(y_sr / h_sr)
        relay_bers.append(float(np.mean(relay_bits != tx_bits)))
        relay_symbols = modem.modulate(relay_bits)
        y_rd, h_rd = _siso_receive(
            relay_symbols, snr_rd, fading, rician_k, symbols_per_fade, gen
        )
        branch_obs.append(y_rd)
        branch_gain.append(h_rd)

    # Direct branch.
    if direct_snr_db is not None:
        y_d, h_d = _siso_receive(
            tx_symbols, direct_snr_db, fading, rician_k, symbols_per_fade, gen
        )
        branch_obs.append(y_d)
        branch_gain.append(h_d)

    observations = np.stack(branch_obs, axis=1)  # (n_sym, branches)
    gains = np.stack(branch_gain, axis=1)
    combined = _COMBINERS[combining](observations, gains)
    rx_bits = modem.demodulate(combined)

    errors = int(np.sum(rx_bits[:n_bits] != tx_bits[:n_bits]))
    return RelayChainResult(
        n_bits=n_bits, n_bit_errors=errors, relay_bers=tuple(relay_bers)
    )
