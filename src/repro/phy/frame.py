"""Framing: bit/byte packing, CRC-16, and packetization.

The underlay testbed transmits an image as 1500-byte packets and reports
packet error rate (Table 4); a packet counts as errored when its CRC fails
at the receiver — the same criterion GNU Radio's packet framer uses.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = [
    "crc16",
    "with_crc",
    "verify_crc",
    "bytes_to_bits",
    "bits_to_bytes",
    "packetize_bits",
    "CRC_BITS",
]

#: CRC width appended by :func:`with_crc`.
CRC_BITS = 16

#: CRC-16/CCITT-FALSE polynomial.
_POLY = 0x1021
_INIT = 0xFFFF


def _build_crc_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint16)
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ _POLY) if (crc & 0x8000) else (crc << 1)
            crc &= 0xFFFF
        table[byte] = crc
    return table


_CRC_TABLE = _build_crc_table()


def crc16(data: np.ndarray) -> int:
    """CRC-16/CCITT-FALSE over a uint8 byte array."""
    arr = np.asarray(data, dtype=np.uint8)
    crc = _INIT
    for byte in arr.tolist():  # table-driven; fast enough for framing
        crc = ((crc << 8) & 0xFFFF) ^ int(_CRC_TABLE[((crc >> 8) ^ byte) & 0xFF])
    return crc


def bytes_to_bits(data: np.ndarray) -> np.ndarray:
    """uint8 array → flat 0/1 int8 array, MSB first."""
    arr = np.asarray(data, dtype=np.uint8)
    return np.unpackbits(arr).astype(np.int8)


def bits_to_bytes(bits: np.ndarray) -> np.ndarray:
    """Flat 0/1 array (length divisible by 8) → uint8 array, MSB first."""
    arr = np.asarray(bits)
    if arr.size % 8 != 0:
        raise ValueError(f"bit count {arr.size} is not a multiple of 8")
    return np.packbits(arr.astype(np.uint8))


def with_crc(payload_bits: np.ndarray) -> np.ndarray:
    """Append a 16-bit CRC to a payload whose length is a byte multiple."""
    arr = np.asarray(payload_bits)
    if arr.size % 8 != 0:
        raise ValueError("payload must be a whole number of bytes")
    crc = crc16(bits_to_bytes(arr))
    crc_bits = ((crc >> np.arange(15, -1, -1)) & 1).astype(np.int8)
    return np.concatenate([arr.astype(np.int8), crc_bits])


def verify_crc(frame_bits: np.ndarray) -> bool:
    """Check a frame produced by :func:`with_crc`; True iff intact."""
    arr = np.asarray(frame_bits)
    if arr.size < CRC_BITS or (arr.size - CRC_BITS) % 8 != 0:
        return False
    payload, crc_bits = arr[:-CRC_BITS], arr[-CRC_BITS:]
    received = int(np.sum(crc_bits.astype(np.int64) << np.arange(15, -1, -1)))
    return crc16(bits_to_bytes(payload)) == received


def packetize_bits(bits: np.ndarray, packet_bits: int, pad_value: int = 0) -> List[np.ndarray]:
    """Split a bit stream into fixed-size packets, padding the last one."""
    arr = np.asarray(bits).astype(np.int8)
    if packet_bits < 1:
        raise ValueError("packet_bits must be >= 1")
    n_packets = -(-arr.size // packet_bits) if arr.size else 0
    padded = np.full(n_packets * packet_bits, pad_value, dtype=np.int8)
    padded[: arr.size] = arr
    return [padded[i * packet_bits : (i + 1) * packet_bits] for i in range(n_packets)]
