"""System constants of the paper's energy model (Section 2.3).

The paper fixes one set of radio constants, taken from Cui, Goldsmith &
Bahai ("Energy-efficiency of MIMO and cooperative MIMO techniques in sensor
networks", JSAC 2004, and "Energy-constrained modulation optimization",
TWC 2005):

======================  =======================  =============================
symbol                  paper value              meaning
======================  =======================  =============================
``P_ct``                48.64 mW                 transmitter circuit power
``P_cr``                62.5 mW                  receiver circuit power
``P_syn``               50 mW                    frequency-synthesizer power
``G1``                  10 mW                    local path-gain factor at 1 m
``kappa``               3.5                      local path-loss exponent
``M_l``                 40 dB                    link margin
``N_f``                 10 dB                    receiver noise figure
``T_tr``                5 us                     synthesizer transient time
``sigma^2``             -174 dBm/Hz              thermal noise PSD
``G_t G_r``             5 dBi                    combined antenna gain
``lambda``              0.1199 m                 carrier wavelength (~2.5 GHz)
``N_0``                 -171 dBm/Hz              receiver-referred noise PSD
======================  =======================  =============================

:class:`SystemConstants` stores the quoted values and exposes the linear
(SI-unit) versions used by :mod:`repro.energy`.  A frozen dataclass keeps an
experiment's constant set immutable once constructed; variations (ablations)
create a new instance via :meth:`SystemConstants.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.utils.units import (
    DB,
    Bits,
    DBi,
    DBmPerHz,
    Hertz,
    LinearRatio,
    LinearRatioLike,
    Meters,
    MetersLike,
    Milliwatts,
    Seconds,
    Watts,
    WattsPerHz,
    db_to_linear,
    dbi_to_linear,
    dbm_per_hz_to_watts_per_hz,
    milliwatts_to_watts,
)
from repro.utils.validation import check_finite, check_non_negative, check_positive

__all__ = ["SystemConstants", "PAPER_CONSTANTS", "SPEED_OF_LIGHT"]

#: Speed of light in vacuum [m/s]; used to relate wavelength and carrier.
SPEED_OF_LIGHT = 299_792_458.0


@dataclass(frozen=True)
class SystemConstants:
    """Immutable bundle of the radio constants of Section 2.3.

    All attributes are stored in the units the paper quotes them in; the
    ``*_linear`` / ``*_watts`` properties convert to SI.  Construct with no
    arguments for the paper's values, or override any subset::

        consts = SystemConstants(noise_figure_db=6.0)
    """

    #: Transmitter circuit power [mW] (``P_ct``).
    p_ct_mw: Milliwatts = 48.64
    #: Receiver circuit power [mW] (``P_cr``).
    p_cr_mw: Milliwatts = 62.5
    #: Frequency synthesizer power [mW] (``P_syn``).
    p_syn_mw: Milliwatts = 50.0
    #: Local path-gain factor at 1 m [mW] (``G1`` in ``G_d = G1 d^kappa M_l``).
    g1_mw: Milliwatts = 10.0
    #: Local path-loss exponent (``kappa``).
    kappa: float = 3.5
    #: Link margin [dB] (``M_l``).
    link_margin_db: DB = 40.0
    #: Receiver noise figure [dB] (``N_f``).
    noise_figure_db: DB = 10.0
    #: Synthesizer transient/settling time [s] (``T_tr``).
    t_tr_s: Seconds = 5e-6
    #: Thermal noise power spectral density [dBm/Hz] (``sigma^2``).
    sigma2_dbm_hz: DBmPerHz = -174.0
    #: Combined transmit/receive antenna gain [dBi] (``G_t G_r``).
    antenna_gain_dbi: DBi = 5.0
    #: Carrier wavelength [m] (``lambda``); 0.1199 m is ~2.5 GHz.
    wavelength_m: Meters = 0.1199
    #: Receiver-referred single-sided noise PSD [dBm/Hz] (``N_0``).
    n0_dbm_hz: DBmPerHz = -171.0
    #: Power-amplifier drain efficiency (``eta`` in ``alpha = xi/eta - 1``).
    drain_efficiency: LinearRatio = 0.35

    def __post_init__(self) -> None:
        check_positive(self.p_ct_mw, "p_ct_mw")
        check_positive(self.p_cr_mw, "p_cr_mw")
        check_positive(self.p_syn_mw, "p_syn_mw")
        check_positive(self.g1_mw, "g1_mw")
        check_positive(self.kappa, "kappa")
        check_finite(self.link_margin_db, "link_margin_db")
        check_finite(self.noise_figure_db, "noise_figure_db")
        check_non_negative(self.t_tr_s, "t_tr_s")
        check_finite(self.sigma2_dbm_hz, "sigma2_dbm_hz")
        check_finite(self.antenna_gain_dbi, "antenna_gain_dbi")
        check_positive(self.wavelength_m, "wavelength_m")
        check_finite(self.n0_dbm_hz, "n0_dbm_hz")
        check_positive(self.drain_efficiency, "drain_efficiency")

    # ------------------------------------------------------------------ #
    # Linear / SI views                                                  #
    # ------------------------------------------------------------------ #

    @property
    def p_ct_w(self) -> Watts:
        """Transmitter circuit power [W]."""
        return float(milliwatts_to_watts(self.p_ct_mw))

    @property
    def p_cr_w(self) -> Watts:
        """Receiver circuit power [W]."""
        return float(milliwatts_to_watts(self.p_cr_mw))

    @property
    def p_syn_w(self) -> Watts:
        """Synthesizer power [W]."""
        return float(milliwatts_to_watts(self.p_syn_mw))

    @property
    def g1_w(self) -> Watts:
        """Local path-gain factor at 1 m [W]."""
        return float(milliwatts_to_watts(self.g1_mw))

    @property
    def link_margin_linear(self) -> LinearRatio:
        """Link margin ``M_l`` as a linear ratio."""
        return float(db_to_linear(self.link_margin_db))

    @property
    def noise_figure_linear(self) -> LinearRatio:
        """Noise figure ``N_f`` as a linear ratio."""
        return float(db_to_linear(self.noise_figure_db))

    @property
    def sigma2_w_hz(self) -> WattsPerHz:
        """Thermal noise PSD ``sigma^2`` [W/Hz]."""
        return float(dbm_per_hz_to_watts_per_hz(self.sigma2_dbm_hz))

    @property
    def n0_w_hz(self) -> WattsPerHz:
        """Receiver-referred noise PSD ``N_0`` [W/Hz]."""
        return float(dbm_per_hz_to_watts_per_hz(self.n0_dbm_hz))

    @property
    def antenna_gain_linear(self) -> LinearRatio:
        """Combined antenna gain ``G_t G_r`` as a linear ratio."""
        return float(dbi_to_linear(self.antenna_gain_dbi))

    @property
    def carrier_frequency_hz(self) -> Hertz:
        """Carrier frequency implied by the wavelength [Hz]."""
        return SPEED_OF_LIGHT / self.wavelength_m

    # ------------------------------------------------------------------ #
    # Derived model quantities                                           #
    # ------------------------------------------------------------------ #

    def local_gain(self, distance_m: MetersLike) -> LinearRatioLike:
        """Local-transmission path gain ``G_d = G1 * d^kappa * M_l`` (linear).

        ``distance_m`` is the intra-cluster hop length ``d``; the result
        multiplies the required received energy to obtain transmit energy in
        formula (1) of the paper.  Accepts an array of distances (the
        vectorized experiment sweeps), returning an array of gains.
        """
        if np.any(np.asarray(distance_m) <= 0.0):
            raise ValueError(f"distance_m must be positive, got {distance_m}")
        return self.g1_w * distance_m**self.kappa * self.link_margin_linear

    def longhaul_gain(self, distance_m: MetersLike) -> LinearRatioLike:
        """Long-haul path gain ``(4 pi D)^2 / (G_t G_r lambda^2) * M_l * N_f``.

        This is the multiplicative factor of ``e_bar_b`` in formula (3);
        it converts required received energy per bit into transmitted energy
        per bit over the ``D``-meter cooperative link (square-law fall-off,
        i.e. free space, as the paper assumes for the long haul).  Accepts an
        array of distances, returning elementwise gains.
        """
        if np.any(np.asarray(distance_m) <= 0.0):
            raise ValueError(f"distance_m must be positive, got {distance_m}")
        numerator = (4.0 * np.pi * distance_m) ** 2
        denominator = self.antenna_gain_linear * self.wavelength_m**2
        return (
            numerator
            / denominator
            * self.link_margin_linear
            * self.noise_figure_linear
        )

    def peak_to_average_alpha(self, b: Bits) -> LinearRatio:
        """PA inefficiency ``alpha = 3(sqrt(2^b)-1) / (0.35 (sqrt(2^b)+1))``.

        The paper's expression folds the M-QAM peak-to-average ratio
        ``xi = 3 (sqrt(M)-1)/(sqrt(M)+1)`` and the drain efficiency
        ``eta = 0.35`` into one constant per constellation size ``b``.
        """
        if b < 1:
            raise ValueError(f"constellation size b must be >= 1, got {b}")
        root_m = np.sqrt(2.0**b)
        return float(3.0 * (root_m - 1.0) / (self.drain_efficiency * (root_m + 1.0)))

    def replace(self, **changes: float) -> "SystemConstants":
        """Return a copy with the given fields replaced (ablation helper)."""
        return dataclasses.replace(self, **changes)


#: The exact constant set used throughout the paper's Section 6.
PAPER_CONSTANTS = SystemConstants()
