"""Gray-mapped M-QAM for arbitrary ``b`` = bits/symbol.

Even ``b`` yields square QAM (the constellation family of the paper's
energy model, formula (5)); odd ``b >= 3`` yields rectangular QAM with
``ceil(b/2)`` bits on the in-phase rail and ``floor(b/2)`` on quadrature,
which is the standard way to realize odd constellation sizes while keeping
per-rail Gray mapping (and hence the ``~1 bit per nearest-neighbour symbol
error`` property).

Constellations are normalized to unit average symbol energy.
"""

from __future__ import annotations

import numpy as np

from repro.modulation.base import Modem
from repro.modulation.gray import bits_to_ints, gray_decode, gray_encode, ints_to_bits

__all__ = ["QAMModem"]


class QAMModem(Modem):
    """Rectangular/square Gray-mapped QAM with ``b`` bits per symbol."""

    def __init__(self, bits_per_symbol: int):
        if bits_per_symbol < 2:
            raise ValueError(
                "QAMModem requires b >= 2 (use BPSKModem for b = 1); "
                f"got {bits_per_symbol}"
            )
        self._b = int(bits_per_symbol)
        self._bi = (self._b + 1) // 2  # in-phase rail bits
        self._bq = self._b // 2  # quadrature rail bits
        li = 1 << self._bi
        lq = 1 << self._bq
        # Mean energy of +-1, +-3, ... PAM with L levels is (L^2 - 1) / 3.
        mean_energy = ((li**2 - 1) + (lq**2 - 1)) / 3.0
        self._scale = 1.0 / np.sqrt(mean_energy)

    @property
    def bits_per_symbol(self) -> int:
        return self._b

    # ------------------------------------------------------------------ #

    def _pam_modulate(self, labels: np.ndarray, rail_bits: int) -> np.ndarray:
        """Gray labels → PAM amplitudes ±1, ±3, ..."""
        level_index = gray_decode(labels)
        levels = 1 << rail_bits
        return (2.0 * level_index - (levels - 1)).astype(float)

    def _pam_demodulate(self, amplitudes: np.ndarray, rail_bits: int) -> np.ndarray:
        """Noisy PAM amplitudes → nearest-level Gray labels."""
        levels = 1 << rail_bits
        index = np.rint((np.asarray(amplitudes) + (levels - 1)) / 2.0).astype(np.int64)
        index = np.clip(index, 0, levels - 1)
        return gray_encode(index)

    # ------------------------------------------------------------------ #

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits).reshape(-1, self._b)
        i_labels = bits_to_ints(arr[:, : self._bi].reshape(-1), self._bi)
        if self._bq:
            q_labels = bits_to_ints(arr[:, self._bi :].reshape(-1), self._bq)
            q_amp = self._pam_modulate(q_labels, self._bq)
        else:  # pragma: no cover - bq >= 1 whenever b >= 2
            q_amp = np.zeros(arr.shape[0])
        i_amp = self._pam_modulate(i_labels, self._bi)
        return self._scale * (i_amp + 1j * q_amp)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        sym = np.asarray(symbols) / self._scale
        i_labels = self._pam_demodulate(sym.real, self._bi)
        i_bits = ints_to_bits(i_labels, self._bi).reshape(-1, self._bi)
        if self._bq:
            q_labels = self._pam_demodulate(sym.imag, self._bq)
            q_bits = ints_to_bits(q_labels, self._bq).reshape(-1, self._bq)
            return np.concatenate([i_bits, q_bits], axis=1).reshape(-1)
        return i_bits.reshape(-1)  # pragma: no cover

    @property
    def constellation(self) -> np.ndarray:
        """All ``2^b`` constellation points, indexed by their bit label."""
        labels = np.arange(self.constellation_size)
        bits = ints_to_bits(labels, self._b)
        return self.modulate(bits)
