"""BPSK and Gray-mapped QPSK modems.

BPSK is the modulation of the paper's overlay and interweave testbed
experiments ("The Binary Phase Shift Keying (BPSK) modulation and
demodulation are used for overlay and interweave systems", Section 6.4).
"""

from __future__ import annotations

import numpy as np

from repro.modulation.base import Modem

__all__ = ["BPSKModem", "QPSKModem"]

_SQRT1_2 = np.sqrt(0.5)


class BPSKModem(Modem):
    """Antipodal signaling: bit 0 → +1, bit 1 → −1 (unit symbol energy)."""

    @property
    def bits_per_symbol(self) -> int:
        return 1

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits)
        return (1.0 - 2.0 * arr).astype(complex)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        sym = np.asarray(symbols)
        return (sym.real < 0.0).astype(np.int8)


class QPSKModem(Modem):
    """Gray-mapped QPSK: two independent BPSK rails on I and Q.

    Bit pair ``(b0, b1)`` maps to ``((1-2 b0) + j (1-2 b1)) / sqrt(2)``; the
    Gray property holds because adjacent constellation points differ in one
    rail only.
    """

    @property
    def bits_per_symbol(self) -> int:
        return 2

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits).reshape(-1, 2)
        i = 1.0 - 2.0 * arr[:, 0]
        q = 1.0 - 2.0 * arr[:, 1]
        return _SQRT1_2 * (i + 1j * q)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        sym = np.asarray(symbols)
        out = np.empty((sym.size, 2), dtype=np.int8)
        out[:, 0] = sym.real < 0.0
        out[:, 1] = sym.imag < 0.0
        return out.reshape(-1)
