"""Differential BPSK/QPSK.

GNU Radio's stock packet modems (the software the paper's testbed runs)
default to *differential* PSK because a USRP receiver has no absolute
carrier-phase reference: information rides on the phase *change* between
consecutive symbols, so an unknown constant channel phase cancels in the
``y_k * conj(y_{k-1})`` detector.

The price is the classical ~1-2x error-rate penalty (one noisy symbol
corrupts two decisions); the benefit is that demodulation needs no channel
estimate at all.  :class:`DBPSKModem`/:class:`DQPSKModem` implement the
scheme at symbol level:

* ``modulate`` differentially encodes (each symbol is the previous one
  rotated by the information phase), starting from a known reference
  symbol prepended to the burst;
* ``demodulate`` detects phase differences between consecutive received
  symbols — it never needs the channel, so callers can feed *unequalized*
  observations (unlike every coherent modem in this package).

Because the differential reference spans the whole burst, these modems are
burst-oriented: one ``modulate`` output must be demodulated as one unit.
"""

from __future__ import annotations

import numpy as np

from repro.modulation.base import Modem

__all__ = ["DBPSKModem", "DQPSKModem"]


class DBPSKModem(Modem):
    """Differential BPSK: bit 0 → keep phase, bit 1 → flip phase.

    ``modulate(bits)`` returns ``len(bits) + 1`` symbols (the leading
    reference symbol); ``demodulate`` consumes the full burst and returns
    ``len(symbols) - 1`` bits.
    """

    #: one noisy symbol hits two decisions: ~ -1.2 dB at BER 1e-3
    snr_efficiency: float = 0.8

    @property
    def bits_per_symbol(self) -> int:
        return 1

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits)
        phases = np.pi * arr  # 0 or pi per bit
        cumulative = np.concatenate([[0.0], np.cumsum(phases)])
        return np.exp(1j * cumulative)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        sym = np.asarray(symbols, dtype=complex)
        if sym.ndim != 1 or sym.size < 2:
            raise ValueError("a DBPSK burst needs at least 2 symbols")
        detector = sym[1:] * np.conj(sym[:-1])
        return (detector.real < 0.0).astype(np.int8)


class DQPSKModem(Modem):
    """Differential QPSK: Gray-mapped dibits select 0/90/180/270-degree
    rotations between consecutive symbols."""

    snr_efficiency: float = 0.7

    #: Gray mapping of dibits to phase increments (multiples of pi/2):
    #: 00 -> 0, 01 -> +90, 11 -> +180, 10 -> +270.
    _PHASE_STEP = {(0, 0): 0, (0, 1): 1, (1, 1): 2, (1, 0): 3}
    _STEP_TO_BITS = {v: k for k, v in _PHASE_STEP.items()}

    @property
    def bits_per_symbol(self) -> int:
        return 2

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits).reshape(-1, 2)
        steps = np.array(
            [self._PHASE_STEP[(int(a), int(b))] for a, b in arr], dtype=float
        )
        cumulative = np.concatenate([[0.0], np.cumsum(steps * np.pi / 2.0)])
        return np.exp(1j * cumulative)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        sym = np.asarray(symbols, dtype=complex)
        if sym.ndim != 1 or sym.size < 2:
            raise ValueError("a DQPSK burst needs at least 2 symbols")
        detector = sym[1:] * np.conj(sym[:-1])
        steps = np.mod(np.rint(np.angle(detector) / (np.pi / 2.0)), 4).astype(int)
        out = np.empty((steps.size, 2), dtype=np.int8)
        for i, step in enumerate(steps):
            out[i] = self._STEP_TO_BITS[int(step)]
        return out.reshape(-1)
