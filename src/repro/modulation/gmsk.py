"""Gaussian Minimum Shift Keying.

The paper's underlay testbed uses GMSK ("The Gaussian-filtered Minimum Shift
Keying (GMSK) modulation and demodulation are used for underlay systems",
Section 6.4 — it is GNU Radio's default packet modem).

Two levels of fidelity are provided:

* :class:`GMSKWaveform` — a true continuous-phase waveform generator
  (Gaussian-filtered frequency pulse, oversampled phase integration).  It is
  used by the tests to verify the physical properties (constant envelope,
  phase continuity, 3-dB bandwidth shrinking with BT) and by anyone who
  wants actual baseband samples.
* :class:`GMSKModem` — a symbol-level equivalent modem for Monte-Carlo link
  simulation.  By Laurent's decomposition, coherently-detected GMSK is
  equivalent to antipodal signaling over the principal pulse with an SNR
  penalty from the ISI of the Gaussian filter; for BT = 0.3 the standard
  penalty is ~0.46 dB (d_min^2 ≈ 1.78 vs 2.0), i.e. an efficiency factor of
  ~0.89.  The modem therefore maps bits antipodally and reports
  ``snr_efficiency`` for the simulator to apply — this keeps million-bit PER
  sweeps vectorized while preserving GMSK's error-rate behaviour.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.modulation.base import Modem
from repro.utils.validation import check_positive

__all__ = ["GMSKModem", "GMSKWaveform"]

#: d_min^2 / 2 relative to antipodal signaling, tabulated vs BT product
#: (classical values from Murota & Hirade 1981).
_EFFICIENCY_BY_BT = {
    0.20: 0.84,
    0.25: 0.87,
    0.30: 0.89,
    0.50: 0.97,
}


def _efficiency_for_bt(bt: float) -> float:
    """Interpolated SNR efficiency for a Gaussian filter BT product."""
    if bt <= 0.0:
        raise ValueError("BT product must be positive")
    keys = sorted(_EFFICIENCY_BY_BT)
    if bt <= keys[0]:
        return _EFFICIENCY_BY_BT[keys[0]]
    if bt >= keys[-1]:
        return _EFFICIENCY_BY_BT[keys[-1]]
    return float(np.interp(bt, keys, [_EFFICIENCY_BY_BT[k] for k in keys]))


class GMSKModem(Modem):
    """Symbol-level GMSK-equivalent modem (see module docstring).

    Parameters
    ----------
    bt:
        Bandwidth-time product of the Gaussian premodulation filter.
        GNU Radio's default (used by the paper's testbed) is 0.3.
    """

    def __init__(self, bt: float = 0.3):
        self.bt = check_positive(bt, "bt")
        self.snr_efficiency = _efficiency_for_bt(self.bt)

    @property
    def bits_per_symbol(self) -> int:
        return 1

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits)
        return (1.0 - 2.0 * arr).astype(complex)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        sym = np.asarray(symbols)
        return (sym.real < 0.0).astype(np.int8)


class GMSKWaveform:
    """Oversampled continuous-phase GMSK baseband waveform generator.

    The instantaneous frequency is the bit sequence (NRZ ±1) convolved with
    a Gaussian pulse of 3-dB bandwidth ``BT / T``; the phase is the running
    integral scaled so each bit advances the phase by ±π/2 (modulation
    index h = 0.5, as in MSK).
    """

    def __init__(self, bt: float = 0.3, samples_per_symbol: int = 8, pulse_span: int = 4):
        if samples_per_symbol < 2:
            raise ValueError("samples_per_symbol must be >= 2")
        if pulse_span < 1:
            raise ValueError("pulse_span must be >= 1")
        if bt <= 0:
            raise ValueError("BT product must be positive")
        self.bt = float(bt)
        self.sps = int(samples_per_symbol)
        self.span = int(pulse_span)
        self._pulse = self._gaussian_pulse()

    def _gaussian_pulse(self) -> np.ndarray:
        """Gaussian frequency pulse g(t), normalized so ``sum(g) = 1/4``.

        The phase integral multiplies by ``2 pi``, so each bit advances the
        phase by ``2 pi * (1/4) = pi/2`` — modulation index h = 0.5, as in
        MSK.
        """
        t = (np.arange(self.span * self.sps) - (self.span * self.sps - 1) / 2.0) / self.sps
        # Standard GMSK frequency pulse: difference of Q-functions.
        k = 2.0 * np.pi * self.bt / np.sqrt(np.log(2.0))

        def qf(x):
            return 0.5 * special.erfc(x / np.sqrt(2.0))

        g = qf(k * (t - 0.5)) - qf(k * (t + 0.5))
        g = np.abs(g)
        g /= 4.0 * g.sum()
        return g

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Bits → complex unit-envelope baseband samples.

        Output length is ``(len(bits) + span) * sps - 1`` (full convolution
        of the impulse train with the ``span * sps``-tap frequency pulse).
        """
        arr = np.asarray(bits)
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise ValueError("bits must contain only 0 and 1")
        nrz = (1.0 - 2.0 * arr).astype(float)
        impulses = np.zeros(arr.size * self.sps)
        impulses[:: self.sps] = nrz
        freq = np.convolve(impulses, self._pulse)
        phase = 2.0 * np.pi * np.cumsum(freq)
        return np.exp(1j * phase)

    def instantaneous_frequency(self, waveform: np.ndarray) -> np.ndarray:
        """Discrete-time instantaneous frequency (rad/sample) of a waveform."""
        phase = np.unwrap(np.angle(waveform))
        return np.diff(phase)
