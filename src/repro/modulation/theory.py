"""Theoretical bit-error-rate expressions.

This module collects the analytic BER formulas that anchor the whole
reproduction:

* :func:`instantaneous_ber` — the paper's formulas (5)/(6) kernels: BER of
  Gray M-QAM (or BPSK for b=1) at a given instantaneous ``gamma_b``;
* :func:`rayleigh_diversity_avg_qfunc` — the exact closed form for
  ``E[Q(sqrt(2 c G))]`` with ``G ~ Gamma(k, 1)``, which is the average over
  the Rayleigh MIMO channel ``H`` in formulas (5)/(6) (``||H||_F^2`` of an
  i.i.d. unit-power complex Gaussian ``mt x mr`` matrix is Gamma(mt*mr, 1));
* AWGN and flat-Rayleigh reference curves used to validate the Monte-Carlo
  link simulator.

The closed form (e.g. Proakis, *Digital Communications*, eq. 14.4-15) is::

    E[Q(sqrt(2 c G))] = [ (1-mu)/2 ]^k  *  sum_{i=0}^{k-1} C(k-1+i, i) [ (1+mu)/2 ]^i
    mu = sqrt( c / (1 + c) )

It is exact for integer diversity order ``k`` and numerically robust for the
small target BERs the paper sweeps (1e-1 .. 5e-4).
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy import special

from repro.utils.qfunc import qfunc
from repro.utils.units import db_to_linear

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "ber_bpsk_awgn",
    "ber_mqam_awgn",
    "ber_bpsk_rayleigh",
    "instantaneous_ber",
    "mqam_ber_coefficients",
    "rayleigh_diversity_avg_qfunc",
]


def mqam_ber_coefficients(b: int) -> tuple:
    """Coefficients ``(a, g)`` such that ``BER ≈ a * Q(sqrt(g * gamma_b))``.

    For b = 1 (BPSK): ``a = 1, g = 2`` (formula (6)).
    For b >= 2 (Gray M-QAM): ``a = (4/b)(1 - 2^{-b/2})``, ``g = 3b/(M-1)``
    (formula (5)); ``gamma_b`` is SNR per *bit*.
    """
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    if b == 1:
        return 1.0, 2.0
    m = 2.0**b
    a = 4.0 / b * (1.0 - 2.0 ** (-b / 2.0))
    g = 3.0 * b / (m - 1.0)
    return a, g


def instantaneous_ber(gamma_b: ArrayLike, b: int) -> ArrayLike:
    """BER at instantaneous per-bit SNR ``gamma_b`` — formulas (5)/(6) kernels."""
    a, g = mqam_ber_coefficients(b)
    gb = np.asarray(gamma_b, dtype=float)
    if np.any(gb < 0.0):
        raise ValueError("gamma_b must be non-negative")
    return a * qfunc(np.sqrt(g * gb))


def ber_bpsk_awgn(ebn0_db: ArrayLike) -> ArrayLike:
    """Exact BPSK-over-AWGN BER: ``Q(sqrt(2 Eb/N0))``."""
    gamma = np.asarray(db_to_linear(ebn0_db))
    return qfunc(np.sqrt(2.0 * gamma))


def ber_mqam_awgn(ebn0_db: ArrayLike, b: int) -> ArrayLike:
    """Gray M-QAM over AWGN (nearest-neighbour approximation, formula (5))."""
    gamma = np.asarray(db_to_linear(ebn0_db))
    return instantaneous_ber(gamma, b)


def ber_bpsk_rayleigh(ebn0_db: ArrayLike) -> ArrayLike:
    """Exact BPSK over flat Rayleigh fading: ``(1 - sqrt(g/(1+g)))/2``."""
    gamma = np.asarray(db_to_linear(ebn0_db))
    return 0.5 * (1.0 - np.sqrt(gamma / (1.0 + gamma)))


def rayleigh_diversity_avg_qfunc(c: ArrayLike, k: int) -> ArrayLike:
    """Exact ``E[Q(sqrt(2 c G))]`` for ``G ~ Gamma(k, 1)`` (see module docs).

    Parameters
    ----------
    c:
        Per-unit-``G`` SNR scale (``>= 0``); broadcasts over arrays.
    k:
        Integer diversity order ``mt * mr`` (``>= 1``).

    Notes
    -----
    ``G = ||H||_F^2`` sums ``k`` unit-mean exponential branch powers, so this
    is exactly the classical k-branch MRC average over i.i.d. Rayleigh fading.
    Monotone decreasing in ``c`` for fixed ``k`` — a property the ē_b root
    finder relies on and the test suite asserts.
    """
    if k < 1:
        raise ValueError(f"diversity order k must be >= 1, got {k}")
    carr = np.asarray(c, dtype=float)
    if np.any(carr < 0.0):
        raise ValueError("c must be non-negative")
    mu = np.sqrt(carr / (1.0 + carr))
    half_minus = (1.0 - mu) / 2.0
    half_plus = (1.0 + mu) / 2.0
    i = np.arange(k)
    binoms = special.comb(k - 1 + i, i)  # C(k-1+i, i)
    # sum_i binom * ((1+mu)/2)^i — evaluate via broadcasting on the last axis.
    powers = half_plus[..., None] ** i
    series = np.sum(binoms * powers, axis=-1)
    return half_minus**k * series
