"""Digital modulation: modems, Gray mapping and theoretical BER curves.

The paper's experiments use BPSK (overlay and interweave testbeds, Section
6.4), GMSK (underlay testbed), and variable-size M-QAM constellations
(``b`` = 1..16 bits/symbol) inside the energy model of Section 2.3.
"""

from repro.modulation.base import Modem
from repro.modulation.dpsk import DBPSKModem, DQPSKModem
from repro.modulation.gmsk import GMSKModem, GMSKWaveform
from repro.modulation.gray import (
    bits_to_ints,
    gray_decode,
    gray_encode,
    ints_to_bits,
)
from repro.modulation.psk import BPSKModem, QPSKModem
from repro.modulation.qam import QAMModem
from repro.modulation.theory import (
    ber_bpsk_awgn,
    ber_bpsk_rayleigh,
    ber_mqam_awgn,
    instantaneous_ber,
    rayleigh_diversity_avg_qfunc,
)

__all__ = [
    "Modem",
    "BPSKModem",
    "QPSKModem",
    "QAMModem",
    "GMSKModem",
    "GMSKWaveform",
    "DBPSKModem",
    "DQPSKModem",
    "gray_encode",
    "gray_decode",
    "bits_to_ints",
    "ints_to_bits",
    "ber_bpsk_awgn",
    "ber_bpsk_rayleigh",
    "ber_mqam_awgn",
    "instantaneous_ber",
    "rayleigh_diversity_avg_qfunc",
    "modem_for_bits_per_symbol",
]


def modem_for_bits_per_symbol(b: int) -> Modem:
    """Construct the natural modem for ``b`` bits/symbol.

    ``b = 1`` → BPSK, ``b = 2`` → QPSK (Gray-mapped 4-QAM), ``b >= 3`` →
    rectangular/square Gray-mapped QAM — the modulation family assumed by
    the paper's variable-rate energy model.
    """
    if b == 1:
        return BPSKModem()
    if b == 2:
        return QPSKModem()
    return QAMModem(bits_per_symbol=b)
