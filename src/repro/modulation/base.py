"""Abstract modem interface.

A modem converts bit arrays to unit-average-energy complex baseband symbols
and back (hard-decision).  Keeping every modulation behind this small
interface lets the link simulator (:mod:`repro.phy.link`), the STBC encoders
and the testbed all remain modulation-agnostic.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Modem"]


class Modem(abc.ABC):
    """Bits ↔ unit-energy complex symbols.

    Contract:

    * ``modulate`` consumes a 0/1 integer array whose length is a multiple
      of :attr:`bits_per_symbol` and produces complex symbols with average
      energy 1 (exactly 1 per symbol for constant-envelope modulations,
      1 on constellation average for QAM);
    * ``demodulate`` is the exact inverse on noiseless input
      (round-trip property, enforced by the test suite for every modem);
    * :attr:`snr_efficiency` is the factor by which the effective detection
      SNR is scaled relative to an ideal antipodal signal — 1.0 for the
      linear modems, < 1 for GMSK's Gaussian-filter ISI penalty.
    """

    #: Effective-SNR multiplier applied by simulators (see class docstring).
    snr_efficiency: float = 1.0

    @property
    @abc.abstractmethod
    def bits_per_symbol(self) -> int:
        """Number of bits carried by one channel symbol (``b`` in the paper)."""

    @property
    def constellation_size(self) -> int:
        """``M = 2^b``."""
        return 2**self.bits_per_symbol

    @property
    def name(self) -> str:
        """Human-readable modem name."""
        return type(self).__name__.replace("Modem", "")

    @abc.abstractmethod
    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a 0/1 array (length divisible by ``bits_per_symbol``) to symbols."""

    @abc.abstractmethod
    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision demap symbols back to a 0/1 array."""

    # ------------------------------------------------------------------ #
    # Shared helpers                                                     #
    # ------------------------------------------------------------------ #

    def _check_bits(self, bits: np.ndarray) -> np.ndarray:
        arr = np.asarray(bits)
        if arr.ndim != 1:
            raise ValueError(f"bits must be 1-D, got shape {arr.shape}")
        if arr.size % self.bits_per_symbol != 0:
            raise ValueError(
                f"bit count {arr.size} is not a multiple of "
                f"bits_per_symbol={self.bits_per_symbol}"
            )
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise ValueError("bits must contain only 0 and 1")
        return arr.astype(np.int8, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(bits_per_symbol={self.bits_per_symbol})"
