"""Gray coding and bit/integer packing.

Gray mapping places adjacent constellation points one bit apart, so a
nearest-neighbour symbol error costs a single bit error — the assumption
behind the ``(4/b)(1 - 2^{-b/2}) Q(...)`` BER expression the paper uses
(formula (5)).
"""

from __future__ import annotations

import numpy as np

__all__ = ["gray_encode", "gray_decode", "bits_to_ints", "ints_to_bits"]


def gray_encode(values: np.ndarray) -> np.ndarray:
    """Binary-reflected Gray code of non-negative integers: ``g = v ^ (v >> 1)``."""
    arr = np.asarray(values)
    if arr.size and arr.min() < 0:
        raise ValueError("gray_encode requires non-negative integers")
    return arr ^ (arr >> 1)


def gray_decode(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`gray_encode`.

    Iterative xor-shift inverse; runs in O(log maxbits) vectorized passes.
    """
    arr = np.array(codes, copy=True)
    if arr.size and arr.min() < 0:
        raise ValueError("gray_decode requires non-negative integers")
    shift = 1
    # 64 bits is the widest integer dtype numpy offers.
    while shift < 64:
        arr ^= arr >> shift
        shift <<= 1
    return arr


def bits_to_ints(bits: np.ndarray, width: int) -> np.ndarray:
    """Pack a flat 0/1 array into integers, ``width`` bits each, MSB first."""
    arr = np.asarray(bits)
    if width < 1:
        raise ValueError("width must be >= 1")
    if arr.size % width != 0:
        raise ValueError(f"bit count {arr.size} not a multiple of width {width}")
    grouped = arr.reshape(-1, width).astype(np.int64)
    weights = 1 << np.arange(width - 1, -1, -1, dtype=np.int64)
    return grouped @ weights


def ints_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Unpack integers into a flat 0/1 array, ``width`` bits each, MSB first."""
    arr = np.asarray(values, dtype=np.int64)
    if width < 1:
        raise ValueError("width must be >= 1")
    if arr.size and (arr.min() < 0 or arr.max() >= (1 << width)):
        raise ValueError(f"values out of range for width {width}")
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    return ((arr[:, None] >> shifts[None, :]) & 1).reshape(-1).astype(np.int8)
