"""Log-normal shadowing.

Large-scale fading caused by obstructions; modeled as a zero-mean Gaussian
random variable in the dB domain with standard deviation ``sigma_db``.
Used by the indoor testbed substitute (real indoor links at 2.45 GHz show
4–8 dB shadowing spread) on top of the deterministic log-distance loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.units import DB, DBArray, LinearRatio, LinearRatioArray, db_to_linear

__all__ = ["LogNormalShadowing"]


@dataclass(frozen=True)
class LogNormalShadowing:
    """Zero-mean log-normal shadowing with ``sigma_db`` dB spread."""

    sigma_db: DB = 6.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0.0:
            raise ValueError("sigma_db must be non-negative")

    def sample_db(self, shape=(), rng: RngLike = None) -> DBArray:
        """Shadowing realizations in dB (may be negative: constructive)."""
        gen = as_rng(rng)
        return self.sigma_db * gen.standard_normal(shape)

    def sample_linear(self, shape=(), rng: RngLike = None) -> LinearRatioArray:
        """Shadowing realizations as linear power factors (``10^(X/10)``)."""
        return np.asarray(db_to_linear(self.sample_db(shape, rng)))

    def mean_linear(self) -> LinearRatio:
        """Mean of the linear factor, ``exp((ln10/10 * sigma)^2 / 2)``.

        Log-normal variables have mean above the median; experiments that
        want an unbiased average attenuation can divide by this.
        """
        s = np.log(10.0) / 10.0 * self.sigma_db
        return float(np.exp(s**2 / 2.0))
