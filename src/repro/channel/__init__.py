"""Channel models.

The paper uses two propagation regimes:

* **local (intra-cluster)**: kappa-th power path loss (kappa = 3.5) with
  AWGN — formula (1);
* **long-haul (inter-cluster)**: square-law path loss with flat Rayleigh
  block fading over the virtual MIMO link — formulas (3), (5), (6).

The testbed experiments of Section 6.4 additionally need an *indoor* model
(obstacles, concrete walls, multipath), which the paper realized with real
USRP hardware and we substitute with :mod:`repro.channel.indoor` and
:mod:`repro.channel.multipath` (see DESIGN.md section 3).
"""

from repro.channel.awgn import awgn, noise_variance_per_symbol
from repro.channel.doppler import (
    JakesFadingProcess,
    coherence_time_s,
    max_doppler_hz,
)
from repro.channel.indoor import IndoorChannel, Obstacle, Wall
from repro.channel.multipath import MultipathEnvironment, Scatterer
from repro.channel.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PowerLawPathLoss,
)
from repro.channel.rayleigh import (
    rayleigh_mimo_channel,
    rayleigh_siso_gain,
    rician_mimo_channel,
)
from repro.channel.shadowing import LogNormalShadowing

__all__ = [
    "awgn",
    "noise_variance_per_symbol",
    "rayleigh_mimo_channel",
    "rayleigh_siso_gain",
    "rician_mimo_channel",
    "FreeSpacePathLoss",
    "PowerLawPathLoss",
    "LogDistancePathLoss",
    "LogNormalShadowing",
    "MultipathEnvironment",
    "Scatterer",
    "IndoorChannel",
    "Obstacle",
    "Wall",
    "JakesFadingProcess",
    "max_doppler_hz",
    "coherence_time_s",
]
