"""Flat Rayleigh (and Rician) block-fading MIMO channel draws.

The paper's MIMO links assume a flat Rayleigh fading channel whose
coefficient matrix ``H`` (shape ``mr x mt``) has i.i.d. circularly-symmetric
complex Gaussian entries of unit power: ``E[|h_ij|^2] = 1``.  The squared
Frobenius norm ``||H||_F^2`` — the quantity entering ``gamma_b`` in
formulas (5)/(6) — is then Gamma-distributed with shape ``mt*mr`` and unit
scale, which :mod:`repro.energy.ebar` exploits analytically; the explicit
draws here are used by the Monte-Carlo cross-checks and the link simulator.
"""

from __future__ import annotations

import numpy as np

from repro.channel.awgn import complex_gaussian
from repro.utils.rng import RngLike, as_rng

__all__ = ["rayleigh_mimo_channel", "rayleigh_siso_gain", "rician_mimo_channel"]


def rayleigh_mimo_channel(
    mt: int,
    mr: int,
    n_blocks: int = 1,
    rng: RngLike = None,
) -> np.ndarray:
    """Draw ``n_blocks`` independent ``mr x mt`` Rayleigh channel matrices.

    Returns
    -------
    ndarray of shape ``(n_blocks, mr, mt)`` complex, unit average entry power.
    """
    if mt < 1 or mr < 1:
        raise ValueError("mt and mr must be >= 1")
    if n_blocks < 1:
        raise ValueError("n_blocks must be >= 1")
    return complex_gaussian((n_blocks, mr, mt), variance=1.0, rng=rng)


def rayleigh_siso_gain(n: int, rng: RngLike = None) -> np.ndarray:
    """``n`` scalar Rayleigh fades (unit mean power), returned as complex."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return complex_gaussian(n, variance=1.0, rng=rng)


def rician_mimo_channel(
    mt: int,
    mr: int,
    k_factor: float,
    n_blocks: int = 1,
    rng: RngLike = None,
) -> np.ndarray:
    """Rician fading with line-of-sight K-factor (linear, not dB).

    ``H = sqrt(K/(K+1)) * H_los + sqrt(1/(K+1)) * H_nlos`` with a fixed
    all-ones LOS component.  ``k_factor = 0`` degenerates to Rayleigh.  Used
    by the indoor testbed substitute, where short-range links with a direct
    path are better modeled as Rician.
    """
    if k_factor < 0.0:
        raise ValueError("k_factor must be non-negative")
    gen = as_rng(rng)
    nlos = rayleigh_mimo_channel(mt, mr, n_blocks, gen)
    los = np.ones((n_blocks, mr, mt), dtype=complex)
    return np.sqrt(k_factor / (k_factor + 1.0)) * los + np.sqrt(
        1.0 / (k_factor + 1.0)
    ) * nlos
