"""Discrete multipath (scatterer) propagation for narrowband fields.

Figure 8 of the paper observes that the beamformer's null is *not* zero in
the real experiment "since ... the multipath propagation happens in the
in-door experiment environment".  This module supplies that mechanism
physically: besides the line-of-sight path, the field reaches the receiver
via point scatterers (walls, furniture); each scatterer contributes a ray
whose length is ``|tx -> scatterer| + |scatterer -> rx|``.

Because the scattered path length depends on the *individual* transmitter
position, a two-element null that is perfect on the direct path is filled
in by the echoes — exactly the measured behaviour.  (A model that applied
a common excess delay to both transmitters would preserve the null
identically, which is why the scatterers are explicit geometry.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.geometry.points import as_points
from repro.utils.rng import RngLike, as_rng

__all__ = ["Scatterer", "MultipathEnvironment"]


@dataclass(frozen=True)
class Scatterer:
    """A point scatterer: position and linear reflection amplitude (< 1)."""

    position: Tuple[float, float]
    amplitude: float

    def __post_init__(self) -> None:
        if self.amplitude < 0.0:
            raise ValueError("amplitude must be non-negative")


@dataclass(frozen=True)
class MultipathEnvironment:
    """Line-of-sight propagation plus a fixed set of point scatterers.

    Parameters
    ----------
    scatterers:
        Echo sources; empty for free-space (the Table 1 simulation case).
    amplitude_decay_with_distance:
        If True, each path's contribution is additionally scaled by
        ``1 / path_length`` (spherical spreading); if False (default),
        paths carry their nominal amplitudes, matching the paper's
        normalized-amplitude plots.
    """

    scatterers: Sequence[Scatterer] = field(default_factory=tuple)
    amplitude_decay_with_distance: bool = False

    # ------------------------------------------------------------------ #
    # Constructors                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def line_of_sight(cls) -> "MultipathEnvironment":
        """Free-space propagation: direct paths only."""
        return cls(scatterers=())

    @classmethod
    def random_indoor(
        cls,
        n_scatterers: int = 6,
        inner_radius_m: float = 1.5,
        outer_radius_m: float = 6.0,
        echo_amplitude: float = 0.25,
        decay: float = 0.75,
        center: Tuple[float, float] = (0.0, 0.0),
        rng: RngLike = None,
    ) -> "MultipathEnvironment":
        """An indoor-like environment: scatterers ringed around the setup.

        Scatterer ``k`` has amplitude ``echo_amplitude * decay**k`` and a
        position drawn uniformly in the annulus between the two radii —
        walls and furniture a few meters from a lab bench.
        """
        if n_scatterers < 0:
            raise ValueError("n_scatterers must be non-negative")
        if not (0.0 < inner_radius_m < outer_radius_m):
            raise ValueError("need 0 < inner_radius_m < outer_radius_m")
        if echo_amplitude < 0.0 or not (0.0 < decay <= 1.0):
            raise ValueError("echo_amplitude must be >= 0 and decay in (0, 1]")
        gen = as_rng(rng)
        scatterers = []
        for k in range(n_scatterers):
            u = gen.random()
            r = np.sqrt(inner_radius_m**2 + u * (outer_radius_m**2 - inner_radius_m**2))
            theta = gen.uniform(0.0, 2.0 * np.pi)
            pos = (
                center[0] + r * np.cos(theta),
                center[1] + r * np.sin(theta),
            )
            scatterers.append(Scatterer(pos, echo_amplitude * decay**k))
        return cls(scatterers=tuple(scatterers))

    # ------------------------------------------------------------------ #
    # Field computation                                                  #
    # ------------------------------------------------------------------ #

    def path_lengths(self, tx_positions: np.ndarray, rx_position: np.ndarray) -> np.ndarray:
        """Path lengths per transmitter: direct first, then echoes.

        ``rx_position`` may be a single ``(2,)`` point — result
        ``(n_tx, 1 + n_scat)`` — or a batch of ``(N, 2)`` field points —
        result ``(N, n_tx, 1 + n_scat)``.  The batched form runs the same
        elementwise arithmetic as the scalar one, just across the leading
        axis.
        """
        tx = as_points(tx_positions)
        rx = np.asarray(rx_position, dtype=float)
        if rx.ndim == 1:
            d_los = np.linalg.norm(tx - rx[None, :], axis=1)  # (n_tx,)
            if not self.scatterers:
                return d_los[:, None]
            scat = np.array([s.position for s in self.scatterers])  # (n_s, 2)
            d_tx_s = np.linalg.norm(tx[:, None, :] - scat[None, :, :], axis=-1)
            d_s_rx = np.linalg.norm(scat - rx[None, :], axis=1)  # (n_s,)
            return np.concatenate([d_los[:, None], d_tx_s + d_s_rx[None, :]], axis=1)
        if rx.ndim != 2 or rx.shape[-1] != 2:
            raise ValueError(
                f"rx_position must have shape (2,) or (N, 2), got {rx.shape}"
            )
        d_los = np.linalg.norm(tx[None, :, :] - rx[:, None, :], axis=-1)  # (N, n_tx)
        if not self.scatterers:
            return d_los[..., None]
        scat = np.array([s.position for s in self.scatterers])  # (n_s, 2)
        d_tx_s = np.linalg.norm(tx[:, None, :] - scat[None, :, :], axis=-1)  # (n_tx, n_s)
        d_s_rx = np.linalg.norm(scat[None, :, :] - rx[:, None, :], axis=-1)  # (N, n_s)
        echoes = d_tx_s[None, :, :] + d_s_rx[:, None, :]  # (N, n_tx, n_s)
        return np.concatenate([d_los[..., None], echoes], axis=-1)

    def field_at(
        self,
        tx_positions: np.ndarray,
        rx_position: np.ndarray,
        wavelength_m: float,
        tx_phases_rad: np.ndarray = None,
        tx_amplitudes: np.ndarray = None,
    ):
        """Coherent narrowband field at ``rx_position``.

        Parameters
        ----------
        tx_positions:
            ``(n_tx, 2)`` transmitter coordinates.
        rx_position:
            ``(2,)`` receiver coordinate, or ``(N, 2)`` field points — the
            batched form (used by the Figure 8 semicircle walk) returns the
            ``N`` complex fields in one vectorized evaluation.
        wavelength_m:
            Carrier wavelength ``w``.
        tx_phases_rad:
            Per-transmitter phase *offset* in radians, added to the carrier
            phase (the sign convention under which Algorithm 3's
            ``delta = pi (2 r cos(alpha) / w - 1)`` produces an exact
            far-field null — see :mod:`repro.beamforming.pairwise`).
            Defaults to zero for all transmitters.
        tx_amplitudes:
            Per-transmitter amplitudes ``gamma_i``; default 1.

        Returns
        -------
        The complex field summed over all transmitters and paths (its
        magnitude is the "amplitude" reported in Table 1 / Figure 8) — a
        scalar ``complex`` for a single rx point, an ``(N,)`` complex array
        for a batch of field points.
        """
        if wavelength_m <= 0.0:
            raise ValueError("wavelength_m must be positive")
        tx = as_points(tx_positions)
        n_tx = tx.shape[0]
        phases = np.zeros(n_tx) if tx_phases_rad is None else np.asarray(tx_phases_rad, float)
        amps = np.ones(n_tx) if tx_amplitudes is None else np.asarray(tx_amplitudes, float)
        if phases.shape != (n_tx,) or amps.shape != (n_tx,):
            raise ValueError("tx_phases_rad and tx_amplitudes must have one entry per tx")

        k = 2.0 * np.pi / wavelength_m
        # (n_tx, P) for one rx point, (N, n_tx, P) for a batch; the per-tx
        # factors broadcast against the trailing two axes either way
        paths = self.path_lengths(tx, np.asarray(rx_position, float))
        path_amp = np.ones(paths.shape[-1])
        if self.scatterers:
            path_amp[1:] = [s.amplitude for s in self.scatterers]
        contrib = path_amp * np.exp(1j * (phases[:, None] - k * paths))
        if self.amplitude_decay_with_distance:
            contrib = contrib / np.maximum(paths, 1e-9)
        summand = amps[:, None] * contrib
        # flatten each (n_tx, P) block so the batched reduction adds terms
        # in the same order as the single-point np.sum over the whole block
        total = summand.reshape(summand.shape[:-2] + (-1,)).sum(axis=-1)
        if paths.ndim == 2:
            return complex(total)
        return total

    def amplitude_at(
        self,
        tx_positions: np.ndarray,
        rx_position: np.ndarray,
        wavelength_m: float,
        tx_phases_rad: np.ndarray = None,
        tx_amplitudes: np.ndarray = None,
    ):
        """Magnitude of :meth:`field_at` (the measured received amplitude).

        A ``float`` for one rx point, an ``(N,)`` array for a batch.
        """
        field = self.field_at(
            tx_positions, rx_position, wavelength_m, tx_phases_rad, tx_amplitudes
        )
        if isinstance(field, complex):
            return abs(field)
        # np.abs on complex128 can differ from abs(complex) by one ulp;
        # np.hypot reproduces the scalar magnitude bit-for-bit
        return np.hypot(field.real, field.imag)
