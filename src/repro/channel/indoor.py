"""Indoor propagation environment for the simulated testbed.

The paper's Section 6.4 experiments run on real USRP nodes in labs and
corridors, with a "thick board" between sender and receiver (Table 2) and
"multiple concrete walls" between two labs (Table 3).  This module is the
software substitute: a 2-D floor plan of attenuating segments on top of a
log-distance path-loss law with log-normal shadowing.

The key output is the *average link SNR* between two positions for a given
transmit power; :mod:`repro.phy.link` then runs the modulated Monte-Carlo
chain at that SNR with small-scale (Rayleigh/Rician) fading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.shadowing import LogNormalShadowing
from repro.utils.rng import as_rng
from repro.utils.units import db_to_linear
from repro.utils.validation import check_finite

__all__ = ["Wall", "Obstacle", "IndoorChannel"]


@dataclass(frozen=True)
class Wall:
    """An attenuating line segment (concrete wall, partition, board...).

    Any propagation path crossing the segment picks up ``attenuation_db``.
    """

    start: Tuple[float, float]
    end: Tuple[float, float]
    attenuation_db: float

    def __post_init__(self) -> None:
        if self.attenuation_db < 0.0:
            raise ValueError("attenuation_db must be non-negative")
        if np.allclose(self.start, self.end):
            raise ValueError("wall endpoints must be distinct")


#: A movable obstacle (the paper's "thick board") — physically identical to a
#: wall for propagation purposes; the alias keeps experiment code readable.
Obstacle = Wall


def _orient(p: np.ndarray, q: np.ndarray, r: np.ndarray) -> float:
    """Signed area orientation of the triple (p, q, r)."""
    return (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])


def segments_intersect(
    a0: np.ndarray, a1: np.ndarray, b0: np.ndarray, b1: np.ndarray
) -> bool:
    """Proper or touching intersection test for segments ``a0a1`` and ``b0b1``."""
    d1 = _orient(b0, b1, a0)
    d2 = _orient(b0, b1, a1)
    d3 = _orient(a0, a1, b0)
    d4 = _orient(a0, a1, b1)
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)) and d1 != 0 and d2 != 0:
        return True

    def on_segment(p, q, r):
        return (
            min(p[0], q[0]) - 1e-12 <= r[0] <= max(p[0], q[0]) + 1e-12
            and min(p[1], q[1]) - 1e-12 <= r[1] <= max(p[1], q[1]) + 1e-12
        )

    if d1 == 0 and on_segment(b0, b1, a0):
        return True
    if d2 == 0 and on_segment(b0, b1, a1):
        return True
    if d3 == 0 and on_segment(a0, a1, b0):
        return True
    if d4 == 0 and on_segment(a0, a1, b1):
        return True
    return False


@dataclass
class IndoorChannel:
    """Floor plan + propagation law for the simulated indoor testbed.

    Parameters
    ----------
    pathloss:
        Distance law; defaults to a 2.4 GHz-ish indoor log-distance model.
    walls:
        Attenuating segments.  A link crossing ``k`` walls accumulates the
        sum of their attenuations.
    shadowing:
        Log-normal spread applied per-link (sampled once per link with a
        deterministic hash of the endpoints, so a fixed layout has fixed
        average SNRs — matching how a static testbed behaves run-to-run).
    noise_power_dbm:
        Receiver noise power in the signal bandwidth (thermal + NF).  At
        250 kbps and a 10 dB noise figure, ``-174 + 10 log10(250e3) + 10``
        is about -110 dBm; the default is that value.
    """

    pathloss: LogDistancePathLoss = field(default_factory=LogDistancePathLoss)
    walls: List[Wall] = field(default_factory=list)
    shadowing: LogNormalShadowing = field(default_factory=lambda: LogNormalShadowing(0.0))
    noise_power_dbm: float = -110.0
    _shadow_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        check_finite(self.noise_power_dbm, "noise_power_dbm")

    # ------------------------------------------------------------------ #

    def add_wall(self, wall: Wall) -> None:
        """Add an attenuating segment; invalidates nothing (loss is additive)."""
        self.walls.append(wall)

    def blockage_db(self, tx_position, rx_position) -> float:
        """Total wall/obstacle attenuation on the straight path tx→rx."""
        a0 = np.asarray(tx_position, dtype=float)
        a1 = np.asarray(rx_position, dtype=float)
        total = 0.0
        for wall in self.walls:
            if segments_intersect(
                a0, a1, np.asarray(wall.start, float), np.asarray(wall.end, float)
            ):
                total += wall.attenuation_db
        return total

    def is_line_of_sight(self, tx_position, rx_position) -> bool:
        """True if no wall crosses the direct path."""
        return self.blockage_db(tx_position, rx_position) == 0.0

    def _shadow_db(self, tx_position, rx_position) -> float:
        """Deterministic per-link shadowing draw (symmetric in endpoints)."""
        if self.shadowing.sigma_db == 0.0:
            return 0.0
        key = tuple(sorted([tuple(np.round(tx_position, 6)), tuple(np.round(rx_position, 6))]))
        if key not in self._shadow_cache:
            seed = abs(hash(key)) % (2**32)
            self._shadow_cache[key] = float(
                self.shadowing.sample_db(rng=as_rng(seed))
            )
        return self._shadow_cache[key]

    def link_loss_db(self, tx_position, rx_position) -> float:
        """Total average loss: distance law + walls + per-link shadowing."""
        a = np.asarray(tx_position, dtype=float)
        b = np.asarray(rx_position, dtype=float)
        dist = float(np.linalg.norm(a - b))
        if dist <= 0.0:
            raise ValueError("tx and rx positions must differ")
        return (
            float(self.pathloss.attenuation_db(dist))
            + self.blockage_db(a, b)
            + self._shadow_db(a, b)
        )

    def average_snr_db(self, tx_position, rx_position, tx_power_dbm: float) -> float:
        """Mean link SNR in dB for the given transmit power."""
        rx_power_dbm = tx_power_dbm - self.link_loss_db(tx_position, rx_position)
        return rx_power_dbm - self.noise_power_dbm

    def average_snr_linear(self, tx_position, rx_position, tx_power_dbm: float) -> float:
        """Mean link SNR as a linear ratio."""
        return float(db_to_linear(self.average_snr_db(tx_position, rx_position, tx_power_dbm)))
