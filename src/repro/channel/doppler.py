"""Time-correlated Rayleigh fading (Clarke/Jakes model).

The link simulator's ``blocks_per_fade`` knob assumes block fading; this
module supplies the physics that justifies the block lengths: a
sum-of-sinusoids Clarke-model generator whose autocorrelation follows the
classical ``J0(2 pi f_d tau)`` Bessel curve, plus coherence-time helpers.

At the paper's 2.45 GHz carrier, pedestrian motion (1 m/s) gives a maximum
Doppler of ~8 Hz and a coherence time of tens of milliseconds — hundreds of
thousands of samples at 250 kbps, which is why the testbed experiments use
quasi-static per-packet fading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["JakesFadingProcess", "coherence_time_s", "max_doppler_hz"]


def max_doppler_hz(speed_m_s: float, wavelength_m: float) -> float:
    """Maximum Doppler shift ``f_d = v / lambda``."""
    check_positive(speed_m_s, "speed_m_s")
    check_positive(wavelength_m, "wavelength_m")
    return speed_m_s / wavelength_m


def coherence_time_s(doppler_hz: float) -> float:
    """Clarke-model coherence time, ``T_c ~ 0.423 / f_d``.

    The common engineering definition: the lag at which the envelope
    correlation falls to 0.5.
    """
    check_positive(doppler_hz, "doppler_hz")
    return 0.423 / doppler_hz


@dataclass
class JakesFadingProcess:
    """Sum-of-sinusoids Clarke/Jakes Rayleigh fading generator.

    Parameters
    ----------
    doppler_hz:
        Maximum Doppler shift ``f_d``.
    n_oscillators:
        Number of plane-wave components; >= 16 gives Gaussian-quality
        statistics (central limit over arrival angles).
    rng:
        Seed/generator fixing the random arrival angles and phases.

    The generated process has unit mean power and autocorrelation
    ``E[h(t) h*(t+tau)] = J0(2 pi f_d tau)`` in the many-oscillator limit.
    """

    doppler_hz: float
    n_oscillators: int = 32
    rng: RngLike = None

    def __post_init__(self) -> None:
        check_positive(self.doppler_hz, "doppler_hz")
        check_positive_int(self.n_oscillators, "n_oscillators")
        gen = as_rng(self.rng)
        # Uniform arrival angles + i.i.d. phases (Clarke's isotropic ring).
        self._angles = gen.uniform(0.0, 2.0 * np.pi, self.n_oscillators)
        self._phases = gen.uniform(0.0, 2.0 * np.pi, self.n_oscillators)

    def sample(self, times_s: np.ndarray) -> np.ndarray:
        """Complex fading gains at the given time instants.

        Vectorized over times; successive calls with overlapping time axes
        return consistent values (the process is a deterministic function
        of time once constructed).
        """
        t = np.asarray(times_s, dtype=float)
        dopplers = 2.0 * np.pi * self.doppler_hz * np.cos(self._angles)  # (K,)
        phase = t[..., None] * dopplers + self._phases  # (..., K)
        field = np.exp(1j * phase).sum(axis=-1)
        return field / np.sqrt(self.n_oscillators)

    def block_gains(self, n_blocks: int, block_duration_s: float) -> np.ndarray:
        """One gain per block at the block midpoints (block-fading view)."""
        check_positive_int(n_blocks, "n_blocks")
        check_positive(block_duration_s, "block_duration_s")
        mids = (np.arange(n_blocks) + 0.5) * block_duration_s
        return self.sample(mids)

    def theoretical_autocorrelation(self, lags_s: np.ndarray) -> np.ndarray:
        """``J0(2 pi f_d tau)`` — the Clarke-model reference curve."""
        from scipy import special

        tau = np.asarray(lags_s, dtype=float)
        return special.j0(2.0 * np.pi * self.doppler_hz * tau)
