"""Additive white Gaussian noise.

Complex-baseband convention: a noise sample with variance ``N0`` per complex
dimension pair means real and imaginary parts are each ``N(0, N0/2)``, so
``E[|n|^2] = N0``.  All link-level simulators in :mod:`repro.phy` follow this
convention, with symbol energy normalized to ``E_s`` so that
``SNR = E_s / N0``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.units import DB, db_to_linear

__all__ = ["awgn", "noise_variance_per_symbol", "complex_gaussian"]


def complex_gaussian(shape, variance: float = 1.0, rng: RngLike = None) -> np.ndarray:
    """Circularly-symmetric complex Gaussian samples with ``E[|x|^2] = variance``."""
    if variance < 0.0:
        raise ValueError("variance must be non-negative")
    gen = as_rng(rng)
    scale = np.sqrt(variance / 2.0)
    return scale * (gen.standard_normal(shape) + 1j * gen.standard_normal(shape))


def awgn(signal: np.ndarray, noise_variance: float, rng: RngLike = None) -> np.ndarray:
    """Add complex AWGN of total variance ``noise_variance`` to ``signal``.

    Works for real signals too (noise is then real ``N(0, noise_variance)``),
    so the same helper serves both passband-abstracted and complex-baseband
    chains.
    """
    if noise_variance < 0.0:
        raise ValueError("noise_variance must be non-negative")
    sig = np.asarray(signal)
    gen = as_rng(rng)
    if np.iscomplexobj(sig):
        return sig + complex_gaussian(sig.shape, noise_variance, gen)
    return sig + np.sqrt(noise_variance) * gen.standard_normal(sig.shape)


def noise_variance_per_symbol(ebn0_db: DB, bits_per_symbol: int) -> float:
    """Noise variance ``N0`` for unit *symbol* energy at a given Eb/N0 in dB.

    With ``E_s = 1`` and ``E_s = b * E_b``, ``N0 = 1 / (b * 10^(EbN0/10))``.
    """
    if bits_per_symbol < 1:
        raise ValueError("bits_per_symbol must be >= 1")
    ebn0 = db_to_linear(ebn0_db)
    return float(1.0 / (bits_per_symbol * ebn0))
