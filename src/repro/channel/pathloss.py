"""Path-loss models.

Three models cover the paper's regimes:

* :class:`PowerLawPathLoss` — the local (intra-cluster) ``G_d = G1 d^kappa M_l``
  attenuation of formula (1) (kappa = 3.5);
* :class:`FreeSpacePathLoss` — the long-haul square-law
  ``(4 pi D)^2 / (G_t G_r lambda^2)`` factor of formula (3);
* :class:`LogDistancePathLoss` — the generic indoor model (reference loss at
  1 m plus ``10 n log10(d)``) used by the testbed substitute.

All models expose ``gain(distance)`` — the *loss* as a linear multiplicative
factor ``>= 1`` applied to required received energy to get transmit energy —
and ``attenuation_db(distance)`` for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.utils.units import (
    DB,
    DBLike,
    LinearRatio,
    LinearRatioLike,
    Meters,
    MetersArray,
    MetersLike,
    Watts,
    db_to_linear,
    linear_to_db,
)
from repro.utils.validation import check_finite

__all__ = ["PowerLawPathLoss", "FreeSpacePathLoss", "LogDistancePathLoss"]

ArrayLike = Union[float, np.ndarray]


def _check_distances(distance_m: MetersLike) -> MetersArray:
    arr = np.asarray(distance_m, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("distances must be strictly positive")
    return arr


@dataclass(frozen=True)
class PowerLawPathLoss:
    """``gain(d) = g1 * d^kappa * margin`` — the paper's local model.

    Parameters mirror the constants of Section 2.3: ``g1`` is the 1-meter
    gain factor in watts, ``kappa`` the path-loss exponent, ``margin`` the
    linear link margin ``M_l``.
    """

    g1: Watts = 10e-3
    kappa: float = 3.5
    margin: LinearRatio = 1e4  # 40 dB

    def __post_init__(self) -> None:
        if self.g1 <= 0 or self.kappa <= 0 or self.margin <= 0:
            raise ValueError("g1, kappa and margin must all be positive")

    def gain(self, distance_m: MetersLike) -> LinearRatioLike:
        """Linear loss factor at the given distance(s)."""
        d = _check_distances(distance_m)
        return self.g1 * d**self.kappa * self.margin

    def attenuation_db(self, distance_m: MetersLike) -> DBLike:
        """Loss in dB at the given distance(s)."""
        return linear_to_db(self.gain(distance_m))


@dataclass(frozen=True)
class FreeSpacePathLoss:
    """``gain(D) = (4 pi D)^2 / (Gt Gr lambda^2) * margin * noise_figure``.

    The long-haul factor of formula (3).  ``antenna_gain`` is the linear
    ``G_t G_r`` product; ``margin`` and ``noise_figure`` are linear ratios.
    """

    wavelength_m: Meters = 0.1199
    antenna_gain: LinearRatio = 10 ** 0.5  # 5 dBi
    margin: LinearRatio = 1e4  # 40 dB
    noise_figure: LinearRatio = 10.0  # 10 dB

    def __post_init__(self) -> None:
        if min(self.wavelength_m, self.antenna_gain, self.margin, self.noise_figure) <= 0:
            raise ValueError("all FreeSpacePathLoss parameters must be positive")

    def gain(self, distance_m: MetersLike) -> LinearRatioLike:
        """Linear loss factor (formula (3)'s long-haul multiplier)."""
        d = _check_distances(distance_m)
        return (
            (4.0 * np.pi * d) ** 2
            / (self.antenna_gain * self.wavelength_m**2)
            * self.margin
            * self.noise_figure
        )

    def attenuation_db(self, distance_m: MetersLike) -> DBLike:
        """Loss in dB at the given distance(s)."""
        return linear_to_db(self.gain(distance_m))

    def invert_gain(self, gain: LinearRatioLike) -> MetersLike:
        """Distance at which the model produces the given linear gain.

        Exact inverse of :meth:`gain`; used by the overlay distance analysis
        to turn an energy budget into a maximum link length.
        """
        g = np.asarray(gain, dtype=float)
        if np.any(g <= 0.0):
            raise ValueError("gain must be strictly positive")
        scale = self.antenna_gain * self.wavelength_m**2 / (self.margin * self.noise_figure)
        return np.sqrt(g * scale) / (4.0 * np.pi)


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Indoor log-distance model: ``L_dB(d) = L0 + 10 n log10(d / d0)``.

    ``gain`` returns the linear loss factor.  Default exponent 3.0 and 40 dB
    reference loss at 1 m are typical for 2.4 GHz indoor NLOS conditions,
    matching the testbed's office/lab environment.
    """

    reference_loss_db: DB = 40.0
    exponent: float = 3.0
    reference_distance_m: Meters = 1.0

    def __post_init__(self) -> None:
        check_finite(self.reference_loss_db, "reference_loss_db")
        if self.reference_distance_m <= 0:
            raise ValueError("reference_distance_m must be positive")
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")

    def attenuation_db(self, distance_m: MetersLike) -> DBLike:
        """Loss in dB: ``L0 + 10 n log10(d / d0)``."""
        d = _check_distances(distance_m)
        # NOTE: keep the 10*n grouping — n * linear_to_db(d/d0) changes the
        # float association and breaks bit-identity with the golden tables.
        return self.reference_loss_db + 10.0 * self.exponent * np.log10(  # lint: ignore[RP101]
            d / self.reference_distance_m
        )

    def gain(self, distance_m: MetersLike) -> LinearRatioLike:
        """Linear loss factor at the given distance(s)."""
        return np.asarray(db_to_linear(self.attenuation_db(distance_m)))
