"""The three Section 6.4 floor plans as ready-made testbeds.

Geometry comes from the paper's descriptions; attenuation values are
calibration parameters chosen so that the *baseline* (non-cooperative)
links land near the paper's measured error rates — see the per-function
docstrings and EXPERIMENTS.md.  All distances in meters.
"""

from __future__ import annotations

import numpy as np

from repro.channel.indoor import IndoorChannel, Wall
from repro.channel.pathloss import LogDistancePathLoss
from repro.testbed.radio import RadioNode, SimulatedTestbed

__all__ = ["table2_testbed", "table3_testbed", "table4_testbed", "FEET"]

#: Meters per foot (the paper mixes units: "2 meters", "30 feet", "12 feet").
FEET = 0.3048

#: 2.4 GHz indoor office propagation: ~40 dB at 1 m, exponent 3.
_PATHLOSS = LogDistancePathLoss(reference_loss_db=40.0, exponent=3.0)

#: Receiver noise power for the 250 kbps testbed links:
#: -174 dBm/Hz + 10 log10(250 kHz) + 10 dB noise figure ≈ -110 dBm.
_NOISE_DBM = -110.0


def table2_testbed(board_attenuation_db: float = 20.0) -> SimulatedTestbed:
    """Single-relay overlay testbed (Table 2).

    "the transmitter, relay and receiver are located in the corners of an
    equilateral triangle.  The distance between every two nodes is about
    2 meters.  A thick board is put between the transmitter and receiver."

    The triangle: Tx at (0, 0), Rx at (2, 0), relay at the apex
    (1, sqrt(3)).  The board is a segment crossing only the Tx-Rx side.
    ``board_attenuation_db`` = 20 dB calibrates the obstructed direct link
    to the paper's ~11% average BER (a dense shelf/white-board at 2.45 GHz
    plus the destructive geometry it induces).
    """
    apex = (1.0, float(np.sqrt(3.0)))
    channel = IndoorChannel(
        pathloss=_PATHLOSS,
        walls=[Wall(start=(1.0, -0.25), end=(1.0, 0.25), attenuation_db=board_attenuation_db)],
        noise_power_dbm=_NOISE_DBM,
    )
    # Low software amplitude: the 2 m links must sit near the error floor
    # for the obstructed path to show ~10% BER.
    amplitude = 55.0
    nodes = [
        RadioNode("tx", (0.0, 0.0), tx_amplitude=amplitude),
        RadioNode("relay", apex, tx_amplitude=amplitude),
        RadioNode("rx", (2.0, 0.0), tx_amplitude=amplitude),
    ]
    return SimulatedTestbed(channel, nodes, rician_k=4.0)


def table3_testbed(
    lab_wall_db: float = 9.0, corridor_wall_db: float = 18.0
) -> SimulatedTestbed:
    """Multi-relay overlay testbed (Table 3).

    "the transmitter and receiver are separated in two labs with distance
    more than 30 feet and multiple concrete walls.  Three relays are
    uniformly put in the corridor between the transmitter and receiver."

    Layout: Tx at (0, 0) inside lab A; Rx at (10, 0) inside lab B
    (~33 ft); three interior lab walls cross the direct path at x = 2, 5
    and 8 (``lab_wall_db`` each — light concrete/block).  The corridor runs
    parallel above the labs behind a long separator wall at y = 1.6
    (``corridor_wall_db`` — the heavier lab/corridor partition every relay
    path crosses twice, once per side).  Relays sit in the corridor at
    x = 2.5, 5, 7.5; the single-relay baseline uses the corridor midpoint.

    Calibration targets (paper Table 3): direct ~23% BER, single mid-relay
    ~10.6%, three relays ~2.9%.
    """
    walls = [
        Wall(start=(2.0, -1.5), end=(2.0, 1.5), attenuation_db=lab_wall_db),
        Wall(start=(5.0, -1.5), end=(5.0, 1.5), attenuation_db=lab_wall_db),
        Wall(start=(8.0, -1.5), end=(8.0, 1.5), attenuation_db=lab_wall_db),
        Wall(start=(-1.0, 1.6), end=(11.0, 1.6), attenuation_db=corridor_wall_db),
    ]
    channel = IndoorChannel(pathloss=_PATHLOSS, walls=walls, noise_power_dbm=_NOISE_DBM)
    amplitude = 800.0
    corridor_y = 2.5
    nodes = [
        RadioNode("tx", (0.0, 0.0), tx_amplitude=amplitude),
        RadioNode("relay1", (2.5, corridor_y), tx_amplitude=amplitude),
        RadioNode("relay2", (5.0, corridor_y), tx_amplitude=amplitude),
        RadioNode("relay3", (7.5, corridor_y), tx_amplitude=amplitude),
        RadioNode("relay_mid", (5.0, corridor_y), tx_amplitude=amplitude),
        RadioNode("rx", (10.0, 0.0), tx_amplitude=amplitude),
    ]
    return SimulatedTestbed(channel, nodes, rician_k=2.0)


def table4_testbed() -> SimulatedTestbed:
    """Underlay testbed (Table 4).

    "The two secondary transmitters are next to each other and the distance
    between them and the secondary receiver is about 12 feet."  Transmit
    amplitudes are swept over {800, 600, 400} by the experiment; no
    obstacles — the sweep itself provides the SNR ladder.
    """
    channel = IndoorChannel(pathloss=_PATHLOSS, walls=[], noise_power_dbm=_NOISE_DBM)
    rx_distance = 12.0 * FEET
    # Calibration (see EXPERIMENTS.md): -42 dBm at amplitude 800 puts the
    # solo link's mean SNR just above the ~9.5 dB packet-survival threshold
    # of a 12 000-bit GMSK packet, and the strong 12-ft line of sight
    # (K = 8) makes the PER-vs-amplitude transition as steep as the paper's
    # measurements.  The {800, 600, 400} ladder then walks the solo PER
    # through ~{25, 68, 99}% (paper: 24.9, 70.3, 97.1) while coherent
    # two-transmitter cooperation keeps the PER an order of magnitude lower.
    tx_ref_dbm = -42.0
    nodes = [
        RadioNode("tx1", (0.0, 0.0), tx_amplitude=800.0, reference_power_dbm=tx_ref_dbm),
        RadioNode("tx2", (0.0, 0.15), tx_amplitude=800.0, reference_power_dbm=tx_ref_dbm),
        RadioNode("rx", (rx_distance, 0.0), tx_amplitude=800.0),
    ]
    return SimulatedTestbed(channel, nodes, rician_k=8.0)
