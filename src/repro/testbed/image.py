"""Image-file workload for the underlay experiment (Table 4).

The paper transmits "a image file with 474 packets" of 1500 bytes each.
Content is irrelevant to packet error rate, so :func:`synthetic_image`
builds a deterministic grayscale test pattern of exactly 474 x 1500 bytes
(a 948 x 750 8-bit image: gradient + checker + disk — enough structure
that corruption is visible in the distortion metric).

:func:`transfer_image` packetizes the image, pushes every packet through a
caller-supplied transmission function, reassembles what survives (errored
packets keep their corrupted bytes, as a display pipeline would show
glitches), and reports PER plus a mean-absolute-error distortion score and
the paper's qualitative verdict ("recovered", "recovered with
distortions", "cannot be recovered").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.phy.frame import bits_to_bytes, bytes_to_bits
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_non_negative, check_non_negative_int

__all__ = [
    "IMAGE_PACKETS",
    "PACKET_BYTES",
    "synthetic_image",
    "transfer_image",
    "ImageTransferResult",
]

#: The paper's workload: 474 packets of 1500 bytes.
IMAGE_PACKETS = 474
PACKET_BYTES = 1500

#: Image dimensions chosen so height*width == IMAGE_PACKETS * PACKET_BYTES.
IMAGE_SHAPE: Tuple[int, int] = (750, 948)


def synthetic_image() -> np.ndarray:
    """Deterministic 8-bit grayscale test pattern of exactly 711 000 bytes."""
    h, w = IMAGE_SHAPE
    yy, xx = np.mgrid[0:h, 0:w]
    gradient = (xx / (w - 1) * 255.0).astype(np.float64)
    checker = (((yy // 32) + (xx // 32)) % 2) * 64.0
    cy, cx, r = h / 2.0, w / 2.0, min(h, w) / 4.0
    disk = (((yy - cy) ** 2 + (xx - cx) ** 2) <= r**2) * 96.0
    img = np.clip(gradient * 0.5 + checker + disk, 0, 255).astype(np.uint8)
    assert img.size == IMAGE_PACKETS * PACKET_BYTES
    return img


@dataclass(frozen=True)
class ImageTransferResult:
    """Outcome of one image transfer."""

    n_packets: int
    n_packet_errors: int
    mean_abs_error: float  # pixel-level distortion of the reassembled image
    received: np.ndarray  # reassembled image (same shape as the original)

    def __post_init__(self) -> None:
        check_non_negative_int(self.n_packets, "n_packets")
        check_non_negative_int(self.n_packet_errors, "n_packet_errors")
        check_non_negative(self.mean_abs_error, "mean_abs_error")

    @property
    def per(self) -> float:
        """Packet error rate."""
        return self.n_packet_errors / self.n_packets if self.n_packets else 0.0

    @property
    def verdict(self) -> str:
        """The paper's qualitative readout.

        Thresholds follow the paper's observations: PER 0-2% displayed
        cleanly, ~6-14% "recovered and displayed with some distortions",
        and ~25%+ "cannot be recovered".
        """
        if self.per <= 0.02:
            return "recovered"
        if self.per <= 0.20:
            return "recovered with distortions"
        return "cannot be recovered"


def transfer_image(
    transmit: Callable[[np.ndarray, np.random.Generator], np.ndarray],
    rng: RngLike = None,
) -> ImageTransferResult:
    """Send the synthetic image packet by packet through ``transmit``.

    Parameters
    ----------
    transmit:
        ``(packet_bits, rng) -> received_bits`` — one packet's worth of the
        physical layer (e.g. a closure over
        :func:`repro.phy.link.transmit_bits` with the testbed SNR).
    rng:
        Seed/generator threaded into every packet transmission.
    """
    gen = as_rng(rng)
    image = synthetic_image()
    flat = image.reshape(-1)
    received = np.empty_like(flat)
    n_errors = 0
    for i in range(IMAGE_PACKETS):
        chunk = flat[i * PACKET_BYTES : (i + 1) * PACKET_BYTES]
        tx_bits = bytes_to_bits(chunk)
        rx_bits = np.asarray(transmit(tx_bits, gen))
        if rx_bits.shape != tx_bits.shape:
            raise ValueError("transmit must return a bit array of the same shape")
        if np.any(rx_bits != tx_bits):
            n_errors += 1
        received[i * PACKET_BYTES : (i + 1) * PACKET_BYTES] = bits_to_bytes(rx_bits)
    received_img = received.reshape(image.shape)
    mae = float(
        np.mean(np.abs(received_img.astype(np.int16) - image.astype(np.int16)))
    )
    return ImageTransferResult(
        n_packets=IMAGE_PACKETS,
        n_packet_errors=n_errors,
        mean_abs_error=mae,
        received=received_img,
    )
