"""Simulated radio nodes and the testbed orchestrator.

GNU Radio drives the USRP DAC with an integer "transmit amplitude" (the
underlay experiment sweeps 800/600/400); radiated power scales with the
square of that amplitude.  :class:`RadioNode` keeps that interface:
``tx_power_dbm = reference_power_dbm + 20 log10(amplitude / reference)``.

:class:`SimulatedTestbed` wires nodes + an indoor channel to the
:mod:`repro.phy` Monte-Carlo chains and exposes the three experiment
shapes of Section 6.4: direct links, decode-and-forward relaying with
equal-gain combination, and cooperative (Alamouti) versus solo packet
transmission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence


from repro.channel.indoor import IndoorChannel
from repro.modulation.base import Modem
from repro.modulation.psk import BPSKModem
from repro.phy.link import LinkResult, simulate_packet_link
from repro.phy.relay import RelayChainResult, simulate_relay_chain
from repro.utils.rng import RngLike, as_rng
from repro.utils.units import amplitude_ratio_to_db, linear_to_db
from repro.utils.validation import check_finite

__all__ = ["RadioNode", "SimulatedTestbed"]

#: Calibration anchor: transmit power at the reference DAC amplitude.
#: USRP1 + RFX2400 at low software amplitudes radiates well below the
#: board's +17 dBm ceiling; -16 dBm at amplitude 800 places the 30-ft
#: through-wall link of Table 3 near its observed ~23% raw BER.
DEFAULT_REFERENCE_AMPLITUDE = 800.0
DEFAULT_REFERENCE_POWER_DBM = -16.0


@dataclass
class RadioNode:
    """One USRP-like node: a position and a software transmit amplitude."""

    name: str
    position: tuple
    tx_amplitude: float = DEFAULT_REFERENCE_AMPLITUDE
    reference_amplitude: float = DEFAULT_REFERENCE_AMPLITUDE
    reference_power_dbm: float = DEFAULT_REFERENCE_POWER_DBM

    def __post_init__(self) -> None:
        if self.tx_amplitude <= 0.0 or self.reference_amplitude <= 0.0:
            raise ValueError("amplitudes must be positive")
        check_finite(self.reference_power_dbm, "reference_power_dbm")
        self.position = (float(self.position[0]), float(self.position[1]))

    @property
    def tx_power_dbm(self) -> float:
        """Radiated power: quadratic in DAC amplitude (linear in dB)."""
        return self.reference_power_dbm + float(
            amplitude_ratio_to_db(self.tx_amplitude / self.reference_amplitude)
        )

    def with_amplitude(self, amplitude: float) -> "RadioNode":
        """A copy at a different software amplitude (the Table 4 sweep)."""
        return RadioNode(
            name=self.name,
            position=self.position,
            tx_amplitude=float(amplitude),
            reference_amplitude=self.reference_amplitude,
            reference_power_dbm=self.reference_power_dbm,
        )


class SimulatedTestbed:
    """Nodes + indoor channel + Monte-Carlo DSP chains.

    Parameters
    ----------
    channel:
        The floor plan / propagation model.
    nodes:
        Radio nodes, addressed by name.
    rician_k:
        Small-scale fading K-factor for line-of-sight links; links whose
        direct path crosses a wall fall back to Rayleigh (K = 0).
    """

    def __init__(
        self,
        channel: IndoorChannel,
        nodes: Sequence[RadioNode],
        rician_k: float = 4.0,
    ):
        if rician_k < 0.0:
            raise ValueError("rician_k must be non-negative")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        self.channel = channel
        self.nodes: Dict[str, RadioNode] = {n.name: n for n in nodes}
        self.rician_k = float(rician_k)

    # ------------------------------------------------------------------ #

    def node(self, name: str) -> RadioNode:
        """Look up a radio node by name."""
        return self.nodes[name]

    def link_snr_db(self, tx_name: str, rx_name: str) -> float:
        """Average SNR of one link at the transmitter's current amplitude."""
        tx, rx = self.nodes[tx_name], self.nodes[rx_name]
        return self.channel.average_snr_db(tx.position, rx.position, tx.tx_power_dbm)

    def _link_k(self, tx_name: str, rx_name: str) -> float:
        """Rician K: LOS links keep the testbed K, blocked links go Rayleigh."""
        tx, rx = self.nodes[tx_name], self.nodes[rx_name]
        return (
            self.rician_k
            if self.channel.is_line_of_sight(tx.position, rx.position)
            else 0.0
        )

    # ------------------------------------------------------------------ #
    # Overlay experiments (Tables 2 and 3)                               #
    # ------------------------------------------------------------------ #

    def run_relay_experiment(
        self,
        tx_name: str,
        relay_names: Sequence[str],
        rx_name: str,
        n_bits: int = 100_000,
        modem: Optional[Modem] = None,
        include_direct: bool = True,
        combining: str = "egc",
        rng: RngLike = None,
    ) -> RelayChainResult:
        """Decode-and-forward run (empty ``relay_names`` = direct only).

        Mirrors the paper's overlay testbed: BPSK, 100 000 bits, equal-gain
        combination at the receiver.
        """
        modem = modem or BPSKModem()
        gen = as_rng(rng)
        src_relay = [self.link_snr_db(tx_name, r) for r in relay_names]
        relay_dst = [self.link_snr_db(r, rx_name) for r in relay_names]
        direct = self.link_snr_db(tx_name, rx_name) if include_direct else None
        # Fading regime: use the worst-case (most blocked) branch's K so a
        # heavily obstructed layout behaves Rayleigh end to end.
        ks = [self._link_k(tx_name, r) for r in relay_names]
        ks += [self._link_k(r, rx_name) for r in relay_names]
        if include_direct:
            ks.append(self._link_k(tx_name, rx_name))
        k = min(ks) if ks else self.rician_k
        return simulate_relay_chain(
            n_bits=n_bits,
            modem=modem,
            source_relay_snrs_db=src_relay,
            relay_dest_snrs_db=relay_dst,
            direct_snr_db=direct,
            combining=combining,
            fading="rician" if k > 0 else "rayleigh",
            rician_k=k,
            rng=gen,
        )

    # ------------------------------------------------------------------ #
    # Underlay experiment (Table 4)                                      #
    # ------------------------------------------------------------------ #

    def run_packet_experiment(
        self,
        tx_names: Sequence[str],
        rx_name: str,
        n_packets: int,
        packet_bits: int,
        modem: Modem,
        power_constraint: str = "per_node",
        rng: RngLike = None,
    ) -> LinkResult:
        """Packet transfer from 1 (solo) or 2 (Alamouti) transmitters.

        Two transmitters use the Alamouti space-time code, as the
        cooperative underlay testbed does; the per-branch average SNR is
        taken from the first transmitter (the two sit "next to each other").

        ``power_constraint``:

        * ``"coherent"`` (default, what the Table 4 testbed physically did:
          "transmitted simultaneously by the two secondary transmitters" —
          identical waveforms whose line-of-sight components add in
          amplitude at the co-located receiver): the summed channel
          ``h1 + h2`` of two Rician(K) branches is Rician(2K) with
          ``(4K + 2)/(K + 1)`` times the power, applied in closed form;
        * ``"per_node"``: Alamouti space-time coding with every transmitter
          at its own amplitude (total power doubles, diversity 2);
        * ``"total"``: Alamouti with the transmit power split across the
          cooperators (the information-theoretic fair comparison used by
          the link-level benchmarks).
        """
        if not tx_names:
            raise ValueError("need at least one transmitter")
        if len(tx_names) > 2:
            raise ValueError("the testbed supports 1 or 2 cooperative transmitters")
        if power_constraint not in ("coherent", "per_node", "total"):
            raise ValueError(
                "power_constraint must be 'coherent', 'per_node' or 'total'"
            )
        snr = self.link_snr_db(tx_names[0], rx_name)
        k = min(self._link_k(t, rx_name) for t in tx_names)
        mt = len(tx_names)
        if power_constraint == "coherent" and mt == 2:
            # h1 + h2 for i.i.d. Rician(K) branches: LOS adds coherently,
            # scatter adds in power -> Rician(2K) with (4K+2)/(K+1) x power.
            snr += float(linear_to_db((4.0 * k + 2.0) / (k + 1.0)))
            k = 2.0 * k
            mt = 1
        elif power_constraint == "per_node":
            snr += float(linear_to_db(mt))
        return simulate_packet_link(
            n_packets=n_packets,
            packet_bits=packet_bits,
            modem=modem,
            snr_db=snr,
            mt=mt,
            mr=1,
            fading="rician" if k > 0 else "rayleigh",
            rician_k=k,
            quasi_static=True,
            rng=rng,
        )
