"""Simulated USRP/GNU Radio testbed (substitute for Section 6.4 hardware).

The paper's real-world experiments ran on USRP motherboards with RFX2400
daughterboards at 2.45 GHz in labs and corridors.  This package replaces
the RF hardware with calibrated models while keeping the identical DSP
pipeline:

* :mod:`repro.testbed.radio` — radio nodes with GNU-Radio-style integer
  transmit amplitudes and the amplitude→power mapping;
* :mod:`repro.testbed.environment` — the three floor plans of Section 6.4
  (equilateral triangle with a board, two labs with concrete walls and a
  relay corridor, the underlay bench);
* :mod:`repro.testbed.image` — the image-file workload of the underlay
  experiment (packetization, transfer, reconstruction and a
  display-quality heuristic).
"""

from repro.testbed.calibration import (
    bisect_monotone,
    calibrate_reference_power,
    calibrate_wall_attenuation,
)
from repro.testbed.environment import (
    table2_testbed,
    table3_testbed,
    table4_testbed,
)
from repro.testbed.image import ImageTransferResult, synthetic_image, transfer_image
from repro.testbed.radio import RadioNode, SimulatedTestbed

__all__ = [
    "RadioNode",
    "SimulatedTestbed",
    "table2_testbed",
    "table3_testbed",
    "table4_testbed",
    "synthetic_image",
    "transfer_image",
    "ImageTransferResult",
    "bisect_monotone",
    "calibrate_reference_power",
    "calibrate_wall_attenuation",
]
