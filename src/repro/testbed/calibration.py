"""Calibration utilities for the simulated testbeds.

The Section 6.4 substitutes fix their free RF parameters against the
paper's *baseline* measurements (see EXPERIMENTS.md).  These helpers
perform that fit programmatically, so a user porting the testbed to a
different floor plan can re-calibrate instead of hand-tuning:

* :func:`calibrate_reference_power` — bisect the amplitude-800 reference
  transmit power until a link's Monte-Carlo BER hits a target;
* :func:`calibrate_wall_attenuation` — same, over an obstacle's dB value.

Both rely on the target metric being monotone in the tuned parameter
(more power → fewer errors; thicker wall → more errors), which holds for
every link in this package.
"""

from __future__ import annotations

from typing import Callable

from repro.utils.validation import check_positive_int, check_probability

__all__ = ["bisect_monotone", "calibrate_reference_power", "calibrate_wall_attenuation"]


def bisect_monotone(
    measure: Callable[[float], float],
    target: float,
    low: float,
    high: float,
    increasing: bool,
    iterations: int = 20,
) -> float:
    """Bisection on a (noisy-)monotone measurement.

    Parameters
    ----------
    measure:
        Maps the tuned parameter to the observed metric.  Monte-Carlo
        noise is fine: with a seeded ``measure`` the function is
        deterministic, and bisection tolerates small non-monotonicity.
    target:
        Desired metric value.
    low, high:
        Parameter bracket.
    increasing:
        Whether ``measure`` increases with the parameter.
    """
    if not low < high:
        raise ValueError("need low < high")
    check_positive_int(iterations, "iterations")
    lo, hi = float(low), float(high)
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        value = measure(mid)
        too_high = value > target
        if too_high == increasing:
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2.0


def calibrate_reference_power(
    build_testbed: Callable[[float], object],
    tx_name: str,
    rx_name: str,
    target_ber: float,
    low_dbm: float = -70.0,
    high_dbm: float = 0.0,
    n_bits: int = 40_000,
    seed: int = 0,
    iterations: int = 14,
) -> float:
    """Find the reference power placing a direct link at ``target_ber``.

    ``build_testbed(reference_power_dbm)`` must return a fresh
    :class:`repro.testbed.radio.SimulatedTestbed` whose nodes use the given
    reference power.  Returns the calibrated dBm value.
    """
    check_probability(target_ber, "target_ber")

    def measure(ref_dbm: float) -> float:
        testbed = build_testbed(ref_dbm)
        result = testbed.run_relay_experiment(
            tx_name, [], rx_name, n_bits=n_bits, rng=seed
        )
        return result.ber

    # BER decreases with power
    return bisect_monotone(
        measure, target_ber, low_dbm, high_dbm, increasing=False, iterations=iterations
    )


def calibrate_wall_attenuation(
    build_testbed: Callable[[float], object],
    tx_name: str,
    rx_name: str,
    target_ber: float,
    low_db: float = 0.5,
    high_db: float = 40.0,
    n_bits: int = 40_000,
    seed: int = 0,
    iterations: int = 14,
) -> float:
    """Find the obstacle attenuation placing a blocked link at ``target_ber``.

    ``build_testbed(attenuation_db)`` must return a fresh testbed with the
    obstacle set to the given value (e.g. ``table2_testbed``).
    """
    check_probability(target_ber, "target_ber")

    def measure(wall_db: float) -> float:
        testbed = build_testbed(wall_db)
        result = testbed.run_relay_experiment(
            tx_name, [], rx_name, n_bits=n_bits, rng=seed
        )
        return result.ber

    # BER increases with the wall
    return bisect_monotone(
        measure, target_ber, low_db, high_db, increasing=True, iterations=iterations
    )
