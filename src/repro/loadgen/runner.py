"""The asyncio open-loop runner: fire a plan, record every request's fate.

The runner walks a built plan on a (scalable) wall clock: it sleeps to each
request's send offset, delivers any fault events scheduled at that index
through a :class:`FaultDriver`, then dispatches the request on a bounded
thread pool — open-loop, so slow responses never throttle the offered load.
Each request runs the client policy's retry loop (deterministically seeded
jitter per request index) and is reduced to one raw-fact
:class:`~repro.loadgen.trace.RequestRecord`; the collected records plus the
serialised spec form the returned :class:`~repro.loadgen.trace.Trace`.

Fault delivery is pluggable:

* :class:`InjectorFaultDriver` arms an in-process
  :class:`~repro.service.faults.FaultInjector` (the test harness's driver —
  every action supported);
* :class:`AdminFaultDriver` POSTs ``/chaos/kill_shard`` to a sharded
  supervisor's chaos admin listener (``--chaos-admin``);
* :class:`PrearmedFaultDriver` is the CLI's driver against a real binary:
  ``kill_shard`` goes through an :class:`AdminFaultDriver`, every other
  action is a runtime no-op because it was armed at server boot from
  :func:`repro.loadgen.plan.env_fault_plan`.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.loadgen.plan import PlannedRequest, build_plan
from repro.loadgen.spec import FaultEvent, TrafficSpec, traffic_to_mapping
from repro.loadgen.trace import RequestRecord, Trace
from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    TRANSPORT_FAILURE_STATUS,
)
from repro.service.faults import FaultInjector
from repro.service.retry import RetryPolicy, default_clock, default_sleeper
from repro.utils.rng import keyed_seed_sequence
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "AdminFaultDriver",
    "FaultDriver",
    "InjectorFaultDriver",
    "PrearmedFaultDriver",
    "run_plan",
]

Payload = Dict[str, object]


class FaultDriver:
    """Delivers scheduled :class:`FaultEvent`\\ s into a running system."""

    def supports(self, action: str) -> bool:
        """True iff this driver can deliver ``action`` faults."""
        raise NotImplementedError

    def fire(self, event: FaultEvent) -> None:
        """Deliver one scheduled fault event."""
        raise NotImplementedError


class InjectorFaultDriver(FaultDriver):
    """Arm an in-process :class:`FaultInjector` (test-harness driver)."""

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector

    def supports(self, action: str) -> bool:
        """Every catalogued action maps onto an injector arm."""
        return True

    def fire(self, event: FaultEvent) -> None:
        """Arm the injector for ``event`` (count, rows, path scope)."""
        paths = None if event.path is None else (event.path,)
        if event.action == "kill_worker":
            self.injector.arm_kill_worker(event.count)
        elif event.action == "kill_shard":
            self.injector.arm_kill_shard(event.count)
        elif event.action == "delay":
            self.injector.arm_delay(
                event.delay_ms / 1000.0, times=event.count, paths=paths
            )
        elif event.action == "abort":
            self.injector.arm_abort(event.count, paths=paths)
        elif event.action == "truncate_stream":
            self.injector.arm_truncate_stream(
                event.count, after_rows=event.after_rows, paths=paths
            )
        elif event.action == "drop_client":
            self.injector.arm_drop_client(event.count, paths=paths)
        elif event.action == "kill_sim_child":
            self.injector.arm_kill_sim_child(
                event.count, after_rows=event.after_rows
            )
        else:  # stall_sim — the spec layer validated the action name
            self.injector.arm_stall_sim(
                event.count, after_rows=event.after_rows
            )


class AdminFaultDriver(FaultDriver):
    """Kill live shards through the supervisor's chaos admin endpoint."""

    def __init__(self, host: str, admin_port: int, timeout_s: float = 10.0) -> None:
        check_positive_int(admin_port, "admin_port", maximum=65535)
        check_positive(timeout_s, "timeout_s")
        self._client = ServiceClient(host, admin_port, timeout_s=timeout_s)

    def supports(self, action: str) -> bool:
        """Only ``kill_shard`` is deliverable over the admin endpoint."""
        return action == "kill_shard"

    def fire(self, event: FaultEvent) -> None:
        """POST ``/chaos/kill_shard`` once per armed count."""
        for _ in range(event.count):
            self._client.request("POST", "/chaos/kill_shard")


class PrearmedFaultDriver(FaultDriver):
    """The CLI's driver against a real service binary.

    Server-side actions were armed at boot via ``REPRO_SERVICE_FAULTS``
    (see :func:`repro.loadgen.plan.env_fault_plan`), so firing them here is
    a no-op; ``kill_shard`` is delegated to an :class:`AdminFaultDriver`
    when one is available.
    """

    def __init__(self, admin: Optional[AdminFaultDriver] = None) -> None:
        self._admin = admin

    def supports(self, action: str) -> bool:
        """Everything pre-armed at boot; ``kill_shard`` needs the admin."""
        if action == "kill_shard":
            return self._admin is not None
        return True

    def fire(self, event: FaultEvent) -> None:
        """Delegate ``kill_shard`` to the admin; the rest are pre-armed."""
        if event.action == "kill_shard":
            assert self._admin is not None  # supports() gated the plan
            self._admin.fire(event)


# --------------------------------------------------------------------- #
# Per-request execution                                                 #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class _Attempt:
    """Raw facts of one attempt (the final one lands in the record)."""

    status: int
    ok_verified: bool
    structured_error: bool
    retry_hint: bool
    truncated: bool
    timed_out: bool
    rows: int
    detail: str
    retry_after_s: Optional[float]


def _verify_buffered(kind: str, payload: Payload) -> bool:
    """Endpoint-specific 2xx payload verification."""
    if kind == "healthz":
        return payload.get("status") in ("ok", "degraded", "draining")
    if kind == "metrics":
        return "requests_total" in payload
    if kind == "ebar":
        value = payload.get("e_bar")
        return isinstance(value, float) and value > 0.0
    if kind in ("overlay", "overlay_sweep", "underlay", "underlay_sweep"):
        rows = payload.get("rows")
        return (
            isinstance(rows, list)
            and len(rows) > 0
            and payload.get("count") == len(rows)
        )
    if kind == "interweave":
        amplitudes = payload.get("amplitudes")
        return (
            isinstance(amplitudes, list)
            and payload.get("count") == len(amplitudes)
        )
    # buffered simulate
    rows = payload.get("rows")
    summary = payload.get("summary")
    return (
        isinstance(rows, list)
        and isinstance(summary, dict)
        and "digest" in summary
        and payload.get("count") == len(rows)
    )


def _verify_stream_end(kind: str, rows: List[Payload]) -> bool:
    """A streamed response's terminal row proves clean completion."""
    last = rows[-1] if rows else None
    if not isinstance(last, dict):
        return False
    if kind == "simulate_stream":
        return last.get("row") == "summary" and "digest" in last
    return last.get("done") is True and last.get("count") == len(rows) - 1


def _structured(exc: ServiceClientError) -> bool:
    """The error body carried the service's canonical shape."""
    payload = exc.payload
    return (
        isinstance(payload, dict)
        and payload.get("status") == exc.status
        and isinstance(payload.get("error"), str)
        and "detail" in payload
    )


def _timed_out(exc: ServiceClientError) -> bool:
    message = exc.message.lower()
    return exc.is_transport_failure and (
        "timed out" in message or "timeout" in message
    )


def _failure_attempt(
    exc: ServiceClientError, rows: int, *, row_error: bool = False
) -> _Attempt:
    timed_out = _timed_out(exc)
    if row_error:
        # A terminal error row: structured iff the row carried the full
        # error shape (status/error/detail), hinted iff it embedded
        # retry_after_s — mirroring the buffered error-payload contract.
        payload = exc.payload
        structured = (
            isinstance(payload, dict)
            and isinstance(payload.get("status"), int)
            and isinstance(payload.get("error"), str)
            and "detail" in payload
        )
        retry_hint = isinstance(payload, dict) and "retry_after_s" in payload
    else:
        structured = _structured(exc)
        retry_hint = exc.retry_after_s is not None or (
            isinstance(exc.payload, dict) and "retry_after_s" in exc.payload
        )
    return _Attempt(
        status=exc.status,
        ok_verified=False,
        structured_error=structured,
        retry_hint=retry_hint,
        truncated=exc.status == TRANSPORT_FAILURE_STATUS and not timed_out,
        timed_out=timed_out,
        rows=rows,
        detail=exc.message,
        retry_after_s=exc.retry_after_s,
    )


class _RequestWorker:
    """Executes one planned request end to end (runs on the thread pool)."""

    def __init__(
        self,
        spec: TrafficSpec,
        host: str,
        port: int,
        sleep: Callable[[float], None],
        clock: Callable[[], float],
    ) -> None:
        self._spec = spec
        self._host = host
        self._port = port
        self._sleep = sleep
        self._clock = clock

    def __call__(self, request: PlannedRequest) -> RequestRecord:
        policy = self._spec.client
        client = ServiceClient(
            self._host, self._port, timeout_s=policy.timeout_s
        )
        # Deterministic jitter: the retry schedule of request k depends only
        # on (seed, k), so replayed runs back off identically.
        retry = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay_s=policy.base_delay_s,
            multiplier=policy.multiplier,
            max_delay_s=policy.max_delay_s,
            rng=keyed_seed_sequence(self._spec.seed, request.index),
        )
        started = self._clock()
        attempt = 0
        while True:
            facts = self._attempt(client, request)
            can_retry = (
                attempt + 1 < policy.max_attempts
                and facts.status in policy.retry_on
            )
            if not can_retry:
                break
            self._sleep(retry.backoff_s(attempt, facts.retry_after_s))
            attempt += 1
        latency_ms = 1e3 * (self._clock() - started)
        return RequestRecord(
            index=request.index,
            kind=request.kind,
            method=request.method,
            path=request.path,
            stream=request.stream,
            payload_digest=request.payload_digest,
            status=facts.status,
            ok_verified=facts.ok_verified,
            structured_error=facts.structured_error,
            retry_hint=facts.retry_hint,
            truncated=facts.truncated,
            timed_out=facts.timed_out,
            rows=facts.rows,
            retries=attempt,
            latency_ms=round(latency_ms, 3),
            detail=facts.detail,
        )

    def _attempt(
        self, client: ServiceClient, request: PlannedRequest
    ) -> _Attempt:
        if request.stream:
            return self._attempt_stream(client, request)
        return self._attempt_buffered(client, request)

    def _attempt_buffered(
        self, client: ServiceClient, request: PlannedRequest
    ) -> _Attempt:
        try:
            payload = client.request(request.method, request.path, request.body)
        except ServiceClientError as exc:
            return _failure_attempt(exc, rows=0)
        verified = _verify_buffered(request.kind, payload)
        count = payload.get("count")
        return _Attempt(
            status=200,
            ok_verified=verified,
            structured_error=False,
            retry_hint=False,
            truncated=False,
            timed_out=False,
            rows=count if isinstance(count, int) else 1,
            detail="" if verified else "payload verification failed",
            retry_after_s=None,
        )

    def _attempt_stream(
        self, client: ServiceClient, request: PlannedRequest
    ) -> _Attempt:
        rows: List[Payload] = []
        try:
            for row in client.request_stream(
                request.method, request.path, request.body
            ):
                rows.append(row)
        except ServiceClientError as exc:
            return _failure_attempt(exc, rows=len(rows))
        last = rows[-1] if rows else None
        if isinstance(last, dict) and last.get("row") == "error":
            status = last.get("status")
            retry_after = last.get("retry_after_s")
            exc = ServiceClientError(
                status
                if isinstance(status, int) and not isinstance(status, bool)
                else 500,
                str(last.get("detail", last.get("error", "stream failed"))),
                last,
                retry_after_s=float(retry_after)
                if isinstance(retry_after, (int, float))
                and not isinstance(retry_after, bool)
                else None,
            )
            return _failure_attempt(exc, rows=len(rows) - 1, row_error=True)
        verified = _verify_stream_end(request.kind, rows)
        return _Attempt(
            status=200,
            ok_verified=verified,
            structured_error=False,
            retry_hint=False,
            truncated=False,
            timed_out=False,
            rows=len(rows),
            detail="" if verified else "stream ended without its terminal row",
            retry_after_s=None,
        )


# --------------------------------------------------------------------- #
# The open loop                                                         #
# --------------------------------------------------------------------- #


def run_plan(
    spec: TrafficSpec,
    host: str,
    port: int,
    plan: Optional[List[PlannedRequest]] = None,
    fault_driver: Optional[FaultDriver] = None,
    sleep: Optional[Callable[[float], None]] = None,
    clock: Optional[Callable[[], float]] = None,
) -> Trace:
    """Execute ``spec`` against a listening service; return the full trace.

    ``plan`` defaults to :func:`build_plan(spec) <repro.loadgen.plan.build_plan>`
    (pass one in to reuse it); ``fault_driver`` must support every action in
    ``spec.faults`` (validated up front — a plan with undeliverable faults
    fails fast instead of silently running fault-free).  ``sleep``/``clock``
    are injectable for tests.
    """
    requests = build_plan(spec) if plan is None else plan
    if spec.faults:
        if fault_driver is None:
            raise ValueError(
                "spec schedules fault events but no fault driver was given"
            )
        unsupported = sorted(
            {e.action for e in spec.faults if not fault_driver.supports(e.action)}
        )
        if unsupported:
            raise ValueError(
                f"fault driver cannot deliver: {', '.join(unsupported)}"
            )
    events_at: Dict[int, List[FaultEvent]] = {}
    if requests:
        last_index = requests[-1].index
        for event in spec.faults:
            # Clamp to the plan: an event scheduled past the end fires
            # before the final request instead of never.
            events_at.setdefault(min(event.at_request, last_index), []).append(
                event
            )
    sleeper = sleep if sleep is not None else default_sleeper
    ticker = clock if clock is not None else default_clock
    worker = _RequestWorker(spec, host, port, sleeper, ticker)
    executor = ThreadPoolExecutor(max_workers=spec.max_concurrency)
    try:
        records = asyncio.run(
            _drive(spec, requests, events_at, fault_driver, worker, executor, ticker)
        )
    finally:
        executor.shutdown(wait=True)
    records.sort(key=lambda record: record.index)
    return Trace(
        spec=traffic_to_mapping(spec),
        records=records,
        meta={"n_requests": len(records), "host": host, "port": port},
    )


async def _drive(
    spec: TrafficSpec,
    requests: List[PlannedRequest],
    events_at: Dict[int, List[FaultEvent]],
    fault_driver: Optional[FaultDriver],
    worker: _RequestWorker,
    executor: ThreadPoolExecutor,
    clock: Callable[[], float],
) -> List[RequestRecord]:
    loop = asyncio.get_running_loop()
    started = clock()
    pending = []
    for request in requests:
        target_s = started + request.t_send_s * spec.time_scale
        delay_s = target_s - clock()
        if delay_s > 0.0:
            await asyncio.sleep(delay_s)
        for event in events_at.get(request.index, ()):
            assert fault_driver is not None  # validated in run_plan
            # Fault delivery may block (an admin HTTP call) — run it off
            # the loop, but *await* it: the fault lands before this
            # request dispatches, pinning chaos to the plan index.
            await loop.run_in_executor(None, fault_driver.fire, event)
        pending.append(loop.run_in_executor(executor, worker, request))
    results: List[RequestRecord] = list(await asyncio.gather(*pending))
    return results
