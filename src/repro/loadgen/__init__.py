"""Deterministic chaos load generator for the planning service.

One subsystem folds the chaos harness and the service bench workload into a
single declarative tool:

* :mod:`repro.loadgen.spec` — the :class:`~repro.loadgen.spec.TrafficSpec`
  model: per-endpoint arrival processes, request mixes over every service
  route (streamed NDJSON variants included), client retry policy, and a
  timed fault plan;
* :mod:`repro.loadgen.arrivals` / :mod:`repro.loadgen.plan` — seeded
  expansion into a concrete, replayable request plan;
* :mod:`repro.loadgen.runner` — the asyncio open-loop executor with
  pluggable fault delivery (in-process injector, chaos admin endpoint);
* :mod:`repro.loadgen.trace` — the canonical trace and its deterministic
  outcome digest (record/replay, bit-identical);
* :mod:`repro.loadgen.verdict` — the machine-checked
  every-request-accounted-for invariant;
* :mod:`repro.loadgen.presets` — the CI smoke plan and the bench mix;
* :mod:`repro.loadgen.cli` — ``python -m repro.loadgen`` (run / replay /
  verify / plan).
"""

from repro.loadgen.plan import PlannedRequest, build_plan, env_fault_plan
from repro.loadgen.presets import bench_spec, smoke_spec
from repro.loadgen.runner import (
    AdminFaultDriver,
    FaultDriver,
    InjectorFaultDriver,
    PrearmedFaultDriver,
    run_plan,
)
from repro.loadgen.spec import (
    ENDPOINT_KINDS,
    FAULT_ACTIONS,
    ArrivalSpec,
    ClientPolicy,
    EndpointMix,
    FaultEvent,
    TrafficSpec,
    endpoint_route,
    traffic_from_mapping,
    traffic_to_mapping,
)
from repro.loadgen.trace import (
    RequestRecord,
    Trace,
    load_trace,
    outcome_digest,
    summarize_latencies,
)
from repro.loadgen.verdict import OUTCOMES, Verdict, classify, evaluate

__all__ = [
    "ENDPOINT_KINDS",
    "FAULT_ACTIONS",
    "OUTCOMES",
    "AdminFaultDriver",
    "ArrivalSpec",
    "ClientPolicy",
    "EndpointMix",
    "FaultDriver",
    "FaultEvent",
    "InjectorFaultDriver",
    "PlannedRequest",
    "PrearmedFaultDriver",
    "RequestRecord",
    "Trace",
    "TrafficSpec",
    "Verdict",
    "bench_spec",
    "build_plan",
    "classify",
    "endpoint_route",
    "env_fault_plan",
    "evaluate",
    "load_trace",
    "outcome_digest",
    "run_plan",
    "smoke_spec",
    "summarize_latencies",
    "traffic_from_mapping",
    "traffic_to_mapping",
]
