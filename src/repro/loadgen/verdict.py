"""The every-request-accounted-for invariant, machine-checked.

Every request of a run must end in exactly one of three *accounted*
outcomes:

``ok``
    A 2xx response that also passed endpoint-specific payload verification
    (a streamed request's terminal summary/done row included).
``rejected``
    A clean structured 4xx/5xx — the service's canonical error shape, with
    a retry hint wherever the protocol requires one (429/503 backpressure).
    This covers terminal mid-stream error rows: a killed simulate child
    surfacing as a structured 500 row is an accounted failure.
``truncated``
    A client-*detected* truncation: the connection died mid-response and
    the client noticed (synthetic status 599, not a timeout).

Anything else is a ``violation`` and fails the run: a hang (the client
deadline expiring — the service never answered), a 2xx whose payload fails
verification (silent corruption), a malformed error body, or backpressure
without its retry hint.  :func:`evaluate` folds a trace's records into a
:class:`Verdict`; :func:`classify` is the per-record pure function, so the
same trace always re-judges identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.loadgen.trace import RequestRecord
from repro.utils.validation import check_non_negative_int

__all__ = ["OUTCOMES", "Verdict", "classify", "evaluate"]

#: The outcome taxonomy, in display order.
OUTCOMES: Tuple[str, ...] = ("ok", "rejected", "truncated", "violation")


def classify(record: RequestRecord) -> Tuple[str, str]:
    """``(outcome, reason)`` for one record; ``reason`` is empty unless
    the outcome is a violation."""
    status = record.status
    if 200 <= status < 300:
        if record.ok_verified:
            return "ok", ""
        return "violation", "2xx response failed payload verification"
    if status == 599:
        if record.timed_out:
            return "violation", "hang: no response within the client deadline"
        return "truncated", ""
    if 400 <= status < 599:
        if not record.structured_error:
            return "violation", "malformed error body"
        if status in (429, 503) and not record.retry_hint:
            return "violation", "backpressure response missing its retry hint"
        return "rejected", ""
    return "violation", f"unexpected status {status}"


@dataclass
class Verdict:
    """The run-level judgement: per-outcome counts plus every violation."""

    passed: bool
    total: int
    counts: Dict[str, int]
    violations: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_non_negative_int(self.total, "total")

    def to_mapping(self) -> Dict[str, Any]:
        """Plain-JSON form (the CLI's report shape)."""
        return {
            "passed": self.passed,
            "total": self.total,
            "counts": dict(self.counts),
            "violations": list(self.violations),
        }


def evaluate(records: Sequence[RequestRecord]) -> Verdict:
    """Judge a full run: passes iff zero requests are unaccounted for."""
    counts = {outcome: 0 for outcome in OUTCOMES}
    violations: List[Dict[str, Any]] = []
    for record in records:
        outcome, reason = classify(record)
        counts[outcome] += 1
        if outcome == "violation":
            violations.append(
                {
                    "index": record.index,
                    "kind": record.kind,
                    "path": record.path,
                    "status": record.status,
                    "reason": reason,
                    "detail": record.detail,
                }
            )
    return Verdict(
        passed=not violations,
        total=len(records),
        counts=counts,
        violations=violations,
    )
