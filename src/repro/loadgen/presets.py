"""Canned traffic specs: the CI smoke plan and the bench workload.

:func:`smoke_spec` is the ``chaos-replay`` plan — every endpoint kind, all
stream-aware fault actions, retry-enabled client policy so fault-hit
requests converge to the clean outcome and the trace digest is independent
of which in-flight request drew a count-armed fault.  :func:`bench_spec`
reproduces the coalescing-friendly scalar-heavy mix the service benchmark
has always used, so ``benchmarks/bench_service.py`` can delegate workload
construction here instead of keeping its own sampler.
"""

from __future__ import annotations

from repro.loadgen.spec import (
    ArrivalSpec,
    ClientPolicy,
    EndpointMix,
    FaultEvent,
    TrafficSpec,
)

__all__ = ["bench_spec", "smoke_spec"]


def smoke_spec(
    seed: int = 2026,
    duration_s: float = 4.0,
    include_shard_kill: bool = False,
) -> TrafficSpec:
    """The chaos smoke plan: all endpoints, all stream-aware faults.

    ``include_shard_kill`` adds a scheduled ``kill_shard`` event — only
    deliverable against a sharded supervisor started with ``--chaos-admin``
    (CI's ``chaos-replay`` job); in-process single-server tests leave it
    off.
    """
    faults = [
        FaultEvent(action="kill_worker", at_request=8),
        FaultEvent(
            action="truncate_stream",
            at_request=16,
            after_rows=1,
            path="/v1/underlay/energy",
        ),
        FaultEvent(action="kill_sim_child", at_request=24, after_rows=1),
        FaultEvent(action="stall_sim", at_request=32),
        FaultEvent(action="drop_client", at_request=40, path="/v1/ebar"),
    ]
    if include_shard_kill:
        faults.append(FaultEvent(action="kill_shard", at_request=12))
    return TrafficSpec(
        seed=seed,
        duration_s=duration_s,
        mix=(
            EndpointMix(kind="healthz", arrival=ArrivalSpec(rate_per_s=1.0)),
            EndpointMix(kind="metrics", arrival=ArrivalSpec(rate_per_s=0.5)),
            EndpointMix(kind="ebar", arrival=ArrivalSpec(rate_per_s=5.0)),
            EndpointMix(kind="overlay", arrival=ArrivalSpec(rate_per_s=2.0)),
            EndpointMix(
                kind="overlay_stream",
                arrival=ArrivalSpec(process="bursty", rate_per_s=1.0),
                sweep_points=6,
            ),
            EndpointMix(kind="underlay", arrival=ArrivalSpec(rate_per_s=2.0)),
            EndpointMix(
                kind="underlay_stream",
                arrival=ArrivalSpec(rate_per_s=1.5),
                sweep_points=6,
            ),
            EndpointMix(kind="interweave", arrival=ArrivalSpec(rate_per_s=1.5)),
            EndpointMix(
                kind="simulate_stream",
                arrival=ArrivalSpec(process="ramp", rate_per_s=0.75),
                sim_nodes=8,
                sim_duration_s=2.0,
                sim_snapshot_s=0.5,
            ),
        ),
        client=ClientPolicy(
            # Tight deadline for a ~4 s plan: a genuinely hung request
            # surfaces (and retries) fast instead of stalling CI.
            timeout_s=10.0,
            # The retry budget must cover the fleet-wide worst case, not
            # the per-event counts: every shard of an N-shard fleet arms
            # the boot plan independently, so against CI's 2-shard
            # supervisor one unlucky /v1/simulate request can serially
            # draw all four armed sim faults (stall x2, kill x2) before
            # its first clean attempt.  Six attempts leave one to spare.
            max_attempts=6,
            base_delay_s=0.05,
            max_delay_s=0.5,
        ),
        faults=tuple(faults),
        max_concurrency=8,
    )


def bench_spec(
    seed: int = 2026,
    duration_s: float = 10.0,
    total_rate_per_s: float = 128.0,
) -> TrafficSpec:
    """The benchmark mix: scalar-heavy, coalescing- and cache-friendly.

    Mirrors the historical ``bench_service`` workload proportions — mostly
    scalar ``ebar``/``overlay``/``underlay``/``interweave`` lookups (the
    coalescer's bread and butter, with repeats that hit the caches) plus a
    thin tail of buffered sweeps for the worker pool.
    """
    rate = total_rate_per_s
    return TrafficSpec(
        seed=seed,
        duration_s=duration_s,
        mix=(
            EndpointMix(kind="ebar", arrival=ArrivalSpec(rate_per_s=0.40 * rate)),
            EndpointMix(
                kind="overlay", arrival=ArrivalSpec(rate_per_s=0.20 * rate)
            ),
            EndpointMix(
                kind="underlay", arrival=ArrivalSpec(rate_per_s=0.20 * rate)
            ),
            EndpointMix(
                kind="interweave", arrival=ArrivalSpec(rate_per_s=0.10 * rate)
            ),
            EndpointMix(
                kind="overlay_sweep",
                arrival=ArrivalSpec(rate_per_s=0.05 * rate),
                sweep_points=16,
            ),
            EndpointMix(
                kind="underlay_sweep",
                arrival=ArrivalSpec(rate_per_s=0.05 * rate),
                sweep_points=16,
            ),
        ),
        client=ClientPolicy(timeout_s=120.0, max_attempts=1),
        max_concurrency=16,
    )
