"""``python -m repro.loadgen`` dispatches to :func:`repro.loadgen.cli.main`."""

from repro.loadgen.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
