"""Declarative, seed-deterministic traffic model for the chaos load generator.

A :class:`TrafficSpec` fully determines one load-generation run against the
planning service: which endpoints are exercised (:class:`EndpointMix`, one
entry per endpoint *kind* covering every ``/v1/*`` route plus the streamed
NDJSON variants), how requests arrive over time (:class:`ArrivalSpec` —
Poisson, bursty on/off, or ramped open-loop processes), how the client
behaves under failure (:class:`ClientPolicy` — per-request retry backoff and
timeout), and which faults fire when (:class:`FaultEvent`, scheduled at a
specific global request index).

Everything downstream — arrival offsets, request payloads, retry jitter —
derives from ``TrafficSpec.seed`` through named ``SeedSequence`` spawns, so
building the plan twice yields byte-identical requests: the contract the
trace record/replay layer (:mod:`repro.loadgen.trace`) and CI's
``chaos-replay`` job assert.

Specs parse from plain JSON mappings via :func:`traffic_from_mapping`
(strict: unknown keys are rejected) and serialise back with
:func:`traffic_to_mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
)

__all__ = [
    "ENDPOINT_KINDS",
    "FAULT_ACTIONS",
    "ArrivalSpec",
    "ClientPolicy",
    "EndpointMix",
    "FaultEvent",
    "TrafficSpec",
    "endpoint_route",
    "traffic_from_mapping",
    "traffic_to_mapping",
]

#: Endpoint kind → (HTTP method, path, streamed?).  The twelve kinds cover
#: all seven service routes; sweep-capable routes appear three times —
#: scalar (coalesced), buffered sweep, and streamed NDJSON sweep.
_ROUTES: Dict[str, Tuple[str, str, bool]] = {
    "healthz": ("GET", "/healthz", False),
    "metrics": ("GET", "/metrics", False),
    "ebar": ("POST", "/v1/ebar", False),
    "overlay": ("POST", "/v1/overlay/feasible", False),
    "overlay_sweep": ("POST", "/v1/overlay/feasible", False),
    "overlay_stream": ("POST", "/v1/overlay/feasible", True),
    "underlay": ("POST", "/v1/underlay/energy", False),
    "underlay_sweep": ("POST", "/v1/underlay/energy", False),
    "underlay_stream": ("POST", "/v1/underlay/energy", True),
    "interweave": ("POST", "/v1/interweave/pattern", False),
    "simulate": ("POST", "/v1/simulate", False),
    "simulate_stream": ("POST", "/v1/simulate", True),
}

#: The valid ``EndpointMix.kind`` values, in canonical order.
ENDPOINT_KINDS: Tuple[str, ...] = tuple(_ROUTES)

#: The fault-plan action catalogue.  Server-side actions map onto
#: :class:`repro.service.faults.FaultInjector` arms; ``kill_shard`` may
#: alternatively be delivered through the supervisor's chaos admin
#: endpoint (``POST /chaos/kill_shard``) against a real sharded binary.
FAULT_ACTIONS: Tuple[str, ...] = (
    "kill_worker",
    "kill_shard",
    "delay",
    "abort",
    "truncate_stream",
    "drop_client",
    "kill_sim_child",
    "stall_sim",
)


def endpoint_route(kind: str) -> Tuple[str, str, bool]:
    """``(method, path, streamed)`` for one endpoint kind."""
    try:
        return _ROUTES[kind]
    except KeyError:
        raise ValueError(
            f"unknown endpoint kind {kind!r}; "
            f"known: {', '.join(ENDPOINT_KINDS)}"
        ) from None


@dataclass(frozen=True)
class ArrivalSpec:
    """One endpoint's open-loop arrival process.

    ``poisson`` draws exponential inter-arrival times at ``rate_per_s``.
    ``bursty`` alternates deterministic on/off windows (``burst_on_s`` /
    ``burst_off_s``, starting *on*) and thins a peak-rate Poisson stream of
    ``rate_per_s * burst_factor`` down to the on windows.  ``ramp`` thins
    against a linearly growing rate from ``rate_per_s`` at t=0 up to
    ``rate_per_s * ramp_factor`` at the end of the run.
    """

    process: str = "poisson"
    rate_per_s: float = 4.0
    burst_factor: float = 4.0
    burst_on_s: float = 1.0
    burst_off_s: float = 1.0
    ramp_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.process not in ("poisson", "bursty", "ramp"):
            raise ValueError(
                f"process must be poisson|bursty|ramp, got {self.process!r}"
            )
        check_positive(self.rate_per_s, "rate_per_s")
        check_positive(self.burst_factor, "burst_factor")
        check_positive(self.burst_on_s, "burst_on_s")
        check_positive(self.burst_off_s, "burst_off_s")
        check_positive(self.ramp_factor, "ramp_factor")


@dataclass(frozen=True)
class EndpointMix:
    """One endpoint kind plus its arrival process and payload knobs.

    ``sweep_points`` sizes the axis of sweep/stream requests;
    ``sim_nodes``/``sim_duration_s``/``sim_snapshot_s`` shape the scenarios
    posted to ``/v1/simulate`` (kept small by default so a smoke plan
    streams a handful of snapshot rows per request, not thousands).
    """

    kind: str = "ebar"
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    sweep_points: int = 8
    sim_nodes: int = 10
    sim_duration_s: float = 3.0
    sim_snapshot_s: float = 1.0

    def __post_init__(self) -> None:
        endpoint_route(self.kind)  # validates
        check_positive_int(self.sweep_points, "sweep_points")
        check_positive_int(self.sim_nodes, "sim_nodes")
        check_positive(self.sim_duration_s, "sim_duration_s")
        check_positive(self.sim_snapshot_s, "sim_snapshot_s")


@dataclass(frozen=True)
class ClientPolicy:
    """Per-request client behavior: timeout and retry backoff.

    The runner owns the retry loop (not :class:`ServiceClient`'s built-in
    one) so that *any* status listed in ``retry_on`` — including terminal
    mid-stream error rows like a 500 from a killed simulate child — can be
    replayed.  Every endpoint is a deterministic pure function of its body,
    so replays are always safe; with an active fault plan, retrying is what
    makes the recorded outcome sequence independent of *which* in-flight
    request happened to draw a count-armed fault.  ``max_attempts=1``
    disables retries (used by tests that assert the raw failure shape).
    """

    timeout_s: float = 30.0
    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    retry_on: Tuple[int, ...] = (429, 500, 503, 504, 599)

    def __post_init__(self) -> None:
        check_positive(self.timeout_s, "timeout_s")
        check_positive_int(self.max_attempts, "max_attempts")
        check_positive(self.base_delay_s, "base_delay_s")
        check_positive(self.multiplier, "multiplier")
        check_positive(self.max_delay_s, "max_delay_s")
        for status in self.retry_on:
            check_in_range(status, "retry_on status", 400, 599)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire ``action`` just before request ``at_request``.

    ``at_request`` is a global plan index — the fault is delivered after the
    previous request has been *dispatched* and before this one is, which
    pins chaos to a reproducible point in the request sequence.  ``count``
    arms that many firings; ``after_rows`` positions stream faults
    mid-stream; ``path`` scopes path-matched faults (``None`` = any);
    ``delay_ms`` sizes ``delay`` actions.
    """

    action: str = "kill_worker"
    at_request: int = 0
    count: int = 1
    after_rows: int = 0
    path: Optional[str] = None
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"known: {', '.join(FAULT_ACTIONS)}"
            )
        check_non_negative_int(self.at_request, "at_request")
        check_positive_int(self.count, "count")
        check_non_negative_int(self.after_rows, "after_rows")
        check_non_negative(self.delay_ms, "delay_ms")
        if self.action == "delay" and self.delay_ms <= 0.0:
            raise ValueError("delay faults need delay_ms > 0")


@dataclass(frozen=True)
class TrafficSpec:
    """A complete, replayable load-generation run."""

    seed: int = 0
    duration_s: float = 5.0
    mix: Tuple[EndpointMix, ...] = (EndpointMix(),)
    client: ClientPolicy = field(default_factory=ClientPolicy)
    faults: Tuple[FaultEvent, ...] = ()
    max_concurrency: int = 8
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative_int(self.seed, "seed")
        check_positive(self.duration_s, "duration_s")
        if not self.mix:
            raise ValueError("need at least one endpoint mix entry")
        kinds = [m.kind for m in self.mix]
        if len(set(kinds)) != len(kinds):
            raise ValueError(f"duplicate endpoint kinds in mix: {kinds}")
        check_positive_int(self.max_concurrency, "max_concurrency")
        check_non_negative(self.time_scale, "time_scale")


# --------------------------------------------------------------------- #
# Strict mapping parse / serialise                                      #
# --------------------------------------------------------------------- #

_ARRIVAL_FIELDS: Dict[str, type] = {
    "process": str,
    "rate_per_s": float,
    "burst_factor": float,
    "burst_on_s": float,
    "burst_off_s": float,
    "ramp_factor": float,
}

_MIX_SCALAR_FIELDS: Dict[str, type] = {
    "kind": str,
    "sweep_points": int,
    "sim_nodes": int,
    "sim_duration_s": float,
    "sim_snapshot_s": float,
}

_CLIENT_FIELDS: Dict[str, type] = {
    "timeout_s": float,
    "max_attempts": int,
    "base_delay_s": float,
    "multiplier": float,
    "max_delay_s": float,
}

_FAULT_FIELDS: Dict[str, type] = {
    "action": str,
    "at_request": int,
    "count": int,
    "after_rows": int,
    "delay_ms": float,
}

_SPEC_SCALAR_FIELDS: Dict[str, type] = {
    "seed": int,
    "duration_s": float,
    "max_concurrency": int,
    "time_scale": float,
}


def _coerce(value: Any, kind: type, name: str) -> Any:
    if kind is str:
        if not isinstance(value, str):
            raise ValueError(f"{name} must be a string")
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number")
    if kind is int:
        if float(value) != int(value):
            raise ValueError(f"{name} must be an integer")
        return int(value)
    return float(value)


def _parse_fields(
    data: Mapping[str, Any], fields: Mapping[str, type], what: str
) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in data.items():
        if key not in fields:
            raise ValueError(f"unknown {what} field: {key!r}")
        out[key] = _coerce(value, fields[key], key)
    return out


def _parse_mix(value: Any, index: int) -> EndpointMix:
    if not isinstance(value, Mapping):
        raise ValueError(f"mix[{index}] must be an object")
    kwargs: Dict[str, Any] = {}
    for key, item in value.items():
        if key in _MIX_SCALAR_FIELDS:
            kwargs[key] = _coerce(item, _MIX_SCALAR_FIELDS[key], key)
        elif key == "arrival":
            if not isinstance(item, Mapping):
                raise ValueError(f"mix[{index}].arrival must be an object")
            kwargs[key] = ArrivalSpec(
                **_parse_fields(item, _ARRIVAL_FIELDS, f"mix[{index}].arrival")
            )
        else:
            raise ValueError(f"unknown mix[{index}] field: {key!r}")
    return EndpointMix(**kwargs)


def _parse_client(value: Any) -> ClientPolicy:
    if not isinstance(value, Mapping):
        raise ValueError("client must be an object")
    kwargs: Dict[str, Any] = {}
    for key, item in value.items():
        if key in _CLIENT_FIELDS:
            kwargs[key] = _coerce(item, _CLIENT_FIELDS[key], key)
        elif key == "retry_on":
            if not isinstance(item, (list, tuple)) or not all(
                isinstance(s, int) and not isinstance(s, bool) for s in item
            ):
                raise ValueError("client.retry_on must be an integer list")
            kwargs[key] = tuple(int(s) for s in item)
        else:
            raise ValueError(f"unknown client field: {key!r}")
    return ClientPolicy(**kwargs)


def _parse_fault(value: Any, index: int) -> FaultEvent:
    if not isinstance(value, Mapping):
        raise ValueError(f"faults[{index}] must be an object")
    kwargs: Dict[str, Any] = {}
    for key, item in value.items():
        if key in _FAULT_FIELDS:
            kwargs[key] = _coerce(item, _FAULT_FIELDS[key], key)
        elif key == "path":
            if item is not None and not isinstance(item, str):
                raise ValueError(f"faults[{index}].path must be a string")
            kwargs[key] = item
        else:
            raise ValueError(f"unknown faults[{index}] field: {key!r}")
    return FaultEvent(**kwargs)


def traffic_from_mapping(data: Mapping[str, Any]) -> TrafficSpec:
    """Build a :class:`TrafficSpec` from a plain JSON-style mapping.

    Strict: unknown keys raise ``ValueError``, as do type mismatches.
    Missing keys take the dataclass defaults.
    """
    if not isinstance(data, Mapping):
        raise ValueError("traffic spec must be a JSON object")
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key in _SPEC_SCALAR_FIELDS:
            kwargs[key] = _coerce(value, _SPEC_SCALAR_FIELDS[key], key)
        elif key == "mix":
            if not isinstance(value, (list, tuple)):
                raise ValueError("mix must be a list of endpoint objects")
            kwargs[key] = tuple(
                _parse_mix(item, i) for i, item in enumerate(value)
            )
        elif key == "client":
            kwargs[key] = _parse_client(value)
        elif key == "faults":
            if not isinstance(value, (list, tuple)):
                raise ValueError("faults must be a list of event objects")
            kwargs[key] = tuple(
                _parse_fault(item, i) for i, item in enumerate(value)
            )
        else:
            raise ValueError(f"unknown traffic spec field: {key!r}")
    return TrafficSpec(**kwargs)


def traffic_to_mapping(spec: TrafficSpec) -> Dict[str, Any]:
    """Serialise a spec back to the JSON mapping form (round-trips)."""
    out: Dict[str, Any] = {
        name: getattr(spec, name) for name in _SPEC_SCALAR_FIELDS
    }
    mix: List[Dict[str, Any]] = []
    for entry in spec.mix:
        item: Dict[str, Any] = {
            name: getattr(entry, name) for name in _MIX_SCALAR_FIELDS
        }
        item["arrival"] = {
            name: getattr(entry.arrival, name) for name in _ARRIVAL_FIELDS
        }
        mix.append(item)
    out["mix"] = mix
    client: Dict[str, Any] = {
        name: getattr(spec.client, name) for name in _CLIENT_FIELDS
    }
    client["retry_on"] = list(spec.client.retry_on)
    out["client"] = client
    out["faults"] = [
        {
            **{name: getattr(event, name) for name in _FAULT_FIELDS},
            "path": event.path,
        }
        for event in spec.faults
    ]
    return out
