"""Command-line entry point: ``python -m repro.loadgen``.

Four subcommands::

    repro-loadgen run    --preset smoke|bench | --spec FILE
                         --host H --port P [--admin-port P]
                         [--trace OUT.json] [--time-scale X] [--seed N]
    repro-loadgen replay --trace IN.json --host H --port P [--admin-port P]
                         [--out OUT.json]
    repro-loadgen verify --trace IN.json
    repro-loadgen plan   --preset ... | --spec FILE [--env-plan] [--seed N]

``run`` executes a spec against a listening service, writes the recorded
trace, prints the verdict as JSON and exits 0 iff every request was
accounted for.  ``replay`` rebuilds the plan from a trace's embedded spec,
re-runs it, and additionally requires the new outcome digest to equal the
recorded one bit-for-bit (exit 1 on mismatch).  ``verify`` re-judges a
saved trace offline.  ``plan`` prints a plan summary — or, with
``--env-plan``, the ``REPRO_SERVICE_FAULTS`` JSON that pre-arms the spec's
server-side faults in a real service binary.

Against a real binary, server-side fault actions must be armed at boot via
``--env-plan`` output; ``kill_shard`` events additionally need the target
supervisor started with ``--chaos-admin`` and its admin port passed as
``--admin-port``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.loadgen.plan import build_plan, env_fault_plan
from repro.loadgen.presets import bench_spec, smoke_spec
from repro.loadgen.runner import (
    AdminFaultDriver,
    PrearmedFaultDriver,
    run_plan,
)
from repro.loadgen.spec import TrafficSpec, traffic_from_mapping
from repro.loadgen.trace import Trace, load_trace, outcome_digest
from repro.loadgen.verdict import evaluate

__all__ = ["main"]


def _load_spec(args: argparse.Namespace) -> TrafficSpec:
    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = traffic_from_mapping(json.load(handle))
    elif args.preset == "smoke":
        spec = smoke_spec(include_shard_kill=args.admin_port is not None)
    elif args.preset == "bench":
        spec = bench_spec()
    else:
        raise ValueError("need --spec FILE or --preset smoke|bench")
    overrides = {}
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "time_scale", None) is not None:
        overrides["time_scale"] = args.time_scale
    if overrides:
        from dataclasses import replace

        spec = replace(spec, **overrides)
    return spec


def _driver(args: argparse.Namespace) -> PrearmedFaultDriver:
    admin = (
        AdminFaultDriver(args.host, args.admin_port)
        if args.admin_port is not None
        else None
    )
    return PrearmedFaultDriver(admin)


def _report(trace: Trace, extra: Optional[dict] = None) -> int:
    verdict = evaluate(trace.records)
    report = verdict.to_mapping()
    report["outcome_digest"] = outcome_digest(trace.records)
    if extra:
        report.update(extra)
    print(json.dumps(report, sort_keys=True, indent=1))
    return 0 if verdict.passed and not report.get("digest_mismatch") else 1


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    trace = run_plan(spec, args.host, args.port, fault_driver=_driver(args))
    if args.trace is not None:
        trace.save(args.trace)
    return _report(trace)


def _cmd_replay(args: argparse.Namespace) -> int:
    recorded = load_trace(args.trace)
    spec = traffic_from_mapping(recorded.spec)
    replayed = run_plan(spec, args.host, args.port, fault_driver=_driver(args))
    if args.out is not None:
        replayed.save(args.out)
    recorded_digest = outcome_digest(recorded.records)
    replayed_digest = outcome_digest(replayed.records)
    return _report(
        replayed,
        extra={
            "recorded_digest": recorded_digest,
            "digest_mismatch": recorded_digest != replayed_digest,
        },
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    return _report(load_trace(args.trace))


def _cmd_plan(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    plan = build_plan(spec)
    if args.env_plan:
        print(json.dumps(env_fault_plan(spec, plan), sort_keys=True))
        return 0
    by_kind: dict = {}
    for request in plan:
        by_kind[request.kind] = by_kind.get(request.kind, 0) + 1
    print(
        json.dumps(
            {
                "n_requests": len(plan),
                "duration_s": spec.duration_s,
                "by_kind": by_kind,
                "faults": [event.action for event in spec.faults],
            },
            sort_keys=True,
            indent=1,
        )
    )
    return 0


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spec", default=None, help="traffic spec JSON file")
    parser.add_argument(
        "--preset",
        choices=("smoke", "bench"),
        default=None,
        help="built-in spec (ignored when --spec is given)",
    )
    parser.add_argument("--seed", type=int, default=None, help="seed override")


def _add_target_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="service host")
    parser.add_argument(
        "--port", type=int, required=True, help="service port under load"
    )
    parser.add_argument(
        "--admin-port",
        type=int,
        default=None,
        help="shard supervisor admin port (enables kill_shard delivery "
        "via POST /chaos/kill_shard; requires --chaos-admin server-side)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Deterministic chaos load generator for the planning "
        "service: seeded traffic plans, trace record/replay, and the "
        "every-request-accounted-for verdict.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a spec and record a trace")
    _add_spec_args(run)
    _add_target_args(run)
    run.add_argument("--trace", default=None, help="write the trace here")
    run.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="scale arrival offsets (0 fires as fast as possible)",
    )
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser(
        "replay", help="re-run a recorded trace and compare digests"
    )
    replay.add_argument("--trace", required=True, help="recorded trace file")
    _add_target_args(replay)
    replay.add_argument("--out", default=None, help="write the replay trace")
    replay.set_defaults(func=_cmd_replay)

    verify = sub.add_parser("verify", help="re-judge a saved trace offline")
    verify.add_argument("--trace", required=True, help="recorded trace file")
    verify.set_defaults(func=_cmd_verify)

    plan = sub.add_parser(
        "plan", help="summarise a spec's plan or emit its env fault plan"
    )
    _add_spec_args(plan)
    plan.add_argument(
        "--env-plan",
        action="store_true",
        help="print the REPRO_SERVICE_FAULTS JSON for the spec's "
        "server-side fault events",
    )
    plan.add_argument("--admin-port", type=int, default=None, help=argparse.SUPPRESS)
    plan.set_defaults(func=_cmd_plan)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except (ValueError, OSError) as exc:
        print(f"repro-loadgen: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
