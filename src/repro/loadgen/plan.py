"""Plan construction: a :class:`TrafficSpec` → a deterministic request list.

:func:`build_plan` expands the spec into one :class:`PlannedRequest` per
arrival, with concrete send offsets and fully-sampled JSON payloads.  Each
mix entry gets two dedicated ``SeedSequence`` children (arrivals, payloads)
spawned from ``spec.seed``, so adding an endpoint to the mix cannot perturb
any other endpoint's requests, and building the same spec twice yields an
identical plan — the foundation of the record/replay contract.

Payload samplers draw only from parameter ranges the bench harness has
proven feasible against the default service configuration (the ``ebar``
table grids, overlay distances inside Algorithm 1's feasible band, underlay
distances within power budget), so a fault-free run produces zero 4xx
responses — any rejection in a verdict is then attributable to the fault
plan or a service bug, never to the generator asking impossible questions.

:func:`env_fault_plan` compiles the spec's server-side fault events into the
``REPRO_SERVICE_FAULTS`` JSON a real service binary arms at boot, using the
plan to translate "at request index k" into the injector's skip counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.loadgen.arrivals import arrival_offsets_s
from repro.loadgen.spec import EndpointMix, TrafficSpec, endpoint_route
from repro.service.rescache import canonical_digest
from repro.utils.rng import as_rng, spawn_seed_sequences
from repro.utils.validation import check_non_negative, check_non_negative_int

__all__ = ["PlannedRequest", "build_plan", "env_fault_plan"]

Payload = Dict[str, Any]

#: (mt, mr) antenna pairs present in the default ē_b lookup table.
_EBAR_ANTENNAS: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 2), (2, 3), (4, 4))
#: Target BERs on the default table's p grid.
_EBAR_P: Tuple[float, ...] = (0.1, 0.05, 0.01, 0.005, 0.001, 0.0005)
#: Constellation sizes on the default table's b grid.
_EBAR_B: Tuple[int, ...] = tuple(range(1, 17))


@dataclass(frozen=True)
class PlannedRequest:
    """One fully-determined request of a plan."""

    index: int
    t_send_s: float
    kind: str
    method: str
    path: str
    stream: bool
    body: Optional[Payload]
    payload_digest: str

    def __post_init__(self) -> None:
        check_non_negative_int(self.index, "index")
        check_non_negative(self.t_send_s, "t_send_s")


def build_plan(spec: TrafficSpec) -> List[PlannedRequest]:
    """Expand ``spec`` into its complete, deterministic request sequence.

    Requests are globally ordered by send offset (ties broken by mix
    position, then arrival number — both seed-stable) and indexed 0..n-1;
    fault events address these indexes.
    """
    children = spawn_seed_sequences(spec.seed, 2 * len(spec.mix))
    staged: List[Tuple[float, int, int, PlannedRequest]] = []
    for entry_idx, entry in enumerate(spec.mix):
        arrival_seed = children[2 * entry_idx]
        payload_rng = as_rng(children[2 * entry_idx + 1])
        offsets = arrival_offsets_s(entry.arrival, spec.duration_s, arrival_seed)
        method, path, stream = endpoint_route(entry.kind)
        for j, offset in enumerate(offsets):
            body = _sample_body(entry, payload_rng)
            request = PlannedRequest(
                index=0,  # reassigned after the global sort
                t_send_s=round(float(offset), 6),
                kind=entry.kind,
                method=method,
                path=path,
                stream=stream,
                body=body,
                payload_digest=canonical_digest(path, body if body is not None else {}),
            )
            staged.append((request.t_send_s, entry_idx, j, request))
    staged.sort(key=lambda item: (item[0], item[1], item[2]))
    return [
        PlannedRequest(
            index=i,
            t_send_s=request.t_send_s,
            kind=request.kind,
            method=request.method,
            path=request.path,
            stream=request.stream,
            body=request.body,
            payload_digest=request.payload_digest,
        )
        for i, (_, _, _, request) in enumerate(staged)
    ]


# --------------------------------------------------------------------- #
# Payload samplers (bench-proven feasible parameter ranges)             #
# --------------------------------------------------------------------- #


def _sample_body(
    entry: EndpointMix, rng: np.random.Generator
) -> Optional[Payload]:
    kind = entry.kind
    if kind in ("healthz", "metrics"):
        return None
    if kind == "ebar":
        mt, mr = _EBAR_ANTENNAS[int(rng.integers(len(_EBAR_ANTENNAS)))]
        return {
            "p": _EBAR_P[int(rng.integers(len(_EBAR_P)))],
            "b": _EBAR_B[int(rng.integers(len(_EBAR_B)))],
            "mt": mt,
            "mr": mr,
            "solver": "table",
        }
    if kind == "overlay":
        return _overlay_body(_round(10.0 + 0.625 * int(rng.integers(120))), rng)
    if kind in ("overlay_sweep", "overlay_stream"):
        start = 15.0 + 5.0 * int(rng.integers(8))
        d1 = [_round(start + 2.0 * k) for k in range(entry.sweep_points)]
        return _overlay_body(d1, rng)
    if kind == "underlay":
        return _underlay_body(_round(30.0 + 0.5 * int(rng.integers(120))))
    if kind in ("underlay_sweep", "underlay_stream"):
        start = 35.0 + 5.0 * int(rng.integers(8))
        distance = [_round(start + 3.0 * k) for k in range(entry.sweep_points)]
        return _underlay_body(distance)
    if kind == "interweave":
        angle = 2.0 * np.pi * int(rng.integers(64)) / 64.0
        return {
            "st1": [0.0, 0.0],
            "st2": [15.0, 0.0],
            "wavelength": 30.0,
            "point": [_round(300.0 * np.cos(angle)), _round(300.0 * np.sin(angle))],
            "pr": [100.0, 0.0],
        }
    # simulate / simulate_stream: a small, replayable city scenario.
    return {
        "n_nodes": entry.sim_nodes,
        "duration_s": entry.sim_duration_s,
        "snapshot_interval_s": entry.sim_snapshot_s,
        "seed": int(rng.integers(2**31 - 1)),
        "arena_m": [400.0, 400.0],
    }


def _overlay_body(d1: object, rng: np.random.Generator) -> Payload:
    return {
        "d1": d1,
        "m": int(rng.integers(2, 4)),
        "bandwidth": 10e3,
    }


def _underlay_body(distance: object) -> Payload:
    return {
        "p": 1e-3,
        "mt": 2,
        "mr": 2,
        "d": 5.0,
        "distance": distance,
        "bandwidth": 10e3,
    }


def _round(value: float) -> float:
    return round(float(value), 6)


# --------------------------------------------------------------------- #
# Server-side fault-plan compilation                                    #
# --------------------------------------------------------------------- #


def env_fault_plan(
    spec: TrafficSpec, plan: Optional[List[PlannedRequest]] = None
) -> Dict[str, object]:
    """The ``REPRO_SERVICE_FAULTS`` JSON object for this spec's fault plan.

    Server-side fault actions must be armed when the service binary boots;
    this compiles the spec's events into that boot-time plan.  ``at_request``
    scheduling is approximated through the injector's skip counters — skip
    as many *matching* planned requests as precede the event's index.  The
    approximation is exact for ``max_concurrency=1`` runs without retries;
    under concurrency the fault still fires near the scheduled point, and
    retry-enabled client policies make the recorded outcome sequence
    independent of exactly which request draws it.

    ``kill_shard`` events are excluded: they are delivered at their exact
    request index through the supervisor's ``POST /chaos/kill_shard`` chaos
    admin endpoint (see :class:`repro.loadgen.runner.AdminFaultDriver`),
    not pre-armed.  ``delay`` events fold into one ``delay_ms`` arm (the
    injector has a single delay slot).  Path scopes of all events merge
    into the injector's one shared ``paths`` list.
    """
    if plan is None:
        plan = build_plan(spec)
    out: Dict[str, object] = {}
    paths: List[str] = []
    for event in spec.faults:
        if event.action == "kill_shard":
            continue
        if event.path is not None and event.path not in paths:
            paths.append(event.path)
        if event.action == "kill_worker":
            out["kill_worker"] = int(out.get("kill_worker", 0)) + event.count  # type: ignore[call-overload]
        elif event.action == "delay":
            out["delay_ms"] = event.delay_ms
            out["delay_times"] = int(out.get("delay_times", 0)) + event.count  # type: ignore[call-overload]
        elif event.action == "abort":
            out["abort"] = int(out.get("abort", 0)) + event.count  # type: ignore[call-overload]
            out.setdefault(
                "abort_skip",
                _skip_before(plan, event.at_request, event.path, stream=False),
            )
        elif event.action == "truncate_stream":
            out["truncate_stream"] = (
                int(out.get("truncate_stream", 0)) + event.count  # type: ignore[call-overload]
            )
            out["truncate_stream_after_rows"] = event.after_rows
            out.setdefault(
                "truncate_stream_skip",
                _skip_before(plan, event.at_request, event.path, stream=True),
            )
        elif event.action == "drop_client":
            out["drop_client"] = int(out.get("drop_client", 0)) + event.count  # type: ignore[call-overload]
            out.setdefault(
                "drop_client_skip",
                _skip_before(plan, event.at_request, event.path, stream=None),
            )
        elif event.action == "kill_sim_child":
            out["kill_sim_child"] = (
                int(out.get("kill_sim_child", 0)) + event.count  # type: ignore[call-overload]
            )
            out["kill_sim_child_after_rows"] = event.after_rows
        elif event.action == "stall_sim":
            out["stall_sim"] = int(out.get("stall_sim", 0)) + event.count  # type: ignore[call-overload]
            out["stall_sim_after_rows"] = event.after_rows
    if paths:
        out["paths"] = paths
    return out


def _skip_before(
    plan: List[PlannedRequest],
    at_request: int,
    path: Optional[str],
    stream: Optional[bool],
) -> int:
    """Matching requests dispatched before ``at_request`` (→ injector skip)."""
    count = 0
    for request in plan[:at_request]:
        if path is not None and request.path != path:
            continue
        if stream is not None and request.stream != stream:
            continue
        count += 1
    return count
