"""The canonical trace: what every request of a run actually did.

A :class:`Trace` bundles the serialised :class:`TrafficSpec` that produced
the run with one :class:`RequestRecord` per planned request — raw observed
facts only (final status, payload verification, structured-error shape,
truncation, row counts, retries, latency), never derived judgements; the
verdict layer (:mod:`repro.loadgen.verdict`) classifies records into
outcomes as a pure function, so a saved trace can always be re-judged.

:func:`outcome_digest` commits to the *deterministic projection* of a trace:
per-request identity (index, kind, route, payload digest) and outcome facts
(status, verification, truncation, rows), excluding wall-clock artefacts
(latency, retry counts, error text).  Two runs of the same spec against an
equivalently-configured service — including the recorded fault plan — must
produce equal digests; CI's ``chaos-replay`` job asserts exactly this.

Traces serialise to plain JSON via :meth:`Trace.save` / :func:`load_trace`
and embed everything replay needs: ``loadgen replay`` rebuilds the plan from
the embedded spec alone.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_non_negative_int,
)

__all__ = [
    "RequestRecord",
    "Trace",
    "load_trace",
    "outcome_digest",
    "summarize_latencies",
]

_RECORD_FIELDS: Tuple[str, ...] = (
    "index",
    "kind",
    "method",
    "path",
    "stream",
    "payload_digest",
    "status",
    "ok_verified",
    "structured_error",
    "retry_hint",
    "truncated",
    "timed_out",
    "rows",
    "retries",
    "latency_ms",
    "detail",
)

#: The deterministic projection: every field of a record that must replay
#: identically.  Wall-clock facts (latency, retries, free-text detail) and
#: the timing-sensitive ``timed_out`` flag are deliberately excluded.
_DIGEST_FIELDS: Tuple[str, ...] = (
    "index",
    "kind",
    "method",
    "path",
    "stream",
    "payload_digest",
    "status",
    "ok_verified",
    "structured_error",
    "retry_hint",
    "truncated",
    "rows",
)


@dataclass(frozen=True)
class RequestRecord:
    """Raw observed facts of one request's final attempt."""

    index: int
    kind: str
    method: str
    path: str
    stream: bool
    payload_digest: str
    #: Final HTTP status; 599 is the client's synthetic transport-failure
    #: status (refused, reset, timed out, or a detected truncation).
    status: int
    #: A 2xx response also passed endpoint-specific payload verification.
    ok_verified: bool
    #: A 4xx/5xx carried the service's structured error shape.
    structured_error: bool
    #: The failure carried a retry hint (``Retry-After`` header or an
    #: in-body/in-row ``retry_after_s``).
    retry_hint: bool
    #: The client detected a truncation (599 without a timeout).
    truncated: bool
    #: The 599 was a client-deadline timeout — a hang, not a truncation.
    timed_out: bool
    #: Rows observed on the final attempt (stream lines, or the buffered
    #: response's ``count``).
    rows: int
    retries: int
    latency_ms: float
    detail: str = ""

    def __post_init__(self) -> None:
        check_non_negative_int(self.index, "index")
        check_in_range(self.status, "status", 100, 599)
        check_non_negative_int(self.rows, "rows")
        check_non_negative_int(self.retries, "retries")
        check_non_negative(self.latency_ms, "latency_ms")

    def to_mapping(self) -> Dict[str, Any]:
        """Plain-JSON form (field order fixed by ``_RECORD_FIELDS``)."""
        return {name: getattr(self, name) for name in _RECORD_FIELDS}

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "RequestRecord":
        unknown = sorted(set(data) - set(_RECORD_FIELDS))
        if unknown:
            raise ValueError(f"unknown record field(s): {', '.join(unknown)}")
        return cls(**{name: data[name] for name in _RECORD_FIELDS if name in data})


@dataclass
class Trace:
    """One recorded run: the spec that produced it plus every record."""

    spec: Dict[str, Any]
    records: List[RequestRecord]
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_mapping(self) -> Dict[str, Any]:
        """Plain-JSON form, including the computed outcome digest."""
        return {
            "spec": self.spec,
            "records": [record.to_mapping() for record in self.records],
            "meta": dict(self.meta),
            "outcome_digest": outcome_digest(self.records),
        }

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "Trace":
        if not isinstance(data, Mapping):
            raise ValueError("trace must be a JSON object")
        spec = data.get("spec")
        records = data.get("records")
        if not isinstance(spec, Mapping):
            raise ValueError("trace.spec must be an object")
        if not isinstance(records, list):
            raise ValueError("trace.records must be a list")
        meta = data.get("meta", {})
        if not isinstance(meta, Mapping):
            raise ValueError("trace.meta must be an object")
        trace = cls(
            spec=dict(spec),
            records=[RequestRecord.from_mapping(r) for r in records],
            meta=dict(meta),
        )
        stored = data.get("outcome_digest")
        if stored is not None and stored != outcome_digest(trace.records):
            raise ValueError(
                "trace outcome_digest does not match its records "
                "(corrupted or hand-edited trace file)"
            )
        return trace

    def save(self, path: str) -> None:
        """Write the trace as deterministic (sorted-key) JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_mapping(), handle, sort_keys=True, indent=1)
            handle.write("\n")


def load_trace(path: str) -> Trace:
    """Read a trace written by :meth:`Trace.save` (digest-checked)."""
    with open(path, "r", encoding="utf-8") as handle:
        return Trace.from_mapping(json.load(handle))


def outcome_digest(records: Sequence[RequestRecord]) -> str:
    """SHA-256 over the deterministic projection of every record, in order.

    Canonical (sorted-key, no-whitespace) JSON, so the digest is stable
    across Python versions and serialisation details.  Replaying a trace's
    spec against an equivalent service must reproduce this digest exactly.
    """
    projection = [
        {name: getattr(record, name) for name in _DIGEST_FIELDS}
        for record in records
    ]
    blob = json.dumps(projection, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def summarize_latencies(latencies_ms: Sequence[float]) -> Dict[str, float]:
    """count/mean/p50/p95/p99/max summary (the bench harness's format)."""
    ordered = sorted(latencies_ms)
    return {
        "count": float(len(ordered)),
        "mean_ms": sum(ordered) / len(ordered) if ordered else 0.0,
        "p50_ms": _percentile(ordered, 0.50),
        "p95_ms": _percentile(ordered, 0.95),
        "p99_ms": _percentile(ordered, 0.99),
        "max_ms": ordered[-1] if ordered else 0.0,
    }


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile of a sorted sequence."""
    if not ordered:
        return 0.0
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac
