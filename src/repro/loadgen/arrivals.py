"""Seed-deterministic arrival processes for the load generator.

:func:`arrival_offsets_s` turns one :class:`~repro.loadgen.spec.ArrivalSpec`
into the sorted send-time offsets of every request of that endpoint within a
run.  All three processes reduce to a homogeneous Poisson stream at the
process's *peak* rate, thinned down to the target intensity — the standard
Lewis–Shedler construction, which keeps the draw count (and therefore the
stream state) a pure function of the seed, never of wall-clock behavior.
"""

from __future__ import annotations

import numpy as np

from repro.loadgen.spec import ArrivalSpec
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["arrival_offsets_s"]


def arrival_offsets_s(
    arrival: ArrivalSpec,
    duration_s: float,
    seed: np.random.SeedSequence,
) -> np.ndarray:
    """Sorted send-time offsets (seconds) in ``[0, duration_s)``.

    The same ``(arrival, duration_s, seed)`` triple always yields the same
    offsets — the plan-level determinism contract rests on this.
    """
    check_positive(duration_s, "duration_s")
    rng = as_rng(seed)
    if arrival.process == "poisson":
        times = _homogeneous(rng, arrival.rate_per_s, duration_s)
        keep = np.ones(times.shape, dtype=bool)
    elif arrival.process == "bursty":
        peak = arrival.rate_per_s * arrival.burst_factor
        times = _homogeneous(rng, peak, duration_s)
        period = arrival.burst_on_s + arrival.burst_off_s
        # Deterministic on/off square wave, starting on: keep candidates
        # whose phase falls inside the on window (no thinning draw needed —
        # acceptance is 0/1, so the uniform stream stays untouched).
        keep = np.mod(times, period) < arrival.burst_on_s
    else:  # ramp
        peak = arrival.rate_per_s * arrival.ramp_factor
        times = _homogeneous(rng, peak, duration_s)
        accept = rng.uniform(0.0, 1.0, size=times.shape)
        # Instantaneous intensity grows linearly from rate to rate*ramp.
        fraction = times / duration_s
        intensity = arrival.rate_per_s * (
            1.0 + (arrival.ramp_factor - 1.0) * fraction
        )
        keep = accept < intensity / peak
    return times[keep]


def _homogeneous(
    rng: np.random.Generator, rate_per_s: float, duration_s: float
) -> np.ndarray:
    """Event times of a homogeneous Poisson process on ``[0, duration_s)``.

    Draws exponential inter-arrival gaps in fixed-size batches until the
    horizon is passed; the batch size depends only on the expected count,
    so the number of generator draws is deterministic given the seed.
    """
    batch = max(8, int(np.ceil(rate_per_s * duration_s * 1.5)) + 8)
    gaps = [rng.exponential(1.0 / rate_per_s, size=batch)]
    while float(np.sum(gaps[-1])) + float(
        sum(np.sum(g) for g in gaps[:-1])
    ) < duration_s:
        gaps.append(rng.exponential(1.0 / rate_per_s, size=batch))
    times = np.cumsum(np.concatenate(gaps))
    return times[times < duration_s]
