"""Channel coding and interleaving.

Section 2.3 of the paper "intentionally omitted" the signal-processing
blocks (channel coding among them) "to keep the model from being
overcomplicated", noting that "the methodology used here can be extended
to ... include the signal processing blocks".  This package is that
extension:

* :mod:`repro.coding.convolutional` — feed-forward convolutional encoders
  with exact Viterbi (maximum-likelihood) hard- and soft-decision
  decoding, including the industry-standard K=7, rate-1/2 code;
* :mod:`repro.coding.interleave` — block interleaving, which converts the
  quasi-static channel's error bursts into the scattered errors
  convolutional codes are built to fix.
"""

from repro.coding.convolutional import ConvolutionalCode
from repro.coding.interleave import BlockInterleaver

__all__ = ["ConvolutionalCode", "BlockInterleaver"]
