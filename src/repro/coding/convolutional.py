"""Feed-forward convolutional codes with exact Viterbi decoding.

The encoder is a ``K``-stage shift register; each of the ``n`` generator
polynomials (given in the conventional octal form, MSB = newest bit) emits
one parity bit per input bit, so the code rate is ``1/n``.  Encoding is
*terminated*: ``K - 1`` flush zeros return the register to the zero state,
buying maximum-likelihood performance at the block edges.

Decoding is the Viterbi algorithm over the ``2^(K-1)``-state trellis —
exact ML for hard decisions (Hamming branch metrics) and for soft
decisions (correlation metrics on ±1-mapped observations).  The
add-compare-select recursion is vectorized across states; only the time
axis is a Python loop.

The default code is the ubiquitous ``K = 7, (171, 133)_8`` pair (Voyager /
802.11 / GSM lineage) with free distance 10.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["ConvolutionalCode"]


class ConvolutionalCode:
    """A rate ``1/n`` terminated convolutional code.

    Parameters
    ----------
    generators:
        Octal generator polynomials (e.g. ``(0o171, 0o133)``); each must
        fit in ``constraint_length`` bits and the first tap convention is
        MSB = current input bit.
    constraint_length:
        ``K``: the register length including the current bit.
    """

    def __init__(
        self,
        generators: Sequence[int] = (0o171, 0o133),
        constraint_length: int = 7,
    ):
        self.constraint_length = check_positive_int(constraint_length, "constraint_length", maximum=16)
        if self.constraint_length < 2:
            raise ValueError("constraint_length must be >= 2")
        self.generators = tuple(int(g) for g in generators)
        if not self.generators:
            raise ValueError("at least one generator polynomial is required")
        limit = 1 << self.constraint_length
        for g in self.generators:
            if not (0 < g < limit):
                raise ValueError(
                    f"generator {g:#o} does not fit constraint length {constraint_length}"
                )
        self.n_out = len(self.generators)
        self.n_states = 1 << (self.constraint_length - 1)
        self._build_tables()

    # ------------------------------------------------------------------ #

    @property
    def rate(self) -> float:
        """Information bits per coded bit (ignoring termination overhead)."""
        return 1.0 / self.n_out

    def _build_tables(self) -> None:
        """Trellis tables: next states, output symbols, predecessors."""
        k = self.constraint_length
        states = np.arange(self.n_states)
        # register value for (state, input): input is the newest (MSB) bit
        self._next_state = np.empty((self.n_states, 2), dtype=np.int64)
        self._output = np.empty((self.n_states, 2, self.n_out), dtype=np.int8)
        for bit in (0, 1):
            register = (bit << (k - 1)) | states
            self._next_state[:, bit] = register >> 1
            for j, g in enumerate(self.generators):
                taps = register & g
                # parity of taps
                parity = np.zeros_like(taps)
                t = taps.copy()
                while np.any(t):
                    parity ^= t & 1
                    t >>= 1
                self._output[:, bit, j] = parity
        # predecessors of each state t: two (prev_state, input) pairs
        self._pred_state = np.empty((self.n_states, 2), dtype=np.int64)
        self._pred_input = np.empty((self.n_states, 2), dtype=np.int64)
        counts = np.zeros(self.n_states, dtype=np.int64)
        for s in range(self.n_states):
            for bit in (0, 1):
                t = self._next_state[s, bit]
                self._pred_state[t, counts[t]] = s
                self._pred_input[t, counts[t]] = bit
                counts[t] += 1
        assert np.all(counts == 2)

    # ------------------------------------------------------------------ #
    # Encoding                                                           #
    # ------------------------------------------------------------------ #

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode and terminate; output length ``(len + K - 1) * n_out``."""
        arr = np.asarray(bits)
        if arr.ndim != 1:
            raise ValueError("bits must be 1-D")
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise ValueError("bits must contain only 0 and 1")
        padded = np.concatenate(
            [arr.astype(np.int64), np.zeros(self.constraint_length - 1, np.int64)]
        )
        out = np.empty((padded.size, self.n_out), dtype=np.int8)
        state = 0
        for i, bit in enumerate(padded):
            out[i] = self._output[state, bit]
            state = self._next_state[state, bit]
        return out.reshape(-1)

    # ------------------------------------------------------------------ #
    # Viterbi decoding                                                   #
    # ------------------------------------------------------------------ #

    def _branch_metrics(self, observations: np.ndarray, soft: bool) -> np.ndarray:
        """Per-step metric of every (state, input) branch.

        ``observations``: ``(n_steps, n_out)``; hard 0/1 bits or soft ±1
        values (+1 = bit 0).  Returns ``(n_steps, n_states, 2)`` costs.
        """
        if soft:
            # cost = -correlation with the expected ±1 symbol (+1 = bit 0)
            signs = 1.0 - 2.0 * self._output.astype(float)  # (S, 2, n)
            return -np.einsum("tn,sbn->tsb", observations, signs)
        expected = self._output[None, :, :, :]  # (1, S, 2, n)
        rx = observations[:, None, None, :]
        return np.sum(rx != expected, axis=-1).astype(np.float64)

    def decode(self, received: np.ndarray, soft: bool = False) -> np.ndarray:
        """Maximum-likelihood sequence decoding of a terminated block.

        Parameters
        ----------
        received:
            Length ``(n_info + K - 1) * n_out``: hard bits (0/1) or, with
            ``soft=True``, real values with +1 meaning a confident 0 bit.

        Returns
        -------
        The ``n_info`` decoded information bits.
        """
        obs = np.asarray(received, dtype=float if soft else np.int8)
        if obs.ndim != 1 or obs.size % self.n_out != 0:
            raise ValueError(
                f"received length must be a multiple of n_out={self.n_out}"
            )
        n_steps = obs.size // self.n_out
        flush = self.constraint_length - 1
        if n_steps <= flush:
            raise ValueError("block too short to contain termination")
        obs = obs.reshape(n_steps, self.n_out)
        metrics = self._branch_metrics(obs, soft)

        big = 1e18
        pm = np.full(self.n_states, big)
        pm[0] = 0.0  # terminated code starts at the zero state
        survivors = np.empty((n_steps, self.n_states), dtype=np.int8)
        for t in range(n_steps):
            # candidate metric of reaching each state via predecessor 0/1
            cand = pm[self._pred_state] + np.take_along_axis(
                metrics[t][self._pred_state],
                self._pred_input[..., None],
                axis=2,
            )[..., 0]
            pick = np.argmin(cand, axis=1)
            survivors[t] = pick
            pm = cand[np.arange(self.n_states), pick]
        # traceback from the zero state (termination guarantees it)
        state = 0
        decoded = np.empty(n_steps, dtype=np.int8)
        for t in range(n_steps - 1, -1, -1):
            pick = survivors[t, state]
            decoded[t] = self._pred_input[state, pick]
            state = self._pred_state[state, pick]
        return decoded[: n_steps - flush]

    # ------------------------------------------------------------------ #
    # Distance properties                                                #
    # ------------------------------------------------------------------ #

    def free_distance(self, max_weight: int = 64) -> int:
        """Free distance via Dijkstra over detours from the zero state.

        The minimum output weight of any path that leaves state 0 and
        returns to it — the error-correction radius is ``(d_free - 1)/2``.
        """
        check_positive_int(max_weight, "max_weight")
        best = {}
        heap = []
        # initial divergence: input 1 from state 0
        start_state = int(self._next_state[0, 1])
        start_weight = int(self._output[0, 1].sum())
        heapq.heappush(heap, (start_weight, start_state))
        while heap:
            weight, state = heapq.heappop(heap)
            if weight > max_weight:
                break
            if state == 0:
                return weight
            if best.get(state, max_weight + 1) <= weight:
                continue
            best[state] = weight
            for bit in (0, 1):
                nxt = int(self._next_state[state, bit])
                w = weight + int(self._output[state, bit].sum())
                heapq.heappush(heap, (w, nxt))
        raise RuntimeError(f"free distance exceeds the search bound {max_weight}")
