"""Block interleaving.

A quasi-static fade kills a contiguous run of symbols; a convolutional
code tolerates scattered errors but not bursts longer than its traceback
memory.  A block interleaver writes the coded stream into an
``rows x cols`` matrix row-wise and reads it column-wise; the transmitted
stream is then a concatenation of columns, so a channel burst of up to
``rows`` symbols stays within one column and lands at least ``cols``
positions apart after deinterleaving.  Design rule: ``rows`` >= the worst
fade burst, ``cols`` >= the decoder's required error spacing.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["BlockInterleaver"]


class BlockInterleaver:
    """An ``rows x cols`` block interleaver over arbitrary 1-D arrays.

    ``interleave`` pads the input to a whole number of blocks (the pad is
    removed on :meth:`deinterleave`, which must be told the original
    length or receives the padded length back).
    """

    def __init__(self, rows: int, cols: int):
        self.rows = check_positive_int(rows, "rows")
        self.cols = check_positive_int(cols, "cols")

    @property
    def block_size(self) -> int:
        return self.rows * self.cols

    def _permutation(self) -> np.ndarray:
        idx = np.arange(self.block_size).reshape(self.rows, self.cols)
        return idx.T.reshape(-1)  # read column-wise

    def interleave(self, data: np.ndarray) -> np.ndarray:
        """Permute (padding with zeros to a whole block)."""
        arr = np.asarray(data)
        if arr.ndim != 1:
            raise ValueError("data must be 1-D")
        n_blocks = -(-max(arr.size, 1) // self.block_size)
        padded = np.zeros(n_blocks * self.block_size, dtype=arr.dtype)
        padded[: arr.size] = arr
        perm = self._permutation()
        out = padded.reshape(n_blocks, self.block_size)[:, perm]
        return out.reshape(-1)

    def deinterleave(self, data: np.ndarray, original_length: int = None) -> np.ndarray:
        """Inverse permutation; optionally trim back to ``original_length``."""
        arr = np.asarray(data)
        if arr.ndim != 1 or arr.size % self.block_size != 0:
            raise ValueError(
                f"data length must be a multiple of the block size {self.block_size}"
            )
        inverse = np.argsort(self._permutation())
        out = arr.reshape(-1, self.block_size)[:, inverse].reshape(-1)
        if original_length is not None:
            if not (0 <= original_length <= out.size):
                raise ValueError("original_length out of range")
            out = out[:original_length]
        return out

    def burst_spread(self, burst_length: int) -> int:
        """Guaranteed post-deinterleave spacing of a ``burst_length`` burst.

        A burst of up to ``rows`` transmit symbols touches at most two
        adjacent columns, whose entries sit at least ``cols - 1`` apart in
        the original order (exactly ``cols`` when the burst stays within
        one column).  Longer bursts span more columns and the guarantee
        shrinks proportionally.
        """
        check_positive_int(burst_length, "burst_length")
        if burst_length <= 1:
            return self.block_size  # a single error has no neighbour
        if burst_length <= self.rows:
            return max(self.cols - 1, 1)
        columns_touched = -(-burst_length // self.rows) + 1
        return max((self.cols - 1) // max(columns_touched - 1, 1), 1)
