"""Shared low-level utilities: unit conversions, the Gaussian Q-function,
random-number-generator plumbing and argument validation.

Every formula in the paper mixes dB, dBm, dBi and linear quantities; the
:mod:`repro.utils.units` helpers keep those conversions in one audited place
— and :mod:`repro.lintkit` rule RP101 enforces that no other module converts
inline.
"""

from repro.utils.fsio import atomic_write_bytes
from repro.utils.qfunc import inv_qfunc, qfunc
from repro.utils.rng import as_rng, spawn_rngs, spawn_seed_sequences
from repro.utils.sysinfo import (
    available_cpu_count,
    default_shard_count,
    default_worker_count,
)
from repro.utils.units import (
    UnitSpec,
    amplitude_ratio_to_db,
    db_to_amplitude_ratio,
    db_to_linear,
    dbi_to_linear,
    dbm_per_hz_to_watts_per_hz,
    dbm_to_watts,
    linear_to_db,
    linear_to_dbm,
    milliwatts_to_watts,
    watts_to_dbm,
)
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "qfunc",
    "inv_qfunc",
    "atomic_write_bytes",
    "available_cpu_count",
    "default_shard_count",
    "default_worker_count",
    "as_rng",
    "spawn_rngs",
    "spawn_seed_sequences",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "linear_to_dbm",
    "dbi_to_linear",
    "dbm_per_hz_to_watts_per_hz",
    "milliwatts_to_watts",
    "amplitude_ratio_to_db",
    "db_to_amplitude_ratio",
    "UnitSpec",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_in_range",
    "check_finite",
    "check_non_negative",
    "check_non_negative_int",
]
