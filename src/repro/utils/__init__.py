"""Shared low-level utilities: unit conversions, the Gaussian Q-function,
random-number-generator plumbing and argument validation.

Every formula in the paper mixes dB, dBm, dBi and linear quantities; the
:mod:`repro.utils.units` helpers keep those conversions in one audited place.
"""

from repro.utils.qfunc import inv_qfunc, qfunc
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.units import (
    db_to_linear,
    dbi_to_linear,
    dbm_per_hz_to_watts_per_hz,
    dbm_to_watts,
    linear_to_db,
    linear_to_dbm,
    watts_to_dbm,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "qfunc",
    "inv_qfunc",
    "as_rng",
    "spawn_rngs",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "linear_to_dbm",
    "dbi_to_linear",
    "dbm_per_hz_to_watts_per_hz",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_in_range",
]
