"""Atomic filesystem writes shared by the on-disk caches.

One pattern, used by :class:`repro.energy.table.EbarTable` and the
service's persistent result cache: serialize to a temporary file in the
destination directory, then ``os.replace`` it over the final name.  Readers
therefore only ever observe complete files — a concurrent load sees either
the old content or the new content, never a torn write — and an unwritable
cache directory degrades to "no cache" instead of an error.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from typing import Union

__all__ = ["atomic_write_bytes"]


def atomic_write_bytes(path: Union[str, pathlib.Path], data: bytes) -> bool:
    """Atomically write ``data`` to ``path`` (tmp file + ``os.replace``).

    Creates parent directories as needed.  Returns True on success and
    False when the directory is unwritable (caches treat that as a silent
    miss; the caller's in-memory result is still valid).
    """
    path = pathlib.Path(path)
    tmp_name = None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
        return True
    except OSError:
        if tmp_name is not None and os.path.exists(tmp_name):
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        return False
