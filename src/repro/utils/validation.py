"""Argument-validation helpers shared across the library.

Kept deliberately small: each helper raises ``ValueError`` (or ``TypeError``
for wrong types) with a message naming the offending parameter, so that a
mis-configured experiment fails at the API boundary rather than deep inside
a vectorized kernel with an inscrutable NumPy error.
"""

from __future__ import annotations

import numbers
from typing import Optional

__all__ = [
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_in_range",
    "check_finite",
    "check_non_negative",
    "check_non_negative_int",
]


def _require_real(value: float, name: str) -> float:
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value)!r}")
    return float(value)


def check_finite(value: float, name: str) -> float:
    """Require a real, finite scalar (any sign); return it as float.

    The weakest boundary check: rejects NaN, ±inf, bools and non-numeric
    types.  Used for quantities that are legitimately signed, such as powers
    or SNRs quoted in dB.
    """
    value = _require_real(value, name)
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"{name} must be finite, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require a real, finite scalar ``>= 0``; return it as float."""
    value = check_finite(value, name)
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Require an integer ``>= 0`` (bool rejected); return it as int."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value)!r}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Require a real, strictly positive, finite scalar; return it as float."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value)!r}")
    value = float(value)
    if not value > 0.0 or value != value or value == float("inf"):
        raise ValueError(f"{name} must be strictly positive and finite, got {value}")
    return value


def check_positive_int(value: int, name: str, maximum: Optional[int] = None) -> int:
    """Require a strictly positive integer, optionally bounded above."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value)!r}")
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    if maximum is not None and value > maximum:
        raise ValueError(f"{name} must be <= {maximum}, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require a probability in the open interval (0, 1)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value)!r}")
    value = float(value)
    if not (0.0 < value < 1.0):
        raise ValueError(f"{name} must lie strictly in (0, 1), got {value}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    inclusive: bool = True,
) -> float:
    """Require ``low <= value <= high`` (or strict, if ``inclusive=False``)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value)!r}")
    value = float(value)
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {bracket[0]}{low}, {high}{bracket[1]}, got {value}"
        )
    return value
