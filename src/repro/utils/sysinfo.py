"""CPU-topology helpers shared by the service, benchmarks and the CLI.

The serving stack sizes itself from the CPUs actually *available* to this
process (the scheduler affinity mask, which containers and ``taskset``
shrink below ``os.cpu_count()``).  Every ``--workers auto`` / ``--shards
auto`` default flows through this one module so the policy lives in one
audited place — no raw ``os.cpu_count()`` calls in ``repro.service``.
"""

from __future__ import annotations

import os

__all__ = [
    "available_cpu_count",
    "default_shard_count",
    "default_worker_count",
]


def available_cpu_count() -> int:
    """CPUs usable by this process (affinity-aware, always >= 1).

    Prefers ``os.sched_getaffinity`` (respects cgroup/taskset masks) and
    falls back to ``os.cpu_count()`` on platforms without it.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def default_shard_count() -> int:
    """``--shards auto``: one serving shard per available CPU."""
    return available_cpu_count()


def default_worker_count() -> int:
    """``--workers auto``: CPUs minus one (leave a core for the event loop).

    Never below 1 — a single-CPU host still gets one sweep worker so heavy
    requests stay off the event loop.
    """
    return max(1, available_cpu_count() - 1)
