"""Unit conversions between decibel-style and linear quantities.

The energy model of Section 2.3 of the paper quotes its constants in a
mixture of units: circuit powers in mW, the link margin ``M_l`` in dB, the
noise spectral densities ``sigma^2`` and ``N_0`` in dBm/Hz, the combined
antenna gain ``G_t G_r`` in dBi.  All internal computation in this library is
done in SI units (watts, joules, meters, hertz); these helpers are the only
place where dB-domain values are converted.

All functions accept scalars or NumPy arrays and broadcast element-wise.

Unit annotations
----------------
Alongside the converters this module declares the ``typing.Annotated``
unit vocabulary the RP3xx dimensional-analysis lint tier is seeded from
(see ``docs/static_analysis.md``).  Each physical unit has three aliases:

* a scalar form (``Watts`` — an annotated ``float``),
* a broadcasting form (``WattsLike`` — scalar or ``np.ndarray``),
* an array form (``WattsArray`` — ``np.ndarray`` only).

All three are transparent at runtime (``Annotated`` erases to the base
type; mypy and the interpreter see a plain ``float``/``ndarray``) but the
lint tier reads the :class:`UnitSpec` marker to type-check dimensions
across the call graph.  Annotate public numeric APIs with the most
specific alias that fits::

    def path_gain(distance_m: Meters, margin_db: DB) -> LinearRatio: ...
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Annotated, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

__all__ = [
    # converters
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "linear_to_dbm",
    "dbi_to_linear",
    "dbm_per_hz_to_watts_per_hz",
    "milliwatts_to_watts",
    "amplitude_ratio_to_db",
    "db_to_amplitude_ratio",
    # unit-annotation vocabulary
    "UnitSpec",
    "DB",
    "DBm",
    "DBi",
    "DBmPerHz",
    "LinearRatio",
    "Watts",
    "Milliwatts",
    "WattsPerHz",
    "Joules",
    "Seconds",
    "Meters",
    "Hertz",
    "Bits",
    "DBLike",
    "DBmLike",
    "DBiLike",
    "DBmPerHzLike",
    "LinearRatioLike",
    "WattsLike",
    "MilliwattsLike",
    "WattsPerHzLike",
    "JoulesLike",
    "SecondsLike",
    "MetersLike",
    "HertzLike",
    "BitsLike",
    "DBArray",
    "LinearRatioArray",
    "WattsArray",
    "JoulesArray",
    "MetersArray",
]


@dataclass(frozen=True)
class UnitSpec:
    """The ``Annotated`` metadata marker carrying a physical unit name.

    ``Annotated[float, UnitSpec("watts")]`` is a plain ``float`` to the
    type checker and the interpreter; the unit name is read only by the
    RP3xx lint tier (and by humans hovering the alias).
    """

    name: str


# Scalar aliases — one annotated ``float`` (``Bits`` is an ``int``) per unit.
DB = Annotated[float, UnitSpec("db")]
DBm = Annotated[float, UnitSpec("dbm")]
DBi = Annotated[float, UnitSpec("dbi")]
DBmPerHz = Annotated[float, UnitSpec("dbm_per_hz")]
LinearRatio = Annotated[float, UnitSpec("ratio")]
Watts = Annotated[float, UnitSpec("watts")]
Milliwatts = Annotated[float, UnitSpec("milliwatts")]
WattsPerHz = Annotated[float, UnitSpec("watts_per_hz")]
Joules = Annotated[float, UnitSpec("joules")]
Seconds = Annotated[float, UnitSpec("seconds")]
Meters = Annotated[float, UnitSpec("meters")]
Hertz = Annotated[float, UnitSpec("hertz")]
Bits = Annotated[int, UnitSpec("bits")]

# Broadcasting aliases — scalar or array, the converters' native shape.
DBLike = Annotated[ArrayLike, UnitSpec("db")]
DBmLike = Annotated[ArrayLike, UnitSpec("dbm")]
DBiLike = Annotated[ArrayLike, UnitSpec("dbi")]
DBmPerHzLike = Annotated[ArrayLike, UnitSpec("dbm_per_hz")]
LinearRatioLike = Annotated[ArrayLike, UnitSpec("ratio")]
WattsLike = Annotated[ArrayLike, UnitSpec("watts")]
MilliwattsLike = Annotated[ArrayLike, UnitSpec("milliwatts")]
WattsPerHzLike = Annotated[ArrayLike, UnitSpec("watts_per_hz")]
JoulesLike = Annotated[ArrayLike, UnitSpec("joules")]
SecondsLike = Annotated[ArrayLike, UnitSpec("seconds")]
MetersLike = Annotated[ArrayLike, UnitSpec("meters")]
HertzLike = Annotated[ArrayLike, UnitSpec("hertz")]
BitsLike = Annotated[ArrayLike, UnitSpec("bits")]

# Array-only aliases for APIs that return/consume vectors exclusively.
DBArray = Annotated[np.ndarray, UnitSpec("db")]
LinearRatioArray = Annotated[np.ndarray, UnitSpec("ratio")]
WattsArray = Annotated[np.ndarray, UnitSpec("watts")]
JoulesArray = Annotated[np.ndarray, UnitSpec("joules")]
MetersArray = Annotated[np.ndarray, UnitSpec("meters")]


def db_to_linear(value_db: DBLike) -> LinearRatioLike:
    """Convert a power ratio in dB to a linear ratio.

    ``x_lin = 10 ** (x_dB / 10)``.
    """
    return np.power(10.0, np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(value: LinearRatioLike) -> DBLike:
    """Convert a linear power ratio to dB.

    Raises
    ------
    ValueError
        If any element is not strictly positive (log of a non-positive
        power ratio is undefined).
    """
    arr = np.asarray(value, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("linear_to_db requires strictly positive values")
    return 10.0 * np.log10(arr)


def dbm_to_watts(value_dbm: DBmLike) -> WattsLike:
    """Convert a power in dBm to watts: ``P_W = 10**(P_dBm/10) * 1e-3``."""
    return np.power(10.0, np.asarray(value_dbm, dtype=float) / 10.0) * 1e-3


def watts_to_dbm(value_w: WattsLike) -> DBmLike:
    """Convert a power in watts to dBm."""
    arr = np.asarray(value_w, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("watts_to_dbm requires strictly positive values")
    return 10.0 * np.log10(arr / 1e-3)


def linear_to_dbm(value_w: WattsLike) -> DBmLike:
    """Deprecated misnomer for :func:`watts_to_dbm`.

    The input is a power in *watts*, not a dimensionless linear ratio, so
    the historical name contradicts the naming scheme every other
    converter follows (and trips the RP304 suffix check at call sites).

    .. deprecated::
        Call :func:`watts_to_dbm` instead; this shim will be removed once
        external callers have migrated.
    """
    warnings.warn(
        "linear_to_dbm is a deprecated alias; its argument is watts, "
        "not a linear ratio - call watts_to_dbm instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return watts_to_dbm(value_w)


def dbi_to_linear(value_dbi: DBiLike) -> LinearRatioLike:
    """Convert an antenna gain in dBi to a linear gain.

    dBi is dB relative to an isotropic radiator, so numerically this is the
    same transform as :func:`db_to_linear`; a separate name keeps call sites
    self-documenting.
    """
    return db_to_linear(value_dbi)


def dbm_per_hz_to_watts_per_hz(value_dbm_hz: DBmPerHzLike) -> WattsPerHzLike:
    """Convert a power spectral density in dBm/Hz to W/Hz.

    Used for the thermal noise floor ``sigma^2 = -174 dBm/Hz`` and the
    receiver-referred density ``N_0 = -171 dBm/Hz`` of the paper.
    """
    return dbm_to_watts(value_dbm_hz)


def milliwatts_to_watts(value_mw: MilliwattsLike) -> WattsLike:
    """Convert mW to W (the circuit powers of Section 2.3 are quoted in mW)."""
    return np.asarray(value_mw, dtype=float) * 1e-3


def amplitude_ratio_to_db(ratio: LinearRatioLike) -> DBLike:
    """Convert an *amplitude* (voltage/DAC) ratio to dB: ``20 log10(r)``.

    Power goes with the square of amplitude, hence the factor 20 instead of
    10; used by the testbed radio model, where GNU Radio drives the USRP DAC
    with an integer amplitude.
    """
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("amplitude_ratio_to_db requires strictly positive ratios")
    return 20.0 * np.log10(arr)


def db_to_amplitude_ratio(value_db: DBLike) -> LinearRatioLike:
    """Convert dB to a linear *amplitude* ratio: ``10 ** (x_dB / 20)``."""
    return np.power(10.0, np.asarray(value_db, dtype=float) / 20.0)
