"""Unit conversions between decibel-style and linear quantities.

The energy model of Section 2.3 of the paper quotes its constants in a
mixture of units: circuit powers in mW, the link margin ``M_l`` in dB, the
noise spectral densities ``sigma^2`` and ``N_0`` in dBm/Hz, the combined
antenna gain ``G_t G_r`` in dBi.  All internal computation in this library is
done in SI units (watts, joules, meters, hertz); these helpers are the only
place where dB-domain values are converted.

All functions accept scalars or NumPy arrays and broadcast element-wise.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "linear_to_dbm",
    "dbi_to_linear",
    "dbm_per_hz_to_watts_per_hz",
    "milliwatts_to_watts",
    "amplitude_ratio_to_db",
    "db_to_amplitude_ratio",
]


def db_to_linear(value_db: ArrayLike) -> ArrayLike:
    """Convert a power ratio in dB to a linear ratio.

    ``x_lin = 10 ** (x_dB / 10)``.
    """
    return np.power(10.0, np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(value: ArrayLike) -> ArrayLike:
    """Convert a linear power ratio to dB.

    Raises
    ------
    ValueError
        If any element is not strictly positive (log of a non-positive
        power ratio is undefined).
    """
    arr = np.asarray(value, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("linear_to_db requires strictly positive values")
    return 10.0 * np.log10(arr)


def dbm_to_watts(value_dbm: ArrayLike) -> ArrayLike:
    """Convert a power in dBm to watts: ``P_W = 10**(P_dBm/10) * 1e-3``."""
    return np.power(10.0, np.asarray(value_dbm, dtype=float) / 10.0) * 1e-3


def watts_to_dbm(value_w: ArrayLike) -> ArrayLike:
    """Convert a power in watts to dBm."""
    arr = np.asarray(value_w, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("watts_to_dbm requires strictly positive values")
    return 10.0 * np.log10(arr / 1e-3)


def linear_to_dbm(value_w: ArrayLike) -> ArrayLike:
    """Alias of :func:`watts_to_dbm` kept for symmetry with older call sites."""
    return watts_to_dbm(value_w)


def dbi_to_linear(value_dbi: ArrayLike) -> ArrayLike:
    """Convert an antenna gain in dBi to a linear gain.

    dBi is dB relative to an isotropic radiator, so numerically this is the
    same transform as :func:`db_to_linear`; a separate name keeps call sites
    self-documenting.
    """
    return db_to_linear(value_dbi)


def dbm_per_hz_to_watts_per_hz(value_dbm_hz: ArrayLike) -> ArrayLike:
    """Convert a power spectral density in dBm/Hz to W/Hz.

    Used for the thermal noise floor ``sigma^2 = -174 dBm/Hz`` and the
    receiver-referred density ``N_0 = -171 dBm/Hz`` of the paper.
    """
    return dbm_to_watts(value_dbm_hz)


def milliwatts_to_watts(value_mw: ArrayLike) -> ArrayLike:
    """Convert mW to W (the circuit powers of Section 2.3 are quoted in mW)."""
    return np.asarray(value_mw, dtype=float) * 1e-3


def amplitude_ratio_to_db(ratio: ArrayLike) -> ArrayLike:
    """Convert an *amplitude* (voltage/DAC) ratio to dB: ``20 log10(r)``.

    Power goes with the square of amplitude, hence the factor 20 instead of
    10; used by the testbed radio model, where GNU Radio drives the USRP DAC
    with an integer amplitude.
    """
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("amplitude_ratio_to_db requires strictly positive ratios")
    return 20.0 * np.log10(arr)


def db_to_amplitude_ratio(value_db: ArrayLike) -> ArrayLike:
    """Convert dB to a linear *amplitude* ratio: ``10 ** (x_dB / 20)``."""
    return np.power(10.0, np.asarray(value_db, dtype=float) / 20.0)
