"""Random-number-generator plumbing.

Every stochastic entry point in this library accepts an ``rng`` argument that
may be ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  Funnelling construction through
:func:`as_rng` keeps experiments reproducible: the experiment harness passes
explicit seeds so that every table in EXPERIMENTS.md regenerates bit-for-bit.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["as_rng", "keyed_seed_sequence", "spawn_rngs", "spawn_seed_sequences"]


def as_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        already-constructed ``Generator`` (returned unchanged so that callers
        can thread one generator through a pipeline).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, int, SeedSequence or numpy Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: RngLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used by parallel Monte-Carlo sweeps (e.g. one stream per channel
    realization batch) so that changing the number of workers does not change
    any individual stream.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    base = as_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def keyed_seed_sequence(*keys: int) -> np.random.SeedSequence:
    """A :class:`numpy.random.SeedSequence` keyed by an entropy tuple.

    Stateless counterpart of :func:`spawn_seed_sequences` for streams
    addressed by *content* rather than position: ``(seed, k)`` always
    yields the same sequence, with no parent object whose spawn counter
    could drift between callers (e.g. the load generator's per-request
    retry-jitter streams, keyed by ``(spec seed, request index)``).
    """
    if not keys:
        raise ValueError("need at least one entropy key")
    for key in keys:
        if not isinstance(key, (int, np.integer)):
            raise TypeError(f"entropy keys must be ints, got {type(key)!r}")
    return np.random.SeedSequence(entropy=[int(key) for key in keys])


def spawn_seed_sequences(
    seed: Union[int, np.random.SeedSequence], n: int
) -> List[np.random.SeedSequence]:
    """Derive ``n`` independent :class:`numpy.random.SeedSequence` children.

    The picklable counterpart of :func:`spawn_rngs`: process-parallel sweeps
    ship each child (or a state word derived from it) to a worker, so serial
    and parallel runs see identical per-task seeds.  The derivation depends
    only on ``seed`` and the child's position — not on scheduling.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    base = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return list(base.spawn(n))
