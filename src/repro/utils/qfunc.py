"""The Gaussian Q-function and its inverse.

``Q(x)`` is the tail probability of the standard normal distribution.  It
appears in every BER expression of the paper (formulas (5) and (6)) and in
the closed-form Rayleigh-diversity averages used by :mod:`repro.energy.ebar`.

Implemented via ``scipy.special.erfc`` for numerical stability deep into the
tail (``Q(40)`` is representable, whereas ``1 - Phi(x)`` underflows long
before that).
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy import special

ArrayLike = Union[float, np.ndarray]

__all__ = ["qfunc", "inv_qfunc", "qfunc_chernoff_bound"]

_SQRT2 = np.sqrt(2.0)


def qfunc(x: ArrayLike) -> ArrayLike:
    """Gaussian tail probability ``Q(x) = P(N(0,1) > x)``.

    Accepts any real argument (``Q(-x) = 1 - Q(x)``) and broadcasts over
    arrays.
    """
    return 0.5 * special.erfc(np.asarray(x, dtype=float) / _SQRT2)


def inv_qfunc(p: ArrayLike) -> ArrayLike:
    """Inverse of :func:`qfunc` on ``(0, 1)``.

    Raises
    ------
    ValueError
        If any element of ``p`` lies outside the open interval (0, 1).
    """
    arr = np.asarray(p, dtype=float)
    if np.any((arr <= 0.0) | (arr >= 1.0)):
        raise ValueError("inv_qfunc requires probabilities strictly in (0, 1)")
    return _SQRT2 * special.erfcinv(2.0 * arr)


def qfunc_chernoff_bound(x: ArrayLike) -> ArrayLike:
    """Chernoff upper bound ``Q(x) <= exp(-x^2 / 2)`` for ``x >= 0``.

    Useful in tests as a cheap sanity envelope for the exact function.
    """
    arr = np.asarray(x, dtype=float)
    if np.any(arr < 0.0):
        raise ValueError("the Chernoff bound is stated for x >= 0")
    return np.exp(-(arr**2) / 2.0)
