"""The paper's three cooperative MIMO paradigms.

* :mod:`repro.core.schemes` — the per-hop cooperative communication schemes
  (Section 2.2) and their per-role energy accounting;
* :mod:`repro.core.overlay` — Algorithm 1: SUs cooperatively relay primary
  traffic (SIMO in, MISO out) and the D1/D2/D3 distance analysis of
  Figure 6;
* :mod:`repro.core.underlay` — Algorithm 2: cooperative SU-to-SU transport
  under the peak-PA/noise-floor constraint of Figure 7;
* :mod:`repro.core.interweave` — Algorithm 3: pairwise null-steering
  transmission that avoids a primary receiver while keeping diversity gain
  toward the secondary receiver (Table 1 / Figure 8).
"""

from repro.core.interweave import (
    InterweaveCluster,
    InterweaveSystem,
    InterweaveTrial,
    form_pairs,
)
from repro.core.overlay import OverlayDistanceResult, OverlaySystem
from repro.core.planning import HopOption, RoutePlan, hop_options, plan_route
from repro.core.schemes import (
    HopEnergy,
    HopStep,
    HopTiming,
    cooperative_scheme,
    hop_energy,
    hop_timing,
)
from repro.core.underlay import UnderlayEnergyResult, UnderlaySystem

__all__ = [
    "HopStep",
    "HopEnergy",
    "HopTiming",
    "cooperative_scheme",
    "hop_energy",
    "hop_timing",
    "OverlaySystem",
    "OverlayDistanceResult",
    "UnderlaySystem",
    "UnderlayEnergyResult",
    "InterweaveSystem",
    "InterweaveCluster",
    "InterweaveTrial",
    "form_pairs",
    "HopOption",
    "RoutePlan",
    "hop_options",
    "plan_route",
]
