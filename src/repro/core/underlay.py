"""Cooperative MIMO paradigm for underlay systems (Section 4, Algorithm 2).

SUs share the primary band with no knowledge of the primary signals, under
the constraint that their radiated spectral density stays below the noise
floor at the primary receiver.  The paper therefore accounts *only* the
power-amplifier energy of the transmission process (circuit energy is not
radiated) and tracks its peak:

    E_PA = max( e_PA^{Lt},  mt * e_PA^{MIMOt} )

— local (intra-cluster) transmissions are sequential so at most one local
PA radiates at a time, while all ``mt`` long-haul transmitters radiate
simultaneously.

Figure 7 plots the *total* PA energy per bit of all SU nodes over a hop:

    total = [mt > 1] * e_PA^{Lt}  +  mt * e_PA^{MIMOt}  +  [mr > 1] * mr * e_PA^{Lt}

with ``b`` chosen per configuration to minimize it.  The (1, 1) case is the
non-cooperative SISO reference, which the paper treats as the primary-user
energy scale: a cooperative configuration whose total falls 2-4 orders of
magnitude below SISO is what "below the noise floor at the PUs" means in
the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.schemes import HopEnergy, hop_energy
from repro.energy.model import EnergyModel
from repro.energy.optimize import DEFAULT_B_RANGE, minimize_over_b
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = ["UnderlaySystem", "UnderlayEnergyResult"]


@dataclass(frozen=True)
class UnderlayEnergyResult:
    """PA-energy accounting for one underlay hop configuration."""

    mt: int
    mr: int
    b: int
    d: float
    distance: float
    total_pa: float  # Figure 7 quantity [J/bit]
    peak_pa: float  # Section 4's E_PA [J/bit]
    hop: HopEnergy

    def __post_init__(self) -> None:
        check_positive_int(self.mt, "mt")
        check_positive_int(self.mr, "mr")
        check_positive_int(self.b, "b")
        check_finite(self.d, "d")
        check_finite(self.distance, "distance")
        check_finite(self.total_pa, "total_pa")
        check_finite(self.peak_pa, "peak_pa")


class UnderlaySystem:
    """Algorithm 2 with the Section 6.2 energy analysis."""

    def __init__(self, model: EnergyModel, b_range: Sequence[int] = DEFAULT_B_RANGE):
        self.model = model
        self.b_range = tuple(int(b) for b in b_range)
        if not self.b_range:
            raise ValueError("b_range must be non-empty")

    # ------------------------------------------------------------------ #

    def _hop(self, p, b, mt, mr, d, distance, bandwidth) -> HopEnergy:
        return hop_energy(self.model, p, b, mt, mr, d, distance, bandwidth)

    def _total_pa_for_b(self, p, b, mt, mr, d, distance, bandwidth) -> float:
        return self._hop(p, b, mt, mr, d, distance, bandwidth).pa_total

    def pa_energy(
        self,
        p: float,
        mt: int,
        mr: int,
        d: float,
        distance: float,
        bandwidth: float,
    ) -> UnderlayEnergyResult:
        """Total and peak PA energy with ``b`` minimizing the total.

        Parameters mirror Figure 7's sweep: target BER ``p``, cooperating
        counts ``mt``/``mr``, intra-cluster range ``d`` and long-haul
        distance ``D``.
        """
        p = check_probability(p, "p")
        mt = check_positive_int(mt, "mt")
        mr = check_positive_int(mr, "mr")
        check_positive(d, "d")
        check_positive(distance, "distance")
        check_positive(bandwidth, "bandwidth")
        best = minimize_over_b(
            lambda b: self._total_pa_for_b(p, b, mt, mr, d, distance, bandwidth),
            self.b_range,
        )
        hop = self._hop(p, best.b, mt, mr, d, distance, bandwidth)
        return UnderlayEnergyResult(
            mt=mt,
            mr=mr,
            b=best.b,
            d=float(d),
            distance=float(distance),
            total_pa=hop.pa_total,
            peak_pa=hop.pa_peak,
            hop=hop,
        )

    def siso_reference(
        self, p: float, d: float, distance: float, bandwidth: float
    ) -> UnderlayEnergyResult:
        """The non-cooperative (1, 1) configuration — the PU energy scale."""
        return self.pa_energy(p, 1, 1, d, distance, bandwidth)

    def interference_margin(
        self,
        p: float,
        mt: int,
        mr: int,
        d: float,
        distance: float,
        bandwidth: float,
    ) -> float:
        """SISO-to-cooperative total-PA ratio (the "2 to 4 orders" of 6.2).

        A margin ≫ 1 means the cooperative configuration radiates that many
        times less energy than the primary-scale SISO link — the paper's
        operational criterion for staying below the primary noise floor.
        """
        siso = self.siso_reference(p, d, distance, bandwidth)
        coop = self.pa_energy(p, mt, mr, d, distance, bandwidth)
        return siso.total_pa / coop.total_pa

    def meets_noise_floor(
        self,
        p: float,
        mt: int,
        mr: int,
        d: float,
        distance: float,
        bandwidth: float,
        required_margin: float = 1.0,
    ) -> bool:
        """True when the configuration clears the interference margin."""
        if required_margin <= 0.0:
            raise ValueError("required_margin must be positive")
        return (
            self.interference_margin(p, mt, mr, d, distance, bandwidth)
            >= required_margin
        )

    def pa_energy_sweep(
        self,
        p: float,
        mt: int,
        mr: int,
        d: float,
        distances: Sequence[float],
        bandwidth: float,
    ) -> List[UnderlayEnergyResult]:
        """Vectorized :meth:`pa_energy` over the long-haul distance axis.

        For each candidate ``b`` the hop's total PA energy is evaluated over
        the whole ``D`` vector in one shot (one ``e_bar_b`` solve and one
        local-link inversion per ``b``, instead of one per grid point); the
        reduction over ``b`` then matches :func:`minimize_over_b` exactly —
        infeasible sizes skipped, first minimum wins — on bit-identical
        per-point totals, so the returned rows equal the scalar path's.
        """
        p = check_probability(p, "p")
        mt = check_positive_int(mt, "mt")
        mr = check_positive_int(mr, "mr")
        check_positive(d, "d")
        check_positive(bandwidth, "bandwidth")
        dist = np.asarray(
            [check_positive(float(v), "distance") for v in distances], dtype=float
        )
        totals = np.full((len(self.b_range), dist.size), np.inf)
        for row, b in enumerate(self.b_range):
            try:
                # hop_energy prices the local link before the long haul, so a
                # b infeasible for either segment is skipped for every D
                local_pa = self.model.local_tx(p, b, d, bandwidth).pa
                pa_vec = self.model.mimo_tx_pa_batch(p, b, mt, mr, dist, bandwidth)
            except ValueError:
                continue
            pa_local_a = local_pa if mt > 1 else 0.0
            pa_local_b = mr * local_pa if mr > 1 else 0.0
            totals[row] = pa_local_a + mt * pa_vec + pa_local_b
        if np.isinf(totals).all(axis=0).any():
            raise ValueError("no feasible constellation size in the given range")
        best = np.argmin(totals, axis=0)
        results = []
        for j in range(dist.size):
            b = self.b_range[int(best[j])]
            hop = self._hop(p, b, mt, mr, d, float(dist[j]), bandwidth)
            results.append(
                UnderlayEnergyResult(
                    mt=mt,
                    mr=mr,
                    b=b,
                    d=float(d),
                    distance=float(dist[j]),
                    total_pa=hop.pa_total,
                    peak_pa=hop.pa_peak,
                    hop=hop,
                )
            )
        return results

    def sweep(
        self,
        p: float,
        configs: Sequence,
        d: float,
        distances: Sequence[float],
        bandwidth: float,
    ) -> list:
        """The Figure 7 grid: one result per ((mt, mr), D) combination.

        Each (mt, mr) configuration sweeps its distance axis vectorized via
        :meth:`pa_energy_sweep`.
        """
        results = []
        for (mt, mr) in configs:
            results.extend(self.pa_energy_sweep(p, mt, mr, d, distances, bandwidth))
        return results
