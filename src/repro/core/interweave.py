"""Cooperative MIMO paradigm for interweave systems (Section 5, Algorithm 3).

The transmit cluster's ``mt`` nodes form ``floor(mt / 2)`` pairs; within
each pair one node gets the phase offset of
:mod:`repro.beamforming.pairwise` so the pair's field cancels toward the
selected primary receiver Pr while (nearly) doubling toward the secondary
receiver cluster.  The head picks which PU's band to share (Step 1): per
the Table 1 data, the winning candidates lie close to the pair's baseline
axis — the null of a pair steered along its own axis is "free" (broadside
stays at full gain), so the selection score rewards *alignment with the
baseline* and distance.  (The prose of Algorithm 3 says "not as collinear
as possible", but every picked location in Table 1 — (0, -71), (6, 121),
(-25, -149)... — is nearly collinear with the St1-St2 axis; we follow the
data and flag the discrepancy in EXPERIMENTS.md.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.beamforming.pairwise import NullSteeringPair
from repro.channel.multipath import MultipathEnvironment
from repro.geometry.points import as_points, distance
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_finite, check_positive

__all__ = ["InterweaveSystem", "InterweaveTrial", "InterweaveCluster", "form_pairs"]


def form_pairs(positions: np.ndarray) -> List[Tuple[int, int]]:
    """Greedy nearest-neighbour pairing of transmit nodes.

    Returns ``floor(n / 2)`` index pairs; with odd ``n`` the leftover node
    sits out (Algorithm 3 uses ``floor(mt / 2)`` pairs).  Greedy
    closest-pair-first keeps pair spacings small, which keeps the far-field
    null approximation accurate.
    """
    pts = as_points(positions)
    n = pts.shape[0]
    unused = set(range(n))
    pairs: List[Tuple[int, int]] = []
    diff = pts[:, None, :] - pts[None, :, :]
    dist = np.linalg.norm(diff, axis=-1)
    np.fill_diagonal(dist, np.inf)
    while len(unused) >= 2:
        candidates = sorted(unused)
        sub = dist[np.ix_(candidates, candidates)]
        i, j = np.unravel_index(np.argmin(sub), sub.shape)
        a, b = candidates[i], candidates[j]
        pairs.append((min(a, b), max(a, b)))
        unused.discard(a)
        unused.discard(b)
    return pairs


@dataclass(frozen=True)
class InterweaveTrial:
    """One Table 1 row: the picked PU and the resulting amplitudes."""

    picked_pr: Tuple[float, float]
    delta: float
    amplitude_at_sr: float  # mean over the Sr cluster
    siso_amplitude_at_sr: float
    residual_at_pr: float  # leaked amplitude at the primary receiver

    def __post_init__(self) -> None:
        check_finite(self.delta, "delta")
        check_finite(self.amplitude_at_sr, "amplitude_at_sr")
        check_finite(self.siso_amplitude_at_sr, "siso_amplitude_at_sr")
        check_finite(self.residual_at_pr, "residual_at_pr")

    @property
    def gain_over_siso(self) -> float:
        """Diversity gain: pair amplitude relative to single-antenna tx."""
        return self.amplitude_at_sr / self.siso_amplitude_at_sr


class InterweaveSystem:
    """Algorithm 3 for a single transmit pair.

    Parameters
    ----------
    st1, st2:
        Transmit pair coordinates; St1 receives the phase offset.
    wavelength:
        Carrier wavelength in the simulation's units.  Table 1's geometry
        ("distance between St1 and St2 is 15 m, r = 1/2 w") implies
        ``w = 2 * spacing``.
    environment:
        Propagation environment (default pure line of sight, as in the
        Table 1 simulation; pass an indoor multipath environment for the
        Figure 8 behaviour).
    """

    def __init__(
        self,
        st1: Tuple[float, float],
        st2: Tuple[float, float],
        wavelength: Optional[float] = None,
        environment: Optional[MultipathEnvironment] = None,
    ):
        spacing = float(distance(np.asarray(st1, float), np.asarray(st2, float)))
        if spacing <= 0.0:
            raise ValueError("St1 and St2 must be distinct")
        if wavelength is not None:
            check_positive(wavelength, "wavelength")
        self.pair = NullSteeringPair(
            st1=tuple(map(float, st1)),
            st2=tuple(map(float, st2)),
            wavelength=float(wavelength) if wavelength is not None else 2.0 * spacing,
        )
        self.environment = environment or MultipathEnvironment.line_of_sight()

    # ------------------------------------------------------------------ #
    # Step 1: primary-user selection                                     #
    # ------------------------------------------------------------------ #

    def score_candidate(self, pr_position) -> float:
        """Selection score for a candidate PU (higher is better).

        Rewards baseline alignment (``|cos(alpha)|``, which leaves broadside
        — where the secondary receiver sits — at full pair gain) weighted by
        normalized distance from the pair (a farther PU absorbs less of any
        residual leakage).
        """
        pr = np.asarray(pr_position, float)
        alpha = self.pair.alpha(pr)
        dist = float(distance(np.asarray(self.pair.st1, float), pr))
        return float(np.abs(np.cos(alpha)) * dist)

    def pick_primary(self, candidates: np.ndarray) -> Tuple[int, np.ndarray]:
        """Step 1: choose the PU to share spectrum with.

        Returns ``(index, position)`` of the best-scoring candidate.
        """
        pts = as_points(candidates)
        if pts.shape[0] == 0:
            raise ValueError("no candidate primary users supplied")
        scores = np.array([self.score_candidate(p) for p in pts])
        idx = int(np.argmax(scores))
        return idx, pts[idx]

    # ------------------------------------------------------------------ #
    # Step 2: null-steered transmission                                  #
    # ------------------------------------------------------------------ #

    def run_trial(
        self,
        pr_candidates: np.ndarray,
        sr_points: np.ndarray,
        exact_delay: bool = False,
    ) -> InterweaveTrial:
        """Pick a PU, steer the null, and measure amplitudes.

        Parameters
        ----------
        pr_candidates:
            ``(n, 2)`` candidate primary-receiver locations (Table 1 uses
            20 random points in a 300 m-diameter circle around St1).
        sr_points:
            ``(k, 2)`` secondary-receiver node locations; the reported
            amplitude is the mean over them (a receive cluster, not a
            single point).
        exact_delay:
            False = the paper's far-field ``delta`` formula; True = exact
            finite-distance null (ablation).
        """
        _, pr = self.pick_primary(pr_candidates)
        delta = self.pair.delay_for_null(pr, exact=exact_delay)
        srs = as_points(sr_points)
        amps = np.array(
            [self.pair.amplitude_at(s, delta, self.environment) for s in srs]
        )
        siso = np.array(
            [self.pair.siso_reference_amplitude(s, self.environment) for s in srs]
        )
        return InterweaveTrial(
            picked_pr=(float(pr[0]), float(pr[1])),
            delta=float(delta),
            amplitude_at_sr=float(amps.mean()),
            siso_amplitude_at_sr=float(siso.mean()),
            residual_at_pr=float(self.pair.amplitude_at(pr, delta, self.environment)),
        )

    def run_table1(
        self,
        n_trials: int = 10,
        n_candidates: int = 20,
        candidate_radius: float = 150.0,
        sr_center: Tuple[float, float] = (60.0, 0.0),
        sr_spread: float = 12.0,
        sr_nodes: int = 8,
        exact_delay: bool = False,
        rng: RngLike = None,
    ) -> List[InterweaveTrial]:
        """The Table 1 protocol: repeat :meth:`run_trial` ``n_trials`` times.

        Per trial, ``n_candidates`` PU locations are drawn uniformly in a
        disk of radius ``candidate_radius`` centered at St1 (the paper's
        "circle centered at St1 with a diameter 300 m"), and the secondary
        receive cluster is ``sr_nodes`` points jittered within
        ``sr_spread`` of ``sr_center`` on the broadside axis.
        """
        from repro.geometry.placement import random_in_disk

        gen = as_rng(rng)
        trials = []
        for _ in range(n_trials):
            candidates = random_in_disk(
                n_candidates, center=self.pair.st1, radius=candidate_radius, rng=gen
            )
            srs = random_in_disk(sr_nodes, center=sr_center, radius=sr_spread, rng=gen)
            trials.append(self.run_trial(candidates, srs, exact_delay))
        return trials


class InterweaveCluster:
    """Algorithm 3 for a whole transmit cluster (``mt`` nodes).

    The cluster forms ``floor(mt / 2)`` pairs (:func:`form_pairs`); within
    each pair the first node carries the pair's phase offset so that every
    pair — and hence the aggregate field — cancels toward the selected
    primary receiver.  With odd ``mt`` the unpaired node stays silent
    during the shared-spectrum transmission, exactly as the algorithm's
    ``floor(mt/2) x mr`` MIMO link implies.

    Parameters
    ----------
    positions:
        ``(mt, 2)`` transmit-node coordinates (``mt >= 2``).
    wavelength:
        Carrier wavelength; defaults to twice the *largest* pair spacing
        (the Table 1 normalization applied cluster-wide).
    environment:
        Propagation environment shared by all nodes.
    """

    def __init__(
        self,
        positions: np.ndarray,
        wavelength: Optional[float] = None,
        environment: Optional[MultipathEnvironment] = None,
    ):
        pts = as_points(positions)
        if pts.shape[0] < 2:
            raise ValueError("an interweave cluster needs at least 2 nodes")
        self.positions = pts
        self.pair_indices = form_pairs(pts)
        if wavelength is None:
            spacings = [
                float(distance(pts[i], pts[j])) for i, j in self.pair_indices
            ]
            wavelength = 2.0 * max(spacings)
        if wavelength <= 0.0:
            raise ValueError("wavelength must be positive")
        self.wavelength = float(wavelength)
        self.environment = environment or MultipathEnvironment.line_of_sight()
        self.pairs = [
            NullSteeringPair(
                st1=tuple(pts[i]), st2=tuple(pts[j]), wavelength=self.wavelength
            )
            for i, j in self.pair_indices
        ]

    # ------------------------------------------------------------------ #

    @property
    def n_active(self) -> int:
        """Transmitting nodes: ``2 * floor(mt / 2)``."""
        return 2 * len(self.pairs)

    def active_positions(self) -> np.ndarray:
        """Coordinates of the transmitting (paired) nodes, pair by pair."""
        idx = [k for pair in self.pair_indices for k in pair]
        return self.positions[idx]

    def transmit_phases(self, pr_position, exact: bool = False) -> np.ndarray:
        """Per-active-node phase offsets nulling the cluster's field at Pr.

        Node order matches :meth:`active_positions`: within each pair the
        first node carries the pair's delta, the second transmits at zero
        phase.
        """
        phases = []
        for pair in self.pairs:
            delta = pair.delay_for_null(np.asarray(pr_position, float), exact=exact)
            phases.extend([delta, 0.0])
        return np.array(phases)

    def amplitude_at(self, point, pr_position, exact: bool = False) -> float:
        """Aggregate field magnitude at ``point`` while nulling ``pr_position``."""
        return self.environment.amplitude_at(
            self.active_positions(),
            np.asarray(point, float),
            self.wavelength,
            tx_phases_rad=self.transmit_phases(pr_position, exact),
        )

    def siso_reference_amplitude(self, point) -> float:
        """Single-node (first node) amplitude at ``point`` — the comparison
        baseline, as in Table 1."""
        return self.environment.amplitude_at(
            self.positions[:1], np.asarray(point, float), self.wavelength
        )

    def run_trial(
        self,
        pr_candidates: np.ndarray,
        sr_points: np.ndarray,
        exact_delay: bool = False,
    ) -> InterweaveTrial:
        """Pick a PU (scored by the first pair's heuristic), transmit, measure."""
        scorer = InterweaveSystem.__new__(InterweaveSystem)
        scorer.pair = self.pairs[0]
        scorer.environment = self.environment
        _, pr = scorer.pick_primary(pr_candidates)
        srs = as_points(sr_points)
        amps = np.array([self.amplitude_at(s, pr, exact_delay) for s in srs])
        siso = np.array([self.siso_reference_amplitude(s) for s in srs])
        phases = self.transmit_phases(pr, exact_delay)
        residual = self.environment.amplitude_at(
            self.active_positions(), pr, self.wavelength, tx_phases_rad=phases
        )
        return InterweaveTrial(
            picked_pr=(float(pr[0]), float(pr[1])),
            delta=float(phases[0]),
            amplitude_at_sr=float(amps.mean()),
            siso_amplitude_at_sr=float(siso.mean()),
            residual_at_pr=float(residual),
        )
