"""Cooperative communication schemes for one hop (Section 2.2, Figure 1).

A hop from transmit cluster A (``mt`` nodes, head ``x``) to receive cluster
B (``mr`` nodes, head ``y``) decomposes into up to three phases:

1. **intra-A** (only if ``mt > 1``): ``x`` broadcasts the source data to the
   other local nodes — one local transmission, ``mt - 1`` local receptions;
2. **long-haul**: the ``mt`` nodes transmit simultaneously as a virtual
   antenna array using the ``mt x mr`` STBC; the ``mr`` nodes receive;
3. **intra-B** (only if ``mr > 1``): every node in B forwards its received
   stream to ``y`` in separate time slots — the paper's Section 6.2
   discussion counts ``mr`` local transmissions here ("two receivers will
   locally share (transmit) its data with each other"), and ``y`` decodes.

MISO (``mr = 1``) skips phase 3; SIMO (``mt = 1``) skips phase 1; SISO
skips both.  :func:`hop_energy` prices each phase with the Section 2.3
formulas and reports per-role and aggregate energies, including the
PA-only aggregates the underlay analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.energy.model import EnergyModel
from repro.network.comimonet import LinkKind
from repro.utils.validation import (
    check_finite,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "HopStep",
    "HopEnergy",
    "HopTiming",
    "cooperative_scheme",
    "hop_energy",
    "hop_timing",
]


@dataclass(frozen=True)
class HopStep:
    """One phase of a cooperative hop."""

    name: str
    description: str
    n_tx: int
    n_rx: int
    local: bool  # intra-cluster (kappa-law) vs long-haul (square-law)

    def __post_init__(self) -> None:
        check_non_negative_int(self.n_tx, "n_tx")
        check_non_negative_int(self.n_rx, "n_rx")


@dataclass(frozen=True)
class HopEnergy:
    """Energy accounting for one cooperative hop, per bit [J].

    ``pa_*`` components count only power-amplifier energy (the radiated
    part constrained by the underlay noise-floor requirement); ``total``
    additionally includes all circuit/synthesizer energy of every
    participating node.
    """

    kind: LinkKind
    mt: int
    mr: int
    b: int
    total: float
    pa_local_a: float
    pa_longhaul: float
    pa_local_b: float

    def __post_init__(self) -> None:
        check_positive_int(self.mt, "mt")
        check_positive_int(self.mr, "mr")
        check_positive_int(self.b, "b")
        check_finite(self.total, "total")
        check_finite(self.pa_local_a, "pa_local_a")
        check_finite(self.pa_longhaul, "pa_longhaul")
        check_finite(self.pa_local_b, "pa_local_b")

    @property
    def pa_total(self) -> float:
        """Total radiated (PA) energy per bit across all nodes."""
        return self.pa_local_a + self.pa_longhaul + self.pa_local_b

    @property
    def pa_peak(self) -> float:
        """Peak simultaneous PA energy per bit, Section 4's
        ``E_PA = max(e_PA^{Lt}, mt * e_PA^{MIMOt})``.

        Local transmissions are sequential (one PA active), whereas all
        ``mt`` long-haul transmitters radiate at once.
        """
        candidates = [self.pa_longhaul]
        if self.pa_local_a > 0.0:
            candidates.append(self.pa_local_a)
        if self.pa_local_b > 0.0:
            # intra-B forwards happen one node at a time
            candidates.append(self.pa_local_b / max(self.mr, 1))
        return max(candidates)


def cooperative_scheme(mt: int, mr: int) -> List[HopStep]:
    """The step plan of the MIMO/MISO/SIMO/SISO scheme for ``mt x mr``."""
    mt = check_positive_int(mt, "mt")
    mr = check_positive_int(mr, "mr")
    kind = LinkKind.classify(mt, mr)
    steps: List[HopStep] = []
    if mt > 1:
        steps.append(
            HopStep(
                name="intra-A broadcast",
                description="head x broadcasts the source data to the other "
                f"{mt - 1} local node(s) in A",
                n_tx=1,
                n_rx=mt - 1,
                local=True,
            )
        )
    steps.append(
        HopStep(
            name=f"long-haul {kind.value}",
            description=f"{mt} node(s) in A transmit the STBC-encoded stream "
            f"simultaneously to {mr} node(s) in B",
            n_tx=mt,
            n_rx=mr,
            local=False,
        )
    )
    if mr > 1:
        steps.append(
            HopStep(
                name="intra-B collection",
                description=f"each of the {mr} node(s) in B forwards its "
                "received stream to head y in its own time slot; y decodes",
                n_tx=mr,
                n_rx=mr,
                local=True,
            )
        )
    return steps


def hop_energy(
    model: EnergyModel,
    p: float,
    b: int,
    mt: int,
    mr: int,
    local_distance: float,
    longhaul_distance: float,
    bandwidth: float,
) -> HopEnergy:
    """Price one cooperative hop with the Section 2.3 formulas.

    Parameters
    ----------
    model:
        Energy model (constants + e_bar_b provider).
    p:
        Target BER for both the local and long-haul segments.
    b:
        Constellation size used on every segment.
    mt, mr:
        Cooperating node counts.
    local_distance:
        Intra-cluster hop length ``d`` [m].
    longhaul_distance:
        Cluster-to-cluster link length ``D`` [m].
    bandwidth:
        System bandwidth ``B`` [Hz].
    """
    p = check_probability(p, "p")
    check_positive(local_distance, "local_distance")
    check_positive(longhaul_distance, "longhaul_distance")

    local_tx = model.local_tx(p, b, local_distance, bandwidth)
    local_rx = model.local_rx(b, bandwidth)
    mimo_tx = model.mimo_tx(p, b, mt, mr, longhaul_distance, bandwidth)
    mimo_rx = model.mimo_rx(b, bandwidth)

    total = 0.0
    pa_local_a = 0.0
    pa_local_b = 0.0

    if mt > 1:
        # head broadcast reaches all local nodes with one transmission
        total += local_tx.total + (mt - 1) * local_rx.total
        pa_local_a = local_tx.pa
    total += mt * mimo_tx.total + mr * mimo_rx.total
    pa_longhaul = mt * mimo_tx.pa
    if mr > 1:
        # every receiver forwards its stream to the head in its own slot;
        # the head receives the (mr) forwarded streams
        total += mr * local_tx.total + mr * local_rx.total
        pa_local_b = mr * local_tx.pa

    return HopEnergy(
        kind=LinkKind.classify(mt, mr),
        mt=mt,
        mr=mr,
        b=b,
        total=float(total),
        pa_local_a=float(pa_local_a),
        pa_longhaul=float(pa_longhaul),
        pa_local_b=float(pa_local_b),
    )


@dataclass(frozen=True)
class HopTiming:
    """Airtime accounting for one cooperative hop [s].

    The schemes of Section 2.2 serialize their phases: the intra-cluster
    broadcast, the long-haul space-time transmission (whose duration is
    stretched by ``1/rate`` for the rate-1/2 G3/G4 codes used at mt = 3, 4
    — the latency price of transmit diversity), and the ``mr`` sequential
    intra-B forwards ("using different time slots").
    """

    intra_a_s: float
    longhaul_s: float
    intra_b_s: float
    stbc_rate: float

    def __post_init__(self) -> None:
        check_non_negative(self.intra_a_s, "intra_a_s")
        check_non_negative(self.longhaul_s, "longhaul_s")
        check_non_negative(self.intra_b_s, "intra_b_s")
        check_positive(self.stbc_rate, "stbc_rate")

    @property
    def total_s(self) -> float:
        """End-to-end hop airtime."""
        return self.intra_a_s + self.longhaul_s + self.intra_b_s


def hop_timing(
    n_bits: float,
    b: int,
    mt: int,
    mr: int,
    bandwidth: float,
) -> HopTiming:
    """Airtime of one cooperative hop carrying ``n_bits`` information bits.

    Assumes one symbol per second per hertz (the paper's ``bB`` bits/s
    convention), so a SISO stream of ``n_bits`` takes ``n_bits / (b B)``
    seconds; the long-haul phase divides by the space-time code rate.
    """
    check_positive(float(n_bits), "n_bits")
    b = check_positive_int(b, "b")
    mt = check_positive_int(mt, "mt")
    mr = check_positive_int(mr, "mr")
    check_positive(bandwidth, "bandwidth")
    from repro.stbc.ostbc import ostbc_for

    rate = ostbc_for(mt).rate
    stream_s = n_bits / (b * bandwidth)
    return HopTiming(
        intra_a_s=stream_s if mt > 1 else 0.0,
        longhaul_s=stream_s / rate,
        intra_b_s=mr * stream_s if mr > 1 else 0.0,
        stbc_rate=rate,
    )
