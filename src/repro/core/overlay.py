"""Cooperative MIMO paradigm for overlay systems (Section 3, Algorithm 1).

``m`` secondary users relay the primary transmission:

* **Step 1** — the primary transmitter Pt sends; the ``m`` SUs receive over
  a ``1 x m`` SIMO link (per-SU cost ``e^{MIMOr}``, Pt cost
  ``e^{MIMOt}(1, m)``);
* **Step 2** — the ``m`` SUs forward to the primary receiver Pr over an
  ``m x 1`` MISO link (per-SU cost ``e^{MIMOt}(m, 1)``, Pr cost
  ``e^{MIMOr}``).

The per-SU relaying energy is ``E_S = e^{MIMOt}(m, 1) + e^{MIMOr}``.

The Figure 6 distance analysis then asks: assuming PUs and SUs spend the
*same* per-bit energy, and the relayed path must hit a 10x better BER than
the direct path, how far can the relay cluster sit from Pt (D2) and from Pr
(D3)?

1. ``E_1 = min_b e^{MIMOt}(1, 1)`` at the direct distance ``D_1`` and
   direct BER target;
2. ``D_2`` from ``E_1 = e^{MIMOt}(1, m)`` at the relayed BER target
   (maximized over ``b``);
3. ``D_3`` from ``E_1 = e^{MIMOt}(m, 1) + e^{MIMOr}`` (maximized over
   ``b``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.energy.model import EnergyModel
from repro.energy.optimize import (
    DEFAULT_B_RANGE,
    maximize_mimo_distance,
    minimize_over_b,
)
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = ["OverlaySystem", "OverlayDistanceResult", "RelayEnergy"]


@dataclass(frozen=True)
class RelayEnergy:
    """Per-bit energy of every party in one relayed primary transmission."""

    m: int
    b_simo: int
    b_miso: int
    primary_tx: float  # E_Pt = e^MIMOt(1, m)
    primary_rx: float  # E_Pr = e^MIMOr
    su_rx: float  # E_Sr = e^MIMOr
    su_tx: float  # E_St = e^MIMOt(m, 1)

    @property
    def su_total(self) -> float:
        """``E_S = E_St + E_Sr`` — what each relay SU spends per bit."""
        return self.su_tx + self.su_rx


@dataclass(frozen=True)
class OverlayDistanceResult:
    """Outcome of the Figure 6 analysis for one (D1, m, B) point."""

    d1: float
    m: int
    bandwidth: float
    p_direct: float
    p_relay: float
    e1: float  # direct-link energy budget [J/bit]
    b_direct: int
    d2: float  # largest SU distance from Pt [m]
    b_simo: int
    d3: float  # largest SU distance from Pr [m]
    b_miso: int


class OverlaySystem:
    """Algorithm 1 with its energy and distance analyses.

    Parameters
    ----------
    model:
        Energy model; for Figure 6 fidelity build it with
        ``ebar_convention="diversity_only"`` (see EXPERIMENTS.md — the
        paper's own Figure 6 numbers imply the (mt, mr)-symmetric table).
    b_range:
        Constellation sizes searched by every optimization step.
    """

    def __init__(
        self,
        model: EnergyModel,
        b_range: Sequence[int] = DEFAULT_B_RANGE,
    ):
        self.model = model
        self.b_range = tuple(int(b) for b in b_range)
        if not self.b_range:
            raise ValueError("b_range must be non-empty")

    # ------------------------------------------------------------------ #
    # Algorithm 1 energy accounting                                      #
    # ------------------------------------------------------------------ #

    def relay_energy(
        self,
        p: float,
        m: int,
        d_pt_su: float,
        d_su_pr: float,
        bandwidth: float,
    ) -> RelayEnergy:
        """Per-bit energies of one relayed transmission (Steps 1 and 2).

        Constellation sizes are chosen per-link to minimize the respective
        transmit energies (the algorithm's table-lookup rule).
        """
        p = check_probability(p, "p")
        m = check_positive_int(m, "m")
        check_positive(d_pt_su, "d_pt_su")
        check_positive(d_su_pr, "d_su_pr")
        check_positive(bandwidth, "bandwidth")

        simo = minimize_over_b(
            lambda b: self.model.mimo_tx(p, b, 1, m, d_pt_su, bandwidth).total,
            self.b_range,
        )
        miso = minimize_over_b(
            lambda b: self.model.mimo_tx(p, b, m, 1, d_su_pr, bandwidth).total,
            self.b_range,
        )
        return RelayEnergy(
            m=m,
            b_simo=simo.b,
            b_miso=miso.b,
            primary_tx=simo.value,
            primary_rx=self.model.mimo_rx(miso.b, bandwidth).total,
            su_rx=self.model.mimo_rx(simo.b, bandwidth).total,
            su_tx=miso.value,
        )

    # ------------------------------------------------------------------ #
    # Figure 6 distance analysis                                         #
    # ------------------------------------------------------------------ #

    def direct_link_energy(
        self, d1: float, p_direct: float, bandwidth: float
    ) -> Tuple[int, float]:
        """Step 1: ``E_1 = min_b e^{MIMOt}(1, 1)`` at distance ``D_1``."""
        check_positive(d1, "d1")
        best = minimize_over_b(
            lambda b: self.model.mimo_tx(p_direct, b, 1, 1, d1, bandwidth).total,
            self.b_range,
        )
        return best.b, best.value

    def distance_analysis(
        self,
        d1: float,
        m: int,
        bandwidth: float,
        p_direct: float = 0.005,
        p_relay: float = 0.0005,
    ) -> OverlayDistanceResult:
        """Steps 1-3 of the Section 3 analysis for one parameter point.

        Defaults match Figure 6: direct BER 0.005, relayed BER 0.0005
        ("10 times improved").
        """
        m = check_positive_int(m, "m")
        b_direct, e1 = self.direct_link_energy(d1, p_direct, bandwidth)

        simo = maximize_mimo_distance(
            self.model, e1, p_relay, 1, m, bandwidth, self.b_range
        )
        miso = maximize_mimo_distance(
            self.model,
            e1,
            p_relay,
            m,
            1,
            bandwidth,
            self.b_range,
            extra_circuit=lambda b: self.model.mimo_rx(b, bandwidth).total,
        )
        return OverlayDistanceResult(
            d1=float(d1),
            m=m,
            bandwidth=float(bandwidth),
            p_direct=p_direct,
            p_relay=p_relay,
            e1=e1,
            b_direct=b_direct,
            d2=simo.value,
            b_simo=simo.b,
            d3=miso.value,
            b_miso=miso.b,
        )

    def distance_sweep(
        self,
        d1_values: Sequence[float],
        m_values: Sequence[int],
        bandwidths: Sequence[float],
        p_direct: float = 0.005,
        p_relay: float = 0.0005,
    ) -> list:
        """The full Figure 6 grid: one result per (D1, m, B) combination."""
        return [
            self.distance_analysis(d1, m, bw, p_direct, p_relay)
            for bw in bandwidths
            for m in m_values
            for d1 in d1_values
        ]
