"""Cooperative MIMO paradigm for overlay systems (Section 3, Algorithm 1).

``m`` secondary users relay the primary transmission:

* **Step 1** — the primary transmitter Pt sends; the ``m`` SUs receive over
  a ``1 x m`` SIMO link (per-SU cost ``e^{MIMOr}``, Pt cost
  ``e^{MIMOt}(1, m)``);
* **Step 2** — the ``m`` SUs forward to the primary receiver Pr over an
  ``m x 1`` MISO link (per-SU cost ``e^{MIMOt}(m, 1)``, Pr cost
  ``e^{MIMOr}``).

The per-SU relaying energy is ``E_S = e^{MIMOt}(m, 1) + e^{MIMOr}``.

The Figure 6 distance analysis then asks: assuming PUs and SUs spend the
*same* per-bit energy, and the relayed path must hit a 10x better BER than
the direct path, how far can the relay cluster sit from Pt (D2) and from Pr
(D3)?

1. ``E_1 = min_b e^{MIMOt}(1, 1)`` at the direct distance ``D_1`` and
   direct BER target;
2. ``D_2`` from ``E_1 = e^{MIMOt}(1, m)`` at the relayed BER target
   (maximized over ``b``);
3. ``D_3`` from ``E_1 = e^{MIMOt}(m, 1) + e^{MIMOr}`` (maximized over
   ``b``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.energy.model import EnergyModel
from repro.energy.optimize import (
    DEFAULT_B_RANGE,
    maximize_mimo_distance,
    minimize_over_b,
)
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = ["OverlaySystem", "OverlayDistanceResult", "RelayEnergy"]


@dataclass(frozen=True)
class RelayEnergy:
    """Per-bit energy of every party in one relayed primary transmission."""

    m: int
    b_simo: int
    b_miso: int
    primary_tx: float  # E_Pt = e^MIMOt(1, m)
    primary_rx: float  # E_Pr = e^MIMOr
    su_rx: float  # E_Sr = e^MIMOr
    su_tx: float  # E_St = e^MIMOt(m, 1)

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.b_simo, "b_simo")
        check_positive_int(self.b_miso, "b_miso")
        check_finite(self.primary_tx, "primary_tx")
        check_finite(self.primary_rx, "primary_rx")
        check_finite(self.su_rx, "su_rx")
        check_finite(self.su_tx, "su_tx")

    @property
    def su_total(self) -> float:
        """``E_S = E_St + E_Sr`` — what each relay SU spends per bit."""
        return self.su_tx + self.su_rx


@dataclass(frozen=True)
class OverlayDistanceResult:
    """Outcome of the Figure 6 analysis for one (D1, m, B) point."""

    d1: float
    m: int
    bandwidth: float
    p_direct: float
    p_relay: float
    e1: float  # direct-link energy budget [J/bit]
    b_direct: int
    d2: float  # largest SU distance from Pt [m]
    b_simo: int
    d3: float  # largest SU distance from Pr [m]
    b_miso: int

    def __post_init__(self) -> None:
        check_finite(self.d1, "d1")
        check_positive_int(self.m, "m")
        check_positive(self.bandwidth, "bandwidth")
        check_finite(self.p_direct, "p_direct")
        check_finite(self.p_relay, "p_relay")
        check_finite(self.e1, "e1")
        check_positive_int(self.b_direct, "b_direct")
        check_finite(self.d2, "d2")
        check_positive_int(self.b_simo, "b_simo")
        check_finite(self.d3, "d3")
        check_positive_int(self.b_miso, "b_miso")


class OverlaySystem:
    """Algorithm 1 with its energy and distance analyses.

    Parameters
    ----------
    model:
        Energy model; for Figure 6 fidelity build it with
        ``ebar_convention="diversity_only"`` (see EXPERIMENTS.md — the
        paper's own Figure 6 numbers imply the (mt, mr)-symmetric table).
    b_range:
        Constellation sizes searched by every optimization step.
    """

    def __init__(
        self,
        model: EnergyModel,
        b_range: Sequence[int] = DEFAULT_B_RANGE,
    ):
        self.model = model
        self.b_range = tuple(int(b) for b in b_range)
        if not self.b_range:
            raise ValueError("b_range must be non-empty")

    # ------------------------------------------------------------------ #
    # Algorithm 1 energy accounting                                      #
    # ------------------------------------------------------------------ #

    def relay_energy(
        self,
        p: float,
        m: int,
        d_pt_su: float,
        d_su_pr: float,
        bandwidth: float,
    ) -> RelayEnergy:
        """Per-bit energies of one relayed transmission (Steps 1 and 2).

        Constellation sizes are chosen per-link to minimize the respective
        transmit energies (the algorithm's table-lookup rule).
        """
        p = check_probability(p, "p")
        m = check_positive_int(m, "m")
        check_positive(d_pt_su, "d_pt_su")
        check_positive(d_su_pr, "d_su_pr")
        check_positive(bandwidth, "bandwidth")

        simo = minimize_over_b(
            lambda b: self.model.mimo_tx(p, b, 1, m, d_pt_su, bandwidth).total,
            self.b_range,
        )
        miso = minimize_over_b(
            lambda b: self.model.mimo_tx(p, b, m, 1, d_su_pr, bandwidth).total,
            self.b_range,
        )
        return RelayEnergy(
            m=m,
            b_simo=simo.b,
            b_miso=miso.b,
            primary_tx=simo.value,
            primary_rx=self.model.mimo_rx(miso.b, bandwidth).total,
            su_rx=self.model.mimo_rx(simo.b, bandwidth).total,
            su_tx=miso.value,
        )

    # ------------------------------------------------------------------ #
    # Figure 6 distance analysis                                         #
    # ------------------------------------------------------------------ #

    def direct_link_energy(
        self, d1: float, p_direct: float, bandwidth: float
    ) -> Tuple[int, float]:
        """Step 1: ``E_1 = min_b e^{MIMOt}(1, 1)`` at distance ``D_1``."""
        check_positive(d1, "d1")
        best = minimize_over_b(
            lambda b: self.model.mimo_tx(p_direct, b, 1, 1, d1, bandwidth).total,
            self.b_range,
        )
        return best.b, best.value

    def distance_analysis(
        self,
        d1: float,
        m: int,
        bandwidth: float,
        p_direct: float = 0.005,
        p_relay: float = 0.0005,
    ) -> OverlayDistanceResult:
        """Steps 1-3 of the Section 3 analysis for one parameter point.

        Defaults match Figure 6: direct BER 0.005, relayed BER 0.0005
        ("10 times improved").
        """
        m = check_positive_int(m, "m")
        b_direct, e1 = self.direct_link_energy(d1, p_direct, bandwidth)

        simo = maximize_mimo_distance(
            self.model, e1, p_relay, 1, m, bandwidth, self.b_range
        )
        miso = maximize_mimo_distance(
            self.model,
            e1,
            p_relay,
            m,
            1,
            bandwidth,
            self.b_range,
            extra_circuit=lambda b: self.model.mimo_rx(b, bandwidth).total,
        )
        return OverlayDistanceResult(
            d1=float(d1),
            m=m,
            bandwidth=float(bandwidth),
            p_direct=p_direct,
            p_relay=p_relay,
            e1=e1,
            b_direct=b_direct,
            d2=simo.value,
            b_simo=simo.b,
            d3=miso.value,
            b_miso=miso.b,
        )

    # ------------------------------------------------------------------ #
    # Vectorized D1-axis sweep                                           #
    # ------------------------------------------------------------------ #

    def _direct_energy_over_d1(
        self, d1: np.ndarray, p_direct: float, bandwidth: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Step 1 over a D1 vector: per-point ``(b_direct, E_1)`` arrays.

        For each candidate ``b`` the direct-link total is evaluated over the
        whole distance axis at once (one ``e_bar_b`` solve per ``b`` instead
        of one per grid point); the reduction over ``b`` replicates
        :func:`minimize_over_b` — infeasible sizes skipped, first minimum
        wins — on bit-identical per-point values.
        """
        totals = np.full((len(self.b_range), d1.size), np.inf)
        for row, b in enumerate(self.b_range):
            try:
                pa = self.model.mimo_tx_pa_batch(p_direct, b, 1, 1, d1, bandwidth)
                circuit = self.model.mimo_tx(
                    p_direct, b, 1, 1, float(d1[0]), bandwidth
                ).circuit
            except ValueError:
                continue
            totals[row] = pa + circuit
        if np.isinf(totals).all(axis=0).any():
            raise ValueError("no feasible constellation size in the given range")
        best = np.argmin(totals, axis=0)
        b_direct = np.array(self.b_range)[best]
        return b_direct, totals[best, np.arange(d1.size)]

    def _max_distance_over_budgets(
        self,
        budgets: np.ndarray,
        p_relay: float,
        mt: int,
        mr: int,
        bandwidth: float,
        with_rx_circuit: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Steps 2/3 over a budget vector: ``(b, D)`` maximizing the reach.

        Vector form of :func:`maximize_mimo_distance` over all budgets at
        once; the quadratic inversion of
        :meth:`repro.energy.model.EnergyModel.max_mimo_distance` is applied
        per candidate ``b`` to the whole budget axis.
        """
        c = self.model.constants
        unit_gain = c.longhaul_gain(1.0)
        reaches = np.full((len(self.b_range), budgets.size), -np.inf)
        for row, b in enumerate(self.b_range):
            alpha = c.peak_to_average_alpha(b)
            circuit = (c.p_ct_w + c.p_syn_w) / (b * bandwidth)
            extra = self.model.mimo_rx(b, bandwidth).total if with_rx_circuit else 0.0
            headroom = budgets - circuit - extra
            try:
                ebar = self.model.ebar(p_relay, b, mt, mr)
            except ValueError:
                # Exhausted budgets still yield a 0.0 candidate (the scalar
                # inversion returns before ever solving e_bar_b there).
                reaches[row] = np.where(headroom <= 0.0, 0.0, -np.inf)
                continue
            d_squared = headroom * mt / ((1.0 + alpha) * ebar * unit_gain)
            reaches[row] = np.where(
                headroom <= 0.0, 0.0, np.sqrt(np.maximum(d_squared, 0.0))
            )
        if np.isinf(reaches).all(axis=0).any():
            raise ValueError("no feasible constellation size in the given range")
        best = np.argmax(reaches, axis=0)
        return np.array(self.b_range)[best], reaches[best, np.arange(budgets.size)]

    def distance_analyses(
        self,
        d1_values: Sequence[float],
        m: int,
        bandwidth: float,
        p_direct: float = 0.005,
        p_relay: float = 0.0005,
    ) -> List[OverlayDistanceResult]:
        """Vectorized :meth:`distance_analysis` over the whole D1 axis.

        Produces exactly the same results as calling
        :meth:`distance_analysis` per point (the per-``b`` kernels run the
        identical arithmetic, just across the distance vector), while
        solving each ``e_bar_b`` once per constellation size instead of once
        per grid point.
        """
        m = check_positive_int(m, "m")
        p_direct = check_probability(p_direct, "p_direct")
        p_relay = check_probability(p_relay, "p_relay")
        bandwidth = check_positive(bandwidth, "bandwidth")
        d1 = np.asarray([check_positive(v, "d1") for v in d1_values], dtype=float)
        b_direct, e1 = self._direct_energy_over_d1(d1, p_direct, bandwidth)
        b_simo, d2 = self._max_distance_over_budgets(
            e1, p_relay, 1, m, bandwidth, with_rx_circuit=False
        )
        b_miso, d3 = self._max_distance_over_budgets(
            e1, p_relay, m, 1, bandwidth, with_rx_circuit=True
        )
        return [
            OverlayDistanceResult(
                d1=float(d1[i]),
                m=m,
                bandwidth=float(bandwidth),
                p_direct=p_direct,
                p_relay=p_relay,
                e1=float(e1[i]),
                b_direct=int(b_direct[i]),
                d2=float(d2[i]),
                b_simo=int(b_simo[i]),
                d3=float(d3[i]),
                b_miso=int(b_miso[i]),
            )
            for i in range(d1.size)
        ]

    def distance_sweep(
        self,
        d1_values: Sequence[float],
        m_values: Sequence[int],
        bandwidths: Sequence[float],
        p_direct: float = 0.005,
        p_relay: float = 0.0005,
    ) -> list:
        """The full Figure 6 grid: one result per (D1, m, B) combination.

        Each (m, B) cell sweeps its D1 axis vectorized via
        :meth:`distance_analyses`.
        """
        results = []
        for bw in bandwidths:
            for m in m_values:
                results.extend(
                    self.distance_analyses(d1_values, m, bw, p_direct, p_relay)
                )
        return results
