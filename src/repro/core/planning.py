"""Energy-optimal route planning under a latency budget.

The paper's variable-rate system exposes a three-way trade per hop: the
constellation size ``b`` (fast but power-hungry at high ``b``), the
cooperation mode (diversity saves radiated energy but the rate-1/2 G-codes
and the intra-cluster phases cost airtime), and the hop's fixed geometry.
This module solves the route-level version of that trade exactly:

    minimize   sum_h energy(h, option_h)
    subject to sum_h time(h, option_h) <= latency_budget

via Pareto pruning of each hop's option set followed by a multiple-choice
knapsack dynamic program over a discretized time axis — small enough
(≤ 32 options/hop, a few hundred time bins) to be exact for any realistic
route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.schemes import hop_energy, hop_timing
from repro.energy.model import EnergyModel
from repro.energy.optimize import DEFAULT_B_RANGE
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = ["HopOption", "RoutePlan", "hop_options", "plan_route"]


@dataclass(frozen=True)
class HopOption:
    """One feasible configuration of one hop."""

    mt: int
    mr: int
    b: int
    time_s: float
    energy_j: float

    def __post_init__(self) -> None:
        check_positive_int(self.mt, "mt")
        check_positive_int(self.mr, "mr")
        check_positive_int(self.b, "b")
        check_finite(self.time_s, "time_s")
        check_finite(self.energy_j, "energy_j")


@dataclass(frozen=True)
class RoutePlan:
    """The planner's output: one option per hop, or infeasibility."""

    choices: Tuple[HopOption, ...]
    feasible: bool

    @property
    def total_time_s(self) -> float:
        return sum(c.time_s for c in self.choices)

    @property
    def total_energy_j(self) -> float:
        return sum(c.energy_j for c in self.choices)


def hop_options(
    model: EnergyModel,
    link,
    local_distance: float,
    bandwidth: float,
    p: float,
    n_bits: float,
    b_range: Sequence[int] = DEFAULT_B_RANGE,
    allow_siso: bool = True,
) -> List[HopOption]:
    """Pareto-optimal (time, energy) options for one cooperative link.

    Enumerates the cooperative ``mt x mr`` mode and (optionally) the SISO
    head-to-head fallback over every constellation size, then prunes
    options dominated in both time and energy.
    """
    check_probability(p, "p")
    check_positive(n_bits, "n_bits")
    modes = [(link.mt, link.mr)]
    if allow_siso and (link.mt, link.mr) != (1, 1):
        modes.append((1, 1))
    raw: List[HopOption] = []
    for mt, mr in modes:
        for b in b_range:
            try:
                energy = hop_energy(
                    model, p, b, mt, mr, local_distance, link.length_m, bandwidth
                ).total * n_bits
            except ValueError:
                continue
            time = hop_timing(n_bits, b, mt, mr, bandwidth).total_s
            raw.append(HopOption(mt=mt, mr=mr, b=b, time_s=time, energy_j=energy))
    if not raw:
        raise ValueError("no feasible configuration for this hop")
    # Pareto prune: sort by time, keep strictly improving energy.
    raw.sort(key=lambda o: (o.time_s, o.energy_j))
    frontier: List[HopOption] = []
    best_energy = np.inf
    for option in raw:
        if option.energy_j < best_energy - 1e-18:
            frontier.append(option)
            best_energy = option.energy_j
    return frontier


def plan_route(
    model: EnergyModel,
    links: Sequence,
    local_distance: float,
    bandwidth: float,
    p: float,
    n_bits: float,
    latency_budget_s: Optional[float] = None,
    time_bins: int = 400,
    b_range: Sequence[int] = DEFAULT_B_RANGE,
) -> RoutePlan:
    """Choose per-hop configurations minimizing energy within a deadline.

    ``latency_budget_s = None`` removes the deadline (pure energy
    minimization).  Returns ``RoutePlan(feasible=False, choices=())`` when
    even the fastest configuration of every hop cannot meet the budget.
    """
    check_positive_int(time_bins, "time_bins")
    per_hop = [
        hop_options(model, link, local_distance, bandwidth, p, n_bits, b_range)
        for link in links
    ]
    if not per_hop:
        return RoutePlan(choices=(), feasible=True)

    if latency_budget_s is None:
        choices = tuple(min(options, key=lambda o: o.energy_j) for options in per_hop)
        return RoutePlan(choices=choices, feasible=True)

    check_positive(latency_budget_s, "latency_budget_s")
    fastest = sum(min(o.time_s for o in options) for options in per_hop)
    if fastest > latency_budget_s:
        return RoutePlan(choices=(), feasible=False)

    # Multiple-choice knapsack DP on a discretized time axis.  Ceiling
    # quantization keeps every DP solution's true time within the budget.
    dt = latency_budget_s / time_bins
    INF = np.inf
    dp = np.full(time_bins + 1, INF)
    dp[0] = 0.0
    back: List[np.ndarray] = []
    for options in per_hop:
        nxt = np.full(time_bins + 1, INF)
        choice = np.full(time_bins + 1, -1, dtype=int)
        for idx, option in enumerate(options):
            cost_bins = int(np.ceil(option.time_s / dt - 1e-12))
            if cost_bins > time_bins:
                continue
            shifted = np.full(time_bins + 1, INF)
            if cost_bins == 0:
                shifted = dp + option.energy_j
            else:
                shifted[cost_bins:] = dp[:-cost_bins] + option.energy_j
            better = shifted < nxt
            nxt[better] = shifted[better]
            choice[better] = idx
        dp = nxt
        back.append(choice)
    if not np.isfinite(dp.min()):
        return RoutePlan(choices=(), feasible=False)

    # Trace back from the cheapest feasible endpoint.
    t = int(np.argmin(dp))
    picks: List[HopOption] = []
    for options, choice in zip(reversed(per_hop), reversed(back)):
        idx = int(choice[t])
        option = options[idx]
        picks.append(option)
        cost_bins = int(np.ceil(option.time_s / dt - 1e-12))
        t -= cost_bins
    picks.reverse()
    return RoutePlan(choices=tuple(picks), feasible=True)
