"""The findings data model shared by the engine, the rules and the CLI."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.utils.validation import check_non_negative_int

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Ordering is (path, line, col, rule_id) so that sorted findings read like
    compiler output; ``format()`` renders the conventional
    ``file:line:col: RULE message`` shape that editors and CI annotate.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def __post_init__(self) -> None:
        check_non_negative_int(self.line, "line")
        check_non_negative_int(self.col, "col")

    def format(self) -> str:
        """Render as ``path:line:col: RULE-ID message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the CLI's ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
