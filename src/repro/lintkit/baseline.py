"""Committed-baseline support: accepted findings don't block CI, new ones do.

A baseline is a JSON document of finding *fingerprints*.  A fingerprint
deliberately excludes the line/column — ``sha256(path || rule || message)``
— so unrelated edits that shift a known finding up or down the file do not
resurrect it, while any change to its message (which embeds the offending
call for most rules) does.

Workflow::

    python -m repro.lintkit src tests --write-baseline lint-baseline.json
    git add lint-baseline.json            # accept the current findings
    python -m repro.lintkit src tests --baseline lint-baseline.json
                                          # exit 0 unless NEW findings appear

The tree is currently clean (every deliberate exception is suppressed
in-line with a justification), so the committed ``lint-baseline.json`` is
empty — the file exists to pin the workflow and format, not to hide debt.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import FrozenSet, Iterable, List, Tuple, Union

from repro.lintkit.findings import Finding

__all__ = [
    "Baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "partition",
]

#: Format marker inside the baseline document.
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Location-independent identity of one finding."""
    digest = hashlib.sha256()
    digest.update(finding.path.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(finding.rule_id.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(finding.message.encode("utf-8"))
    return digest.hexdigest()


class Baseline:
    """An accepted set of finding fingerprints."""

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self._fingerprints: FrozenSet[str] = frozenset(fingerprints)

    def __len__(self) -> int:
        return len(self._fingerprints)

    def __contains__(self, finding: Finding) -> bool:
        return fingerprint(finding) in self._fingerprints

    @property
    def fingerprints(self) -> FrozenSet[str]:
        return self._fingerprints


def partition(
    findings: Iterable[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, baselined) against the accepted set."""
    new: List[Finding] = []
    accepted: List[Finding] = []
    for finding in findings:
        (accepted if finding in baseline else new).append(finding)
    return new, accepted


def load_baseline(path: Union[str, pathlib.Path]) -> Baseline:
    """Read a baseline document written by :func:`write_baseline`.

    Raises
    ------
    ValueError
        When the document is not a recognizable baseline (the committed
        file being corrupt must fail CI loudly, not silently accept
        everything).
    """
    raw = pathlib.Path(path).read_text(encoding="utf-8")
    try:
        document = json.loads(raw)
    except ValueError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from None
    if (
        not isinstance(document, dict)
        or document.get("format") != "repro.lintkit-baseline"
        or not isinstance(document.get("fingerprints"), list)
    ):
        raise ValueError(f"baseline {path} is not a lintkit baseline document")
    fingerprints = [
        item for item in document["fingerprints"] if isinstance(item, str)
    ]
    return Baseline(fingerprints)


def write_baseline(
    path: Union[str, pathlib.Path], findings: Iterable[Finding]
) -> Baseline:
    """Accept the given findings: write their fingerprints to ``path``."""
    ordered = sorted(findings)
    document = {
        "format": "repro.lintkit-baseline",
        "version": BASELINE_VERSION,
        "fingerprints": sorted({fingerprint(f) for f in ordered}),
        # Human-readable context so baseline diffs are reviewable; the
        # fingerprints above are the only part the matcher reads.
        "findings": [f.format() for f in ordered],
    }
    blob = json.dumps(document, indent=2, sort_keys=True) + "\n"
    pathlib.Path(path).write_text(blob, encoding="utf-8")
    return Baseline(document["fingerprints"])
