"""Content-hash incremental cache for per-file analysis results.

The entry for a file is keyed by ``sha256(rule_key || path || source)``:
pure content addressing, so there is no invalidation logic to get wrong —
edit the file (or the linter itself, or the rule selection) and the key
simply changes.  ``rule_key`` folds in a digest of ``repro/lintkit``'s own
source files, so upgrading a rule transparently invalidates every entry it
could have produced.

Entries carry everything a warm run needs *without re-parsing*: the
per-file findings, the suppressed-finding count, and the
:class:`~repro.lintkit.graph.ModuleSummary` from which the project graph
(RP2xx rules) is rebuilt.  Layout follows :mod:`repro.service.rescache`:
a versioned directory under the shared ``repro-comimo`` cache root,
256-way fan-out subdirectories, atomic writes, corrupt entries read as
silent misses, and ``REPRO_NO_CACHE=1`` force-disables everything.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Optional, Union

from repro.energy.table import default_cache_dir
from repro.utils.fsio import atomic_write_bytes

__all__ = ["AnalysisCache", "CACHE_VERSION", "lintkit_rule_key"]

#: Bump when the entry payload contract changes; old entries are abandoned.
CACHE_VERSION = 1

_RULE_KEY_MEMO: Dict[str, str] = {}


def _disabled_by_env() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "0") not in ("", "0")


def lintkit_rule_key(extra: str = "") -> str:
    """Digest of the analyzer's own source, salted with ``extra``.

    ``extra`` encodes run parameters that change results (the ``--select``
    set).  The lintkit-source digest is memoized per process: hashing a
    dozen small files once is cheap, re-hashing them per analyzed file is
    not.
    """
    if extra not in _RULE_KEY_MEMO:
        digest = hashlib.sha256()
        package_dir = pathlib.Path(__file__).resolve().parent
        for source_path in sorted(package_dir.glob("*.py")):
            digest.update(source_path.name.encode("utf-8"))
            digest.update(source_path.read_bytes())
        digest.update(extra.encode("utf-8"))
        _RULE_KEY_MEMO[extra] = digest.hexdigest()
    return _RULE_KEY_MEMO[extra]


class AnalysisCache:
    """Disk-backed per-file analysis entries, content-hash addressed."""

    def __init__(
        self, cache_dir: Union[str, pathlib.Path, None] = None
    ) -> None:
        base = (
            pathlib.Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        self._dir = base / f"lintkit-v{CACHE_VERSION}"
        self._enabled = not _disabled_by_env()

    @property
    def enabled(self) -> bool:
        """False when ``REPRO_NO_CACHE`` disabled the cache at construction."""
        return self._enabled

    @property
    def directory(self) -> pathlib.Path:
        """The versioned directory entries live under."""
        return self._dir

    @staticmethod
    def entry_key(source: str, path: str, rule_key: str) -> str:
        """Content-hash address of one file's analysis result."""
        digest = hashlib.sha256()
        digest.update(rule_key.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> pathlib.Path:
        return self._dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored entry payload, or None on miss/corruption/disable."""
        if not self._enabled:
            return None
        try:
            raw = self._entry_path(key).read_bytes()
        except OSError:
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None  # torn/corrupt entry: a miss, never an error
        if not isinstance(payload, dict):
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> bool:
        """Store an entry; unwritable cache dirs are silent no-ops."""
        if not self._enabled:
            return False
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return atomic_write_bytes(self._entry_path(key), blob.encode("utf-8"))
