"""The RP3xx physical-units rules (dimensional analysis).

The analysis itself lives in :mod:`repro.lintkit.unitcheck` (per-file
flow-sensitive inference) and :mod:`repro.lintkit.unittypes` (the unit
lattice); this module adapts its output to the engine's two rule tiers:

* **RP301** — mixed-domain arithmetic: a dB-domain value added to,
  multiplied by or divided by a linear-domain one (or two dB values
  multiplied).  ``snr_db * noise_w`` is meaningless; one side must be
  converted first.
* **RP303** — redundant or missing conversion: a ``units.*`` converter
  applied to a value that is already in the target unit, or to a value in
  a different unit than the converter consumes (``db_to_linear(x_dbm)``).
* **RP304** — suffix/annotation disagreement: a name whose ``_db``-style
  suffix, ``Annotated`` unit and/or inferred value unit contradict each
  other (``snr_db = db_to_linear(...)``).
* **RP302** (project tier) — a call argument whose inferred unit
  contradicts the callee parameter's ``Annotated`` unit, checked across
  the project graph's resolved call edges so cross-module calls are
  covered without re-parsing (argument units ride along in the cached
  :class:`~repro.lintkit.graph.ModuleSummary` records).

All four are library-only: tests re-derive conversions on purpose as
independent oracles.  :mod:`repro.utils.units` itself is also exempt —
it is the one audited place where dB-domain arithmetic is legal (RP101
enforces that part of the contract).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lintkit.engine import (
    ModuleContext,
    ProjectRule,
    Rule,
    register,
    register_project,
)
from repro.lintkit.findings import Finding
from repro.lintkit.graph import CallSite, FunctionInfo, ProjectGraph
from repro.lintkit.unitcheck import infer_module

__all__ = [
    "MixedDomainArithmeticRule",
    "UnitMismatchedArgumentRule",
    "RedundantConversionRule",
    "SuffixAnnotationRule",
]


def _is_units_module(ctx: ModuleContext) -> bool:
    return ctx.path_endswith("utils", "units.py")


class _UnitDiagRule(Rule):
    """Shared adapter: surface one rule id's slice of the inference diags."""

    library_only = True

    def applies_to(self, ctx: ModuleContext) -> bool:
        return super().applies_to(ctx) and not _is_units_module(ctx)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for diag in infer_module(ctx.tree).diags:
            if diag.rule_id == self.rule_id:
                yield Finding(
                    path=ctx.path,
                    line=diag.line,
                    col=diag.col,
                    rule_id=diag.rule_id,
                    message=diag.message,
                )


@register
class MixedDomainArithmeticRule(_UnitDiagRule):
    """dB-domain and linear-domain values combined in one expression.

    Bad::

        total = noise_w * snr_db          # dB scales nothing
    Good::

        total = noise_w * db_to_linear(snr_db)
    """

    rule_id = "RP301"
    summary = "mixed dB-domain / linear-domain arithmetic"


@register
class RedundantConversionRule(_UnitDiagRule):
    """A units.* converter applied to a value already (or wrongly) converted.

    Bad::

        gain = db_to_linear(margin_linear)     # already linear
        power = dbm_to_watts(psd_dbm_hz)       # wrong converter
    Good::

        gain = db_to_linear(margin_db)
        power = dbm_per_hz_to_watts_per_hz(psd_dbm_hz)
    """

    rule_id = "RP303"
    summary = "redundant or missing units.* conversion"


@register
class SuffixAnnotationRule(_UnitDiagRule):
    """Name suffix, unit annotation and inferred value unit disagree.

    Bad::

        snr_db = db_to_linear(snr)        # name says dB, value is linear
    Good::

        snr_linear = db_to_linear(snr_db)
    """

    rule_id = "RP304"
    summary = "unit suffix / annotation / value disagreement"


@register_project
class UnitMismatchedArgumentRule(ProjectRule):
    """Call argument unit contradicts the parameter's ``Annotated`` unit.

    The per-file checker records the inferred unit of every interesting
    call argument in the module summary; this rule resolves each such
    call through the project graph and compares against the callee's
    declared parameter units — so a ``snr_db`` handed to a
    ``power_w: Watts`` parameter two modules away is caught on a warm
    run without re-parsing either file.
    """

    rule_id = "RP302"
    summary = "call argument unit contradicts the annotated parameter unit"

    def check(self, graph: ProjectGraph) -> Iterable[Finding]:
        for module, info in graph.functions():
            summary = graph.summary(module)
            if summary is None or summary.is_test:
                continue
            for site in info.calls:
                if not site.arg_units and not site.kwarg_units:
                    continue
                target = graph.resolve(module, info, site.callee)
                if target is None:
                    continue
                target_info = graph.function(target)
                if target_info is None or not any(target_info.param_units):
                    continue
                yield from self._compare(summary.path, site, target_info)

    def _compare(
        self, path: str, site: CallSite, target: FunctionInfo
    ) -> Iterator[Finding]:
        params = target.params
        units = target.param_units
        offset = 1 if params and params[0] in ("self", "cls") else 0
        for index, got in enumerate(site.arg_units):
            position = index + offset
            if not got or position >= len(params) or position >= len(units):
                continue
            expected = units[position]
            if expected and got != expected:
                yield self._finding(
                    path, site, f"argument {index + 1}", params[position],
                    got, expected, target.qualname,
                )
        for name, got in site.kwarg_units:
            if not got or name not in params:
                continue
            expected = units[params.index(name)]
            if expected and got != expected:
                yield self._finding(
                    path, site, f"keyword argument '{name}'", name,
                    got, expected, target.qualname,
                )

    def _finding(
        self,
        path: str,
        site: CallSite,
        which: str,
        param: str,
        got: str,
        expected: str,
        callee_qualname: str,
    ) -> Finding:
        return Finding(
            path=path,
            line=site.line,
            col=site.col,
            rule_id=self.rule_id,
            message=(
                f"{which} of {site.callee}() is {got} but parameter "
                f"'{param}' of {callee_qualname}() is annotated {expected}"
            ),
        )
